// End-to-end tour of the rept_server protocol, self-contained in one
// process: starts a server on an ephemeral port, drives it with ReptClient
// over real TCP, and cross-checks every served answer against a direct
// library session fed the same edges.
//
//   build/examples/server_client_demo
//
// Walkthrough: create two tenant sessions -> stream half of a graph into
// one -> take an anytime snapshot mid-stream -> pull a checkpoint over the
// wire and prove it is byte-identical to a local WriteCheckpointStream of a
// mirror session -> finish the stream -> restore the mid-stream checkpoint
// into a third session and replay the second half -> confirm both paths
// land on bit-identical estimates. Exits non-zero on any mismatch, so the
// ctest smoke run enforces the whole protocol round trip.
#include <cstdio>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/rept_estimator.hpp"
#include "gen/holme_kim.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "persist/checkpoint.hpp"

namespace {

int Fail(const std::string& what, const rept::Status& st) {
  std::fprintf(stderr, "FAILED: %s: %s\n", what.c_str(),
               st.ToString().c_str());
  return 1;
}

int Fail(const std::string& what) {
  std::fprintf(stderr, "FAILED: %s\n", what.c_str());
  return 1;
}

}  // namespace

int main() {
  using rept::net::ReptClient;

  rept::net::ServerOptions options;
  options.pool_threads = 2;
  rept::net::ReptServer server(options);
  if (const rept::Status st = server.Start(); !st.ok()) {
    return Fail("server start", st);
  }
  std::printf("server listening on 127.0.0.1:%u\n\n", server.port());

  rept::gen::HolmeKimParams params;
  params.num_vertices = 400;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.6;
  const rept::EdgeStream stream = rept::gen::HolmeKim(params, /*seed=*/99);
  const std::span<const rept::Edge> edges(stream.edges());
  const size_t half = edges.size() / 2;

  // Two tenants with different configurations share the server.
  rept::net::SessionSpec alpha;
  alpha.name = "alpha";
  alpha.seed = 7;
  alpha.config.m = 5;
  alpha.config.c = 13;
  rept::net::SessionSpec beta = alpha;
  beta.name = "beta";
  beta.seed = 8;
  beta.config.m = 8;
  beta.config.c = 8;
  beta.config.track_local = false;

  ReptClient client;
  if (const rept::Status st = client.Connect("127.0.0.1", server.port());
      !st.ok()) {
    return Fail("connect", st);
  }
  uint64_t fingerprint = 0;
  if (const rept::Status st = client.CreateSession(alpha, &fingerprint);
      !st.ok()) {
    return Fail("create alpha", st);
  }
  std::printf("created session 'alpha' (m=%u c=%u, fingerprint %016llx)\n",
              alpha.config.m, alpha.config.c,
              static_cast<unsigned long long>(fingerprint));
  if (const rept::Status st = client.CreateSession(beta); !st.ok()) {
    return Fail("create beta", st);
  }

  // Stream the first half into alpha, the whole stream into beta.
  auto ingest = client.Ingest(alpha.name, edges.subspan(0, half),
                              stream.num_vertices());
  if (!ingest.ok()) return Fail("ingest alpha", ingest.status());
  if (const auto st =
          client.Ingest(beta.name, edges, stream.num_vertices()).status();
      !st.ok()) {
    return Fail("ingest beta", st);
  }

  // Anytime snapshot mid-stream, with the 3 hottest vertices.
  auto mid = client.Snapshot(alpha.name, /*top_k=*/3);
  if (!mid.ok()) return Fail("mid snapshot", mid.status());
  std::printf("alpha after %llu edges: global=%.1f, hottest vertices:",
              static_cast<unsigned long long>(mid.value().edges_ingested),
              mid.value().global);
  for (const auto& [vertex, tally] : mid.value().top) {
    std::printf(" v%u=%.1f", vertex, tally);
  }
  std::printf("\n");

  // Checkpoint over the wire and prove bit-identical state: a local mirror
  // session fed the same prefix serializes to the same bytes (the codec is
  // canonical, so byte equality == state equality).
  auto ckpt = client.Checkpoint(alpha.name);
  if (!ckpt.ok()) return Fail("checkpoint alpha", ckpt.status());
  const auto mirror = rept::ReptEstimator(alpha.config)
                          .CreateSession(alpha.seed, nullptr)
                          .value();
  mirror->NoteVertices(stream.num_vertices());
  mirror->Ingest(edges.subspan(0, half));
  std::ostringstream mirror_bytes;
  if (const rept::Status st =
          rept::WriteCheckpointStream(*mirror, mirror_bytes);
      !st.ok()) {
    return Fail("mirror serialize", st);
  }
  const std::string local = std::move(mirror_bytes).str();
  const bool identical =
      local.size() == ckpt.value().size() &&
      std::equal(ckpt.value().begin(), ckpt.value().end(),
                 reinterpret_cast<const uint8_t*>(local.data()));
  if (!identical) return Fail("wire checkpoint differs from local state");
  std::printf("wire checkpoint: %zu bytes, byte-identical to local "
              "serialization\n",
              ckpt.value().size());

  // Finish alpha's stream and compare against the library end to end.
  if (const auto st = client.Ingest(alpha.name, edges.subspan(half)).status();
      !st.ok()) {
    return Fail("ingest alpha 2nd half", st);
  }
  auto final_snapshot = client.Snapshot(alpha.name, 0);
  if (!final_snapshot.ok()) return Fail("final snapshot",
                                        final_snapshot.status());
  mirror->Ingest(edges.subspan(half));
  const double expected = mirror->Snapshot().global;
  if (final_snapshot.value().global != expected) {
    return Fail("served estimate " +
                std::to_string(final_snapshot.value().global) +
                " != library " + std::to_string(expected));
  }
  std::printf("alpha complete: global=%.1f (library agrees bit-exactly)\n",
              final_snapshot.value().global);

  // Session migration: restore the mid-stream checkpoint into a fresh
  // session and replay the rest — it must land on the same final state.
  rept::net::SessionSpec gamma = alpha;
  gamma.name = "gamma";
  if (const rept::Status st = client.CreateSession(gamma); !st.ok()) {
    return Fail("create gamma", st);
  }
  if (const rept::Status st = client.Restore(
          gamma.name, std::span<const uint8_t>(ckpt.value()));
      !st.ok()) {
    return Fail("restore gamma", st);
  }
  if (const auto st = client.Ingest(gamma.name, edges.subspan(half)).status();
      !st.ok()) {
    return Fail("ingest gamma", st);
  }
  auto resumed = client.Snapshot(gamma.name, 0);
  if (!resumed.ok()) return Fail("resumed snapshot", resumed.status());
  if (resumed.value().global != expected) {
    return Fail("restored session diverged from uninterrupted run");
  }
  std::printf("gamma (restored mid-stream, replayed rest): global=%.1f — "
              "identical\n\n",
              resumed.value().global);

  auto stats = client.Stats();
  if (!stats.ok()) return Fail("stats", stats.status());
  std::printf("%-8s %10s %10s %10s %12s\n", "session", "edges", "stored",
              "vertices", "memory");
  for (const auto& row : stats.value().sessions) {
    std::printf("%-8s %10llu %10llu %10llu %12llu\n", row.name.c_str(),
                static_cast<unsigned long long>(row.edges_ingested),
                static_cast<unsigned long long>(row.stored_edges),
                static_cast<unsigned long long>(row.num_vertices),
                static_cast<unsigned long long>(row.memory_bytes));
  }

  for (const std::string name : {"alpha", "beta", "gamma"}) {
    if (const rept::Status st = client.DropSession(name); !st.ok()) {
      return Fail("drop " + name, st);
    }
  }
  client.Close();
  if (const rept::Status st = server.Stop(); !st.ok()) {
    return Fail("server stop", st);
  }
  std::printf("\nall served answers matched the library bit for bit\n");
  return 0;
}
