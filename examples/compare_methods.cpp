// Side-by-side comparison of all four estimation systems on one dataset:
// accuracy (global + local NRMSE over repeated runs) and wall-clock, i.e. a
// single-dataset condensation of the paper's Figures 3-7.
//
//   build/examples/compare_methods [--dataset pokec-sim] [--m 10] [--c 16]
//                                  [--runs 5]
#include <cinttypes>
#include <cstdio>

#include "baselines/baseline_systems.hpp"
#include "exact/exact_counts.hpp"
#include "gen/dataset_suite.hpp"
#include "runner/evaluation.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  std::string dataset = "pokec-sim";
  uint64_t m = 10;
  uint64_t c = 16;
  uint64_t runs = 5;
  uint64_t seed = 42;
  rept::FlagSet flags("compare REPT vs parallel MASCOT / TRIEST / GPS");
  flags.AddString("dataset", &dataset, "stand-in dataset name");
  flags.AddUint64("m", &m, "sampling denominator (p = 1/m)");
  flags.AddUint64("c", &c, "number of logical processors");
  flags.AddUint64("runs", &runs, "independent runs for NRMSE");
  flags.AddUint64("seed", &seed, "master seed");
  if (const rept::Status st = flags.Parse(argc, argv); !st.ok()) {
    if (st.code() == rept::StatusCode::kNotFound) return 0;  // --help
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  const auto stream =
      rept::gen::MakeDataset(dataset, rept::gen::DatasetSize::kSmall, seed);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 2;
  }
  const rept::ExactCounts exact = rept::ComputeExactCounts(*stream);
  std::printf("dataset %s: |V|=%u |E|=%" PRIu64 " tau=%" PRIu64
              " eta=%" PRIu64 "\n",
              stream->name().c_str(), stream->num_vertices(), stream->size(),
              exact.tau, exact.eta);
  std::printf("config: p=1/%" PRIu64 ", c=%" PRIu64 ", %" PRIu64 " runs\n\n",
              m, c, runs);

  rept::ThreadPool pool;
  rept::EvaluationOptions opts;
  opts.runs = static_cast<uint32_t>(runs);
  opts.master_seed = seed;

  std::vector<std::unique_ptr<rept::EstimatorSystem>> systems;
  systems.push_back(rept::MakeRept(static_cast<uint32_t>(m),
                                   static_cast<uint32_t>(c)));
  systems.push_back(rept::MakeParallelMascot(static_cast<uint32_t>(m),
                                             static_cast<uint32_t>(c)));
  systems.push_back(rept::MakeParallelTriest(static_cast<uint32_t>(m),
                                             static_cast<uint32_t>(c)));
  systems.push_back(rept::MakeParallelGps(static_cast<uint32_t>(m),
                                          static_cast<uint32_t>(c)));

  rept::TablePrinter table({"system", "global NRMSE", "local NRMSE",
                            "bias", "sec/run"});
  for (const auto& system : systems) {
    const rept::EvaluationResult r =
        rept::EvaluateSystem(*system, *stream, exact, opts, &pool);
    table.AddRow({r.system_name,
                  rept::TablePrinter::FormatDouble(r.global_nrmse, 4),
                  rept::TablePrinter::FormatDouble(r.mean_local_nrmse, 4),
                  rept::TablePrinter::FormatDouble(r.global_bias, 3),
                  rept::TablePrinter::FormatDouble(r.mean_run_seconds, 3)});
  }
  table.Print();
  std::printf(
      "\nexpected (paper): REPT lowest NRMSE at equal memory and runtime "
      "comparable to MASCOT\n");
  return 0;
}
