// Local ranking: use REPT's per-node (local) triangle estimates to rank
// nodes, the workhorse of the applications the paper cites — spam page
// detection, sybil-account detection, social role identification — all of
// which consume the *ranking* induced by tau_v (or the derived clustering
// coefficient), not the raw counts.
//
// The example ranks nodes of a triangle-dense stand-in by estimated tau_v
// and scores the ranking against the exact one (precision@k and Spearman
// footrule on the top set), demonstrating that a 1/m-memory stream pass
// preserves the head of the ranking.
//
//   build/examples/local_ranking [--dataset flickr-sim] [--k 50]
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <numeric>
#include <set>
#include <vector>

#include "core/rept_estimator.hpp"
#include "exact/exact_counts.hpp"
#include "gen/dataset_suite.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace {

std::vector<rept::VertexId> TopK(const std::vector<double>& score, size_t k) {
  std::vector<rept::VertexId> ids(score.size());
  std::iota(ids.begin(), ids.end(), 0);
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<int64_t>(k),
                    ids.end(), [&score](rept::VertexId a, rept::VertexId b) {
                      return score[a] > score[b];
                    });
  ids.resize(k);
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "flickr-sim";
  uint64_t k = 50;
  uint64_t m = 10;
  uint64_t c = 20;
  uint64_t seed = 42;
  rept::FlagSet flags("rank nodes by estimated local triangle count");
  flags.AddString("dataset", &dataset, "stand-in dataset name");
  flags.AddUint64("k", &k, "size of the top set to score");
  flags.AddUint64("m", &m, "sampling denominator");
  flags.AddUint64("c", &c, "processors");
  flags.AddUint64("seed", &seed, "seed");
  if (const rept::Status st = flags.Parse(argc, argv); !st.ok()) {
    if (st.code() == rept::StatusCode::kNotFound) return 0;  // --help
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  const auto stream =
      rept::gen::MakeDataset(dataset, rept::gen::DatasetSize::kSmall, seed);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 2;
  }

  rept::ReptConfig config;
  config.m = static_cast<uint32_t>(m);
  config.c = static_cast<uint32_t>(c);
  const rept::ReptEstimator estimator(config);
  rept::ThreadPool pool;
  const rept::TriangleEstimates est = estimator.Run(*stream, seed, &pool);
  const rept::ExactCounts exact = rept::ComputeExactCounts(*stream);

  std::vector<double> truth(exact.tau_v.begin(), exact.tau_v.end());
  const auto est_top = TopK(est.local, k);
  const auto true_top = TopK(truth, k);

  const std::set<rept::VertexId> true_set(true_top.begin(), true_top.end());
  size_t hits = 0;
  for (rept::VertexId v : est_top) hits += true_set.count(v);

  std::printf("dataset %s: %u vertices, %" PRIu64 " edges, tau=%" PRIu64
              "\n\n",
              stream->name().c_str(), stream->num_vertices(), stream->size(),
              exact.tau);
  std::printf("precision@%" PRIu64 " of REPT local ranking: %.2f\n", k,
              static_cast<double>(hits) / static_cast<double>(k));

  std::printf("\nrank  node      tau_v_hat    tau_v\n");
  for (size_t i = 0; i < std::min<size_t>(10, est_top.size()); ++i) {
    const rept::VertexId v = est_top[i];
    std::printf("%4zu  %-8u %10.0f %8" PRIu64 "\n", i + 1, v, est.local[v],
                exact.tau_v[v]);
  }
  std::printf(
      "\n(each of the %" PRIu64
      " processors stored only ~1/%" PRIu64 " of the stream)\n",
      c, m);
  return 0;
}
