// Interval monitor: the paper's motivating application (§II) — a router
// collects an unbounded packet stream; for each time interval we estimate
// the triangle count to flag anomalous intervals (triangle spikes are a
// classic signature of coordinated scanning / sybil rings).
//
// This example runs ONE long-lived REPT streaming session across a whole
// day of traffic. Each hour's edges are pushed with Ingest(); an anytime
// Snapshot() after every interval yields the cumulative estimate, and the
// per-interval *delta* between consecutive snapshots is compared against the
// running median of past deltas. Two intervals additionally carry a planted
// dense "attack" clique burst; the monitor must flag exactly those. Each
// interval's flows use a disjoint id range (interval-scoped flow ids), so a
// delta estimates that interval's own triangles.
//
//   build/examples/interval_monitor [--intervals 24] [--m 8] [--c 8]
//
// Exits non-zero if an attack interval goes unflagged, so the ctest smoke
// run enforces detection end-to-end.
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/rept_estimator.hpp"
#include "core/streaming_estimator.hpp"
#include "exact/exact_counts.hpp"
#include "gen/planted.hpp"
#include "gen/rmat.hpp"
#include "graph/permutation.hpp"
#include "obs/metrics.hpp"
#include "persist/checkpoint.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr rept::VertexId kHostsPerInterval = 4096;

// SIGINT/SIGTERM ask for a graceful stop: the interval in flight finishes,
// a final checkpoint is saved (when a checkpoint path is in use), and the
// process exits 0 so a supervisor restart with --resume continues the day.
volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

void InstallSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

// One interval's traffic: R-MAT background; attack intervals additionally
// carry planted cliques (a burst of tightly interconnected hosts). Flow ids
// are offset into the interval's own range so the day-long session sees a
// disjoint id space per interval.
rept::EdgeStream MakeInterval(uint64_t seed, bool attack,
                              rept::VertexId id_offset) {
  using namespace rept::gen;
  rept::EdgeStream background = Rmat({.scale = 12, .num_edges = 12000}, seed);
  if (attack) {
    // Overlay 6 cliques of 40 hosts on the same id space and deduplicate:
    // ~59k extra triangles against a ~24k-triangle background.
    const rept::EdgeStream cliques = PlantedCliques(
        {.num_vertices = kHostsPerInterval,
         .background_edges = 0,
         .num_cliques = 6,
         .clique_size = 40},
        seed + 1);
    std::vector<rept::Edge> merged;
    merged.reserve(background.size() + cliques.size());
    merged.insert(merged.end(), background.begin(), background.end());
    merged.insert(merged.end(), cliques.begin(), cliques.end());
    std::unordered_set<uint64_t> seen;
    seen.reserve(merged.size());
    std::vector<rept::Edge> unique;
    unique.reserve(merged.size());
    for (const rept::Edge& e : merged) {
      if (seen.insert(rept::EdgeKey(e)).second) unique.push_back(e);
    }
    background = rept::EdgeStream("attack-interval",
                                  background.num_vertices(),
                                  std::move(unique));
  }
  rept::ShuffleStream(background, seed + 2);
  for (rept::Edge& e : background.mutable_edges()) {
    e.u += id_offset;
    e.v += id_offset;
  }
  return rept::EdgeStream(background.name(),
                          id_offset + kHostsPerInterval,
                          std::move(background.mutable_edges()));
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t intervals = 24;
  uint64_t m = 8;
  uint64_t c = 8;
  uint64_t seed = 7;
  uint64_t threads = 0;
  uint64_t checkpoint_every = 0;
  std::string checkpoint_path = "/tmp/rept_interval_monitor.ckpt";
  std::string resume;
  std::string metrics_out;
  double threshold = 2.0;
  rept::FlagSet flags("per-interval triangle monitoring (paper §II use case)");
  flags.AddUint64("intervals", &intervals, "number of time intervals");
  flags.AddUint64("m", &m, "sampling denominator (memory = |E|/m per proc)");
  flags.AddUint64("c", &c, "processors in the monitoring session");
  flags.AddUint64("seed", &seed, "seed");
  flags.AddUint64("threads", &threads,
                  "session pool workers (0 = hardware concurrency)");
  flags.AddUint64("checkpoint-every", &checkpoint_every,
                  "save a durable checkpoint every N intervals (0 = off)");
  flags.AddString("checkpoint", &checkpoint_path, "checkpoint file path");
  flags.AddString("resume", &resume,
                  "restore the session from this checkpoint and continue "
                  "monitoring after the intervals it already ingested");
  flags.AddDouble("threshold", &threshold,
                  "flag intervals this many times above the running median");
  flags.AddString("metrics-out", &metrics_out,
                  "dump the process obs-metrics registry as JSON on exit "
                  "(empty = off)");
  if (const rept::Status st = flags.Parse(argc, argv); !st.ok()) {
    if (st.code() == rept::StatusCode::kNotFound) return 0;  // --help
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  InstallSignalHandlers();

  rept::ReptConfig config;
  config.m = static_cast<uint32_t>(m);
  config.c = static_cast<uint32_t>(c);
  config.track_local = false;
  const rept::ReptEstimator estimator(config);
  rept::ThreadPool pool(static_cast<size_t>(threads));
  rept::SeedSequence seeds(seed);

  // The whole day flows through this one session; it is never reset. A
  // checkpointed run can be resumed by a later process: interval traffic is
  // a deterministic function of (seed, interval index), so the monitor
  // regenerates and skips the intervals the restored session has already
  // ingested, then continues monitoring. The alert baseline (delta history)
  // is monitor-side state and re-warms from scratch after a resume.
  const std::unique_ptr<rept::StreamingEstimator> session =
      estimator.CreateSession(seeds.SeedFor(1000), &pool).value();
  uint64_t resumed_edges = 0;
  if (!resume.empty()) {
    if (const rept::Status st = rept::LoadCheckpoint(*session, resume);
        !st.ok()) {
      std::fprintf(stderr, "--resume %s: %s\n", resume.c_str(),
                   st.ToString().c_str());
      return 2;
    }
    resumed_edges = session->edges_ingested();
  }

  const auto is_attack = [intervals](uint64_t i) {
    return (i == 9 || i == 17) && i < intervals;
  };
  std::string attack_note;
  for (const uint64_t a : {uint64_t{9}, uint64_t{17}}) {
    if (!is_attack(a)) continue;
    if (!attack_note.empty()) attack_note += " and ";
    attack_note += std::to_string(a);
  }
  if (attack_note.empty()) attack_note = "none (run >= 10 intervals)";
  std::printf("monitoring %" PRIu64
              " intervals on one %s session; attack cliques injected at "
              "interval(s): %s\n\n",
              intervals, session->Name().c_str(), attack_note.c_str());
  std::printf("%-10s %12s %12s %8s  %s\n", "interval", "delta_hat", "exact",
              "ratio", "verdict");

  std::vector<double> history;
  double previous_global =
      resumed_edges > 0 ? session->Snapshot().global : 0.0;
  uint64_t regenerated_edges = 0;
  int flagged = 0;
  int missed_attacks = 0;
  for (uint64_t i = 0; i < intervals; ++i) {
    if (g_signal != 0) {
      // Graceful drain: the stream pauses at an interval boundary (exactly
      // where checkpoints are bit-identical-resumable), saves, and exits
      // cleanly so a restart with --resume picks the day back up.
      std::printf("\nsignal %d: checkpointing to %s before exit\n",
                  static_cast<int>(g_signal), checkpoint_path.c_str());
      if (const rept::Status st =
              rept::SaveCheckpoint(*session, checkpoint_path);
          !st.ok()) {
        std::fprintf(stderr, "shutdown checkpoint failed: %s\n",
                     st.ToString().c_str());
        return 2;
      }
      std::printf("resume with: interval_monitor --intervals %" PRIu64
                  " --resume %s\n",
                  intervals, checkpoint_path.c_str());
      return 0;
    }
    const bool attack = is_attack(i);
    const rept::EdgeStream interval =
        MakeInterval(seeds.SeedFor(i), attack,
                     static_cast<rept::VertexId>(i) * kHostsPerInterval);
    if (regenerated_edges < resumed_edges) {
      // Already inside the restored prefix: skip the ingest, keep the
      // deterministic edge accounting aligned.
      regenerated_edges += interval.size();
      if (regenerated_edges > resumed_edges) {
        std::fprintf(stderr,
                     "--resume: checkpoint was not taken at an interval "
                     "boundary of this configuration\n");
        return 2;
      }
      std::printf("%-10" PRIu64 " %12s %12s %8s  resumed past\n", i, "-",
                  "-", "-");
      continue;
    }
    session->Ingest(interval);
    regenerated_edges += interval.size();

    // Anytime snapshot: cumulative estimate for the whole day so far; the
    // delta against the previous snapshot is this interval's contribution
    // (id ranges are disjoint, so no cross-interval triangles).
    const double cumulative = session->Snapshot().global;
    const double delta_hat = cumulative - previous_global;
    previous_global = cumulative;
    const rept::ExactCounts exact =
        rept::ComputeExactCounts(interval, /*with_eta=*/false);

    double baseline = 0.0;
    if (!history.empty()) {
      baseline = rept::Quantile(history, 0.5);
    }
    const double ratio = baseline > 0.0 ? delta_hat / baseline : 1.0;
    const bool alert = baseline > 0.0 && ratio > threshold;
    if (alert) ++flagged;
    if (attack && !alert) ++missed_attacks;
    // Keep the baseline clean of flagged intervals.
    if (!alert) history.push_back(delta_hat);

    std::printf("%-10" PRIu64 " %12.0f %12" PRIu64 " %8.2f  %s%s\n", i,
                delta_hat, exact.tau, ratio,
                alert ? "ALERT" : "ok",
                attack ? (alert ? " (true positive)" : " (MISSED attack)")
                       : (alert ? " (false positive)" : ""));

    if (checkpoint_every > 0 && (i + 1) % checkpoint_every == 0) {
      if (const rept::Status st =
              rept::SaveCheckpoint(*session, checkpoint_path);
          !st.ok()) {
        std::fprintf(stderr, "checkpoint save failed: %s\n",
                     st.ToString().c_str());
        return 2;
      }
    }
  }
  std::printf("\nflagged %d interval(s); session ingested %" PRIu64
              " edges, stores %" PRIu64 " across %u processors (~1/%d of "
              "the stream each)\n",
              flagged, session->edges_ingested(), session->StoredEdges(),
              static_cast<uint32_t>(c), static_cast<int>(m));
  if (!metrics_out.empty()) {
    if (const rept::Status st = rept::obs::WriteMetricsJson(metrics_out);
        !st.ok()) {
      std::fprintf(stderr, "--metrics-out: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote obs metrics to %s\n", metrics_out.c_str());
  }
  if (missed_attacks > 0) {
    std::fprintf(stderr, "FAILED: %d attack interval(s) not flagged\n",
                 missed_attacks);
    return 1;
  }
  return 0;
}
