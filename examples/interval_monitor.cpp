// Interval monitor: the paper's motivating application (§II) — a router
// collects a packet stream; for each time interval we estimate global and
// local triangle counts to flag anomalous intervals (triangle spikes are a
// classic signature of coordinated scanning / sybil rings).
//
// This example synthesizes a day of traffic as 24 hourly interval streams of
// background R-MAT traffic, injects a dense "attack" clique into two
// intervals, runs REPT per interval, and flags intervals whose estimated
// triangle count deviates from the running median.
//
//   build/examples/interval_monitor [--intervals 24] [--m 8] [--c 8]
#include <cinttypes>
#include <cstdio>
#include <set>
#include <vector>

#include "core/rept_estimator.hpp"
#include "exact/exact_counts.hpp"
#include "gen/planted.hpp"
#include "gen/rmat.hpp"
#include "graph/permutation.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"

namespace {

// One interval's traffic: R-MAT background; attack intervals additionally
// carry planted cliques (a burst of tightly interconnected hosts).
rept::EdgeStream MakeInterval(uint64_t seed, bool attack) {
  using namespace rept::gen;
  rept::EdgeStream background = Rmat({.scale = 12, .num_edges = 12000}, seed);
  if (attack) {
    // Overlay 6 cliques of 40 hosts on the same id space and deduplicate:
    // ~59k extra triangles against a ~24k-triangle background.
    const rept::EdgeStream cliques = PlantedCliques(
        {.num_vertices = 4096,
         .background_edges = 0,
         .num_cliques = 6,
         .clique_size = 40},
        seed + 1);
    std::vector<rept::Edge> merged = background.edges();
    merged.insert(merged.end(), cliques.begin(), cliques.end());
    std::set<uint64_t> seen;
    std::vector<rept::Edge> unique;
    unique.reserve(merged.size());
    for (const rept::Edge& e : merged) {
      if (seen.insert(rept::EdgeKey(e)).second) unique.push_back(e);
    }
    background = rept::EdgeStream("attack-interval",
                                  background.num_vertices(),
                                  std::move(unique));
  }
  rept::ShuffleStream(background, seed + 2);
  return background;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t intervals = 24;
  uint64_t m = 8;
  uint64_t c = 8;
  uint64_t seed = 7;
  double threshold = 2.0;
  rept::FlagSet flags("per-interval triangle monitoring (paper §II use case)");
  flags.AddUint64("intervals", &intervals, "number of time intervals");
  flags.AddUint64("m", &m, "sampling denominator (memory = |E|/m per proc)");
  flags.AddUint64("c", &c, "processors per interval");
  flags.AddUint64("seed", &seed, "seed");
  flags.AddDouble("threshold", &threshold,
                  "flag intervals this many times above the running median");
  if (const rept::Status st = flags.Parse(argc, argv); !st.ok()) {
    if (st.code() == rept::StatusCode::kNotFound) return 0;  // --help
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  rept::ReptConfig config;
  config.m = static_cast<uint32_t>(m);
  config.c = static_cast<uint32_t>(c);
  config.track_local = false;
  const rept::ReptEstimator estimator(config);
  rept::ThreadPool pool;
  rept::SeedSequence seeds(seed);

  std::printf("monitoring %" PRIu64
              " intervals; attack cliques injected at intervals 9 and 17\n\n",
              intervals);
  std::printf("%-10s %12s %12s %8s  %s\n", "interval", "tau_hat", "exact",
              "ratio", "verdict");

  std::vector<double> history;
  int flagged = 0;
  for (uint64_t i = 0; i < intervals; ++i) {
    const bool attack = (i == 9 || i == 17);
    const rept::EdgeStream interval = MakeInterval(seeds.SeedFor(i), attack);
    const double tau_hat =
        estimator.Run(interval, seeds.SeedFor(1000 + i), &pool).global;
    const rept::ExactCounts exact =
        rept::ComputeExactCounts(interval, /*with_eta=*/false);

    double baseline = 0.0;
    if (!history.empty()) {
      baseline = rept::Quantile(history, 0.5);
    }
    const double ratio = baseline > 0.0 ? tau_hat / baseline : 1.0;
    const bool alert = baseline > 0.0 && ratio > threshold;
    if (alert) ++flagged;
    // Keep the baseline clean of flagged intervals.
    if (!alert) history.push_back(tau_hat);

    std::printf("%-10" PRIu64 " %12.0f %12" PRIu64 " %8.2f  %s%s\n", i,
                tau_hat, exact.tau, ratio,
                alert ? "ALERT" : "ok",
                attack ? (alert ? " (true positive)" : " (MISSED attack)")
                       : (alert ? " (false positive)" : ""));
  }
  std::printf("\nflagged %d interval(s); per-interval memory ~|E|/m = %d "
              "edges per processor\n",
              flagged, 12000 / static_cast<int>(m));
  return 0;
}
