// File-based estimation CLI: the "downstream user" entry point. Streams a
// SNAP-style edge list (whitespace-separated "u v" lines, # comments)
// through a chunked TextFileEdgeSource into a REPT streaming session — the
// edge vector is never materialized; resident state is the session sample,
// the id remap, and (unless --keep-duplicates) the dedupe key set — and
// prints global + top-k local estimates. With --exact it also computes
// ground truth (which does load the stream wholesale) and reports the
// realized error.
//
//   build/examples/estimate_file --input my_graph.txt --m 20 --c 40
//
// Run without --input to see it on a generated demo file (written to the
// system temp dir, so the example is runnable out of the box).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <numeric>

#include "core/rept_estimator.hpp"
#include "core/streaming_estimator.hpp"
#include "exact/exact_counts.hpp"
#include "gen/dataset_suite.hpp"
#include "graph/edge_source.hpp"
#include "graph/stream_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  std::string input;
  uint64_t m = 10;
  uint64_t c = 10;
  uint64_t seed = 42;
  uint64_t topk = 10;
  uint64_t chunk = 65536;
  uint64_t threads = 0;
  uint64_t checkpoint_every = 0;
  std::string checkpoint_path;
  std::string resume;
  bool exact = false;
  bool keep_duplicates = false;
  bool prefetch = false;
  std::string metrics_out;
  std::string trace_out;
  rept::FlagSet flags("estimate triangle counts of an edge-list file");
  flags.AddString("input", &input,
                  "edge list path (empty: generate a demo file)");
  flags.AddUint64("m", &m, "sampling denominator (memory ~ |E|/m per proc)");
  flags.AddUint64("c", &c, "logical processors");
  flags.AddUint64("seed", &seed, "seed");
  flags.AddUint64("topk", &topk, "how many top-local nodes to print");
  flags.AddUint64("chunk", &chunk, "edges ingested per batch");
  flags.AddUint64("threads", &threads,
                  "session pool workers (0 = hardware concurrency)");
  flags.AddUint64("checkpoint-every", &checkpoint_every,
                  "save a durable checkpoint every N ingested edges (0 = "
                  "off)");
  flags.AddString("checkpoint", &checkpoint_path,
                  "checkpoint file path (default: <input>.ckpt)");
  flags.AddString("resume", &resume,
                  "restore session state from this checkpoint, skip the "
                  "edges it already ingested, and continue");
  flags.AddBool("exact", &exact, "also compute exact counts for comparison");
  flags.AddBool("keep-duplicates", &keep_duplicates,
                "skip edge dedup (O(chunk) reader memory for huge files)");
  flags.AddBool("prefetch", &prefetch,
                "decode the next chunk while the current one is estimated");
  flags.AddString("metrics-out", &metrics_out,
                  "dump the process obs-metrics registry as JSON on exit "
                  "(empty = off)");
  flags.AddString("trace-out", &trace_out,
                  "record the ingest as chrome://tracing JSON (open at "
                  "chrome://tracing or ui.perfetto.dev; empty = off)");
  if (const rept::Status st = flags.Parse(argc, argv); !st.ok()) {
    if (st.code() == rept::StatusCode::kNotFound) return 0;  // --help
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  if (chunk == 0) chunk = 1;

  if (input.empty()) {
    input = "/tmp/rept_demo_edges.txt";
    const auto demo = rept::gen::MakeDataset(
        "livejournal-sim", rept::gen::DatasetSize::kSmall, seed);
    if (!demo.ok() ||
        !rept::SaveEdgeListText(*demo, input).ok()) {
      std::fprintf(stderr, "failed to write demo file\n");
      return 2;
    }
    std::printf("no --input given; wrote demo edge list to %s\n", input.c_str());
    exact = true;
  }

  auto source =
      rept::TextFileEdgeSource::Open(input, /*dedupe=*/!keep_duplicates);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 2;
  }

  rept::ReptConfig config;
  config.m = static_cast<uint32_t>(m);
  config.c = static_cast<uint32_t>(c);
  const rept::ReptEstimator estimator(config);
  rept::ThreadPool pool(static_cast<size_t>(threads));

  // Chunked create-ingest-snapshot: the file's edge vector is never
  // resident, only the chunk buffer(s), the sampled edges, and the reader's
  // remap/dedupe state. With --prefetch, a pump thread decodes chunk t+1
  // while the session estimates chunk t.
  rept::WallTimer run_timer;
  const std::unique_ptr<rept::StreamingEstimator> session =
      estimator.CreateSession(seed, &pool).value();

  // Resume: restore the session at its saved batch boundary, then
  // fast-forward the (deterministic) reader past the edges the checkpoint
  // already ingested — the remap/dedupe state rebuilds itself on the way.
  // The config/seed flags must match the run that wrote the checkpoint
  // (verified via the header fingerprint); the input file must be the same
  // stream, which only the operator can guarantee.
  uint64_t resumed_edges = 0;
  if (!resume.empty()) {
    if (const rept::Status st = rept::LoadCheckpoint(*session, resume);
        !st.ok()) {
      std::fprintf(stderr, "--resume %s: %s\n", resume.c_str(),
                   st.ToString().c_str());
      return 2;
    }
    resumed_edges = session->edges_ingested();
    const auto skipped =
        rept::SkipEdges(**source, resumed_edges, static_cast<size_t>(chunk));
    if (!skipped.ok()) {
      std::fprintf(stderr, "--resume: %s\n",
                   skipped.status().ToString().c_str());
      return 2;
    }
    if (*skipped != resumed_edges) {
      std::fprintf(stderr,
                   "--resume: input holds only %" PRIu64
                   " edges but the checkpoint already ingested %" PRIu64
                   " (wrong input file?)\n",
                   *skipped, resumed_edges);
      return 2;
    }
    std::printf("resumed %s at edge %" PRIu64 " from %s\n",
                session->Name().c_str(), resumed_edges, resume.c_str());
  }

  rept::IngestOptions ingest_options;
  ingest_options.chunk_edges = static_cast<size_t>(chunk);
  ingest_options.prefetch = prefetch;
  if (checkpoint_every > 0) {
    ingest_options.checkpoint.path =
        checkpoint_path.empty() ? input + ".ckpt" : checkpoint_path;
    ingest_options.checkpoint.every_edges = checkpoint_every;
    std::printf("checkpointing every %" PRIu64 " edges to %s\n",
                checkpoint_every, ingest_options.checkpoint.path.c_str());
  }
  if (!trace_out.empty()) rept::obs::StartTracing();
  const auto ingested = rept::IngestAll(**source, *session, ingest_options);
  if (!trace_out.empty()) {
    if (const rept::Status st = rept::obs::StopTracingToFile(trace_out);
        !st.ok()) {
      std::fprintf(stderr, "--trace-out: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote ingest trace to %s\n", trace_out.c_str());
  }
  if (!ingested.ok()) {
    std::fprintf(stderr, "%s\n", ingested.status().ToString().c_str());
    return 2;
  }
  const rept::TriangleEstimates est = session->Snapshot();
  std::printf("%s ingested %s: %u vertices, %" PRIu64 " edges in %" PRIu64
              "-edge chunks (%.3fs, stores %" PRIu64 " edges)\n",
              session->Name().c_str(), input.c_str(), session->num_vertices(),
              session->edges_ingested(), chunk, run_timer.Seconds(),
              session->StoredEdges());
  std::printf("\nestimated global triangles: %.0f\n", est.global);

  std::vector<rept::VertexId> ids(session->num_vertices());
  std::iota(ids.begin(), ids.end(), 0);
  const size_t k = std::min<size_t>(topk, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<int64_t>(k),
                    ids.end(), [&est](rept::VertexId a, rept::VertexId b) {
                      return est.local[a] > est.local[b];
                    });

  if (exact) {
    // Ground truth needs random access: load the stream wholesale (the only
    // place this CLI does).
    const auto stream =
        rept::LoadEdgeListText(input, /*dedupe=*/!keep_duplicates);
    if (!stream.ok()) {
      std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
      return 2;
    }
    rept::WallTimer exact_timer;
    const rept::ExactCounts truth = rept::ComputeExactCounts(*stream);
    std::printf("exact global triangles:     %" PRIu64 "  (%.3fs, error %+.2f%%)\n",
                truth.tau, exact_timer.Seconds(),
                100.0 * (est.global - static_cast<double>(truth.tau)) /
                    static_cast<double>(truth.tau));
    std::printf("\ntop-%zu nodes by estimated local count:\n", k);
    for (size_t i = 0; i < k; ++i) {
      std::printf("  node %-8u est %10.0f   exact %8" PRIu64 "\n", ids[i],
                  est.local[ids[i]], truth.tau_v[ids[i]]);
    }
  } else {
    std::printf("\ntop-%zu nodes by estimated local count:\n", k);
    for (size_t i = 0; i < k; ++i) {
      std::printf("  node %-8u est %10.0f\n", ids[i], est.local[ids[i]]);
    }
  }
  if (!metrics_out.empty()) {
    if (const rept::Status st = rept::obs::WriteMetricsJson(metrics_out);
        !st.ok()) {
      std::fprintf(stderr, "--metrics-out: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote obs metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}
