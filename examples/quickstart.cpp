// Quickstart: estimate global and local triangle counts of a graph stream
// with REPT and compare against exact ground truth.
//
//   build/examples/quickstart [--m 10] [--c 10] [--seed 42]
//
// Walks through the full public API surface in ~60 lines:
//   1. obtain a stream (here: a generated stand-in; LoadEdgeListText works
//      the same way for SNAP files),
//   2. configure and run a ReptEstimator,
//   3. compare with ComputeExactCounts.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "core/rept_estimator.hpp"
#include "exact/exact_counts.hpp"
#include "gen/dataset_suite.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  uint64_t m = 10;
  uint64_t c = 10;
  uint64_t seed = 42;
  std::string dataset = "webgoogle-sim";
  rept::FlagSet flags("REPT quickstart");
  flags.AddUint64("m", &m, "sampling denominator: each processor keeps 1/m of edges");
  flags.AddUint64("c", &c, "number of logical processors");
  flags.AddUint64("seed", &seed, "hash/rng seed");
  flags.AddString("dataset", &dataset, "synthetic stand-in name");
  if (const rept::Status st = flags.Parse(argc, argv); !st.ok()) {
    if (st.code() == rept::StatusCode::kNotFound) return 0;  // --help
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  // 1. A graph stream: sequence of undirected edges in arrival order.
  const auto stream =
      rept::gen::MakeDataset(dataset, rept::gen::DatasetSize::kSmall, seed);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 2;
  }
  std::printf("stream: %s with %u vertices, %" PRIu64 " edges\n",
              stream->name().c_str(), stream->num_vertices(), stream->size());

  // 2. REPT: partition edges across c processors by hashing, count
  //    semi-triangles per processor, combine.
  rept::ReptConfig config;
  config.m = static_cast<uint32_t>(m);
  config.c = static_cast<uint32_t>(c);
  const rept::ReptEstimator estimator(config);
  rept::ThreadPool pool;  // hardware-concurrency workers
  const rept::TriangleEstimates estimates =
      estimator.Run(*stream, seed, &pool);

  // 3. Ground truth for comparison (feasible here; the whole point of REPT
  //    is that it does NOT need this pass).
  const rept::ExactCounts exact = rept::ComputeExactCounts(*stream);

  const double rel_err =
      (estimates.global - static_cast<double>(exact.tau)) /
      static_cast<double>(exact.tau);
  std::printf("\n%-28s %" PRIu64 "\n", "exact global triangles:", exact.tau);
  std::printf("%-28s %.0f  (relative error %+.2f%%)\n",
              "REPT estimate:", estimates.global, 100.0 * rel_err);

  // Local counts: show the five nodes with the largest estimates.
  std::vector<rept::VertexId> top;
  for (rept::VertexId v = 0; v < stream->num_vertices(); ++v) {
    top.push_back(v);
  }
  std::partial_sort(top.begin(), top.begin() + 5, top.end(),
                    [&estimates](rept::VertexId a, rept::VertexId b) {
                      return estimates.local[a] > estimates.local[b];
                    });
  std::printf("\ntop-5 nodes by estimated local count (estimate / exact):\n");
  for (int i = 0; i < 5; ++i) {
    const rept::VertexId v = top[i];
    std::printf("  node %-8u %10.0f / %" PRIu64 "\n", v, estimates.local[v],
                exact.tau_v[v]);
  }
  return 0;
}
