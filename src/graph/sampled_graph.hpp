// Dynamic adjacency structure over the edges a streaming sampler currently
// stores. This is the inner-loop data structure of every estimator: the
// per-edge cost of MASCOT/TRIEST/GPS/REPT is dominated by
// CommonNeighbors(u, v) on this structure (paper §III-C).
//
// Representation (docs/hot_path.md): a FlatHashMap from vertex to a sorted
// NeighborList with inline small-buffer storage, spilling into a per-graph
// Arena. Sampled subgraphs are sparse (≈ p|E| edges scattered over many
// vertices, most of degree <= 4), so the common case is one open-addressing
// probe plus an inline 16-byte list — no per-vertex heap node, no pointer
// chase. Intersections run the adaptive kernel of sorted_intersect.hpp
// (linear merge for balanced degrees, gallop under >= 8x skew).
//
// Not thread-safe: single writer per instance (the repo-wide ingest
// contract); concurrent readers go through published tallies, never here.
#pragma once

#include <cstdint>
#include <span>

#include "container/flat_hash_map.hpp"
#include "container/neighbor_list.hpp"
#include "container/sorted_intersect.hpp"
#include "graph/types.hpp"
#include "util/check.hpp"

namespace rept {

/// \brief Mutable sampled subgraph with insert / erase / common-neighbor
/// queries.
class SampledGraph {
 public:
  SampledGraph() = default;
  SampledGraph(SampledGraph&&) = default;
  SampledGraph& operator=(SampledGraph&&) = default;
  SampledGraph(const SampledGraph&) = delete;
  SampledGraph& operator=(const SampledGraph&) = delete;

  /// Inserts undirected edge {u, v}. Returns false (no-op) if the edge is
  /// already present or is a self loop.
  bool Insert(VertexId u, VertexId v);

  /// Removes undirected edge {u, v}. Returns false if absent.
  bool Erase(VertexId u, VertexId v);

  bool Contains(VertexId u, VertexId v) const;

  uint64_t num_edges() const { return num_edges_; }

  /// Number of vertices with at least one incident stored edge.
  size_t num_active_vertices() const { return adjacency_.size(); }

  uint32_t degree(VertexId v) const {
    const NeighborList* list = adjacency_.Find(v);
    return list == nullptr ? 0 : list->size();
  }

  /// Pre-sizes the adjacency map for `n` active vertices, so a stream whose
  /// expected size is known up front (SessionOptions hints) never pays a
  /// mid-stream rehash spike.
  void ReserveVertices(size_t n) { adjacency_.reserve(n); }

  void Clear() {
    adjacency_.clear();
    arena_.Reset();
    num_edges_ = 0;
  }

  /// Calls fn(w) for every w adjacent to both u and v (ascending order of w).
  /// This is |N_u ∩ N_v| enumeration — the semi-triangle completion set of
  /// an arriving edge (u, v). NeighborList views satisfy the arena overread
  /// contract, so the dispatched (SIMD) kernels are always legal here.
  template <typename Fn>
  void ForEachCommonNeighbor(VertexId u, VertexId v, Fn&& fn) const {
    adjacency_.Prefetch(u);
    adjacency_.Prefetch(v);
    const NeighborList* nu = adjacency_.Find(u);
    if (nu == nullptr) return;
    const NeighborList* nv = adjacency_.Find(v);
    if (nv == nullptr) return;
    IntersectSortedPadded(nu->view(), nv->view(), std::forward<Fn>(fn));
  }

  /// |N_u ∩ N_v| without enumeration — the count-only kernel, which skips
  /// materializing the matches entirely (movemask+popcount on the SIMD
  /// levels).
  uint32_t CountCommonNeighbors(VertexId u, VertexId v) const {
    adjacency_.Prefetch(u);
    adjacency_.Prefetch(v);
    const NeighborList* nu = adjacency_.Find(u);
    if (nu == nullptr) return 0;
    const NeighborList* nv = adjacency_.Find(v);
    if (nv == nullptr) return 0;
    return IntersectCountPadded(nu->view(), nv->view());
  }

  // -------------------------------------------------------------------
  // Arrival fast path: one adjacency probe per endpoint, reused by the
  // insert that may immediately follow (SemiTriangleCounter::CountArrival
  // -> InsertSampled re-hashed both endpoints before this existed).

  /// \brief The slots u and v landed on during an arrival intersection.
  /// Valid for InsertWithProbe while no other mutation intervenes; a stale
  /// generation falls back to a fresh probe automatically.
  struct ArrivalProbe {
    VertexId u = 0;
    VertexId v = 0;
    FlatHashMap<VertexId, NeighborList>::Probe pu;
    FlatHashMap<VertexId, NeighborList>::Probe pv;
    uint64_t generation = 0;
  };

  /// ForEachCommonNeighbor that also returns the endpoint probes, so a
  /// following InsertWithProbe skips both re-hashes.
  template <typename Fn>
  ArrivalProbe ProbeCommonNeighbors(VertexId u, VertexId v, Fn&& fn) const {
    // Both home slots are computable up front; prefetch them together so
    // the two slot loads overlap instead of serializing through the cache
    // hierarchy.
    adjacency_.Prefetch(u);
    adjacency_.Prefetch(v);
    ArrivalProbe probe;
    probe.u = u;
    probe.v = v;
    probe.generation = adjacency_.generation();
    probe.pu = adjacency_.FindProbe(u);
    probe.pv = adjacency_.FindProbe(v);
    if (probe.pu.found && probe.pv.found) {
      IntersectSortedPadded(adjacency_.slot_value(probe.pu.slot).view(),
                            adjacency_.slot_value(probe.pv.slot).view(),
                            std::forward<Fn>(fn));
    }
    return probe;
  }

  /// ProbeCommonNeighbors for callers that only need |N_u ∩ N_v| (count-only
  /// sessions): same probes, count kernel instead of enumeration.
  ArrivalProbe ProbeCountCommonNeighbors(VertexId u, VertexId v,
                                         uint32_t* count) const {
    adjacency_.Prefetch(u);
    adjacency_.Prefetch(v);
    ArrivalProbe probe;
    probe.u = u;
    probe.v = v;
    probe.generation = adjacency_.generation();
    probe.pu = adjacency_.FindProbe(u);
    probe.pv = adjacency_.FindProbe(v);
    *count = probe.pu.found && probe.pv.found
                 ? IntersectCountPadded(
                       adjacency_.slot_value(probe.pu.slot).view(),
                       adjacency_.slot_value(probe.pv.slot).view())
                 : 0;
    return probe;
  }

  /// Insert(probe.u, probe.v) that reuses the probed slots when still
  /// valid. Same result as Insert in every case.
  bool InsertWithProbe(const ArrivalProbe& probe);

  /// Cache hint for a future arrival's endpoints: batch replay loops call
  /// this a few edges ahead so the (usually cache-missing) adjacency slot
  /// loads of edge t+k overlap the counting work of edge t.
  void PrefetchVertices(VertexId u, VertexId v) const {
    adjacency_.Prefetch(u);
    adjacency_.Prefetch(v);
  }

  /// Calls fn(u, v) exactly once per stored edge, with u < v. Order is
  /// unspecified (slot order); canonicalize before persisting.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (const auto& [u, nbrs] : adjacency_) {
      for (const VertexId v : nbrs.view()) {
        if (u < v) fn(u, v);
      }
    }
  }

  /// Sorted neighbor list of v (empty if v has no stored edges). The span
  /// is invalidated by any mutation.
  std::span<const VertexId> neighbors(VertexId v) const {
    const NeighborList* list = adjacency_.Find(v);
    return list == nullptr ? std::span<const VertexId>() : list->view();
  }

  /// Heap bytes used: the flat slot array plus the arena footprint backing
  /// spilled neighbor lists (memory-parity accounting for the benches).
  size_t MemoryBytes() const {
    return adjacency_.MemoryBytes() + arena_.MemoryBytes();
  }

 private:
  using AdjacencyMap = FlatHashMap<VertexId, NeighborList>;

  /// Inserts v into u's list (creating u's entry if needed), preferring the
  /// probed slot. Returns nullptr if v was already present, else u's list.
  NeighborList* InsertEndpoint(VertexId target, VertexId neighbor,
                               const AdjacencyMap::Probe& probe,
                               bool probe_valid);

  AdjacencyMap adjacency_;
  Arena arena_;
  uint64_t num_edges_ = 0;
};

}  // namespace rept
