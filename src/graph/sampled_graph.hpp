// Dynamic adjacency structure over the edges a streaming sampler currently
// stores. This is the inner-loop data structure of every estimator: the
// per-edge cost of MASCOT/TRIEST/GPS/REPT is dominated by
// CommonNeighbors(u, v) on this structure (paper §III-C).
//
// Representation: hash map vertex -> sorted neighbor vector. Sampled
// subgraphs are sparse (≈ p|E| edges scattered over many vertices), so
// sorted-vector neighbor lists beat per-vertex hash sets on both memory and
// intersection speed (linear merge over two short sorted ranges).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace rept {

/// \brief Mutable sampled subgraph with insert / erase / common-neighbor
/// queries.
class SampledGraph {
 public:
  /// Inserts undirected edge {u, v}. Returns false (no-op) if the edge is
  /// already present or is a self loop.
  bool Insert(VertexId u, VertexId v);

  /// Removes undirected edge {u, v}. Returns false if absent.
  bool Erase(VertexId u, VertexId v);

  bool Contains(VertexId u, VertexId v) const;

  uint64_t num_edges() const { return num_edges_; }

  /// Number of vertices with at least one incident stored edge.
  size_t num_active_vertices() const { return adjacency_.size(); }

  uint32_t degree(VertexId v) const {
    auto it = adjacency_.find(v);
    return it == adjacency_.end() ? 0
                                  : static_cast<uint32_t>(it->second.size());
  }

  void Clear() {
    adjacency_.clear();
    num_edges_ = 0;
  }

  /// Calls fn(w) for every w adjacent to both u and v (ascending order of w).
  /// This is |N_u ∩ N_v| enumeration — the semi-triangle completion set of
  /// an arriving edge (u, v).
  template <typename Fn>
  void ForEachCommonNeighbor(VertexId u, VertexId v, Fn&& fn) const {
    auto iu = adjacency_.find(u);
    if (iu == adjacency_.end()) return;
    auto iv = adjacency_.find(v);
    if (iv == adjacency_.end()) return;
    const std::vector<VertexId>& a = iu->second;
    const std::vector<VertexId>& b = iv->second;
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        fn(a[i]);
        ++i;
        ++j;
      }
    }
  }

  /// |N_u ∩ N_v| without enumeration.
  uint32_t CountCommonNeighbors(VertexId u, VertexId v) const {
    uint32_t count = 0;
    ForEachCommonNeighbor(u, v, [&count](VertexId) { ++count; });
    return count;
  }

  /// Calls fn(u, v) exactly once per stored edge, with u < v. Order is
  /// unspecified (hash-map iteration); canonicalize before persisting.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (const auto& [u, nbrs] : adjacency_) {
      for (const VertexId v : nbrs) {
        if (u < v) fn(u, v);
      }
    }
  }

  /// Sorted neighbor list of v (empty if v has no stored edges).
  const std::vector<VertexId>& neighbors(VertexId v) const {
    static const std::vector<VertexId> kEmpty;
    auto it = adjacency_.find(v);
    return it == adjacency_.end() ? kEmpty : it->second;
  }

  /// Approximate heap bytes used (for memory accounting in benches).
  size_t MemoryBytes() const;

 private:
  std::unordered_map<VertexId, std::vector<VertexId>> adjacency_;
  uint64_t num_edges_ = 0;
};

}  // namespace rept
