// Fundamental graph-stream types shared by every module.
#pragma once

#include <cstdint>
#include <functional>

namespace rept {

/// Vertex identifier. Streams/graphs use compact ids in [0, num_vertices).
using VertexId = uint32_t;

/// Arrival position of an edge in the stream (1-based when used as the
/// discrete time t of the paper; 0-based as an index into the edge vector).
using Timestamp = uint64_t;

/// \brief An undirected edge. Orientation (u vs v) carries no meaning; use
/// EdgeKey() / Canonical() for identity.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  Edge() = default;
  Edge(VertexId a, VertexId b) : u(a), v(b) {}

  /// Same edge with endpoints ordered (min, max).
  Edge Canonical() const { return u <= v ? Edge(u, v) : Edge(v, u); }

  bool IsSelfLoop() const { return u == v; }

  friend bool operator==(const Edge& a, const Edge& b) {
    const Edge ca = a.Canonical();
    const Edge cb = b.Canonical();
    return ca.u == cb.u && ca.v == cb.v;
  }
};

/// Canonical 64-bit key of an undirected edge: (min << 32) | max.
inline uint64_t EdgeKey(VertexId u, VertexId v) {
  const VertexId lo = u <= v ? u : v;
  const VertexId hi = u <= v ? v : u;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

inline uint64_t EdgeKey(const Edge& e) { return EdgeKey(e.u, e.v); }

}  // namespace rept
