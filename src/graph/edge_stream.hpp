// The edge stream abstraction: a named, ordered sequence of undirected
// edges. Estimators consume streams through a single forward pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace rept {

/// \brief An in-memory graph stream Π = e(1), ..., e(tmax).
///
/// The order of `edges` *is* the stream order; eta and therefore every
/// estimator variance depends on it, so shuffling (permutation.hpp) is an
/// explicit, seeded operation.
class EdgeStream {
 public:
  EdgeStream() = default;
  EdgeStream(std::string name, VertexId num_vertices, std::vector<Edge> edges)
      : name_(std::move(name)),
        num_vertices_(num_vertices),
        edges_(std::move(edges)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Number of vertices in the id space [0, num_vertices).
  VertexId num_vertices() const { return num_vertices_; }

  uint64_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

  const Edge& operator[](size_t i) const {
    REPT_DCHECK(i < edges_.size());
    return edges_[i];
  }

  auto begin() const { return edges_.begin(); }
  auto end() const { return edges_.end(); }

 private:
  std::string name_;
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace rept
