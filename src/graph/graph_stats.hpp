// Descriptive statistics of a graph / stream, used by the Table II bench and
// the dataset documentation.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace rept {

struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t max_degree = 0;
  double mean_degree = 0.0;
  /// Number of wedges (paths of length 2) = sum_v C(deg(v), 2); an upper
  /// bound scale for triangle-heavy structure.
  uint64_t num_wedges = 0;
};

GraphStats ComputeGraphStats(const Graph& graph);

/// One-line human-readable summary.
std::string FormatGraphStats(const std::string& name, const GraphStats& stats);

}  // namespace rept
