// The pull side of the incremental streaming API: chunked edge suppliers.
//
// An EdgeSource hands out a stream's edges a bounded chunk at a time, so an
// estimation session can consume arbitrarily large streams without ever
// materializing the edge vector. Resident state varies by source: the
// binary reader and the generator are O(1), the text reader keeps its id
// remap (Θ(V)) plus, when dedupe is on, the seen-edge key set (Θ(unique
// edges)). IngestAll() is the pump that connects a source to a
// StreamingEstimator.
//
// The wholesale loaders in stream_io are ReadAll() over these sources, so a
// chunked ingest sees the exact edge sequence of a wholesale load by
// construction (one parser, not two).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>

#include "container/flat_hash_map.hpp"
#include "graph/edge_stream.hpp"
#include "graph/types.hpp"
#include "persist/checkpoint_policy.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace rept {

class StreamingEstimator;

/// \brief A chunked, single-pass supplier of stream edges.
///
/// Usage: repeatedly call NextChunk with a scratch buffer until it returns
/// 0, then check status() — I/O and parse failures latch a non-OK status and
/// end the stream early.
class EdgeSource {
 public:
  virtual ~EdgeSource() = default;

  /// Display name (dataset/file name).
  virtual std::string Name() const = 0;

  /// Fills `out` with up to out.size() next edges, in stream order; returns
  /// the number produced. 0 means exhausted (or failed — check status()).
  virtual size_t NextChunk(std::span<Edge> out) = 0;

  /// Vertex-id-space bound known so far: exact up front for sized sources
  /// (binary files, generators), growing with discovery for text files.
  /// Never shrinks.
  virtual VertexId VertexCountHint() const = 0;

  /// OK while the source is healthy; latches the first I/O or parse error.
  virtual const Status& status() const { return ok_status_; }

 private:
  Status ok_status_ = Status::OK();
};

/// \brief Adapter over an in-memory EdgeStream (owns the stream).
class InMemoryEdgeSource : public EdgeSource {
 public:
  explicit InMemoryEdgeSource(EdgeStream stream)
      : stream_(std::move(stream)) {}

  std::string Name() const override { return stream_.name(); }
  size_t NextChunk(std::span<Edge> out) override;
  VertexId VertexCountHint() const override {
    return stream_.num_vertices();
  }

 private:
  EdgeStream stream_;
  uint64_t cursor_ = 0;
};

/// \brief Chunked reader of SNAP-style text edge lists ("u v" per line,
/// '#'/'%' comments). Raw ids are remapped to [0, n) in first-appearance
/// order and duplicate edges are optionally dropped. LoadEdgeListText is
/// ReadAll() over this source, so the edge sequence is identical by
/// construction. Resident memory is the chunk plus the id remap (Θ(V));
/// dedupe additionally keeps the seen-edge key set (Θ(unique edges)) — pass
/// dedupe=false for multigraph streams too large for that.
class TextFileEdgeSource : public EdgeSource {
 public:
  static Result<std::unique_ptr<TextFileEdgeSource>> Open(
      const std::string& path, bool dedupe = true);

  std::string Name() const override { return name_; }
  size_t NextChunk(std::span<Edge> out) override;
  /// Ids discovered so far (final only once the source is exhausted).
  VertexId VertexCountHint() const override { return next_id_; }
  const Status& status() const override { return status_; }

 private:
  TextFileEdgeSource(std::ifstream file, std::string path, std::string name,
                     bool dedupe);

  std::ifstream file_;
  std::string path_;
  std::string name_;
  bool dedupe_;
  Status status_ = Status::OK();

  // Flat, open-addressing structures: the remap and dedup lookups run once
  // per input line, making them part of the ingest hot path.
  FlatHashMap<uint64_t, VertexId> remap_;
  FlatHashSet<uint64_t> seen_;
  VertexId next_id_ = 0;
  uint64_t line_no_ = 0;
};

/// \brief Chunked reader of the SaveEdgeListBinary format (fixed header +
/// raw little-endian u32 pairs). The header declares the vertex count, so
/// VertexCountHint is exact from the start.
///
/// Hardened against damaged input: Open() validates the declared edge count
/// against the actual file size (truncation and trailing garbage both fail
/// up front), and NextChunk() rejects vertex ids outside the declared id
/// space — every failure surfaces as Status::Corruption (malformed bytes)
/// or Status::IOError (environmental read failure) through the Result /
/// latched-status machinery, never as a silently short stream.
class BinaryFileEdgeSource : public EdgeSource {
 public:
  static Result<std::unique_ptr<BinaryFileEdgeSource>> Open(
      const std::string& path);

  std::string Name() const override { return name_; }
  size_t NextChunk(std::span<Edge> out) override;
  VertexId VertexCountHint() const override { return num_vertices_; }
  const Status& status() const override { return status_; }

  uint64_t num_edges() const { return num_edges_; }

 private:
  BinaryFileEdgeSource(std::ifstream file, std::string path,
                       std::string name, VertexId num_vertices,
                       uint64_t num_edges);

  std::ifstream file_;
  std::string path_;
  std::string name_;
  VertexId num_vertices_;
  uint64_t num_edges_;
  uint64_t produced_ = 0;
  Status status_ = Status::OK();
};

/// \brief Generator-backed source: `num_edges` uniform random non-loop
/// edges over [0, num_vertices), produced on the fly in O(1) memory.
/// Deterministic per seed (multigraph: duplicates possible, like a packet
/// stream).
class UniformRandomEdgeSource : public EdgeSource {
 public:
  UniformRandomEdgeSource(VertexId num_vertices, uint64_t num_edges,
                          uint64_t seed);

  std::string Name() const override;
  size_t NextChunk(std::span<Edge> out) override;
  VertexId VertexCountHint() const override { return num_vertices_; }

 private:
  VertexId num_vertices_;
  uint64_t num_edges_;
  uint64_t produced_ = 0;
  Rng rng_;
};

/// \brief Tuning knobs of the IngestAll pump.
struct IngestOptions {
  /// Edges per Ingest() batch.
  size_t chunk_edges = 65536;
  /// Double-buffered prefetch: a dedicated pump thread decodes chunk t+1
  /// from the source while the calling thread ingests chunk t, so
  /// parse/decode latency overlaps estimation. The source is only ever
  /// touched by the pump thread and the session only by the caller, with a
  /// two-slot ping-pong handoff in between; the ingested edge sequence is
  /// identical to the serial pump by construction.
  bool prefetch = false;
  /// Periodic durable saves of the session while pumping (see
  /// persist/checkpoint_policy.hpp). Saves happen on the ingesting thread
  /// at batch boundaries — in prefetch mode the pump thread keeps decoding
  /// while the save runs. A failed save aborts the ingest with its Status.
  CheckpointPolicy checkpoint;
};

/// \brief Pumps a source dry into a session, keeping the session's vertex
/// bound in sync with the source's hint. Returns the number of edges
/// ingested, or the source's error.
Result<uint64_t> IngestAll(EdgeSource& source, StreamingEstimator& session,
                           const IngestOptions& options);

/// Convenience overload: serial pump with `chunk_edges`-sized batches.
Result<uint64_t> IngestAll(EdgeSource& source, StreamingEstimator& session,
                           size_t chunk_edges = 65536);

/// \brief Reads and discards up to `count` edges: fast-forwards a
/// deterministic source to the stream position of a restored checkpoint, so
/// the resumed ingest continues at edge `count` of the original sequence
/// (stateful readers — id remap, dedupe set — rebuild their state exactly
/// by re-reading). Returns the number actually skipped (less than `count`
/// only if the source ran dry), or the source's error.
Result<uint64_t> SkipEdges(EdgeSource& source, uint64_t count,
                           size_t chunk_edges = 65536);

/// \brief Drains a source into an in-memory EdgeStream (the wholesale
/// loaders, testing, and the exact-count paths; defeats the purpose for
/// truly large streams). `reserve_edges` pre-sizes the edge vector.
Result<EdgeStream> ReadAll(EdgeSource& source, size_t chunk_edges = 65536,
                           size_t reserve_edges = 0);

}  // namespace rept
