// Converts a raw edge sequence into the canonical stream + CSR graph.
//
// The streaming model of the paper assumes each undirected edge occurs once
// in the stream (graphs with duplicates are handled by other work, e.g.
// PartitionCT, cited in §V). The builder therefore deduplicates repeated
// edges (keeping the first arrival), drops self loops, and can verify the
// input was already clean.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "util/status.hpp"

namespace rept {

struct GraphBuildStats {
  uint64_t input_edges = 0;
  uint64_t self_loops_dropped = 0;
  uint64_t duplicates_dropped = 0;
};

/// \brief Cleans an edge sequence and assembles the Graph.
class GraphBuilder {
 public:
  GraphBuilder& ReserveEdges(size_t n) {
    edges_.reserve(n);
    return *this;
  }

  /// Appends one raw stream edge.
  void AddEdge(VertexId u, VertexId v) { edges_.emplace_back(u, v); }
  void AddEdges(const std::vector<Edge>& edges);

  /// Deduplicates / cleans and builds. `num_vertices` of 0 means
  /// 1 + max vertex id observed.
  Graph Build(VertexId num_vertices = 0);

  const GraphBuildStats& stats() const { return stats_; }

 private:
  std::vector<Edge> edges_;
  GraphBuildStats stats_;
};

/// \brief One-call convenience for already-clean edge vectors (asserts
/// cleanliness in debug builds).
Graph BuildGraph(const std::vector<Edge>& edges, VertexId num_vertices = 0);

}  // namespace rept
