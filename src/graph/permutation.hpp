// Seeded stream-order permutation. Because eta (and hence every variance in
// the paper) depends on the order edges arrive, reordering is an explicit
// operation with its own seed rather than something loaders do implicitly.
#pragma once

#include <cstdint>

#include "graph/edge_stream.hpp"

namespace rept {

/// Fisher-Yates shuffles the stream order in place (deterministic per seed).
void ShuffleStream(EdgeStream& stream, uint64_t seed);

/// Returns a shuffled copy, leaving the input untouched.
EdgeStream ShuffledCopy(const EdgeStream& stream, uint64_t seed);

}  // namespace rept
