#include "graph/sampled_graph.hpp"

#include <algorithm>

namespace rept {

namespace {

// Inserts x into sorted vector; returns false if already present.
bool SortedInsert(std::vector<VertexId>& vec, VertexId x) {
  auto it = std::lower_bound(vec.begin(), vec.end(), x);
  if (it != vec.end() && *it == x) return false;
  vec.insert(it, x);
  return true;
}

// Erases x from sorted vector; returns false if absent.
bool SortedErase(std::vector<VertexId>& vec, VertexId x) {
  auto it = std::lower_bound(vec.begin(), vec.end(), x);
  if (it == vec.end() || *it != x) return false;
  vec.erase(it);
  return true;
}

}  // namespace

bool SampledGraph::Insert(VertexId u, VertexId v) {
  if (u == v) return false;
  std::vector<VertexId>& nu = adjacency_[u];
  if (!SortedInsert(nu, v)) return false;
  const bool inserted = SortedInsert(adjacency_[v], u);
  REPT_DCHECK(inserted);
  (void)inserted;
  ++num_edges_;
  return true;
}

bool SampledGraph::Erase(VertexId u, VertexId v) {
  auto iu = adjacency_.find(u);
  if (iu == adjacency_.end()) return false;
  if (!SortedErase(iu->second, v)) return false;
  if (iu->second.empty()) adjacency_.erase(iu);
  auto iv = adjacency_.find(v);
  REPT_DCHECK(iv != adjacency_.end());
  const bool erased = SortedErase(iv->second, u);
  REPT_DCHECK(erased);
  (void)erased;
  if (iv->second.empty()) adjacency_.erase(iv);
  REPT_DCHECK(num_edges_ > 0);
  --num_edges_;
  return true;
}

bool SampledGraph::Contains(VertexId u, VertexId v) const {
  auto iu = adjacency_.find(u);
  if (iu == adjacency_.end()) return false;
  const std::vector<VertexId>& nu = iu->second;
  return std::binary_search(nu.begin(), nu.end(), v);
}

size_t SampledGraph::MemoryBytes() const {
  size_t bytes = adjacency_.bucket_count() * sizeof(void*);
  for (const auto& [v, nbrs] : adjacency_) {
    bytes += sizeof(v) + sizeof(nbrs) + nbrs.capacity() * sizeof(VertexId);
  }
  return bytes;
}

}  // namespace rept
