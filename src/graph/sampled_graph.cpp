#include "graph/sampled_graph.hpp"

namespace rept {

NeighborList* SampledGraph::InsertEndpoint(VertexId target, VertexId neighbor,
                                           const AdjacencyMap::Probe& probe,
                                           bool probe_valid) {
  NeighborList* list;
  if (probe_valid) {
    if (probe.found) {
      REPT_DCHECK(adjacency_.slot_key(probe.slot) == target);
      list = &adjacency_.slot_value(probe.slot);
    } else {
      list = &adjacency_.InsertAtProbe(probe, target);
    }
  } else {
    list = &adjacency_[target];
  }
  return list->SortedInsert(neighbor, arena_) ? list : nullptr;
}

bool SampledGraph::Insert(VertexId u, VertexId v) {
  if (u == v) return false;
  if (InsertEndpoint(u, v, AdjacencyMap::Probe{}, /*probe_valid=*/false) ==
      nullptr) {
    return false;
  }
  const NeighborList* nv =
      InsertEndpoint(v, u, AdjacencyMap::Probe{}, /*probe_valid=*/false);
  REPT_DCHECK(nv != nullptr);
  (void)nv;
  ++num_edges_;
  return true;
}

bool SampledGraph::InsertWithProbe(const ArrivalProbe& probe) {
  if (probe.u == probe.v) return false;
  const bool pu_valid = probe.generation == adjacency_.generation();
  if (InsertEndpoint(probe.u, probe.v, probe.pu, pu_valid) == nullptr) {
    return false;
  }
  // Inserting u's entry may have rehashed the map; pv survives only when
  // the generation still matches. When both endpoints were absent and
  // probed to the same empty slot, u's insert consumed it — v must
  // re-probe even without a rehash.
  const bool pv_valid =
      probe.generation == adjacency_.generation() &&
      !(!probe.pu.found && !probe.pv.found &&
        probe.pu.slot == probe.pv.slot);
  const NeighborList* nv =
      InsertEndpoint(probe.v, probe.u, probe.pv, pv_valid);
  REPT_DCHECK(nv != nullptr);
  (void)nv;
  ++num_edges_;
  return true;
}

bool SampledGraph::Erase(VertexId u, VertexId v) {
  NeighborList* nu = adjacency_.Find(u);
  if (nu == nullptr) return false;
  if (!nu->SortedErase(v)) return false;
  if (nu->empty()) {
    nu->Release(arena_);
    adjacency_.erase(u);
  }
  NeighborList* nv = adjacency_.Find(v);
  REPT_DCHECK(nv != nullptr);
  const bool erased = nv->SortedErase(u);
  REPT_DCHECK(erased);
  (void)erased;
  if (nv->empty()) {
    nv->Release(arena_);
    adjacency_.erase(v);
  }
  REPT_DCHECK(num_edges_ > 0);
  --num_edges_;
  return true;
}

bool SampledGraph::Contains(VertexId u, VertexId v) const {
  const NeighborList* nu = adjacency_.Find(u);
  return nu != nullptr && nu->SortedContains(v);
}

}  // namespace rept
