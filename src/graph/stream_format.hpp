// On-disk edge-stream format constants shared by the wholesale loaders
// (stream_io) and the chunked readers (edge_source).
#pragma once

namespace rept::internal {

/// Magic prefix of the binary edge-stream format (header: magic + u64
/// vertex count + u64 edge count, then raw little-endian u32 pairs).
inline constexpr char kEdgeStreamBinaryMagic[8] = {'R', 'E', 'P', 'T',
                                                   'E', 'S', '0', '1'};

}  // namespace rept::internal
