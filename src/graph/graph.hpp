// Immutable CSR representation of the graph formed by all stream edges.
// Used by the exact counters and the statistics module; the streaming
// estimators never materialize it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace rept {

/// \brief Compressed sparse row undirected graph.
///
/// Neighbor lists are sorted by vertex id. Each undirected edge appears in
/// both endpoints' lists. `edges()` preserves first-arrival stream order of
/// the deduplicated edges, which the stream-order-sensitive quantities
/// (eta, eta_v) depend on.
class Graph {
 public:
  Graph() = default;

  /// Builds from `num_vertices` and unique undirected edges in stream order.
  /// Callers normally go through GraphBuilder, which deduplicates first.
  Graph(VertexId num_vertices, std::vector<Edge> unique_edges);

  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return edges_.size(); }

  /// Unique edges in first-arrival order (the canonical stream).
  const std::vector<Edge>& edges() const { return edges_; }

  uint32_t degree(VertexId v) const {
    REPT_DCHECK(v < num_vertices_);
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted neighbor list of v.
  std::span<const VertexId> neighbors(VertexId v) const {
    REPT_DCHECK(v < num_vertices_);
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// True if {u, v} is an edge (binary search in the shorter list).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Arrival index (0-based position in edges()) of edge {u,v}; the i-th
  /// parallel array entry corresponds to neighbors(v)[i]. Enables
  /// stream-order reasoning during CSR traversal.
  std::span<const uint32_t> neighbor_arrival(VertexId v) const {
    REPT_DCHECK(v < num_vertices_);
    return {arrival_.data() + offsets_[v], arrival_.data() + offsets_[v + 1]};
  }

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<uint32_t> offsets_;
  std::vector<VertexId> adjacency_;
  std::vector<uint32_t> arrival_;  // parallel to adjacency_
};

}  // namespace rept
