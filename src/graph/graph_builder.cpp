#include "graph/graph_builder.hpp"

#include <algorithm>
#include <unordered_set>

namespace rept {

void GraphBuilder::AddEdges(const std::vector<Edge>& edges) {
  edges_.insert(edges_.end(), edges.begin(), edges.end());
}

Graph GraphBuilder::Build(VertexId num_vertices) {
  stats_ = GraphBuildStats{};
  stats_.input_edges = edges_.size();

  std::vector<Edge> unique;
  unique.reserve(edges_.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(edges_.size() * 2);

  VertexId max_vertex = 0;
  for (const Edge& e : edges_) {
    if (e.IsSelfLoop()) {
      ++stats_.self_loops_dropped;
      continue;
    }
    if (!seen.insert(EdgeKey(e)).second) {
      ++stats_.duplicates_dropped;
      continue;
    }
    max_vertex = std::max({max_vertex, e.u, e.v});
    unique.push_back(e);
  }
  if (num_vertices == 0) {
    num_vertices = unique.empty() ? 0 : max_vertex + 1;
  }
  return Graph(num_vertices, std::move(unique));
}

Graph BuildGraph(const std::vector<Edge>& edges, VertexId num_vertices) {
  GraphBuilder builder;
  builder.AddEdges(edges);
  Graph graph = builder.Build(num_vertices);
  REPT_DCHECK(builder.stats().duplicates_dropped == 0);
  REPT_DCHECK(builder.stats().self_loops_dropped == 0);
  return graph;
}

}  // namespace rept
