#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>

namespace rept {

Graph::Graph(VertexId num_vertices, std::vector<Edge> unique_edges)
    : num_vertices_(num_vertices), edges_(std::move(unique_edges)) {
  offsets_.assign(static_cast<size_t>(num_vertices_) + 1, 0);
  for (const Edge& e : edges_) {
    REPT_CHECK(e.u < num_vertices_ && e.v < num_vertices_);
    REPT_CHECK(!e.IsSelfLoop());
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  adjacency_.resize(offsets_.back());
  arrival_.resize(offsets_.back());

  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    adjacency_[cursor[e.u]] = e.v;
    arrival_[cursor[e.u]++] = i;
    adjacency_[cursor[e.v]] = e.u;
    arrival_[cursor[e.v]++] = i;
  }

  // Sort each neighbor list by vertex id, keeping arrival_ parallel.
  std::vector<std::pair<VertexId, uint32_t>> scratch;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    const uint32_t begin = offsets_[v];
    const uint32_t end = offsets_[v + 1];
    scratch.clear();
    for (uint32_t i = begin; i < end; ++i) {
      scratch.emplace_back(adjacency_[i], arrival_[i]);
    }
    std::sort(scratch.begin(), scratch.end());
    for (uint32_t i = begin; i < end; ++i) {
      adjacency_[i] = scratch[i - begin].first;
      arrival_[i] = scratch[i - begin].second;
    }
  }
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices_ || v >= num_vertices_) return false;
  if (degree(u) > degree(v)) std::swap(u, v);
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace rept
