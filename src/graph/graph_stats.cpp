#include "graph/graph_stats.hpp"

#include <algorithm>
#include <sstream>

namespace rept {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const uint64_t d = graph.degree(v);
    stats.max_degree = std::max<uint32_t>(stats.max_degree,
                                          static_cast<uint32_t>(d));
    stats.num_wedges += d * (d - 1) / 2;
  }
  stats.mean_degree =
      stats.num_vertices == 0
          ? 0.0
          : 2.0 * static_cast<double>(stats.num_edges) /
                static_cast<double>(stats.num_vertices);
  return stats;
}

std::string FormatGraphStats(const std::string& name,
                             const GraphStats& stats) {
  std::ostringstream out;
  out << name << ": |V|=" << stats.num_vertices << " |E|=" << stats.num_edges
      << " avg_deg=" << stats.mean_degree << " max_deg=" << stats.max_degree
      << " wedges=" << stats.num_wedges;
  return out.str();
}

}  // namespace rept
