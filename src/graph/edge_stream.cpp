#include "graph/edge_stream.hpp"

// EdgeStream is header-only; translation unit anchors the module.
namespace rept {}  // namespace rept
