#include "graph/permutation.hpp"

#include <utility>

#include "util/random.hpp"

namespace rept {

void ShuffleStream(EdgeStream& stream, uint64_t seed) {
  Rng rng(seed);
  auto& edges = stream.mutable_edges();
  for (size_t i = edges.size(); i > 1; --i) {
    const size_t j = rng.Below(i);
    std::swap(edges[i - 1], edges[j]);
  }
}

EdgeStream ShuffledCopy(const EdgeStream& stream, uint64_t seed) {
  EdgeStream copy = stream;
  ShuffleStream(copy, seed);
  return copy;
}

}  // namespace rept
