// Loading and saving edge streams.
//
// Text format is SNAP-compatible: one "u v" pair per line, '#' comments
// skipped, arbitrary (non-compact) vertex ids remapped to [0, n) in first-
// appearance order. Binary format is a fixed header + raw little-endian
// uint32 pairs for fast reloads of generated datasets.
#pragma once

#include <string>

#include "graph/edge_stream.hpp"
#include "util/status.hpp"

namespace rept {

/// Loads a SNAP-style whitespace-separated edge list. Self loops are kept
/// (GraphBuilder later drops them); duplicate edges are kept as stream
/// repetitions unless `dedupe` is set.
Result<EdgeStream> LoadEdgeListText(const std::string& path,
                                    bool dedupe = true);

/// Writes "u v" lines.
Status SaveEdgeListText(const EdgeStream& stream, const std::string& path);

/// Binary round-trip (magic + counts + u32 pairs).
Result<EdgeStream> LoadEdgeListBinary(const std::string& path);
Status SaveEdgeListBinary(const EdgeStream& stream, const std::string& path);

}  // namespace rept
