#include "graph/edge_source.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include <filesystem>

#include "core/streaming_estimator.hpp"
#include "graph/stream_format.hpp"
#include "persist/checkpoint.hpp"
#include "util/check.hpp"

namespace rept {

namespace {

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

size_t InMemoryEdgeSource::NextChunk(std::span<Edge> out) {
  const uint64_t remaining = stream_.size() - cursor_;
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(out.size(), remaining));
  std::copy_n(stream_.edges().begin() + static_cast<int64_t>(cursor_), n,
              out.begin());
  cursor_ += n;
  return n;
}

// ---------------------------------------------------------------------------
// TextFileEdgeSource

TextFileEdgeSource::TextFileEdgeSource(std::ifstream file, std::string path,
                                       std::string name, bool dedupe)
    : file_(std::move(file)),
      path_(std::move(path)),
      name_(std::move(name)),
      dedupe_(dedupe) {}

Result<std::unique_ptr<TextFileEdgeSource>> TextFileEdgeSource::Open(
    const std::string& path, bool dedupe) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open: " + path);
  auto source = std::unique_ptr<TextFileEdgeSource>(new TextFileEdgeSource(
      std::move(file), path, Basename(path), dedupe));
  // Pre-size the id map (and the dedupe key set) from the file length; an
  // edge line is >= 8 bytes in practice.
  std::error_code ec;
  const uintmax_t bytes = std::filesystem::file_size(path, ec);
  if (!ec && bytes > 0) {
    const size_t approx_edges = static_cast<size_t>(bytes / 8) + 1;
    source->remap_.reserve(approx_edges / 2);
    if (dedupe) source->seen_.reserve(approx_edges);
  }
  return source;
}

size_t TextFileEdgeSource::NextChunk(std::span<Edge> out) {
  if (!status_.ok()) return 0;
  auto map_id = [this](uint64_t raw) {
    auto [id, inserted] = remap_.TryEmplace(raw);
    if (inserted) *id = next_id_++;
    return *id;
  };

  size_t produced = 0;
  std::string line;
  while (produced < out.size() && std::getline(file_, line)) {
    ++line_no_;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream in(line);
    uint64_t raw_u = 0;
    uint64_t raw_v = 0;
    if (!(in >> raw_u >> raw_v)) {
      status_ = Status::Corruption("bad edge at " + path_ + ":" +
                                   std::to_string(line_no_));
      return produced;
    }
    const VertexId u = map_id(raw_u);
    const VertexId v = map_id(raw_v);
    if (dedupe_ && u != v && !seen_.insert(EdgeKey(u, v))) continue;
    out[produced++] = Edge(u, v);
  }
  if (file_.bad()) {
    status_ = Status::IOError("read failed: " + path_);
  }
  return produced;
}

// ---------------------------------------------------------------------------
// BinaryFileEdgeSource

BinaryFileEdgeSource::BinaryFileEdgeSource(std::ifstream file,
                                           std::string path, std::string name,
                                           VertexId num_vertices,
                                           uint64_t num_edges)
    : file_(std::move(file)),
      path_(std::move(path)),
      name_(std::move(name)),
      num_vertices_(num_vertices),
      num_edges_(num_edges) {}

Result<std::unique_ptr<BinaryFileEdgeSource>> BinaryFileEdgeSource::Open(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open: " + path);
  char magic[8];
  uint64_t counts[2];
  if (!file.read(magic, sizeof(magic)) ||
      std::memcmp(magic, internal::kEdgeStreamBinaryMagic, sizeof(magic)) !=
          0) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!file.read(reinterpret_cast<char*>(counts), sizeof(counts))) {
    return Status::Corruption("truncated header in " + path);
  }
  const uint64_t num_vertices = counts[0];
  const uint64_t num_edges = counts[1];
  if (num_vertices > std::numeric_limits<VertexId>::max()) {
    return Status::Corruption("vertex count overflows id space in " + path);
  }
  if (num_edges > 0 && num_vertices == 0) {
    return Status::Corruption("edges without a vertex id space in " + path);
  }
  // The header pins the payload size exactly; verify it against the file so
  // a truncated or garbage-extended file fails here instead of yielding a
  // silently short (or over-long) stream during ingestion.
  constexpr uint64_t kHeaderBytes = sizeof(magic) + sizeof(counts);
  static_assert(sizeof(Edge) == 2 * sizeof(VertexId));
  std::error_code ec;
  const uintmax_t file_bytes = std::filesystem::file_size(path, ec);
  if (!ec) {
    if (num_edges > (std::numeric_limits<uint64_t>::max() - kHeaderBytes) /
                        sizeof(Edge)) {
      return Status::Corruption("edge count overflows in " + path);
    }
    const uint64_t expected = kHeaderBytes + num_edges * sizeof(Edge);
    if (file_bytes < expected) {
      return Status::Corruption(
          path + ": truncated (header declares " +
          std::to_string(num_edges) + " edges, file holds " +
          std::to_string((file_bytes - std::min<uintmax_t>(
                                           file_bytes, kHeaderBytes)) /
                         sizeof(Edge)) +
          ")");
    }
    if (file_bytes > expected) {
      return Status::Corruption(path + ": trailing garbage after edge data");
    }
  }
  return std::unique_ptr<BinaryFileEdgeSource>(new BinaryFileEdgeSource(
      std::move(file), path, Basename(path),
      static_cast<VertexId>(num_vertices), num_edges));
}

size_t BinaryFileEdgeSource::NextChunk(std::span<Edge> out) {
  if (!status_.ok()) return 0;
  const uint64_t remaining = num_edges_ - produced_;
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(out.size(), remaining));
  if (want == 0) return 0;
  static_assert(sizeof(Edge) == 2 * sizeof(VertexId));
  if (!file_.read(reinterpret_cast<char*>(out.data()),
                  static_cast<std::streamsize>(want * sizeof(Edge)))) {
    status_ = file_.bad()
                  ? Status::IOError("read failed: " + path_)
                  : Status::Corruption(
                        "truncated edges in " + path_ + " (got " +
                        std::to_string(file_.gcount()) + " of " +
                        std::to_string(want * sizeof(Edge)) + " bytes)");
    return 0;
  }
  // Garbage detection: every endpoint must live in the declared id space.
  for (size_t i = 0; i < want; ++i) {
    if (out[i].u >= num_vertices_ || out[i].v >= num_vertices_) {
      status_ = Status::Corruption(
          "vertex id out of range at edge " +
          std::to_string(produced_ + i) + " in " + path_);
      return 0;
    }
  }
  produced_ += want;
  return want;
}

// ---------------------------------------------------------------------------
// UniformRandomEdgeSource

UniformRandomEdgeSource::UniformRandomEdgeSource(VertexId num_vertices,
                                                 uint64_t num_edges,
                                                 uint64_t seed)
    : num_vertices_(num_vertices), num_edges_(num_edges), rng_(seed) {
  REPT_CHECK(num_vertices >= 2);
}

std::string UniformRandomEdgeSource::Name() const {
  return "uniform-random(n=" + std::to_string(num_vertices_) +
         ",e=" + std::to_string(num_edges_) + ")";
}

size_t UniformRandomEdgeSource::NextChunk(std::span<Edge> out) {
  const uint64_t remaining = num_edges_ - produced_;
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(out.size(), remaining));
  for (size_t i = 0; i < n; ++i) {
    const VertexId u = static_cast<VertexId>(rng_.Below(num_vertices_));
    // Draw v uniformly from the other num_vertices-1 ids (no self loops).
    VertexId v = static_cast<VertexId>(rng_.Below(num_vertices_ - 1));
    if (v >= u) ++v;
    out[i] = Edge(u, v);
  }
  produced_ += n;
  return n;
}

// ---------------------------------------------------------------------------
// Pumps

namespace {

// Fires the IngestOptions checkpoint policy: counts edges/batches since the
// last save and persists the session (atomic tmp + rename) when a trigger
// is due. Runs on the ingesting thread at batch boundaries.
class PeriodicCheckpointer {
 public:
  PeriodicCheckpointer(const CheckpointPolicy& policy,
                       StreamingEstimator& session)
      : policy_(policy), session_(session) {}

  Status AfterBatch(size_t batch_edges) {
    if (!policy_.enabled()) return Status::OK();
    edges_since_save_ += batch_edges;
    ++batches_since_save_;
    const bool due =
        (policy_.every_edges > 0 &&
         edges_since_save_ >= policy_.every_edges) ||
        (policy_.every_batches > 0 &&
         batches_since_save_ >= policy_.every_batches);
    if (!due) return Status::OK();
    edges_since_save_ = 0;
    batches_since_save_ = 0;
    return SaveCheckpoint(session_, policy_.path);
  }

 private:
  const CheckpointPolicy& policy_;
  StreamingEstimator& session_;
  uint64_t edges_since_save_ = 0;
  uint64_t batches_since_save_ = 0;
};

// Double-buffered pump: the spawned thread owns the source and fills the two
// slots round-robin; the calling thread owns the session and drains them in
// the same order. A slot is handed over full (producer -> consumer) and
// handed back empty (consumer -> producer) under the mutex, so each side
// touches a slot's buffer only while holding it and the chunk sequence —
// hence the ingested edge sequence — is exactly the serial pump's.
Result<uint64_t> IngestAllPrefetch(EdgeSource& source,
                                   StreamingEstimator& session,
                                   size_t chunk_edges,
                                   PeriodicCheckpointer& checkpointer) {
  struct Slot {
    std::vector<Edge> buffer;
    size_t count = 0;
    bool full = false;
  };
  Slot slots[2];
  slots[0].buffer.resize(chunk_edges);
  slots[1].buffer.resize(chunk_edges);
  std::mutex mutex;
  std::condition_variable slot_filled;
  std::condition_variable slot_drained;
  bool abort = false;  // Consumer-side failure: unblocks the pump thread.

  std::thread pump([&] {
    int w = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        slot_drained.wait(lock, [&] { return !slots[w].full || abort; });
        if (abort) return;
      }
      const size_t n = source.NextChunk(std::span<Edge>(slots[w].buffer));
      {
        std::unique_lock<std::mutex> lock(mutex);
        slots[w].count = n;
        slots[w].full = true;
      }
      slot_filled.notify_one();
      if (n == 0) return;  // Exhausted (or failed): the 0-count slot ends it.
      w ^= 1;
    }
  });

  uint64_t total = 0;
  Status checkpoint_status;
  int r = 0;
  for (;;) {
    size_t n;
    {
      std::unique_lock<std::mutex> lock(mutex);
      slot_filled.wait(lock, [&] { return slots[r].full; });
      n = slots[r].count;
    }
    if (n == 0) break;
    session.Ingest(std::span<const Edge>(slots[r].buffer.data(), n));
    total += n;
    {
      std::unique_lock<std::mutex> lock(mutex);
      slots[r].full = false;
    }
    slot_drained.notify_one();
    checkpoint_status = checkpointer.AfterBatch(n);
    if (!checkpoint_status.ok()) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        abort = true;
      }
      slot_drained.notify_one();
      break;
    }
    r ^= 1;
  }
  pump.join();
  if (!checkpoint_status.ok()) return checkpoint_status;
  return total;
}

}  // namespace

Result<uint64_t> IngestAll(EdgeSource& source, StreamingEstimator& session,
                           const IngestOptions& options) {
  REPT_CHECK(options.chunk_edges > 0);
  PeriodicCheckpointer checkpointer(options.checkpoint, session);
  uint64_t total = 0;
  if (options.prefetch) {
    const Result<uint64_t> pumped =
        IngestAllPrefetch(source, session, options.chunk_edges, checkpointer);
    REPT_RETURN_NOT_OK(pumped.status());
    total = *pumped;
  } else {
    std::vector<Edge> buffer(options.chunk_edges);
    for (;;) {
      const size_t n = source.NextChunk(std::span<Edge>(buffer));
      if (n == 0) break;
      session.Ingest(std::span<const Edge>(buffer.data(), n));
      total += n;
      REPT_RETURN_NOT_OK(checkpointer.AfterBatch(n));
    }
  }
  if (!source.status().ok()) return source.status();
  session.NoteVertices(source.VertexCountHint());
  return total;
}

Result<uint64_t> IngestAll(EdgeSource& source, StreamingEstimator& session,
                           size_t chunk_edges) {
  IngestOptions options;
  options.chunk_edges = chunk_edges;
  return IngestAll(source, session, options);
}

Result<uint64_t> SkipEdges(EdgeSource& source, uint64_t count,
                           size_t chunk_edges) {
  REPT_CHECK(chunk_edges > 0);
  std::vector<Edge> buffer(
      static_cast<size_t>(std::min<uint64_t>(chunk_edges, count)));
  uint64_t skipped = 0;
  while (skipped < count) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(buffer.size(), count - skipped));
    const size_t n = source.NextChunk(std::span<Edge>(buffer.data(), want));
    if (n == 0) break;
    skipped += n;
  }
  if (!source.status().ok()) return source.status();
  return skipped;
}

Result<EdgeStream> ReadAll(EdgeSource& source, size_t chunk_edges,
                           size_t reserve_edges) {
  REPT_CHECK(chunk_edges > 0);
  std::vector<Edge> buffer(chunk_edges);
  std::vector<Edge> edges;
  edges.reserve(reserve_edges);
  for (;;) {
    const size_t n = source.NextChunk(std::span<Edge>(buffer));
    if (n == 0) break;
    edges.insert(edges.end(), buffer.begin(),
                 buffer.begin() + static_cast<int64_t>(n));
  }
  if (!source.status().ok()) return source.status();
  return EdgeStream(source.Name(), source.VertexCountHint(),
                    std::move(edges));
}

}  // namespace rept
