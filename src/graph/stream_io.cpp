#include "graph/stream_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace rept {

namespace {

constexpr char kBinaryMagic[8] = {'R', 'E', 'P', 'T', 'E', 'S', '0', '1'};

}  // namespace

Result<EdgeStream> LoadEdgeListText(const std::string& path, bool dedupe) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open: " + path);

  std::vector<Edge> edges;
  std::unordered_map<uint64_t, VertexId> remap;
  std::unordered_set<uint64_t> seen;
  VertexId next_id = 0;
  auto map_id = [&remap, &next_id](uint64_t raw) {
    auto [it, inserted] = remap.emplace(raw, next_id);
    if (inserted) ++next_id;
    return it->second;
  };

  std::string line;
  uint64_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream in(line);
    uint64_t raw_u = 0;
    uint64_t raw_v = 0;
    if (!(in >> raw_u >> raw_v)) {
      return Status::Corruption("bad edge at " + path + ":" +
                                std::to_string(line_no));
    }
    const VertexId u = map_id(raw_u);
    const VertexId v = map_id(raw_v);
    if (dedupe && u != v && !seen.insert(EdgeKey(u, v)).second) continue;
    edges.emplace_back(u, v);
  }

  std::string name = path;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return EdgeStream(name, next_id, std::move(edges));
}

Status SaveEdgeListText(const EdgeStream& stream, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IOError("cannot open for writing: " + path);
  file << "# " << stream.name() << ": " << stream.num_vertices()
       << " vertices, " << stream.size() << " edges\n";
  for (const Edge& e : stream) {
    file << e.u << ' ' << e.v << '\n';
  }
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeStream> LoadEdgeListBinary(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open: " + path);
  char magic[8];
  uint64_t counts[2];
  if (!file.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!file.read(reinterpret_cast<char*>(counts), sizeof(counts))) {
    return Status::Corruption("truncated header in " + path);
  }
  const VertexId num_vertices = static_cast<VertexId>(counts[0]);
  const uint64_t num_edges = counts[1];
  std::vector<Edge> edges(num_edges);
  static_assert(sizeof(Edge) == 2 * sizeof(VertexId));
  if (!file.read(reinterpret_cast<char*>(edges.data()),
                 static_cast<std::streamsize>(num_edges * sizeof(Edge)))) {
    return Status::Corruption("truncated edges in " + path);
  }
  std::string name = path;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return EdgeStream(name, num_vertices, std::move(edges));
}

Status SaveEdgeListBinary(const EdgeStream& stream, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IOError("cannot open for writing: " + path);
  file.write(kBinaryMagic, sizeof(kBinaryMagic));
  const uint64_t counts[2] = {stream.num_vertices(), stream.size()};
  file.write(reinterpret_cast<const char*>(counts), sizeof(counts));
  file.write(reinterpret_cast<const char*>(stream.edges().data()),
             static_cast<std::streamsize>(stream.size() * sizeof(Edge)));
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace rept
