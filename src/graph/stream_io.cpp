#include "graph/stream_io.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "graph/edge_source.hpp"
#include "graph/stream_format.hpp"

namespace rept {

namespace {

// Pre-size estimate from the file length (an edge line is >= 8 bytes in
// practice) to avoid reallocation churn on large lists.
size_t ApproxEdgesInFile(const std::string& path) {
  std::error_code ec;
  const uintmax_t bytes = std::filesystem::file_size(path, ec);
  if (ec || bytes == 0) return 0;
  return static_cast<size_t>(bytes / 8) + 1;
}

}  // namespace

Result<EdgeStream> LoadEdgeListText(const std::string& path, bool dedupe) {
  // Wholesale load = chunked read drained into one vector; the parse /
  // remap / dedupe semantics live in TextFileEdgeSource alone.
  auto source = TextFileEdgeSource::Open(path, dedupe);
  if (!source.ok()) return source.status();
  return ReadAll(**source, /*chunk_edges=*/65536,
                 /*reserve_edges=*/ApproxEdgesInFile(path));
}

Status SaveEdgeListText(const EdgeStream& stream, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IOError("cannot open for writing: " + path);
  file << "# " << stream.name() << ": " << stream.num_vertices()
       << " vertices, " << stream.size() << " edges\n";
  for (const Edge& e : stream) {
    file << e.u << ' ' << e.v << '\n';
  }
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeStream> LoadEdgeListBinary(const std::string& path) {
  auto source = BinaryFileEdgeSource::Open(path);
  if (!source.ok()) return source.status();
  return ReadAll(**source, /*chunk_edges=*/65536,
                 /*reserve_edges=*/(*source)->num_edges());
}

Status SaveEdgeListBinary(const EdgeStream& stream, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IOError("cannot open for writing: " + path);
  file.write(internal::kEdgeStreamBinaryMagic,
             sizeof(internal::kEdgeStreamBinaryMagic));
  const uint64_t counts[2] = {stream.num_vertices(), stream.size()};
  file.write(reinterpret_cast<const char*>(counts), sizeof(counts));
  static_assert(sizeof(Edge) == 2 * sizeof(VertexId));
  file.write(reinterpret_cast<const char*>(stream.edges().data()),
             static_cast<std::streamsize>(stream.size() * sizeof(Edge)));
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace rept
