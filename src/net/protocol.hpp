// The rept_server wire protocol: length-prefixed, versioned, CRC-checked
// frames carrying session verbs, in the PR 4 checkpoint frame tradition
// (little-endian fields, CRC-32 over every untrusted byte, lengths validated
// against a hard cap before any allocation). docs/server_protocol.md is the
// written spec of this layout.
//
// Frame layout (all integers little-endian):
//
//   magic        4 bytes   "RPN1"
//   version      u32       kProtocolVersion
//   type         u32       MessageType
//   payload_len  u64       payload byte count (<= receiver's frame cap)
//   payload      payload_len bytes (wire.hpp encoding, per-verb layout)
//   crc32        u32       CRC-32 of bytes [4, 20 + payload_len): version,
//                          type, payload_len, payload — bad magic aside,
//                          every header or payload flip is detected
//
// Failure taxonomy on the read side: a damaged frame (bad magic/version/CRC,
// oversized length, truncation mid-frame) is Corruption — the byte stream
// can no longer be trusted and the connection must close; a clean EOF at a
// frame boundary is NotFound (the peer hung up between requests); transport
// errors are IOError. A structurally valid frame whose *payload* fails its
// verb decode is recoverable: framing kept the stream in sync, so the server
// answers with an error frame and the connection lives on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace rept::net {

inline constexpr char kFrameMagic[4] = {'R', 'P', 'N', '1'};
/// v2: added the METRICS verb (kMetrics/kMetricsResult) and appended the
/// cumulative/last-batch ingest-stats blocks to each kStatsResult session
/// row. New verbs alone would be additive, but the widened STATS row is a
/// layout change, hence the bump; v1 peers are refused at the frame layer.
/// v3: exactly-once ingest. INGEST_BATCH carries a per-session monotonic
/// batch sequence number, its reply reports the last-applied seq plus a
/// dedup flag, and CREATE gains an attach mode (adopt an existing or
/// recovered session after reconnect) with a widened reply carrying the
/// fingerprint and last-applied seq. Layout changes on three verbs, hence
/// the bump; v2 peers are refused at the frame layer.
inline constexpr uint32_t kProtocolVersion = 3;
/// magic + version + type + payload_len.
inline constexpr size_t kFrameHeaderBytes = 4 + 4 + 4 + 8;
inline constexpr size_t kFrameTrailerBytes = 4;
/// Default per-frame payload cap (both directions). Oversized length
/// prefixes are rejected before any allocation happens.
inline constexpr uint64_t kDefaultMaxFramePayload = 64ull << 20;
/// Session names are registry keys and checkpoint file stems; see
/// ValidateSessionName.
inline constexpr size_t kMaxSessionNameBytes = 128;

/// \brief Frame types. Requests are < 64, responses >= 64.
enum class MessageType : uint32_t {
  kCreateSession = 1,
  kIngestBatch = 2,
  kSnapshot = 3,
  kCheckpoint = 4,
  kRestore = 5,
  kDropSession = 6,
  kStats = 7,
  kShutdown = 8,
  kMetrics = 9,

  kOk = 64,
  kError = 65,
  kSnapshotResult = 66,
  kCheckpointData = 67,
  kStatsResult = 68,
  kMetricsResult = 69,
};

/// \brief Error codes carried by kError frames (u32 on the wire).
enum class WireError : uint32_t {
  kBadFrame = 1,
  kUnknownVerb = 2,
  kInvalidArgument = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kResourceExhausted = 6,
  kCorruption = 7,
  kIOError = 8,
  kUnsupported = 9,
  kShuttingDown = 10,
  kInternal = 11,
  kDeadlineExceeded = 12,
};

const char* WireErrorName(WireError code);

/// Maps a Status from the session/registry layer onto the wire.
WireError WireErrorFromStatus(const Status& status);

/// Client-side inverse: reconstructs a Status from an error frame.
Status StatusFromWireError(WireError code, const std::string& message);

/// Registry keys double as checkpoint file stems, so names are restricted to
/// [A-Za-z0-9_.-], nonempty, at most kMaxSessionNameBytes — no separators,
/// no traversal.
Status ValidateSessionName(std::string_view name);

/// \brief One decoded frame.
struct Frame {
  uint32_t type = 0;
  std::vector<uint8_t> payload;
};

/// \brief Blocking byte producer (socket, in-memory buffer). Read returns
/// the number of bytes delivered (1..max), 0 for end-of-stream, or an error
/// Status; short reads are normal and the framing layer loops.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual Result<size_t> Read(void* dst, size_t max) = 0;
};

/// \brief Blocking byte consumer; WriteAll delivers every byte or fails.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual Status WriteAll(const void* data, size_t len) = 0;
};

/// Serializes one complete frame (header, payload, CRC).
std::vector<uint8_t> EncodeFrame(MessageType type,
                                 std::span<const uint8_t> payload);

/// Convenience: encode + WriteAll.
Status WriteFrame(ByteSink& sink, MessageType type,
                  std::span<const uint8_t> payload);

/// Reads and verifies one frame. `max_payload` caps the length prefix
/// before the payload allocation. NotFound on a clean EOF at a frame
/// boundary, Corruption on any framing damage, IOError from the transport.
Status ReadFrame(ByteSource& source, Frame& frame, uint64_t max_payload);

/// A ready-to-send kError frame.
std::vector<uint8_t> EncodeErrorFrame(WireError code,
                                      std::string_view message);

}  // namespace rept::net
