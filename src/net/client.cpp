#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace rept::net {
namespace {

/// Error-frame messages can be long but must not size unbounded allocs.
constexpr size_t kMaxErrorMessage = 4096;

struct ClientMetrics {
  obs::Counter reconnects = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_client_reconnects_total",
      "Successful client reconnects (redial + session re-attach + replay)");
};

const ClientMetrics& Obs() {
  static const ClientMetrics metrics;
  return metrics;
}

}  // namespace

Status ReptClient::Connect(const std::string& host, uint16_t port) {
  Result<TcpSocket> sock = TcpSocket::Connect(host, port);
  REPT_RETURN_NOT_OK(sock.status());
  socket_ = std::move(sock).value();
  host_ = host;
  port_ = port;
  if (roundtrip_deadline_ms_ > 0) {
    const int64_t ms = static_cast<int64_t>(roundtrip_deadline_ms_);
    REPT_RETURN_NOT_OK(socket_.SetReadTimeout(ms));
    REPT_RETURN_NOT_OK(socket_.SetWriteTimeout(ms));
  }
  return Status::OK();
}

void ReptClient::set_reconnect_policy(const ReconnectPolicy& policy) {
  reconnect_ = policy;
  jitter_ = Rng(policy.jitter_seed);
}

Status ReptClient::set_roundtrip_deadline_ms(uint64_t millis) {
  roundtrip_deadline_ms_ = millis;
  if (socket_.valid()) {
    const int64_t ms = static_cast<int64_t>(millis);
    REPT_RETURN_NOT_OK(socket_.SetReadTimeout(ms));
    REPT_RETURN_NOT_OK(socket_.SetWriteTimeout(ms));
  }
  return Status::OK();
}

Result<Frame> ReptClient::Exchange(MessageType request,
                                   std::span<const uint8_t> payload,
                                   MessageType expected,
                                   bool* transport_failure) {
  *transport_failure = false;
  if (!socket_.valid()) {
    *transport_failure = true;
    return Status::IOError("client is not connected");
  }
  const Status written = WriteFrame(socket_, request, payload);
  if (!written.ok()) {
    *transport_failure = true;
    return written;
  }
  Frame reply;
  const Status read = ReadFrame(socket_, reply, max_frame_payload_);
  if (!read.ok()) {
    // Everything ReadFrame produces — EOF, timeout, transport error, even
    // framing corruption — means this connection is unusable; none of it is
    // a server verdict on the request.
    *transport_failure = true;
    return read;
  }
  if (reply.type == static_cast<uint32_t>(MessageType::kError)) {
    WireReader reader(reply.payload);
    const WireError code = static_cast<WireError>(reader.ReadU32());
    const std::string message = reader.ReadString(kMaxErrorMessage);
    REPT_RETURN_NOT_OK(reader.status());
    return StatusFromWireError(code, message);
  }
  if (reply.type != static_cast<uint32_t>(expected)) {
    return Status::Corruption("unexpected response type " +
                              std::to_string(reply.type));
  }
  return reply;
}

void ReptClient::BackoffSleep(int attempt) {
  uint64_t delay = reconnect_.base_backoff_ms;
  for (int i = 0; i < attempt && delay < reconnect_.max_backoff_ms; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, reconnect_.max_backoff_ms);
  // Jitter to [delay/2, delay].
  const uint64_t half = delay / 2;
  delay = half + (half > 0 ? jitter_.Next() % (half + 1) : 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

Status ReptClient::Reconnect() {
  socket_.Close();
  REPT_RETURN_NOT_OK(Connect(host_, port_));
  // Re-attach every session this client created, resyncing each dedup
  // window to what the (possibly restarted) server actually applied.
  for (auto& [name, state] : sessions_) {
    bool transport = false;
    const std::vector<uint8_t> payload = EncodeCreate(state.spec, true);
    Result<Frame> reply = Exchange(MessageType::kCreateSession, payload,
                                   MessageType::kOk, &transport);
    REPT_RETURN_NOT_OK(reply.status());
    WireReader reader(reply.value().payload);
    reader.ReadU64();  // fingerprint
    const uint64_t last_applied = reader.ReadU64();
    REPT_RETURN_NOT_OK(reader.ExpectEnd());
    state.next_seq = last_applied + 1;
  }
  ++reconnects_;
  Obs().reconnects.Increment();
  return Status::OK();
}

Result<Frame> ReptClient::Roundtrip(MessageType request,
                                    std::span<const uint8_t> payload,
                                    MessageType expected) {
  bool transport = false;
  Result<Frame> reply = Exchange(request, payload, expected, &transport);
  if (reply.ok() || !transport || !reconnect_.enabled) return reply;
  for (int attempt = 0; attempt < reconnect_.max_attempts; ++attempt) {
    BackoffSleep(attempt);
    const Status redial = Reconnect();
    if (!redial.ok()) {
      REPT_LOG(kWarn) << "reconnect attempt " << (attempt + 1) << "/"
                      << reconnect_.max_attempts
                      << " failed: " << redial.ToString();
      continue;
    }
    // Replay the in-flight frame on the fresh connection. At most one
    // frame is ever outstanding, and sequenced INGEST replays are deduped
    // server-side, so the retry is exactly-once.
    reply = Exchange(request, payload, expected, &transport);
    if (reply.ok() || !transport) return reply;
  }
  return reply;
}

std::vector<uint8_t> ReptClient::EncodeCreate(const SessionSpec& spec,
                                              bool attach) {
  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendString(spec.name);
  writer.AppendU64(spec.seed);
  writer.AppendU32(spec.config.m);
  writer.AppendU32(spec.config.c);
  const uint8_t flags =
      static_cast<uint8_t>((spec.config.track_local ? 0x01 : 0) |
                           (spec.config.strict_eta_pairs ? 0x02 : 0));
  writer.AppendU8(flags);
  writer.AppendU64(spec.options.expected_edges);
  writer.AppendU64(spec.options.expected_vertices);
  writer.AppendU64(spec.memory_budget);
  writer.AppendU8(attach ? 1 : 0);
  return payload;
}

Status ReptClient::CreateSession(const SessionSpec& spec,
                                 uint64_t* fingerprint, bool attach,
                                 uint64_t* last_applied_seq) {
  const std::vector<uint8_t> payload = EncodeCreate(spec, attach);
  Result<Frame> reply =
      Roundtrip(MessageType::kCreateSession, payload, MessageType::kOk);
  REPT_RETURN_NOT_OK(reply.status());
  WireReader reader(reply.value().payload);
  const uint64_t fp = reader.ReadU64();
  const uint64_t last_applied = reader.ReadU64();
  REPT_RETURN_NOT_OK(reader.ExpectEnd());
  if (fingerprint != nullptr) *fingerprint = fp;
  if (last_applied_seq != nullptr) *last_applied_seq = last_applied;
  if (reconnect_.enabled) {
    SessionState state;
    state.spec = spec;
    state.next_seq = last_applied + 1;
    sessions_[spec.name] = std::move(state);
  }
  return Status::OK();
}

Result<IngestReply> ReptClient::Ingest(const std::string& name,
                                       std::span<const Edge> edges,
                                       uint64_t note_vertices) {
  // Per-frame fixed cost: name (4 + len), note_vertices u64, batch_seq u64,
  // count u64.
  const uint64_t overhead = 4 + name.size() + 8 + 8 + 8;
  if (overhead + 8 > max_frame_payload_) {
    return Status::InvalidArgument("frame cap too small for an ingest");
  }
  const size_t max_edges_per_frame =
      static_cast<size_t>((max_frame_payload_ - overhead) / 8);

  // Sessions registered for exactly-once (created under an enabled
  // reconnect policy) send sequenced frames; everything else stays
  // unsequenced (seq 0), the multi-writer-safe pre-v3 behavior.
  const auto tracked = sessions_.find(name);

  IngestReply last;
  size_t offset = 0;
  do {
    const size_t n = std::min(edges.size() - offset, max_edges_per_frame);
    const uint64_t batch_seq =
        tracked != sessions_.end() ? tracked->second.next_seq : 0;
    std::vector<uint8_t> payload;
    payload.reserve(static_cast<size_t>(overhead) + n * 8);
    WireWriter writer(payload);
    writer.AppendString(name);
    writer.AppendU64(offset == 0 ? note_vertices : 0);
    writer.AppendU64(batch_seq);
    writer.AppendU64(n);
    for (size_t i = 0; i < n; ++i) {
      writer.AppendU32(edges[offset + i].u);
      writer.AppendU32(edges[offset + i].v);
    }
    Result<Frame> reply =
        Roundtrip(MessageType::kIngestBatch, payload, MessageType::kOk);
    REPT_RETURN_NOT_OK(reply.status());
    WireReader reader(reply.value().payload);
    last.edges_ingested = reader.ReadU64();
    last.stored_edges = reader.ReadU64();
    last.memory_bytes = reader.ReadU64();
    last.last_applied_seq = reader.ReadU64();
    const uint8_t deduped = reader.ReadU8();
    REPT_RETURN_NOT_OK(reader.ExpectEnd());
    if (deduped != 0) ++last.deduped_frames;
    if (tracked != sessions_.end()) {
      tracked->second.next_seq = last.last_applied_seq + 1;
    }
    offset += n;
  } while (offset < edges.size());
  return last;
}

Result<SnapshotReply> ReptClient::Snapshot(const std::string& name,
                                           uint32_t top_k) {
  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendString(name);
  writer.AppendU32(top_k);

  Result<Frame> reply = Roundtrip(MessageType::kSnapshot, payload,
                                  MessageType::kSnapshotResult);
  REPT_RETURN_NOT_OK(reply.status());
  WireReader reader(reply.value().payload);
  SnapshotReply out;
  out.edges_ingested = reader.ReadU64();
  out.stored_edges = reader.ReadU64();
  out.num_vertices = reader.ReadU64();
  out.global = reader.ReadDouble();
  const uint32_t k = reader.ReadU32();
  if (reader.status().ok() && k > reader.Remaining() / 12) {
    return Status::Corruption("snapshot entry count exceeds payload");
  }
  out.top.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    const VertexId vertex = reader.ReadU32();
    const double tally = reader.ReadDouble();
    out.top.emplace_back(vertex, tally);
  }
  REPT_RETURN_NOT_OK(reader.ExpectEnd());
  return out;
}

Result<std::vector<uint8_t>> ReptClient::Checkpoint(
    const std::string& name) {
  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendString(name);
  Result<Frame> reply = Roundtrip(MessageType::kCheckpoint, payload,
                                  MessageType::kCheckpointData);
  REPT_RETURN_NOT_OK(reply.status());
  return std::move(reply.value().payload);
}

Status ReptClient::Restore(const std::string& name,
                           std::span<const uint8_t> bytes) {
  std::vector<uint8_t> payload;
  payload.reserve(4 + name.size() + bytes.size());
  WireWriter writer(payload);
  writer.AppendString(name);
  writer.AppendBytes(bytes.data(), bytes.size());
  Result<Frame> reply =
      Roundtrip(MessageType::kRestore, payload, MessageType::kOk);
  return reply.status();
}

Status ReptClient::DropSession(const std::string& name) {
  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendString(name);
  Result<Frame> reply =
      Roundtrip(MessageType::kDropSession, payload, MessageType::kOk);
  if (reply.ok()) sessions_.erase(name);
  return reply.status();
}

Result<ServerStats> ReptClient::Stats() {
  Result<Frame> reply =
      Roundtrip(MessageType::kStats, {}, MessageType::kStatsResult);
  REPT_RETURN_NOT_OK(reply.status());
  WireReader reader(reply.value().payload);
  ServerStats out;
  out.connections_accepted = reader.ReadU64();
  out.frames_served = reader.ReadU64();
  out.total_memory_bytes = reader.ReadU64();
  const uint32_t n = reader.ReadU32();
  // Each row is at least a name length prefix, four u64 fields, and the two
  // 40-byte ingest-stats blocks (v2 layout).
  if (reader.status().ok() && n > reader.Remaining() / (4 + 32 + 80)) {
    return Status::Corruption("stats row count exceeds payload");
  }
  out.sessions.reserve(n);
  const auto read_ingest_stats = [&reader]() {
    ServerStats::IngestStatsRow block;
    block.batches = reader.ReadU64();
    block.sub_batches = reader.ReadU64();
    block.routed_entries = reader.ReadU64();
    block.route_seconds = reader.ReadDouble();
    block.estimate_seconds = reader.ReadDouble();
    return block;
  };
  for (uint32_t i = 0; i < n; ++i) {
    ServerStats::SessionRow row;
    row.name = reader.ReadString(kMaxSessionNameBytes);
    row.edges_ingested = reader.ReadU64();
    row.stored_edges = reader.ReadU64();
    row.num_vertices = reader.ReadU64();
    row.memory_bytes = reader.ReadU64();
    row.cumulative = read_ingest_stats();
    row.last_batch = read_ingest_stats();
    out.sessions.push_back(std::move(row));
  }
  REPT_RETURN_NOT_OK(reader.ExpectEnd());
  return out;
}

Result<std::string> ReptClient::Metrics() {
  Result<Frame> reply =
      Roundtrip(MessageType::kMetrics, {}, MessageType::kMetricsResult);
  REPT_RETURN_NOT_OK(reply.status());
  const std::vector<uint8_t>& bytes = reply.value().payload;
  if (bytes.empty()) return std::string();
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

Status ReptClient::Shutdown() {
  Result<Frame> reply =
      Roundtrip(MessageType::kShutdown, {}, MessageType::kOk);
  return reply.status();
}

}  // namespace rept::net
