#include "net/protocol.hpp"

#include <cstring>

#include "net/wire.hpp"
#include "persist/checkpoint_io.hpp"

namespace rept::net {
namespace {

/// Fills `len` bytes from the source, looping over short reads. Returns the
/// bytes actually delivered before EOF (== len unless the stream ended).
Result<size_t> ReadFully(ByteSource& source, uint8_t* dst, size_t len) {
  size_t got = 0;
  while (got < len) {
    Result<size_t> n = source.Read(dst + got, len - got);
    REPT_RETURN_NOT_OK(n.status());
    if (n.value() == 0) break;  // End of stream.
    got += n.value();
  }
  return got;
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

}  // namespace

const char* WireErrorName(WireError code) {
  switch (code) {
    case WireError::kBadFrame:
      return "BadFrame";
    case WireError::kUnknownVerb:
      return "UnknownVerb";
    case WireError::kInvalidArgument:
      return "InvalidArgument";
    case WireError::kNotFound:
      return "NotFound";
    case WireError::kAlreadyExists:
      return "AlreadyExists";
    case WireError::kResourceExhausted:
      return "ResourceExhausted";
    case WireError::kCorruption:
      return "Corruption";
    case WireError::kIOError:
      return "IOError";
    case WireError::kUnsupported:
      return "Unsupported";
    case WireError::kShuttingDown:
      return "ShuttingDown";
    case WireError::kInternal:
      return "Internal";
    case WireError::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

WireError WireErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireError::kInternal;  // Caller bug: OK is not an error.
    case StatusCode::kInvalidArgument:
      return WireError::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireError::kNotFound;
    case StatusCode::kIOError:
      return WireError::kIOError;
    case StatusCode::kCorruption:
      return WireError::kCorruption;
    case StatusCode::kUnsupported:
      return WireError::kUnsupported;
    case StatusCode::kResourceExhausted:
      return WireError::kResourceExhausted;
    case StatusCode::kDeadlineExceeded:
      return WireError::kDeadlineExceeded;
  }
  return WireError::kInternal;
}

Status StatusFromWireError(WireError code, const std::string& message) {
  switch (code) {
    case WireError::kInvalidArgument:
    case WireError::kUnknownVerb:
      return Status::InvalidArgument(message);
    case WireError::kNotFound:
      return Status::NotFound(message);
    case WireError::kAlreadyExists:
      // No dedicated local code; the message carries the distinction.
      return Status::InvalidArgument(message);
    case WireError::kResourceExhausted:
    case WireError::kShuttingDown:
      return Status::ResourceExhausted(message);
    case WireError::kBadFrame:
    case WireError::kCorruption:
      return Status::Corruption(message);
    case WireError::kIOError:
      return Status::IOError(message);
    case WireError::kUnsupported:
      return Status::Unsupported(message);
    case WireError::kInternal:
      return Status::IOError("server internal error: " + message);
    case WireError::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
  }
  return Status::IOError("unknown wire error: " + message);
}

Status ValidateSessionName(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("session name must be nonempty");
  }
  if (name.size() > kMaxSessionNameBytes) {
    return Status::InvalidArgument(
        "session name exceeds " + std::to_string(kMaxSessionNameBytes) +
        " bytes");
  }
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '.' ||
                    ch == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "session name may only contain [A-Za-z0-9_.-]");
    }
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeFrame(MessageType type,
                                 std::span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  WireWriter writer(out);
  writer.AppendBytes(kFrameMagic, sizeof(kFrameMagic));
  writer.AppendU32(kProtocolVersion);
  writer.AppendU32(static_cast<uint32_t>(type));
  writer.AppendU64(payload.size());
  writer.AppendBytes(payload.data(), payload.size());
  const uint32_t crc =
      Crc32(0, out.data() + sizeof(kFrameMagic),
            out.size() - sizeof(kFrameMagic));
  writer.AppendU32(crc);
  return out;
}

Status WriteFrame(ByteSink& sink, MessageType type,
                  std::span<const uint8_t> payload) {
  const std::vector<uint8_t> frame = EncodeFrame(type, payload);
  return sink.WriteAll(frame.data(), frame.size());
}

Status ReadFrame(ByteSource& source, Frame& frame, uint64_t max_payload) {
  uint8_t header[kFrameHeaderBytes];
  Result<size_t> got = ReadFully(source, header, sizeof(header));
  REPT_RETURN_NOT_OK(got.status());
  if (got.value() == 0) {
    // Clean hangup between frames: the normal way a connection ends.
    return Status::NotFound("connection closed");
  }
  if (got.value() < sizeof(header)) {
    return Status::Corruption("truncated frame header");
  }
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::Corruption("bad frame magic");
  }
  const uint32_t version = LoadU32(header + 4);
  if (version != kProtocolVersion) {
    return Status::Corruption("unsupported protocol version " +
                              std::to_string(version));
  }
  const uint32_t type = LoadU32(header + 8);
  const uint64_t payload_len = LoadU64(header + 12);
  // The length prefix is attacker-controlled until the CRC passes: cap it
  // before sizing any buffer.
  if (payload_len > max_payload) {
    return Status::Corruption("frame payload length " +
                              std::to_string(payload_len) +
                              " exceeds limit " + std::to_string(max_payload));
  }

  std::vector<uint8_t> payload(static_cast<size_t>(payload_len));
  if (payload_len > 0) {
    got = ReadFully(source, payload.data(), payload.size());
    REPT_RETURN_NOT_OK(got.status());
    if (got.value() < payload.size()) {
      return Status::Corruption("truncated frame payload");
    }
  }

  uint8_t trailer[kFrameTrailerBytes];
  got = ReadFully(source, trailer, sizeof(trailer));
  REPT_RETURN_NOT_OK(got.status());
  if (got.value() < sizeof(trailer)) {
    return Status::Corruption("truncated frame trailer");
  }
  uint32_t crc = Crc32(0, header + sizeof(kFrameMagic),
                       sizeof(header) - sizeof(kFrameMagic));
  crc = Crc32(crc, payload.data(), payload.size());
  if (crc != LoadU32(trailer)) {
    return Status::Corruption("frame CRC mismatch");
  }

  frame.type = type;
  frame.payload = std::move(payload);
  return Status::OK();
}

std::vector<uint8_t> EncodeErrorFrame(WireError code,
                                      std::string_view message) {
  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendU32(static_cast<uint32_t>(code));
  writer.AppendString(message);
  return EncodeFrame(MessageType::kError, payload);
}

}  // namespace rept::net
