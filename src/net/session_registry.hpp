// The server's session table: named, long-lived ReptSession instances with
// admission control. The registry owns creation (config validation, slot
// and memory-budget admission), lookup, and teardown; connection handlers
// own the per-verb work. All sessions share one ThreadPool — per-session
// ingest is serialized by the entry's mutex while distinct sessions ingest
// concurrently, which is exactly the StreamingEstimator single-writer
// contract multiplied across tenants.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/rept_config.hpp"
#include "core/streaming_estimator.hpp"
#include "util/status.hpp"

namespace rept {
class ThreadPool;
}  // namespace rept

namespace rept::net {

/// \brief Admission-control knobs. 0 disables the corresponding limit.
struct SessionLimits {
  /// Concurrent named sessions.
  uint32_t max_sessions = 64;
  /// Per-session MemoryBytes() budget applied when CREATE_SESSION does not
  /// set its own.
  uint64_t default_session_memory_budget = 64ull << 20;
  /// Sum of MemoryBytes() across all sessions.
  uint64_t global_memory_budget = 512ull << 20;
};

/// \brief Everything CREATE_SESSION specifies about a new session.
struct SessionSpec {
  std::string name;
  ReptConfig config;
  uint64_t seed = 0;
  SessionOptions options;
  /// 0 = use SessionLimits::default_session_memory_budget.
  uint64_t memory_budget = 0;
};

/// \brief One live session. Verb handlers lock `ingest_mutex` around every
/// writer-side call (Ingest, NoteVertices, Checkpoint, MemoryBytes);
/// Snapshot and the stream-time accessors follow the estimator's
/// concurrent-reader contract and need no lock — but because RESTORE swaps
/// the session pointer, every access goes through session(), which hands
/// out a shared_ptr that keeps the estimator alive for the duration of the
/// read even if a swap lands mid-verb.
struct SessionEntry {
  std::string name;
  ReptConfig config;
  uint64_t seed = 0;
  uint64_t memory_budget = 0;
  /// The sizing hints the session was created with, retained so checkpoint
  /// sidecars can recreate an equivalent session after a crash.
  SessionOptions options;

  std::mutex ingest_mutex;

  /// MemoryBytes() sampled at the last batch boundary, readable without
  /// the ingest mutex (STATS, global-budget accounting).
  std::atomic<uint64_t> memory_bytes{0};

  /// Highest sequenced INGEST_BATCH applied to this session (0 = none yet).
  /// Guarded by `ingest_mutex` — read and advanced only on the writer path
  /// (ingest dedup, RESTORE, checkpoint sidecar encode).
  uint64_t last_applied_seq = 0;

  /// Auto-checkpoint dirty tracking: `mutations` ticks on every applied
  /// state change (ingest, restore); `saved_mutations` records the tick a
  /// checkpoint last captured. Unequal = the session has unsaved state.
  /// A new entry starts dirty (1 vs 0) so a freshly created empty session
  /// reaches disk once, then stays untouched while idle.
  std::atomic<uint64_t> mutations{1};
  std::atomic<uint64_t> saved_mutations{0};

  /// The live estimator. Take one copy per verb and use it for every call:
  /// a concurrent RESTORE may publish a replacement, and the copy pins the
  /// generation this verb started against.
  std::shared_ptr<StreamingEstimator> session() const {
    std::lock_guard<std::mutex> lock(session_ptr_mutex_);
    return session_;
  }

  /// Publishes a replacement estimator (session creation, RESTORE). The
  /// caller holds `ingest_mutex` so the swap is serialized against writers;
  /// the pointer mutex makes it safe against lock-free readers. The old
  /// estimator dies when the last in-flight reader drops its copy.
  void ReplaceSession(std::shared_ptr<StreamingEstimator> fresh) {
    std::lock_guard<std::mutex> lock(session_ptr_mutex_);
    session_ = std::move(fresh);
  }

 private:
  mutable std::mutex session_ptr_mutex_;
  std::shared_ptr<StreamingEstimator> session_;
};

/// \brief Name → session map with admission control. Thread-safe; lookups
/// hand out shared_ptr entries so a Drop can never free a session out from
/// under a verb running on another connection.
class SessionRegistry {
 public:
  SessionRegistry(SessionLimits limits, ThreadPool* pool)
      : limits_(limits), pool_(pool) {}

  /// Validates the spec (name charset, ReptConfig::Check, SessionOptions
  /// ::Check), applies admission control (slot count, global budget), and
  /// opens the session. AlreadyExists collides map to InvalidArgument with
  /// an "already exists" message; admission failures are ResourceExhausted.
  Result<std::shared_ptr<SessionEntry>> Create(const SessionSpec& spec);

  /// NotFound if no such session.
  Result<std::shared_ptr<SessionEntry>> Find(const std::string& name) const;

  /// Removes the session from the table. In-flight verbs holding the entry
  /// finish against the (now orphaned) session.
  Status Drop(const std::string& name);

  /// Snapshot of the live entries, for STATS and shutdown checkpointing.
  std::vector<std::shared_ptr<SessionEntry>> List() const;

  size_t size() const;

  /// Re-samples `entry`'s MemoryBytes() and enforces the per-session and
  /// global budgets. Called at batch boundaries with the entry's ingest
  /// mutex held; a batch may overshoot the budget before the check sees it,
  /// so budgets are soft by up to one batch's growth.
  Status AdmitIngest(SessionEntry& entry);

  const SessionLimits& limits() const { return limits_; }

 private:
  /// Sum of the last-published memory_bytes over all live sessions.
  uint64_t GlobalMemoryLocked() const;

  SessionLimits limits_;
  ThreadPool* pool_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<SessionEntry>> sessions_;
};

}  // namespace rept::net
