#include "net/recovery.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "persist/checkpoint_io.hpp"
#include "util/logging.hpp"

namespace rept::net {

namespace {

/// Bump when the sidecar payload layout changes. Readers refuse newer
/// versions (the fields could mean anything) but the estimator state is
/// still loadable by ignoring the sidecar.
constexpr uint32_t kServerSessionMetaVersion = 1;

constexpr std::string_view kCkptSuffix = ".ckpt";
constexpr std::string_view kTmpSuffix = ".ckpt.tmp";

bool HasSuffix(std::string_view name, std::string_view suffix) {
  return name.size() > suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

}  // namespace

ServerSessionMeta MetaFromEntry(const SessionEntry& entry) {
  ServerSessionMeta meta;
  meta.seed = entry.seed;
  meta.m = entry.config.m;
  meta.c = entry.config.c;
  meta.track_local = entry.config.track_local;
  meta.strict_eta_pairs = entry.config.strict_eta_pairs;
  meta.expected_edges = entry.options.expected_edges;
  meta.expected_vertices =
      static_cast<uint64_t>(entry.options.expected_vertices);
  meta.memory_budget = entry.memory_budget;
  meta.last_applied_seq = entry.last_applied_seq;
  return meta;
}

SessionSpec SpecFromMeta(const std::string& name,
                         const ServerSessionMeta& meta) {
  SessionSpec spec;
  spec.name = name;
  spec.seed = meta.seed;
  spec.config.m = meta.m;
  spec.config.c = meta.c;
  spec.config.track_local = meta.track_local;
  spec.config.strict_eta_pairs = meta.strict_eta_pairs;
  spec.options.expected_edges = meta.expected_edges;
  spec.options.expected_vertices =
      static_cast<VertexId>(std::min<uint64_t>(
          meta.expected_vertices, SessionOptions::kMaxExpectedVertices));
  spec.memory_budget = meta.memory_budget;
  return spec;
}

Status WriteServerSessionSection(CheckpointWriter& writer,
                                 const ServerSessionMeta& meta) {
  writer.BeginSection(kSectionServerSession);
  writer.AppendU32(kServerSessionMetaVersion);
  writer.AppendU64(meta.seed);
  writer.AppendU32(meta.m);
  writer.AppendU32(meta.c);
  uint8_t flags = 0;
  if (meta.track_local) flags |= 0x01;
  if (meta.strict_eta_pairs) flags |= 0x02;
  writer.AppendU8(flags);
  writer.AppendU64(meta.expected_edges);
  writer.AppendU64(meta.expected_vertices);
  writer.AppendU64(meta.memory_budget);
  writer.AppendU64(meta.last_applied_seq);
  return writer.EndSection();
}

Status DecodeServerSessionSection(CheckpointReader& reader,
                                  ServerSessionMeta* meta) {
  const uint32_t version = reader.ReadU32();
  if (reader.status().ok() && version != kServerSessionMetaVersion) {
    return Status::Corruption("unsupported server-session sidecar version " +
                              std::to_string(version));
  }
  meta->seed = reader.ReadU64();
  meta->m = reader.ReadU32();
  meta->c = reader.ReadU32();
  const uint8_t flags = reader.ReadU8();
  meta->track_local = (flags & 0x01) != 0;
  meta->strict_eta_pairs = (flags & 0x02) != 0;
  meta->expected_edges = reader.ReadU64();
  meta->expected_vertices = reader.ReadU64();
  meta->memory_budget = reader.ReadU64();
  meta->last_applied_seq = reader.ReadU64();
  REPT_RETURN_NOT_OK(reader.ExpectSectionEnd());
  return reader.status();
}

Result<ServerSessionMeta> PeekServerSessionMeta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  CheckpointReader reader(in, /*expect_stream_end=*/true);
  const Result<CheckpointReader::Header> header = reader.ReadHeader();
  REPT_RETURN_NOT_OK(header.status());
  for (;;) {
    const Result<uint32_t> id = reader.NextSection();
    REPT_RETURN_NOT_OK(id.status());
    if (*id == kSectionEnd) {
      return Status::NotFound("no server-session sidecar in " + path);
    }
    if (*id != kSectionServerSession) continue;
    ServerSessionMeta meta;
    REPT_RETURN_NOT_OK(DecodeServerSessionSection(reader, &meta));
    return meta;
  }
}

Result<std::vector<CheckpointFile>> ListCheckpointFiles(
    const std::string& dir) {
  std::vector<CheckpointFile> out;
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir, ec)) {
    if (!dirent.is_regular_file()) continue;
    const std::string filename = dirent.path().filename().string();
    if (!HasSuffix(filename, kCkptSuffix)) continue;
    if (HasSuffix(filename, kTmpSuffix)) continue;
    CheckpointFile file;
    file.path = dirent.path().string();
    file.name = filename.substr(0, filename.size() - kCkptSuffix.size());
    out.push_back(std::move(file));
  }
  if (ec) {
    return Status::IOError("cannot scan checkpoint dir " + dir + ": " +
                           ec.message());
  }
  std::sort(out.begin(), out.end(),
            [](const CheckpointFile& a, const CheckpointFile& b) {
              return a.name < b.name;
            });
  return out;
}

Result<size_t> ReapOrphanTmpFiles(const std::string& dir) {
  size_t reaped = 0;
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir, ec)) {
    if (!dirent.is_regular_file()) continue;
    const std::string filename = dirent.path().filename().string();
    if (!HasSuffix(filename, kTmpSuffix)) continue;
    std::error_code remove_ec;
    std::filesystem::remove(dirent.path(), remove_ec);
    if (remove_ec) {
      return Status::IOError("cannot reap orphan " + dirent.path().string() +
                             ": " + remove_ec.message());
    }
    REPT_LOG(kWarn) << "reaped orphaned checkpoint temp file "
                    << dirent.path().string()
                    << " (crash mid-save; previous checkpoint is intact)";
    ++reaped;
  }
  if (ec) {
    return Status::IOError("cannot scan checkpoint dir " + dir + ": " +
                           ec.message());
  }
  return reaped;
}

}  // namespace rept::net
