// Payload codec for the rept_server protocol: little-endian scalar fields
// appended to / read from a flat byte buffer, the message-granular sibling
// of the checkpoint payload conventions (persist/checkpoint_io.hpp). The
// reader latches the first error and returns zeros afterwards, so verb
// handlers may decode a whole payload and check status() once — but any
// value that sizes an allocation or a decode loop must come from
// ReadCount/ReadString, which bound it by the bytes actually present.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace rept::net {

/// \brief Appends little-endian fields to a byte buffer (the payload of one
/// protocol frame). Infallible: the buffer grows as needed.
class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>& out) : out_(out) {}

  void AppendU8(uint8_t value) { out_.push_back(value); }
  void AppendU32(uint32_t value) { AppendLittleEndian(value); }
  void AppendU64(uint64_t value) { AppendLittleEndian(value); }
  /// IEEE-754 bit pattern, bit-exact on the other side.
  void AppendDouble(double value) {
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    AppendU64(bits);
  }
  void AppendBytes(const void* data, size_t len) {
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    out_.insert(out_.end(), bytes, bytes + len);
  }
  /// u32 length prefix + raw bytes.
  void AppendString(std::string_view s) {
    AppendU32(static_cast<uint32_t>(s.size()));
    AppendBytes(s.data(), s.size());
  }

 private:
  template <typename T>
  void AppendLittleEndian(T value) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }

  std::vector<uint8_t>& out_;
};

/// \brief Latched-error reader over one frame payload. The payload is
/// borrowed, not copied — it must outlive the reader.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> payload) : payload_(payload) {}

  uint8_t ReadU8() {
    uint8_t value = 0;
    ReadRaw(&value, sizeof(value));
    return value;
  }
  uint32_t ReadU32() { return ReadLittleEndian<uint32_t>(); }
  uint64_t ReadU64() { return ReadLittleEndian<uint64_t>(); }
  double ReadDouble() {
    const uint64_t bits = ReadU64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }
  Status ReadBytes(void* dst, size_t len) {
    ReadRaw(dst, len);
    return status_;
  }

  /// Reads a u32-length-prefixed string, rejecting lengths beyond `max_len`
  /// or the bytes remaining — the allocation is bounded before it happens.
  std::string ReadString(size_t max_len) {
    const uint32_t len = ReadU32();
    if (!status_.ok()) return "";
    if (len > max_len || len > Remaining()) {
      Fail(Status::Corruption("string length " + std::to_string(len) +
                              " exceeds limit or payload"));
      return "";
    }
    std::string out(len, '\0');
    ReadRaw(out.data(), len);
    return out;
  }

  /// Reads a u64 element count and validates count * min_bytes_per_element
  /// against the bytes remaining — use for any loop- or allocation-sizing
  /// value (mirrors CheckpointReader::ReadCount).
  uint64_t ReadCount(size_t min_bytes_per_element) {
    const uint64_t count = ReadU64();
    if (!status_.ok()) return 0;
    if (min_bytes_per_element != 0 &&
        count > Remaining() / min_bytes_per_element) {
      Fail(Status::Corruption("element count " + std::to_string(count) +
                              " exceeds payload bytes"));
      return 0;
    }
    return count;
  }

  size_t Remaining() const { return payload_.size() - cursor_; }

  /// Everything after the cursor, without consuming it — for trailing
  /// variable-size blobs (RESTORE's checkpoint bytes).
  std::span<const uint8_t> Rest() const { return payload_.subspan(cursor_); }

  /// Corruption unless the payload was consumed exactly.
  Status ExpectEnd() {
    if (!status_.ok()) return status_;
    if (Remaining() != 0) {
      Fail(Status::Corruption(std::to_string(Remaining()) +
                              " trailing payload byte(s)"));
    }
    return status_;
  }

  const Status& status() const { return status_; }

 private:
  template <typename T>
  T ReadLittleEndian() {
    uint8_t bytes[sizeof(T)] = {};
    ReadRaw(bytes, sizeof(T));
    T value = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      value |= static_cast<T>(bytes[i]) << (8 * i);
    }
    return value;
  }

  void ReadRaw(void* dst, size_t len) {
    if (!status_.ok() || len == 0) {
      std::memset(dst, 0, len);
      return;
    }
    if (len > Remaining()) {
      std::memset(dst, 0, len);
      Fail(Status::Corruption("payload read past end"));
      return;
    }
    std::memcpy(dst, payload_.data() + cursor_, len);
    cursor_ += len;
  }

  void Fail(Status status) {
    if (status_.ok()) status_ = std::move(status);
  }

  std::span<const uint8_t> payload_;
  size_t cursor_ = 0;
  Status status_;
};

}  // namespace rept::net
