#include "net/server.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <numeric>
#include <sstream>
#include <utility>

#include "core/rept_estimator.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "persist/checkpoint.hpp"
#include "util/logging.hpp"

namespace rept::net {
namespace {

/// Fixed bytes of a kSnapshotResult before the top-k entries.
constexpr size_t kSnapshotFixedBytes = 8 + 8 + 8 + 8 + 4;
/// Bytes per top-k entry: u32 vertex + f64 tally.
constexpr size_t kSnapshotEntryBytes = 4 + 8;

struct ServerMetrics {
  obs::Counter connections = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_connections_accepted_total",
      "TCP connections accepted by the server");
  obs::Counter frames = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_frames_total", "Well-framed request frames served");
  obs::Counter error_frames = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_error_frames_total", "Error frames sent back to clients");
  obs::Counter ingest_frames = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_ingest_frames_total", "INGEST requests applied");
  obs::Counter ingest_edges = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_ingest_edges_total", "Edges ingested via INGEST frames");
  obs::Counter ingest_bytes = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_ingest_bytes_total",
      "INGEST frame payload bytes accepted");
};

const ServerMetrics& Metrics() {
  static const ServerMetrics metrics;
  return metrics;
}

std::vector<uint8_t> ErrorFrame(const Status& status) {
  Metrics().error_frames.Increment();
  return EncodeErrorFrame(WireErrorFromStatus(status), status.message());
}

/// Appends both IngestStatsView blocks of one STATS session row (v2 layout):
/// u64 batches/sub_batches/routed_entries + f64 route/estimate seconds,
/// cumulative first, then the last-batch delta. All-zero when the session
/// does not track ingest stats.
void AppendIngestStats(WireWriter& writer, const StreamingEstimator& session) {
  StreamingEstimator::IngestStatsView cumulative;
  StreamingEstimator::IngestStatsView last_batch;
  session.ReadIngestStats(&cumulative, &last_batch);
  for (const auto* view : {&cumulative, &last_batch}) {
    writer.AppendU64(view->batches);
    writer.AppendU64(view->sub_batches);
    writer.AppendU64(view->routed_entries);
    writer.AppendDouble(view->route_seconds);
    writer.AppendDouble(view->estimate_seconds);
  }
}

}  // namespace

Status ReptServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  REPT_RETURN_NOT_OK(listener_.Listen(options_.host, options_.port));
  pool_ = std::make_unique<ThreadPool>(options_.pool_threads);
  registry_ =
      std::make_unique<SessionRegistry>(options_.limits, pool_.get());
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  REPT_LOG(kInfo) << "rept_server listening on " << options_.host << ":"
                  << port();
  return Status::OK();
}

void ReptServer::RequestShutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  listener_.Close();
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const auto& conn : connections_) {
    // Wake a read blocked mid-frame with EOF; queued responses still drain
    // because the write side stays open.
    conn->socket.ShutdownRead();
  }
}

Status ReptServer::Stop() {
  if (!started_.load(std::memory_order_acquire)) return Status::OK();
  if (stopped_.exchange(true)) return Status::OK();
  RequestShutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Join outside the lock: a connection thread that raced us into
  // RequestShutdown may be blocked on connections_mutex_, and joining it
  // while holding that mutex would deadlock. The accept thread is already
  // joined, so nothing repopulates the vector after the swap.
  std::vector<std::shared_ptr<Connection>> draining;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    draining.swap(connections_);
  }
  for (const auto& conn : draining) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  draining.clear();
  REPT_LOG(kInfo) << "rept_server stopped after "
                  << connections_accepted() << " connections, "
                  << frames_served() << " frames";

  Status first_error;
  if (!options_.checkpoint_dir.empty() && registry_ != nullptr) {
    for (const auto& entry : registry_->List()) {
      // Connections are drained and joined: the lock is uncontended, held
      // only to honor the writer-side contract.
      std::lock_guard<std::mutex> lock(entry->ingest_mutex);
      const std::string path =
          options_.checkpoint_dir + "/" + entry->name + ".ckpt";
      const Status st = SaveCheckpoint(*entry->session(), path);
      if (!st.ok() && first_error.ok()) first_error = st;
    }
  }
  return first_error;
}

void ReptServer::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    Result<TcpSocket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      // Closed listener (shutdown) or a fatal accept error either way the
      // loop is done; connections in flight keep running.
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    Metrics().connections.Increment();
    REPT_LOG(kDebug) << "connection accepted (#" << connections_accepted()
                     << ")";
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(accepted).value();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (shutdown_.load(std::memory_order_acquire)) {
        // Lost the race with RequestShutdown's nudge sweep: refuse.
        continue;
      }
      ReapConnections();
      connections_.push_back(conn);
      // Start the thread before releasing the mutex: Stop() swaps the
      // vector under this lock and joins what it got, so a published
      // Connection must already have its joinable thread or the serve
      // thread could outlive the server.
      conn->thread = std::thread([this, conn] { ServeConnection(conn); });
    }
  }
}

void ReptServer::ReapConnections() {
  // Caller holds connections_mutex_.
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReptServer::ServeConnection(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Frame frame;
    const Status read_status =
        ReadFrame(conn->socket, frame, options_.max_frame_payload);
    if (!read_status.ok()) {
      if (read_status.code() == StatusCode::kCorruption) {
        // The stream is out of sync; tell the peer why (best effort) and
        // hang up.
        REPT_LOG(kWarn) << "closing connection on framing corruption: "
                        << read_status.message();
        Metrics().error_frames.Increment();
        const std::vector<uint8_t> err =
            EncodeErrorFrame(WireError::kBadFrame, read_status.message());
        (void)conn->socket.WriteAll(err.data(), err.size());
      }
      break;  // Clean EOF (NotFound), transport error, or corruption.
    }
    frames_served_.fetch_add(1, std::memory_order_relaxed);
    Metrics().frames.Increment();
    bool shutdown_after_reply = false;
    const std::vector<uint8_t> response =
        Dispatch(frame, shutdown_after_reply);
    if (!conn->socket.WriteAll(response.data(), response.size()).ok()) break;
    if (shutdown_after_reply) {
      RequestShutdown();
      break;
    }
  }
  // Shutdown only — Close() writes fd_ and would race RequestShutdown's
  // read-side nudge. The fd is released by the Connection destructor,
  // which runs strictly after this thread is joined.
  REPT_LOG(kDebug) << "connection closed";
  conn->socket.ShutdownBoth();
  conn->done.store(true, std::memory_order_release);
}

std::vector<uint8_t> ReptServer::Dispatch(const Frame& frame,
                                          bool& shutdown_after_reply) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return EncodeErrorFrame(WireError::kShuttingDown,
                            "server is shutting down");
  }
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kCreateSession:
      return HandleCreate(frame);
    case MessageType::kIngestBatch:
      return HandleIngest(frame);
    case MessageType::kSnapshot:
      return HandleSnapshot(frame);
    case MessageType::kCheckpoint:
      return HandleCheckpoint(frame);
    case MessageType::kRestore:
      return HandleRestore(frame);
    case MessageType::kDropSession:
      return HandleDrop(frame);
    case MessageType::kStats:
      return HandleStats(frame);
    case MessageType::kMetrics:
      return HandleMetrics(frame);
    case MessageType::kShutdown: {
      shutdown_after_reply = true;
      return EncodeFrame(MessageType::kOk, {});
    }
    default:
      return EncodeErrorFrame(WireError::kUnknownVerb,
                              "unknown message type " +
                                  std::to_string(frame.type));
  }
}

std::vector<uint8_t> ReptServer::HandleCreate(const Frame& frame) {
  WireReader reader(frame.payload);
  SessionSpec spec;
  spec.name = reader.ReadString(kMaxSessionNameBytes);
  spec.seed = reader.ReadU64();
  spec.config.m = reader.ReadU32();
  spec.config.c = reader.ReadU32();
  const uint8_t flags = reader.ReadU8();
  spec.config.track_local = (flags & 0x01) != 0;
  spec.config.strict_eta_pairs = (flags & 0x02) != 0;
  spec.options.expected_edges = reader.ReadU64();
  const uint64_t expected_vertices = reader.ReadU64();
  spec.memory_budget = reader.ReadU64();
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());
  // The wire field is wider than VertexId; reject before the narrowing cast
  // so SessionOptions::Check sees the honest value.
  if (expected_vertices > SessionOptions::kMaxExpectedVertices) {
    return ErrorFrame(
        Status::InvalidArgument("expected_vertices hint is absurd: " +
                                std::to_string(expected_vertices)));
  }
  spec.options.expected_vertices = static_cast<VertexId>(expected_vertices);

  Result<std::shared_ptr<SessionEntry>> entry = registry_->Create(spec);
  if (!entry.ok()) return ErrorFrame(entry.status());

  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendU64(entry.value()->session()->StateFingerprint());
  return EncodeFrame(MessageType::kOk, payload);
}

std::vector<uint8_t> ReptServer::HandleIngest(const Frame& frame) {
  WireReader reader(frame.payload);
  const std::string name = reader.ReadString(kMaxSessionNameBytes);
  const uint64_t note_vertices = reader.ReadU64();
  const uint64_t count = reader.ReadCount(/*min_bytes_per_element=*/8);
  std::vector<Edge> edges;
  if (reader.status().ok()) {
    edges.resize(static_cast<size_t>(count));
    for (Edge& e : edges) {
      e.u = reader.ReadU32();
      e.v = reader.ReadU32();
    }
  }
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());
  if (note_vertices > SessionOptions::kMaxExpectedVertices) {
    return ErrorFrame(
        Status::InvalidArgument("num_vertices hint is absurd: " +
                                std::to_string(note_vertices)));
  }

  Result<std::shared_ptr<SessionEntry>> found = registry_->Find(name);
  if (!found.ok()) return ErrorFrame(found.status());
  const std::shared_ptr<SessionEntry>& entry = found.value();

  uint64_t edges_ingested;
  uint64_t stored_edges;
  uint64_t memory_bytes;
  {
    std::lock_guard<std::mutex> lock(entry->ingest_mutex);
    const std::shared_ptr<StreamingEstimator> session = entry->session();
    if (note_vertices > 0) {
      session->NoteVertices(static_cast<VertexId>(note_vertices));
    }
    session->Ingest(std::span<const Edge>(edges));
    // The batch is already applied; a budget breach reports
    // ResourceExhausted so the client stops sending, it does not undo.
    const Status admitted = registry_->AdmitIngest(*entry);
    if (!admitted.ok()) return ErrorFrame(admitted);
    edges_ingested = session->edges_ingested();
    stored_edges = session->StoredEdges();
    memory_bytes = entry->memory_bytes.load(std::memory_order_relaxed);
  }
  Metrics().ingest_frames.Increment();
  Metrics().ingest_edges.Increment(edges.size());
  Metrics().ingest_bytes.Increment(frame.payload.size());

  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendU64(edges_ingested);
  writer.AppendU64(stored_edges);
  writer.AppendU64(memory_bytes);
  return EncodeFrame(MessageType::kOk, payload);
}

std::vector<uint8_t> ReptServer::HandleSnapshot(const Frame& frame) {
  WireReader reader(frame.payload);
  const std::string name = reader.ReadString(kMaxSessionNameBytes);
  const uint32_t top_k = reader.ReadU32();
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());

  Result<std::shared_ptr<SessionEntry>> found = registry_->Find(name);
  if (!found.ok()) return ErrorFrame(found.status());
  const std::shared_ptr<SessionEntry>& entry = found.value();

  // Concurrent-reader path: no ingest lock (anytime snapshot). The pinned
  // shared_ptr keeps this generation of the session alive even if a
  // RESTORE swaps in a replacement mid-read.
  const std::shared_ptr<StreamingEstimator> session = entry->session();
  const TriangleEstimates estimates = session->Snapshot();
  const uint64_t edges_ingested = session->edges_ingested();
  const uint64_t stored_edges = session->StoredEdges();
  const uint64_t num_vertices = session->num_vertices();

  // The response must fit one frame: k is capped by the payload budget (a
  // short result, not an error — the client sees the actual k). Guard the
  // subtraction: a frame cap below the fixed header would otherwise
  // underflow to an effectively unbounded cap.
  const uint64_t max_entries =
      options_.max_frame_payload <= kSnapshotFixedBytes
          ? 0
          : (options_.max_frame_payload - kSnapshotFixedBytes) /
                kSnapshotEntryBytes;
  size_t k = std::min<uint64_t>(top_k, estimates.local.size());
  k = static_cast<size_t>(std::min<uint64_t>(k, max_entries));

  // Top-k by tally, descending; ties resolve to the smaller vertex id so
  // the result is deterministic.
  std::vector<uint32_t> order(estimates.local.size());
  std::iota(order.begin(), order.end(), 0u);
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](uint32_t a, uint32_t b) {
                      if (estimates.local[a] != estimates.local[b]) {
                        return estimates.local[a] > estimates.local[b];
                      }
                      return a < b;
                    });

  std::vector<uint8_t> payload;
  payload.reserve(kSnapshotFixedBytes + k * kSnapshotEntryBytes);
  WireWriter writer(payload);
  writer.AppendU64(edges_ingested);
  writer.AppendU64(stored_edges);
  writer.AppendU64(num_vertices);
  writer.AppendDouble(estimates.global);
  writer.AppendU32(static_cast<uint32_t>(k));
  for (size_t i = 0; i < k; ++i) {
    writer.AppendU32(order[i]);
    writer.AppendDouble(estimates.local[order[i]]);
  }
  return EncodeFrame(MessageType::kSnapshotResult, payload);
}

std::vector<uint8_t> ReptServer::HandleCheckpoint(const Frame& frame) {
  WireReader reader(frame.payload);
  const std::string name = reader.ReadString(kMaxSessionNameBytes);
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());

  Result<std::shared_ptr<SessionEntry>> found = registry_->Find(name);
  if (!found.ok()) return ErrorFrame(found.status());
  const std::shared_ptr<SessionEntry>& entry = found.value();

  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lock(entry->ingest_mutex);
    const Status st = WriteCheckpointStream(*entry->session(), out);
    if (!st.ok()) return ErrorFrame(st);
  }
  const std::string bytes = std::move(out).str();
  if (bytes.size() > options_.max_frame_payload) {
    return ErrorFrame(Status::ResourceExhausted(
        "checkpoint is " + std::to_string(bytes.size()) +
        " bytes, larger than the frame cap — raise --max-frame-mb"));
  }
  return EncodeFrame(
      MessageType::kCheckpointData,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
}

std::vector<uint8_t> ReptServer::HandleRestore(const Frame& frame) {
  WireReader reader(frame.payload);
  const std::string name = reader.ReadString(kMaxSessionNameBytes);
  if (!reader.status().ok()) return ErrorFrame(reader.status());
  const std::span<const uint8_t> bytes = reader.Rest();

  Result<std::shared_ptr<SessionEntry>> found = registry_->Find(name);
  if (!found.ok()) return ErrorFrame(found.status());
  const std::shared_ptr<SessionEntry>& entry = found.value();

  // Restore into a scratch session (same config and seed, so the same
  // fingerprint gate) off to the side: the live session is never mutated
  // in place, so concurrent SNAPSHOT/STATS readers stay on the old
  // generation until the atomic pointer swap below, and a failed restore
  // leaves the session exactly as it was.
  Result<std::unique_ptr<StreamingEstimator>> scratch =
      ReptEstimator(entry->config).CreateSession(entry->seed, pool_.get());
  if (!scratch.ok()) return ErrorFrame(scratch.status());
  std::istringstream in(std::string(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  const Status st = ReadCheckpointStream(*scratch.value(), in,
                                         /*expect_stream_end=*/true);
  if (!st.ok()) return ErrorFrame(st);

  std::lock_guard<std::mutex> lock(entry->ingest_mutex);
  entry->ReplaceSession(std::move(scratch).value());
  // The restored state is already live; a budget breach reports
  // ResourceExhausted (mirroring the ingest path's report-don't-undo
  // semantics) so the client knows the session is over budget.
  const Status admitted = registry_->AdmitIngest(*entry);
  if (!admitted.ok()) return ErrorFrame(admitted);
  return EncodeFrame(MessageType::kOk, {});
}

std::vector<uint8_t> ReptServer::HandleDrop(const Frame& frame) {
  WireReader reader(frame.payload);
  const std::string name = reader.ReadString(kMaxSessionNameBytes);
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());
  const Status st = registry_->Drop(name);
  if (!st.ok()) return ErrorFrame(st);
  return EncodeFrame(MessageType::kOk, {});
}

std::vector<uint8_t> ReptServer::HandleStats(const Frame& frame) {
  WireReader reader(frame.payload);
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());

  const std::vector<std::shared_ptr<SessionEntry>> entries =
      registry_->List();
  uint64_t total_memory = 0;
  for (const auto& entry : entries) {
    total_memory += entry->memory_bytes.load(std::memory_order_relaxed);
  }

  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendU64(connections_accepted());
  writer.AppendU64(frames_served());
  writer.AppendU64(total_memory);
  writer.AppendU32(static_cast<uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    const std::shared_ptr<StreamingEstimator> session = entry->session();
    writer.AppendString(entry->name);
    writer.AppendU64(session->edges_ingested());
    writer.AppendU64(session->StoredEdges());
    writer.AppendU64(session->num_vertices());
    writer.AppendU64(entry->memory_bytes.load(std::memory_order_relaxed));
    AppendIngestStats(writer, *session);
  }
  return EncodeFrame(MessageType::kStatsResult, payload);
}

std::vector<uint8_t> ReptServer::HandleMetrics(const Frame& frame) {
  WireReader reader(frame.payload);
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());

  std::string text = obs::MetricsRegistry::Global().RenderPrometheus();

  // Per-session gauges, synthesized at scrape time from the registry's
  // reader-safe surfaces. Session names become labels only in this reply,
  // never metric-registry entries, so a churning create/drop workload cannot
  // grow process state (the cardinality rule in docs/observability.md).
  const std::vector<std::shared_ptr<SessionEntry>> entries =
      registry_->List();
  struct PerSession {
    const char* name;
    const char* help;
    const char* type;
  };
  static constexpr PerSession kFamilies[] = {
      {"rept_session_edges_ingested", "Stream time t of the session",
       "gauge"},
      {"rept_session_stored_edges", "Edges stored across the c instances",
       "gauge"},
      {"rept_session_num_vertices", "Vertex-id-space bound", "gauge"},
      {"rept_session_memory_bytes", "Resident bytes of sampled state",
       "gauge"},
      {"rept_session_route_seconds", "Cumulative stage-1 task time",
       "gauge"},
      {"rept_session_estimate_seconds", "Cumulative stage-2 task time",
       "gauge"},
  };
  std::ostringstream out;
  out << text;
  for (size_t f = 0; f < std::size(kFamilies); ++f) {
    if (entries.empty()) break;
    out << "# HELP " << kFamilies[f].name << " " << kFamilies[f].help
        << "\n# TYPE " << kFamilies[f].name << " " << kFamilies[f].type
        << "\n";
    for (const auto& entry : entries) {
      const std::shared_ptr<StreamingEstimator> session = entry->session();
      StreamingEstimator::IngestStatsView cumulative;
      session->ReadIngestStats(&cumulative, nullptr);
      double value = 0.0;
      switch (f) {
        case 0:
          value = static_cast<double>(session->edges_ingested());
          break;
        case 1:
          value = static_cast<double>(session->StoredEdges());
          break;
        case 2:
          value = static_cast<double>(session->num_vertices());
          break;
        case 3:
          value = static_cast<double>(
              entry->memory_bytes.load(std::memory_order_relaxed));
          break;
        case 4:
          value = cumulative.route_seconds;
          break;
        case 5:
          value = cumulative.estimate_seconds;
          break;
      }
      char buf[64];
      snprintf(buf, sizeof(buf), "%.9g", value);
      out << kFamilies[f].name << "{session=\"" << entry->name << "\"} "
          << buf << "\n";
    }
  }
  const std::string body = std::move(out).str();
  if (body.size() > options_.max_frame_payload) {
    return ErrorFrame(Status::ResourceExhausted(
        "metrics reply is " + std::to_string(body.size()) +
        " bytes, larger than the frame cap — raise --max-frame-mb"));
  }
  return EncodeFrame(
      MessageType::kMetricsResult,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(body.data()), body.size()));
}

}  // namespace rept::net
