#include "net/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <numeric>
#include <sstream>
#include <utility>

#include "core/rept_estimator.hpp"
#include "net/recovery.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "persist/checkpoint.hpp"
#include "persist/checkpoint_io.hpp"
#include "util/logging.hpp"

namespace rept::net {
namespace {

/// Fixed bytes of a kSnapshotResult before the top-k entries.
constexpr size_t kSnapshotFixedBytes = 8 + 8 + 8 + 8 + 4;
/// Bytes per top-k entry: u32 vertex + f64 tally.
constexpr size_t kSnapshotEntryBytes = 4 + 8;

struct ServerMetrics {
  obs::Counter connections = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_connections_accepted_total",
      "TCP connections accepted by the server");
  obs::Counter frames = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_frames_total", "Well-framed request frames served");
  obs::Counter error_frames = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_error_frames_total", "Error frames sent back to clients");
  obs::Counter ingest_frames = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_ingest_frames_total", "INGEST requests applied");
  obs::Counter ingest_edges = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_ingest_edges_total", "Edges ingested via INGEST frames");
  obs::Counter ingest_bytes = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_ingest_bytes_total",
      "INGEST frame payload bytes accepted");
  obs::Counter sessions_recovered =
      obs::MetricsRegistry::Global().RegisterCounter(
          "rept_server_sessions_recovered_total",
          "Sessions rebuilt from checkpoint files at startup");
  obs::Counter autocheckpoint_saves =
      obs::MetricsRegistry::Global().RegisterCounter(
          "rept_server_autocheckpoint_saves_total",
          "Background auto-checkpoint saves of dirty sessions");
  obs::Counter autocheckpoint_failures =
      obs::MetricsRegistry::Global().RegisterCounter(
          "rept_server_autocheckpoint_failures_total",
          "Background auto-checkpoint saves that failed");
  obs::Counter idle_reaps = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_idle_reaps_total",
      "Connections reaped after the idle timeout");
  obs::Counter batches_deduped =
      obs::MetricsRegistry::Global().RegisterCounter(
          "rept_ingest_batches_deduped_total",
          "Replayed INGEST batches skipped by sequence-number dedup");
};

const ServerMetrics& Metrics() {
  static const ServerMetrics metrics;
  return metrics;
}

std::vector<uint8_t> ErrorFrame(const Status& status) {
  Metrics().error_frames.Increment();
  return EncodeErrorFrame(WireErrorFromStatus(status), status.message());
}

/// Appends both IngestStatsView blocks of one STATS session row (v2 layout):
/// u64 batches/sub_batches/routed_entries + f64 route/estimate seconds,
/// cumulative first, then the last-batch delta. All-zero when the session
/// does not track ingest stats.
void AppendIngestStats(WireWriter& writer, const StreamingEstimator& session) {
  StreamingEstimator::IngestStatsView cumulative;
  StreamingEstimator::IngestStatsView last_batch;
  session.ReadIngestStats(&cumulative, &last_batch);
  for (const auto* view : {&cumulative, &last_batch}) {
    writer.AppendU64(view->batches);
    writer.AppendU64(view->sub_batches);
    writer.AppendU64(view->routed_entries);
    writer.AppendDouble(view->route_seconds);
    writer.AppendDouble(view->estimate_seconds);
  }
}

}  // namespace

Status ReptServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  pool_ = std::make_unique<ThreadPool>(options_.pool_threads);
  registry_ =
      std::make_unique<SessionRegistry>(options_.limits, pool_.get());
  // Recover before listening: no client may observe an empty session table
  // that is about to be repopulated from disk.
  if (!options_.checkpoint_dir.empty()) {
    REPT_RETURN_NOT_OK(RecoverSessions());
  }
  REPT_RETURN_NOT_OK(listener_.Listen(options_.host, options_.port));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (!options_.checkpoint_dir.empty() && options_.checkpoint_every_ms > 0) {
    checkpoint_thread_ = std::thread([this] { AutoCheckpointLoop(); });
  }
  REPT_LOG(kInfo) << "rept_server listening on " << options_.host << ":"
                  << port();
  return Status::OK();
}

Status ReptServer::RecoverSessions() {
  const std::string& dir = options_.checkpoint_dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint dir " + dir + ": " +
                           ec.message());
  }
  const Result<size_t> reaped = ReapOrphanTmpFiles(dir);
  REPT_RETURN_NOT_OK(reaped.status());
  const Result<std::vector<CheckpointFile>> files = ListCheckpointFiles(dir);
  REPT_RETURN_NOT_OK(files.status());
  for (const CheckpointFile& file : *files) {
    Result<ServerSessionMeta> meta = PeekServerSessionMeta(file.path);
    if (!meta.ok()) {
      if (meta.status().code() == StatusCode::kNotFound) {
        // A plain library checkpoint (wire CHECKPOINT output, say) cannot
        // describe its own config; it stays on disk for manual RESTORE.
        REPT_LOG(kWarn) << "not recovering " << file.path
                        << ": no server-session sidecar";
        continue;
      }
      return meta.status();
    }
    Result<std::shared_ptr<SessionEntry>> created =
        registry_->Create(SpecFromMeta(file.name, *meta));
    REPT_RETURN_NOT_OK(created.status());
    const std::shared_ptr<SessionEntry>& entry = created.value();
    std::lock_guard<std::mutex> lock(entry->ingest_mutex);
    const Status st = LoadCheckpoint(
        *entry->session(), file.path,
        [](uint32_t id, CheckpointReader& reader) {
          // Already decoded by the peek; skip past it here.
          if (id != kSectionServerSession) {
            return Status::Corruption("unexpected trailing section " +
                                      std::to_string(id));
          }
          ServerSessionMeta ignored;
          return DecodeServerSessionSection(reader, &ignored);
        });
    if (!st.ok()) {
      (void)registry_->Drop(file.name);
      return st;
    }
    entry->last_applied_seq = meta->last_applied_seq;
    entry->memory_bytes.store(entry->session()->MemoryBytes(),
                              std::memory_order_relaxed);
    // The in-memory state now equals the file: nothing to auto-save until
    // the next mutation.
    entry->saved_mutations.store(
        entry->mutations.load(std::memory_order_acquire),
        std::memory_order_release);
    sessions_recovered_.fetch_add(1, std::memory_order_relaxed);
    Metrics().sessions_recovered.Increment();
    REPT_LOG(kInfo) << "recovered session '" << file.name << "' (t="
                    << entry->session()->edges_ingested()
                    << ", last_applied_seq=" << meta->last_applied_seq
                    << ") from " << file.path;
  }
  return Status::OK();
}

std::string ReptServer::CheckpointPath(const std::string& name) const {
  return options_.checkpoint_dir + "/" + name + ".ckpt";
}

Status ReptServer::SaveEntryLocked(SessionEntry& entry) {
  const ServerSessionMeta meta = MetaFromEntry(entry);
  return SaveCheckpoint(*entry.session(), CheckpointPath(entry.name),
                        [&meta](CheckpointWriter& writer) {
                          return WriteServerSessionSection(writer, meta);
                        });
}

Status ReptServer::SaveDirtySessions() {
  Status first_error;
  for (const auto& entry : registry_->List()) {
    if (entry->mutations.load(std::memory_order_acquire) ==
        entry->saved_mutations.load(std::memory_order_acquire)) {
      continue;
    }
    std::lock_guard<std::mutex> lock(entry->ingest_mutex);
    // Re-read under the mutex: the save captures at least this tick.
    const uint64_t mark = entry->mutations.load(std::memory_order_acquire);
    const Status st = SaveEntryLocked(*entry);
    if (st.ok()) {
      entry->saved_mutations.store(mark, std::memory_order_release);
      Metrics().autocheckpoint_saves.Increment();
    } else {
      Metrics().autocheckpoint_failures.Increment();
      REPT_LOG(kWarn) << "auto-checkpoint of '" << entry->name
                      << "' failed: " << st.ToString();
      if (first_error.ok()) first_error = st;
    }
  }
  return first_error;
}

void ReptServer::AutoCheckpointLoop() {
  std::unique_lock<std::mutex> lock(checkpoint_mutex_);
  while (!shutdown_.load(std::memory_order_acquire)) {
    checkpoint_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.checkpoint_every_ms));
    if (shutdown_.load(std::memory_order_acquire)) break;
    lock.unlock();
    // Failures are logged and counted inside; the loop keeps trying — a
    // transiently full disk should not kill durability forever.
    (void)SaveDirtySessions();
    lock.lock();
  }
}

void ReptServer::RequestShutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  listener_.Close();
  checkpoint_cv_.notify_all();
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const auto& conn : connections_) {
    // Wake a read blocked mid-frame with EOF; queued responses still drain
    // because the write side stays open.
    conn->socket.ShutdownRead();
  }
}

Status ReptServer::Stop() {
  if (!started_.load(std::memory_order_acquire)) return Status::OK();
  if (stopped_.exchange(true)) return Status::OK();
  RequestShutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  // Join outside the lock: a connection thread that raced us into
  // RequestShutdown may be blocked on connections_mutex_, and joining it
  // while holding that mutex would deadlock. The accept thread is already
  // joined, so nothing repopulates the vector after the swap.
  std::vector<std::shared_ptr<Connection>> draining;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    draining.swap(connections_);
  }
  for (const auto& conn : draining) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  draining.clear();
  REPT_LOG(kInfo) << "rept_server stopped after "
                  << connections_accepted() << " connections, "
                  << frames_served() << " frames";

  Status first_error;
  if (!options_.checkpoint_dir.empty() && registry_ != nullptr) {
    for (const auto& entry : registry_->List()) {
      // Connections are drained and joined: the lock is uncontended, held
      // only to honor the writer-side contract.
      std::lock_guard<std::mutex> lock(entry->ingest_mutex);
      const uint64_t mark = entry->mutations.load(std::memory_order_acquire);
      const Status st = SaveEntryLocked(*entry);
      if (st.ok()) {
        entry->saved_mutations.store(mark, std::memory_order_release);
      } else if (first_error.ok()) {
        first_error = st;
      }
    }
  }
  return first_error;
}

void ReptServer::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    Result<TcpSocket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      // Closed listener (shutdown) or a fatal accept error either way the
      // loop is done; connections in flight keep running.
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    Metrics().connections.Increment();
    REPT_LOG(kDebug) << "connection accepted (#" << connections_accepted()
                     << ")";
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(accepted).value();
    if (options_.idle_timeout_ms > 0) {
      // Both directions: a peer that sends nothing AND a peer that stops
      // draining replies are each bounded by the same deadline.
      (void)conn->socket.SetReadTimeout(
          static_cast<int64_t>(options_.idle_timeout_ms));
      (void)conn->socket.SetWriteTimeout(
          static_cast<int64_t>(options_.idle_timeout_ms));
    }
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (shutdown_.load(std::memory_order_acquire)) {
        // Lost the race with RequestShutdown's nudge sweep: refuse.
        continue;
      }
      ReapConnections();
      connections_.push_back(conn);
      // Start the thread before releasing the mutex: Stop() swaps the
      // vector under this lock and joins what it got, so a published
      // Connection must already have its joinable thread or the serve
      // thread could outlive the server.
      conn->thread = std::thread([this, conn] { ServeConnection(conn); });
    }
  }
}

void ReptServer::ReapConnections() {
  // Caller holds connections_mutex_.
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReptServer::ServeConnection(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Frame frame;
    const Status read_status =
        ReadFrame(conn->socket, frame, options_.max_frame_payload);
    if (!read_status.ok()) {
      if (read_status.code() == StatusCode::kCorruption) {
        // The stream is out of sync; tell the peer why (best effort) and
        // hang up.
        REPT_LOG(kWarn) << "closing connection on framing corruption: "
                        << read_status.message();
        Metrics().error_frames.Increment();
        const std::vector<uint8_t> err =
            EncodeErrorFrame(WireError::kBadFrame, read_status.message());
        (void)conn->socket.WriteAll(err.data(), err.size());
      } else if (read_status.code() == StatusCode::kDeadlineExceeded) {
        // Idle or stalled past the deadline: reap. No error frame — the
        // peer is by definition not listening, and a stall mid-frame means
        // the stream is unsynchronized anyway.
        REPT_LOG(kWarn) << "reaping connection idle past "
                        << options_.idle_timeout_ms << " ms";
        idle_reaps_.fetch_add(1, std::memory_order_relaxed);
        Metrics().idle_reaps.Increment();
      }
      break;  // Clean EOF (NotFound), timeout, transport error, corruption.
    }
    frames_served_.fetch_add(1, std::memory_order_relaxed);
    Metrics().frames.Increment();
    bool shutdown_after_reply = false;
    const std::vector<uint8_t> response =
        Dispatch(frame, shutdown_after_reply);
    if (!conn->socket.WriteAll(response.data(), response.size()).ok()) break;
    if (shutdown_after_reply) {
      RequestShutdown();
      break;
    }
  }
  // Shutdown only — Close() writes fd_ and would race RequestShutdown's
  // read-side nudge. The fd is released by the Connection destructor,
  // which runs strictly after this thread is joined.
  REPT_LOG(kDebug) << "connection closed";
  conn->socket.ShutdownBoth();
  conn->done.store(true, std::memory_order_release);
}

std::vector<uint8_t> ReptServer::Dispatch(const Frame& frame,
                                          bool& shutdown_after_reply) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return EncodeErrorFrame(WireError::kShuttingDown,
                            "server is shutting down");
  }
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kCreateSession:
      return HandleCreate(frame);
    case MessageType::kIngestBatch:
      return HandleIngest(frame);
    case MessageType::kSnapshot:
      return HandleSnapshot(frame);
    case MessageType::kCheckpoint:
      return HandleCheckpoint(frame);
    case MessageType::kRestore:
      return HandleRestore(frame);
    case MessageType::kDropSession:
      return HandleDrop(frame);
    case MessageType::kStats:
      return HandleStats(frame);
    case MessageType::kMetrics:
      return HandleMetrics(frame);
    case MessageType::kShutdown: {
      shutdown_after_reply = true;
      return EncodeFrame(MessageType::kOk, {});
    }
    default:
      return EncodeErrorFrame(WireError::kUnknownVerb,
                              "unknown message type " +
                                  std::to_string(frame.type));
  }
}

std::vector<uint8_t> ReptServer::HandleCreate(const Frame& frame) {
  WireReader reader(frame.payload);
  SessionSpec spec;
  spec.name = reader.ReadString(kMaxSessionNameBytes);
  spec.seed = reader.ReadU64();
  spec.config.m = reader.ReadU32();
  spec.config.c = reader.ReadU32();
  const uint8_t flags = reader.ReadU8();
  spec.config.track_local = (flags & 0x01) != 0;
  spec.config.strict_eta_pairs = (flags & 0x02) != 0;
  spec.options.expected_edges = reader.ReadU64();
  const uint64_t expected_vertices = reader.ReadU64();
  spec.memory_budget = reader.ReadU64();
  const uint8_t attach = reader.ReadU8();
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());
  // The wire field is wider than VertexId; reject before the narrowing cast
  // so SessionOptions::Check sees the honest value.
  if (expected_vertices > SessionOptions::kMaxExpectedVertices) {
    return ErrorFrame(
        Status::InvalidArgument("expected_vertices hint is absurd: " +
                                std::to_string(expected_vertices)));
  }
  spec.options.expected_vertices = static_cast<VertexId>(expected_vertices);

  std::shared_ptr<SessionEntry> entry;
  if (attach != 0) {
    // Attach mode: adopt an existing session (reconnect after a drop, or a
    // session the server recovered from disk) — but only when the spec
    // matches what the session actually is, so a client can never silently
    // continue into differently-configured state.
    Result<std::shared_ptr<SessionEntry>> found = registry_->Find(spec.name);
    if (found.ok()) {
      const SessionEntry& existing = *found.value();
      if (existing.seed != spec.seed || existing.config.m != spec.config.m ||
          existing.config.c != spec.config.c ||
          existing.config.track_local != spec.config.track_local ||
          existing.config.strict_eta_pairs !=
              spec.config.strict_eta_pairs) {
        return ErrorFrame(Status::InvalidArgument(
            "session '" + spec.name +
            "' exists with a different config or seed; cannot attach"));
      }
      entry = found.value();
    }
  }
  if (entry == nullptr) {
    Result<std::shared_ptr<SessionEntry>> created = registry_->Create(spec);
    if (!created.ok()) return ErrorFrame(created.status());
    entry = std::move(created).value();
  }

  uint64_t last_applied_seq;
  {
    std::lock_guard<std::mutex> lock(entry->ingest_mutex);
    last_applied_seq = entry->last_applied_seq;
  }
  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendU64(entry->session()->StateFingerprint());
  writer.AppendU64(last_applied_seq);
  return EncodeFrame(MessageType::kOk, payload);
}

std::vector<uint8_t> ReptServer::HandleIngest(const Frame& frame) {
  WireReader reader(frame.payload);
  const std::string name = reader.ReadString(kMaxSessionNameBytes);
  const uint64_t note_vertices = reader.ReadU64();
  const uint64_t batch_seq = reader.ReadU64();
  const uint64_t count = reader.ReadCount(/*min_bytes_per_element=*/8);
  std::vector<Edge> edges;
  if (reader.status().ok()) {
    edges.resize(static_cast<size_t>(count));
    for (Edge& e : edges) {
      e.u = reader.ReadU32();
      e.v = reader.ReadU32();
    }
  }
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());
  if (note_vertices > SessionOptions::kMaxExpectedVertices) {
    return ErrorFrame(
        Status::InvalidArgument("num_vertices hint is absurd: " +
                                std::to_string(note_vertices)));
  }

  Result<std::shared_ptr<SessionEntry>> found = registry_->Find(name);
  if (!found.ok()) return ErrorFrame(found.status());
  const std::shared_ptr<SessionEntry>& entry = found.value();

  uint64_t edges_ingested;
  uint64_t stored_edges;
  uint64_t memory_bytes;
  uint64_t last_applied_seq;
  bool deduped = false;
  {
    std::lock_guard<std::mutex> lock(entry->ingest_mutex);
    // Exactly-once dedup. seq 0 = unsequenced (the pre-v3 at-most-once
    // contract, still used by RESTORE-style tooling); a sequenced batch
    // must be last+1 (applied), <= last (a replay of an already-applied
    // batch: acknowledged again, not re-applied), and anything else is a
    // gap — the client lost a batch it never sent, which replay cannot fix.
    if (batch_seq != 0 && batch_seq <= entry->last_applied_seq) {
      deduped = true;
    } else if (batch_seq != 0 &&
               batch_seq != entry->last_applied_seq + 1) {
      return ErrorFrame(Status::InvalidArgument(
          "ingest sequence gap: got batch_seq " + std::to_string(batch_seq) +
          " but last applied is " +
          std::to_string(entry->last_applied_seq)));
    }
    const std::shared_ptr<StreamingEstimator> session = entry->session();
    if (!deduped) {
      if (note_vertices > 0) {
        session->NoteVertices(static_cast<VertexId>(note_vertices));
      }
      session->Ingest(std::span<const Edge>(edges));
      if (batch_seq != 0) entry->last_applied_seq = batch_seq;
      entry->mutations.fetch_add(1, std::memory_order_release);
      // The batch is already applied; a budget breach reports
      // ResourceExhausted so the client stops sending, it does not undo.
      const Status admitted = registry_->AdmitIngest(*entry);
      if (!admitted.ok()) return ErrorFrame(admitted);
    }
    edges_ingested = session->edges_ingested();
    stored_edges = session->StoredEdges();
    memory_bytes = entry->memory_bytes.load(std::memory_order_relaxed);
    last_applied_seq = entry->last_applied_seq;
  }
  if (deduped) {
    Metrics().batches_deduped.Increment();
  } else {
    Metrics().ingest_frames.Increment();
    Metrics().ingest_edges.Increment(edges.size());
    Metrics().ingest_bytes.Increment(frame.payload.size());
  }

  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendU64(edges_ingested);
  writer.AppendU64(stored_edges);
  writer.AppendU64(memory_bytes);
  writer.AppendU64(last_applied_seq);
  writer.AppendU8(deduped ? 1 : 0);
  return EncodeFrame(MessageType::kOk, payload);
}

std::vector<uint8_t> ReptServer::HandleSnapshot(const Frame& frame) {
  WireReader reader(frame.payload);
  const std::string name = reader.ReadString(kMaxSessionNameBytes);
  const uint32_t top_k = reader.ReadU32();
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());

  Result<std::shared_ptr<SessionEntry>> found = registry_->Find(name);
  if (!found.ok()) return ErrorFrame(found.status());
  const std::shared_ptr<SessionEntry>& entry = found.value();

  // Concurrent-reader path: no ingest lock (anytime snapshot). The pinned
  // shared_ptr keeps this generation of the session alive even if a
  // RESTORE swaps in a replacement mid-read.
  const std::shared_ptr<StreamingEstimator> session = entry->session();
  const TriangleEstimates estimates = session->Snapshot();
  const uint64_t edges_ingested = session->edges_ingested();
  const uint64_t stored_edges = session->StoredEdges();
  const uint64_t num_vertices = session->num_vertices();

  // The response must fit one frame: k is capped by the payload budget (a
  // short result, not an error — the client sees the actual k). Guard the
  // subtraction: a frame cap below the fixed header would otherwise
  // underflow to an effectively unbounded cap.
  const uint64_t max_entries =
      options_.max_frame_payload <= kSnapshotFixedBytes
          ? 0
          : (options_.max_frame_payload - kSnapshotFixedBytes) /
                kSnapshotEntryBytes;
  size_t k = std::min<uint64_t>(top_k, estimates.local.size());
  k = static_cast<size_t>(std::min<uint64_t>(k, max_entries));

  // Top-k by tally, descending; ties resolve to the smaller vertex id so
  // the result is deterministic.
  std::vector<uint32_t> order(estimates.local.size());
  std::iota(order.begin(), order.end(), 0u);
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](uint32_t a, uint32_t b) {
                      if (estimates.local[a] != estimates.local[b]) {
                        return estimates.local[a] > estimates.local[b];
                      }
                      return a < b;
                    });

  std::vector<uint8_t> payload;
  payload.reserve(kSnapshotFixedBytes + k * kSnapshotEntryBytes);
  WireWriter writer(payload);
  writer.AppendU64(edges_ingested);
  writer.AppendU64(stored_edges);
  writer.AppendU64(num_vertices);
  writer.AppendDouble(estimates.global);
  writer.AppendU32(static_cast<uint32_t>(k));
  for (size_t i = 0; i < k; ++i) {
    writer.AppendU32(order[i]);
    writer.AppendDouble(estimates.local[order[i]]);
  }
  return EncodeFrame(MessageType::kSnapshotResult, payload);
}

std::vector<uint8_t> ReptServer::HandleCheckpoint(const Frame& frame) {
  WireReader reader(frame.payload);
  const std::string name = reader.ReadString(kMaxSessionNameBytes);
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());

  Result<std::shared_ptr<SessionEntry>> found = registry_->Find(name);
  if (!found.ok()) return ErrorFrame(found.status());
  const std::shared_ptr<SessionEntry>& entry = found.value();

  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lock(entry->ingest_mutex);
    const Status st = WriteCheckpointStream(*entry->session(), out);
    if (!st.ok()) return ErrorFrame(st);
  }
  const std::string bytes = std::move(out).str();
  if (bytes.size() > options_.max_frame_payload) {
    return ErrorFrame(Status::ResourceExhausted(
        "checkpoint is " + std::to_string(bytes.size()) +
        " bytes, larger than the frame cap — raise --max-frame-mb"));
  }
  return EncodeFrame(
      MessageType::kCheckpointData,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
}

std::vector<uint8_t> ReptServer::HandleRestore(const Frame& frame) {
  WireReader reader(frame.payload);
  const std::string name = reader.ReadString(kMaxSessionNameBytes);
  if (!reader.status().ok()) return ErrorFrame(reader.status());
  const std::span<const uint8_t> bytes = reader.Rest();

  Result<std::shared_ptr<SessionEntry>> found = registry_->Find(name);
  if (!found.ok()) return ErrorFrame(found.status());
  const std::shared_ptr<SessionEntry>& entry = found.value();

  // Restore into a scratch session (same config and seed, so the same
  // fingerprint gate) off to the side: the live session is never mutated
  // in place, so concurrent SNAPSHOT/STATS readers stay on the old
  // generation until the atomic pointer swap below, and a failed restore
  // leaves the session exactly as it was.
  Result<std::unique_ptr<StreamingEstimator>> scratch =
      ReptEstimator(entry->config).CreateSession(entry->seed, pool_.get());
  if (!scratch.ok()) return ErrorFrame(scratch.status());
  std::istringstream in(std::string(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  // Tolerate a server-saved checkpoint (sidecar-bearing): adopt its
  // last-applied seq so the dedup window survives a save/RESTORE round
  // trip. Plain library bytes reset the window to 0.
  ServerSessionMeta sidecar;
  bool has_sidecar = false;
  const Status st = ReadCheckpointStream(
      *scratch.value(), in, /*expect_stream_end=*/true,
      [&sidecar, &has_sidecar](uint32_t id, CheckpointReader& r) {
        if (id != kSectionServerSession) {
          return Status::Corruption("unexpected trailing section " +
                                    std::to_string(id));
        }
        has_sidecar = true;
        return DecodeServerSessionSection(r, &sidecar);
      });
  if (!st.ok()) return ErrorFrame(st);

  std::lock_guard<std::mutex> lock(entry->ingest_mutex);
  entry->ReplaceSession(std::move(scratch).value());
  entry->last_applied_seq = has_sidecar ? sidecar.last_applied_seq : 0;
  entry->mutations.fetch_add(1, std::memory_order_release);
  // The restored state is already live; a budget breach reports
  // ResourceExhausted (mirroring the ingest path's report-don't-undo
  // semantics) so the client knows the session is over budget.
  const Status admitted = registry_->AdmitIngest(*entry);
  if (!admitted.ok()) return ErrorFrame(admitted);
  return EncodeFrame(MessageType::kOk, {});
}

std::vector<uint8_t> ReptServer::HandleDrop(const Frame& frame) {
  WireReader reader(frame.payload);
  const std::string name = reader.ReadString(kMaxSessionNameBytes);
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());
  const Status st = registry_->Drop(name);
  if (!st.ok()) return ErrorFrame(st);
  return EncodeFrame(MessageType::kOk, {});
}

std::vector<uint8_t> ReptServer::HandleStats(const Frame& frame) {
  WireReader reader(frame.payload);
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());

  const std::vector<std::shared_ptr<SessionEntry>> entries =
      registry_->List();
  uint64_t total_memory = 0;
  for (const auto& entry : entries) {
    total_memory += entry->memory_bytes.load(std::memory_order_relaxed);
  }

  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendU64(connections_accepted());
  writer.AppendU64(frames_served());
  writer.AppendU64(total_memory);
  writer.AppendU32(static_cast<uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    const std::shared_ptr<StreamingEstimator> session = entry->session();
    writer.AppendString(entry->name);
    writer.AppendU64(session->edges_ingested());
    writer.AppendU64(session->StoredEdges());
    writer.AppendU64(session->num_vertices());
    writer.AppendU64(entry->memory_bytes.load(std::memory_order_relaxed));
    AppendIngestStats(writer, *session);
  }
  return EncodeFrame(MessageType::kStatsResult, payload);
}

std::vector<uint8_t> ReptServer::HandleMetrics(const Frame& frame) {
  WireReader reader(frame.payload);
  if (!reader.ExpectEnd().ok()) return ErrorFrame(reader.status());

  std::string text = obs::MetricsRegistry::Global().RenderPrometheus();

  // Per-session gauges, synthesized at scrape time from the registry's
  // reader-safe surfaces. Session names become labels only in this reply,
  // never metric-registry entries, so a churning create/drop workload cannot
  // grow process state (the cardinality rule in docs/observability.md).
  const std::vector<std::shared_ptr<SessionEntry>> entries =
      registry_->List();
  struct PerSession {
    const char* name;
    const char* help;
    const char* type;
  };
  static constexpr PerSession kFamilies[] = {
      {"rept_session_edges_ingested", "Stream time t of the session",
       "gauge"},
      {"rept_session_stored_edges", "Edges stored across the c instances",
       "gauge"},
      {"rept_session_num_vertices", "Vertex-id-space bound", "gauge"},
      {"rept_session_memory_bytes", "Resident bytes of sampled state",
       "gauge"},
      {"rept_session_route_seconds", "Cumulative stage-1 task time",
       "gauge"},
      {"rept_session_estimate_seconds", "Cumulative stage-2 task time",
       "gauge"},
  };
  std::ostringstream out;
  out << text;
  for (size_t f = 0; f < std::size(kFamilies); ++f) {
    if (entries.empty()) break;
    out << "# HELP " << kFamilies[f].name << " " << kFamilies[f].help
        << "\n# TYPE " << kFamilies[f].name << " " << kFamilies[f].type
        << "\n";
    for (const auto& entry : entries) {
      const std::shared_ptr<StreamingEstimator> session = entry->session();
      StreamingEstimator::IngestStatsView cumulative;
      session->ReadIngestStats(&cumulative, nullptr);
      double value = 0.0;
      switch (f) {
        case 0:
          value = static_cast<double>(session->edges_ingested());
          break;
        case 1:
          value = static_cast<double>(session->StoredEdges());
          break;
        case 2:
          value = static_cast<double>(session->num_vertices());
          break;
        case 3:
          value = static_cast<double>(
              entry->memory_bytes.load(std::memory_order_relaxed));
          break;
        case 4:
          value = cumulative.route_seconds;
          break;
        case 5:
          value = cumulative.estimate_seconds;
          break;
      }
      char buf[64];
      snprintf(buf, sizeof(buf), "%.9g", value);
      out << kFamilies[f].name << "{session=\"" << entry->name << "\"} "
          << buf << "\n";
    }
  }
  const std::string body = std::move(out).str();
  if (body.size() > options_.max_frame_payload) {
    return ErrorFrame(Status::ResourceExhausted(
        "metrics reply is " + std::to_string(body.size()) +
        " bytes, larger than the frame cap — raise --max-frame-mb"));
  }
  return EncodeFrame(
      MessageType::kMetricsResult,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(body.data()), body.size()));
}

}  // namespace rept::net
