// Thin blocking TCP wrappers behind the protocol's ByteSource/ByteSink
// interfaces. POSIX only; on other platforms every operation returns
// Status::Unsupported so the rest of the tree still compiles.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "net/protocol.hpp"
#include "util/status.hpp"

namespace rept::net {

/// \brief A connected, blocking TCP stream. Move-only; the destructor
/// closes the descriptor. Reads and writes retry on EINTR; writes suppress
/// SIGPIPE so a peer hangup surfaces as Status::IOError, never a signal.
class TcpSocket : public ByteSource, public ByteSink {
 public:
  TcpSocket() = default;
  /// Takes ownership of a connected descriptor (from Accept or Connect).
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() override { Close(); }

  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to host:port (numeric or resolvable host string).
  static Result<TcpSocket> Connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }

  /// ByteSource: up to `max` bytes; 0 = orderly peer shutdown. With a read
  /// timeout armed, a stall past the deadline is Status::DeadlineExceeded.
  Result<size_t> Read(void* dst, size_t max) override;
  /// ByteSink: loops until every byte is on the wire or an error occurs.
  /// With a write timeout armed, a full send buffer past the deadline is
  /// Status::DeadlineExceeded.
  Status WriteAll(const void* data, size_t len) override;

  /// Arms a per-call receive deadline (SO_RCVTIMEO). 0 disarms. After a
  /// DeadlineExceeded the stream may be desynchronized mid-frame — the only
  /// safe continuation is closing and reconnecting.
  Status SetReadTimeout(int64_t millis);
  /// Arms a per-call send deadline (SO_SNDTIMEO). 0 disarms.
  Status SetWriteTimeout(int64_t millis);

  /// Half-close of the read side: wakes a peer (or our own reader thread)
  /// blocked in Read with EOF while letting queued writes drain.
  void ShutdownRead();
  /// Full shutdown of both directions (still leaves the fd open).
  void ShutdownBoth();
  void Close();

 private:
  int fd_ = -1;
};

/// \brief A listening TCP socket. Accept() is blocking; Close() from any
/// thread wakes a blocked Accept, which then returns an error — the shape
/// the server's accept loop uses to shut down.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on host:port; port 0 picks an ephemeral port,
  /// readable afterwards via port().
  Status Listen(const std::string& host, uint16_t port);

  bool listening() const { return fd_ >= 0 && !closed_; }
  uint16_t port() const { return port_; }

  Result<TcpSocket> Accept();

  /// Safe to call from another thread while Accept blocks: shuts the socket
  /// down, which wakes Accept with an error. The descriptor itself is only
  /// released by the destructor, so a concurrent Accept can never race onto
  /// a recycled fd.
  void Close();

 private:
  int fd_ = -1;
  /// Written by Close() from an arbitrary thread, read by Accept's caller.
  std::atomic<bool> closed_{false};
  uint16_t port_ = 0;
};

}  // namespace rept::net
