// Crash-recovery support for rept_server: the kSectionServerSession
// checkpoint sidecar codec plus checkpoint-directory maintenance (orphan
// reaping, file discovery, self-describing restore).
//
// The sidecar makes a server checkpoint self-describing: it carries the
// session spec (config, seed, sizing hints, memory budget) and the
// last-applied ingest sequence number, so a restarted server can rebuild
// the session table from the directory alone — no client involvement —
// and resume the exactly-once dedup window where the file left it. The
// sidecar sits outside the state fingerprint: the estimator payload is
// bit-identical to a plain library checkpoint of the same state, which is
// what lets the chaos test compare recovered and uninterrupted files
// byte for byte (docs/fault_tolerance.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/session_registry.hpp"
#include "util/status.hpp"

namespace rept {
class CheckpointReader;
class CheckpointWriter;
}  // namespace rept

namespace rept::net {

/// \brief Decoded kSectionServerSession payload.
struct ServerSessionMeta {
  uint64_t seed = 0;
  uint32_t m = 0;
  uint32_t c = 0;
  bool track_local = false;
  bool strict_eta_pairs = false;
  uint64_t expected_edges = 0;
  uint64_t expected_vertices = 0;
  uint64_t memory_budget = 0;
  uint64_t last_applied_seq = 0;
};

/// Snapshot of everything the sidecar persists about `entry`. Caller holds
/// the entry's ingest mutex (last_applied_seq lives under it).
ServerSessionMeta MetaFromEntry(const SessionEntry& entry);

/// The SessionSpec that recreates the session `meta` describes.
SessionSpec SpecFromMeta(const std::string& name,
                         const ServerSessionMeta& meta);

/// Appends one kSectionServerSession section to an open checkpoint stream.
Status WriteServerSessionSection(CheckpointWriter& writer,
                                 const ServerSessionMeta& meta);

/// Decodes the current section's payload (positioned by NextSection) into
/// `meta`. Corruption on a malformed or future-versioned payload.
Status DecodeServerSessionSection(CheckpointReader& reader,
                                  ServerSessionMeta* meta);

/// Scans a checkpoint file for its kSectionServerSession sidecar without
/// constructing an estimator (CRCs of the visited sections are verified).
/// NotFound when the file is a plain library checkpoint with no sidecar.
Result<ServerSessionMeta> PeekServerSessionMeta(const std::string& path);

/// One restorable checkpoint file found in the directory scan.
struct CheckpointFile {
  std::string path;
  /// File stem == session name ("alpha" for "alpha.ckpt").
  std::string name;
};

/// Lists `<dir>/<name>.ckpt` files, sorted by name for deterministic
/// recovery order. IOError if the directory cannot be read.
Result<std::vector<CheckpointFile>> ListCheckpointFiles(
    const std::string& dir);

/// Deletes `*.ckpt.tmp` orphans left by a crash mid-save, logging each at
/// warn. The atomic save protocol guarantees a .tmp is never the only copy
/// of committed state, so reaping is always safe. Returns the count reaped.
Result<size_t> ReapOrphanTmpFiles(const std::string& dir);

}  // namespace rept::net
