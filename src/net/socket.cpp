#include "net/socket.hpp"

#include <utility>

#include "util/fault_injection.hpp"

#ifndef _WIN32
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace rept::net {

#ifndef _WIN32

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Resolves host:port for stream sockets; caller frees with freeaddrinfo.
Result<addrinfo*> Resolve(const std::string& host, uint16_t port,
                          bool passive) {
  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::IOError("getaddrinfo(" + host + "): " +
                           ::gai_strerror(rc));
  }
  return result;
}

}  // namespace

TcpSocket::TcpSocket(TcpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Result<TcpSocket> TcpSocket::Connect(const std::string& host, uint16_t port) {
  Result<addrinfo*> resolved = Resolve(host, port, /*passive=*/false);
  REPT_RETURN_NOT_OK(resolved.status());
  Status last = Status::IOError("no addresses for " + host);
  for (const addrinfo* ai = resolved.value(); ai != nullptr;
       ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      // Request/response protocol with explicit framing: Nagle only adds
      // latency here.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(resolved.value());
      return TcpSocket(fd);
    }
    last = Errno("connect");
    ::close(fd);
  }
  ::freeaddrinfo(resolved.value());
  return last;
}

Result<size_t> TcpSocket::Read(void* dst, size_t max) {
  if (fd_ < 0) return Status::IOError("read on closed socket");
  if (REPT_FAULT("net.recv_delay")) {
    // Stall one read long enough to trip an armed SO_RCVTIMEO downstream.
    ::poll(nullptr, 0, 50);
  }
  if (REPT_FAULT("net.recv_drop")) {
    ShutdownBoth();
    return Status::IOError("recv dropped (injected)");
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, dst, max, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired; the connection may be mid-frame and is no
      // longer trustworthy — callers must close it.
      return Status::DeadlineExceeded("recv timed out");
    }
    return Errno("recv");
  }
}

Status TcpSocket::WriteAll(const void* data, size_t len) {
  if (fd_ < 0) return Status::IOError("write on closed socket");
  if (REPT_FAULT("net.send_drop")) {
    ShutdownBoth();
    return Status::IOError("send dropped (injected)");
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, bytes + sent, len - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("send timed out");
    }
    return Errno("send");
  }
  return Status::OK();
}

namespace {

Status SetSocketTimeout(int fd, int option, int64_t millis) {
  if (fd < 0) return Status::IOError("timeout on closed socket");
  if (millis < 0) return Status::InvalidArgument("negative socket timeout");
  timeval tv = {};
  tv.tv_sec = static_cast<time_t>(millis / 1000);
  tv.tv_usec = static_cast<suseconds_t>((millis % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(timeout)");
  }
  return Status::OK();
}

}  // namespace

Status TcpSocket::SetReadTimeout(int64_t millis) {
  return SetSocketTimeout(fd_, SO_RCVTIMEO, millis);
}

Status TcpSocket::SetWriteTimeout(int64_t millis) {
  return SetSocketTimeout(fd_, SO_SNDTIMEO, millis);
}

void TcpSocket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void TcpSocket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() {
  Close();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpListener::Listen(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("listener already bound");
  Result<addrinfo*> resolved = Resolve(host, port, /*passive=*/true);
  REPT_RETURN_NOT_OK(resolved.status());
  Status last = Status::IOError("no addresses for " + host);
  for (const addrinfo* ai = resolved.value(); ai != nullptr;
       ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) < 0) {
      last = Errno("bind");
      ::close(fd);
      continue;
    }
    if (::listen(fd, SOMAXCONN) < 0) {
      last = Errno("listen");
      ::close(fd);
      continue;
    }
    sockaddr_storage bound = {};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
        0) {
      if (bound.ss_family == AF_INET) {
        port_ = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        port_ = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    fd_ = fd;
    ::freeaddrinfo(resolved.value());
    return Status::OK();
  }
  ::freeaddrinfo(resolved.value());
  return last;
}

Result<TcpSocket> TcpListener::Accept() {
  if (fd_ < 0 || closed_) {
    return Status::IOError("accept on closed listener");
  }
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpSocket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void TcpListener::Close() {
  if (fd_ >= 0 && !closed_.exchange(true)) {
    // shutdown() wakes a concurrently blocked Accept with an error; the fd
    // stays allocated until the destructor so that Accept can never land on
    // a recycled descriptor number.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

#else  // _WIN32

namespace {
Status NoSockets() {
  return Status::Unsupported("rept::net sockets require a POSIX platform");
}
}  // namespace

TcpSocket::TcpSocket(TcpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  fd_ = std::exchange(other.fd_, -1);
  return *this;
}

Result<TcpSocket> TcpSocket::Connect(const std::string&, uint16_t) {
  return NoSockets();
}
Result<size_t> TcpSocket::Read(void*, size_t) { return NoSockets(); }
Status TcpSocket::WriteAll(const void*, size_t) { return NoSockets(); }
Status TcpSocket::SetReadTimeout(int64_t) { return NoSockets(); }
Status TcpSocket::SetWriteTimeout(int64_t) { return NoSockets(); }
void TcpSocket::ShutdownRead() {}
void TcpSocket::ShutdownBoth() {}
void TcpSocket::Close() { fd_ = -1; }

TcpListener::~TcpListener() = default;
Status TcpListener::Listen(const std::string&, uint16_t) {
  return NoSockets();
}
Result<TcpSocket> TcpListener::Accept() { return NoSockets(); }
void TcpListener::Close() { closed_ = true; }

#endif  // _WIN32

}  // namespace rept::net
