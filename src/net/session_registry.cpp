#include "net/session_registry.hpp"

#include <utility>

#include "core/rept_estimator.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace rept::net {

namespace {

struct RegistryMetrics {
  obs::Counter created = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_sessions_created_total",
      "Sessions admitted to the registry");
  obs::Counter dropped = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_sessions_dropped_total", "Sessions removed via DROP");
  obs::Counter rejections = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_server_admission_rejections_total",
      "Create/ingest admissions refused over a memory or session budget");
};

const RegistryMetrics& Metrics() {
  static const RegistryMetrics metrics;
  return metrics;
}

}  // namespace

Result<std::shared_ptr<SessionEntry>> SessionRegistry::Create(
    const SessionSpec& spec) {
  REPT_RETURN_NOT_OK(ValidateSessionName(spec.name));

  // Build the session outside the registry lock: estimator construction
  // allocates c counters and may take a while for large configs.
  Result<std::unique_ptr<StreamingEstimator>> session =
      ReptEstimator(spec.config).CreateSession(spec.seed, pool_,
                                               spec.options);
  REPT_RETURN_NOT_OK(session.status());

  auto entry = std::make_shared<SessionEntry>();
  entry->name = spec.name;
  entry->config = spec.config;
  entry->seed = spec.seed;
  entry->options = spec.options;
  entry->memory_budget = spec.memory_budget != 0
                             ? spec.memory_budget
                             : limits_.default_session_memory_budget;
  entry->memory_bytes.store(session.value()->MemoryBytes(),
                            std::memory_order_relaxed);
  entry->ReplaceSession(std::move(session).value());

  std::lock_guard<std::mutex> lock(mutex_);
  if (limits_.max_sessions != 0 && sessions_.size() >= limits_.max_sessions) {
    Metrics().rejections.Increment();
    REPT_LOG(kWarn) << "refusing session '" << spec.name
                    << "': session limit " << limits_.max_sessions
                    << " reached";
    return Status::ResourceExhausted(
        "session limit reached (" + std::to_string(limits_.max_sessions) +
        ")");
  }
  if (limits_.global_memory_budget != 0 &&
      GlobalMemoryLocked() >= limits_.global_memory_budget) {
    Metrics().rejections.Increment();
    REPT_LOG(kWarn) << "refusing session '" << spec.name
                    << "': global memory budget exhausted";
    return Status::ResourceExhausted("global memory budget exhausted");
  }
  const auto [it, inserted] = sessions_.emplace(spec.name, entry);
  if (!inserted) {
    return Status::InvalidArgument("session '" + spec.name +
                                   "' already exists");
  }
  Metrics().created.Increment();
  REPT_LOG(kInfo) << "session '" << spec.name << "' created (m="
                  << spec.config.m << ", c=" << spec.config.c << ")";
  return entry;
}

Result<std::shared_ptr<SessionEntry>> SessionRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::NotFound("no session named '" + name + "'");
  }
  return it->second;
}

Status SessionRegistry::Drop(const std::string& name) {
  std::shared_ptr<SessionEntry> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      return Status::NotFound("no session named '" + name + "'");
    }
    // Keep the entry alive past the lock: if this is the last reference the
    // session destructor (potentially large frees) runs without blocking
    // other registry calls.
    doomed = std::move(it->second);
    sessions_.erase(it);
  }
  Metrics().dropped.Increment();
  REPT_LOG(kInfo) << "session '" << name << "' dropped";
  return Status::OK();
}

std::vector<std::shared_ptr<SessionEntry>> SessionRegistry::List() const {
  std::vector<std::shared_ptr<SessionEntry>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(sessions_.size());
  for (const auto& [name, entry] : sessions_) out.push_back(entry);
  return out;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

Status SessionRegistry::AdmitIngest(SessionEntry& entry) {
  const uint64_t bytes = entry.session()->MemoryBytes();
  entry.memory_bytes.store(bytes, std::memory_order_relaxed);
  if (entry.memory_budget != 0 && bytes > entry.memory_budget) {
    Metrics().rejections.Increment();
    REPT_LOG(kWarn) << "session '" << entry.name << "' over budget: "
                    << bytes << " > " << entry.memory_budget << " bytes";
    return Status::ResourceExhausted(
        "session '" + entry.name + "' memory " + std::to_string(bytes) +
        " exceeds budget " + std::to_string(entry.memory_budget));
  }
  if (limits_.global_memory_budget != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (GlobalMemoryLocked() > limits_.global_memory_budget) {
      Metrics().rejections.Increment();
      REPT_LOG(kWarn) << "ingest into '" << entry.name
                      << "' breached the global memory budget";
      return Status::ResourceExhausted("global memory budget exhausted");
    }
  }
  return Status::OK();
}

uint64_t SessionRegistry::GlobalMemoryLocked() const {
  uint64_t total = 0;
  for (const auto& [name, entry] : sessions_) {
    total += entry->memory_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace rept::net
