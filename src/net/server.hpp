// rept_server's engine: a blocking-socket TCP server multiplexing many
// named estimator sessions over the framed protocol (protocol.hpp).
//
// Threading model: one accept thread plus one thread per live connection,
// all sharing a single ThreadPool for ingest fan-out. A connection thread
// runs one verb at a time (the protocol is strict request/response per
// connection); concurrency across sessions comes from multiple connections,
// and per-session writer serialization is the SessionEntry ingest mutex —
// two connections may ingest into the same session, their batches
// interleaving at batch boundaries.
//
// Error containment: a malformed payload in a well-framed message earns an
// error frame and the connection continues; framing-level corruption earns
// a best-effort error frame and the connection closes; nothing a client
// sends can crash or wedge the process.
//
// Shutdown: RequestShutdown() (from a signal handler's polling loop or the
// SHUTDOWN verb) stops the accept loop and nudges every connection's read
// side so in-flight responses still flush; Stop() joins everything and, if
// a checkpoint directory is configured, saves every session via the atomic
// tmp+rename SaveCheckpoint before returning.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/session_registry.hpp"
#include "net/socket.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace rept::net {

/// \brief Server configuration.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port from ReptServer::port().
  uint16_t port = 0;
  /// Shared ingest pool size; 0 = HardwareThreads().
  size_t pool_threads = 0;
  SessionLimits limits;
  /// Per-frame payload cap, both directions.
  uint64_t max_frame_payload = kDefaultMaxFramePayload;
  /// When nonempty, enables durability: Start() reaps orphaned `.ckpt.tmp`
  /// files and restores every `<name>.ckpt` into a live session; Stop()
  /// saves every live session to `<checkpoint_dir>/<session name>.ckpt`.
  std::string checkpoint_dir;
  /// With a checkpoint_dir: background auto-checkpoint interval. Every
  /// interval, sessions mutated since their last save are re-checkpointed
  /// (idle sessions are never rewritten), bounding what a kill -9 can lose
  /// to one interval. 0 disables the thread (save on Stop only).
  uint64_t checkpoint_every_ms = 0;
  /// Per-connection read/write deadline. A connection that sends no
  /// complete request for this long — idle or stalled mid-frame — is
  /// reaped; a peer that stops draining its replies is cut off the same
  /// way. 0 = wait forever (the pre-v3 behavior).
  uint64_t idle_timeout_ms = 0;
};

/// \brief The multiplexing session server.
class ReptServer {
 public:
  explicit ReptServer(ServerOptions options) : options_(std::move(options)) {}
  ~ReptServer() { Stop(); }

  ReptServer(const ReptServer&) = delete;
  ReptServer& operator=(const ReptServer&) = delete;

  /// Binds, listens, and spawns the accept thread. IOError if the address
  /// is unavailable.
  Status Start();

  /// Bound port (after Start); useful with ServerOptions::port == 0.
  uint16_t port() const { return listener_.port(); }

  /// Initiates shutdown without blocking: closes the listener and nudges
  /// every connection's read side. Callable from any thread, including a
  /// connection thread (the SHUTDOWN verb) — it never joins.
  void RequestShutdown();

  /// True once shutdown was requested (SHUTDOWN verb, RequestShutdown, or
  /// Stop); the signal-handling mains poll this.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Full shutdown: RequestShutdown, join the accept and connection
  /// threads, then checkpoint every session when checkpoint_dir is set.
  /// Returns the first checkpoint error (the shutdown itself cannot fail).
  /// Idempotent.
  Status Stop();

  SessionRegistry* registry() { return registry_.get(); }
  ThreadPool* pool() { return pool_.get(); }

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t frames_served() const {
    return frames_served_.load(std::memory_order_relaxed);
  }
  /// Sessions rebuilt from checkpoint files during Start().
  uint64_t sessions_recovered() const {
    return sessions_recovered_.load(std::memory_order_relaxed);
  }
  /// Connections closed by the idle-timeout reaper.
  uint64_t idle_reaps() const {
    return idle_reaps_.load(std::memory_order_relaxed);
  }

 private:
  /// One live client connection; owned jointly by the connection thread
  /// and the server's reaper/Stop paths.
  struct Connection {
    TcpSocket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<Connection>& conn);

  /// Decodes and executes one request frame. Returns the fully encoded
  /// response frame; sets `shutdown_after_reply` for the SHUTDOWN verb.
  std::vector<uint8_t> Dispatch(const Frame& frame,
                                bool& shutdown_after_reply);

  std::vector<uint8_t> HandleCreate(const Frame& frame);
  std::vector<uint8_t> HandleIngest(const Frame& frame);
  std::vector<uint8_t> HandleSnapshot(const Frame& frame);
  std::vector<uint8_t> HandleCheckpoint(const Frame& frame);
  std::vector<uint8_t> HandleRestore(const Frame& frame);
  std::vector<uint8_t> HandleDrop(const Frame& frame);
  std::vector<uint8_t> HandleStats(const Frame& frame);
  /// The process-wide obs::MetricsRegistry rendered as Prometheus text,
  /// plus per-session gauges synthesized at scrape time (so session names
  /// never enter the static registry as label cardinality).
  std::vector<uint8_t> HandleMetrics(const Frame& frame);

  /// Joins finished connection threads and drops their entries.
  void ReapConnections();

  /// Startup recovery: reap `.ckpt.tmp` orphans, then restore every
  /// `<name>.ckpt` in checkpoint_dir into a live session. Fails hard on a
  /// corrupt file — silent skips would masquerade as data loss.
  Status RecoverSessions();

  /// `<checkpoint_dir>/<name>.ckpt`.
  std::string CheckpointPath(const std::string& name) const;

  /// Saves one session (sidecar included) under its held ingest mutex.
  Status SaveEntryLocked(SessionEntry& entry);

  /// One auto-checkpoint sweep: saves sessions whose mutation counter has
  /// advanced past their last save. Returns the first error.
  Status SaveDirtySessions();

  void AutoCheckpointLoop();

  ServerOptions options_;
  TcpListener listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<SessionRegistry> registry_;

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::thread checkpoint_thread_;
  std::mutex checkpoint_mutex_;
  std::condition_variable checkpoint_cv_;

  std::atomic<bool> started_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> sessions_recovered_{0};
  std::atomic<uint64_t> idle_reaps_{0};
};

}  // namespace rept::net
