// Client side of the rept_server protocol: one blocking connection, one
// request/response exchange at a time. Not thread-safe — use one ReptClient
// per thread (connections are cheap; the server multiplexes).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "net/protocol.hpp"
#include "net/session_registry.hpp"
#include "net/socket.hpp"
#include "util/status.hpp"

namespace rept::net {

/// \brief Decoded kSnapshotResult.
struct SnapshotReply {
  uint64_t edges_ingested = 0;
  uint64_t stored_edges = 0;
  uint64_t num_vertices = 0;
  double global = 0.0;
  /// Top-k (vertex, local tally), tally-descending, ties by vertex id. May
  /// be shorter than requested when the session has fewer vertices or the
  /// full list would not fit one frame.
  std::vector<std::pair<VertexId, double>> top;
};

/// \brief Decoded kStatsResult.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t frames_served = 0;
  uint64_t total_memory_bytes = 0;
  /// Ingest-path accounting of one session, as published by the server at
  /// batch boundaries (all zero for sessions that do not track it).
  struct IngestStatsRow {
    uint64_t batches = 0;
    uint64_t sub_batches = 0;
    uint64_t routed_entries = 0;
    double route_seconds = 0.0;
    double estimate_seconds = 0.0;
  };
  struct SessionRow {
    std::string name;
    uint64_t edges_ingested = 0;
    uint64_t stored_edges = 0;
    uint64_t num_vertices = 0;
    uint64_t memory_bytes = 0;
    /// Over the session's lifetime (survives RESTORE).
    IngestStatsRow cumulative;
    /// The most recent Ingest() call only.
    IngestStatsRow last_batch;
  };
  std::vector<SessionRow> sessions;
};

/// \brief Reply of a successful INGEST (cumulative, post-batch).
struct IngestReply {
  uint64_t edges_ingested = 0;
  uint64_t stored_edges = 0;
  uint64_t memory_bytes = 0;
};

/// \brief A synchronous rept_server client.
class ReptClient {
 public:
  ReptClient() = default;

  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return socket_.valid(); }
  void Close() { socket_.Close(); }

  /// Caps outbound frames; must not exceed the server's --max-frame-mb.
  /// Ingest() chunks batches to fit.
  void set_max_frame_payload(uint64_t bytes) { max_frame_payload_ = bytes; }

  /// Opens a named session; `spec.options`/`spec.memory_budget` ride along.
  /// On success `fingerprint` (when non-null) receives the session's
  /// StateFingerprint.
  Status CreateSession(const SessionSpec& spec,
                       uint64_t* fingerprint = nullptr);

  /// Streams a batch into the named session, transparently split into as
  /// many INGEST frames as the frame cap requires. `note_vertices` (0 =
  /// none) is delivered with the first frame. Returns the cumulative
  /// accounting after the last frame.
  Result<IngestReply> Ingest(const std::string& name,
                             std::span<const Edge> edges,
                             uint64_t note_vertices = 0);

  Result<SnapshotReply> Snapshot(const std::string& name, uint32_t top_k);

  /// The session's full serialized state (a WriteCheckpointStream payload —
  /// the same bytes SaveCheckpoint would put in a file).
  Result<std::vector<uint8_t>> Checkpoint(const std::string& name);

  /// Overwrites the named session's state from Checkpoint() bytes. The
  /// session must exist with the same (config, seed) the bytes were taken
  /// from.
  Status Restore(const std::string& name, std::span<const uint8_t> bytes);

  Status DropSession(const std::string& name);

  Result<ServerStats> Stats();

  /// The server's metrics snapshot as Prometheus text exposition: the
  /// process-wide registry plus per-session `rept_session_*` gauges. See
  /// docs/server_protocol.md (METRICS) and docs/observability.md.
  Result<std::string> Metrics();

  /// Asks the server to drain and exit. The connection is unusable after.
  Status Shutdown();

 private:
  /// One request/response exchange; maps kError replies onto Status and
  /// rejects replies of any type other than `expected`.
  Result<Frame> Roundtrip(MessageType request,
                          std::span<const uint8_t> payload,
                          MessageType expected);

  TcpSocket socket_;
  uint64_t max_frame_payload_ = kDefaultMaxFramePayload;
};

}  // namespace rept::net
