// Client side of the rept_server protocol: one blocking connection, one
// request/response exchange at a time. Not thread-safe — use one ReptClient
// per thread (connections are cheap; the server multiplexes).
//
// Fault tolerance (opt in via set_reconnect_policy): when a roundtrip fails
// at the transport layer — connection dropped, reply timed out — the client
// reconnects with jittered exponential backoff, re-attaches every session
// it created (CREATE attach mode, which also resyncs the server's
// last-applied sequence number), and replays the in-flight frame. Because
// the protocol keeps at most one frame in flight and sequenced INGEST
// frames are deduped server-side, the replay is exactly-once: a drop before
// the server applied the batch re-applies it, a drop after (lost ack) is
// acknowledged without double-counting. Sequencing assumes one sequenced
// writer per session — the estimator's single-writer ingest contract;
// multi-connection shared-session workloads should leave the policy off
// (their batches stay unsequenced and the server applies them as-is).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "net/protocol.hpp"
#include "net/session_registry.hpp"
#include "net/socket.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace rept::net {

/// \brief Decoded kSnapshotResult.
struct SnapshotReply {
  uint64_t edges_ingested = 0;
  uint64_t stored_edges = 0;
  uint64_t num_vertices = 0;
  double global = 0.0;
  /// Top-k (vertex, local tally), tally-descending, ties by vertex id. May
  /// be shorter than requested when the session has fewer vertices or the
  /// full list would not fit one frame.
  std::vector<std::pair<VertexId, double>> top;
};

/// \brief Decoded kStatsResult.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t frames_served = 0;
  uint64_t total_memory_bytes = 0;
  /// Ingest-path accounting of one session, as published by the server at
  /// batch boundaries (all zero for sessions that do not track it).
  struct IngestStatsRow {
    uint64_t batches = 0;
    uint64_t sub_batches = 0;
    uint64_t routed_entries = 0;
    double route_seconds = 0.0;
    double estimate_seconds = 0.0;
  };
  struct SessionRow {
    std::string name;
    uint64_t edges_ingested = 0;
    uint64_t stored_edges = 0;
    uint64_t num_vertices = 0;
    uint64_t memory_bytes = 0;
    /// Over the session's lifetime (survives RESTORE).
    IngestStatsRow cumulative;
    /// The most recent Ingest() call only.
    IngestStatsRow last_batch;
  };
  std::vector<SessionRow> sessions;
};

/// \brief Reply of a successful INGEST (cumulative, post-batch).
struct IngestReply {
  uint64_t edges_ingested = 0;
  uint64_t stored_edges = 0;
  uint64_t memory_bytes = 0;
  /// Highest sequenced batch the server has applied to the session.
  uint64_t last_applied_seq = 0;
  /// Frames of this call the server skipped as replays (normally 0; > 0
  /// after a reconnect replayed an already-applied frame).
  uint64_t deduped_frames = 0;
};

/// \brief Auto-reconnect knobs (disabled by default).
struct ReconnectPolicy {
  bool enabled = false;
  /// Reconnect attempts per failed roundtrip before giving up.
  int max_attempts = 6;
  /// First backoff; doubles per attempt up to max_backoff_ms, each delay
  /// jittered to [delay/2, delay] so a fleet of clients does not stampede.
  uint64_t base_backoff_ms = 50;
  uint64_t max_backoff_ms = 2000;
  /// Seed of the deterministic jitter stream.
  uint64_t jitter_seed = 0x7e57c11e47ULL;
};

/// \brief A synchronous rept_server client.
class ReptClient {
 public:
  ReptClient() = default;

  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return socket_.valid(); }
  void Close() { socket_.Close(); }

  /// Caps outbound frames; must not exceed the server's --max-frame-mb.
  /// Ingest() chunks batches to fit.
  void set_max_frame_payload(uint64_t bytes) { max_frame_payload_ = bytes; }

  /// Arms auto-reconnect + exactly-once ingest sequencing (see the file
  /// comment). Set before CreateSession so the session is registered for
  /// re-attach.
  void set_reconnect_policy(const ReconnectPolicy& policy);

  /// Per-roundtrip deadline on the socket (reply must start arriving and
  /// requests must drain within this). 0 = wait forever. Takes effect on
  /// the live connection and every reconnect. After a DeadlineExceeded the
  /// connection is desynchronized; with reconnect enabled the roundtrip
  /// retries on a fresh one, otherwise the caller must Close().
  Status set_roundtrip_deadline_ms(uint64_t millis);

  /// Successful reconnects performed so far.
  uint64_t reconnects() const { return reconnects_; }

  /// Opens a named session; `spec.options`/`spec.memory_budget` ride along.
  /// On success `fingerprint` (when non-null) receives the session's
  /// StateFingerprint. With `attach` set, an existing session with the same
  /// (config, seed) is adopted instead of failing AlreadyExists, and
  /// `last_applied_seq` (when non-null) receives the server's dedup
  /// watermark — how a restarted writer learns where to resume.
  Status CreateSession(const SessionSpec& spec,
                       uint64_t* fingerprint = nullptr, bool attach = false,
                       uint64_t* last_applied_seq = nullptr);

  /// Streams a batch into the named session, transparently split into as
  /// many INGEST frames as the frame cap requires. `note_vertices` (0 =
  /// none) is delivered with the first frame. Returns the cumulative
  /// accounting after the last frame.
  Result<IngestReply> Ingest(const std::string& name,
                             std::span<const Edge> edges,
                             uint64_t note_vertices = 0);

  Result<SnapshotReply> Snapshot(const std::string& name, uint32_t top_k);

  /// The session's full serialized state (a WriteCheckpointStream payload —
  /// the same bytes SaveCheckpoint would put in a file).
  Result<std::vector<uint8_t>> Checkpoint(const std::string& name);

  /// Overwrites the named session's state from Checkpoint() bytes. The
  /// session must exist with the same (config, seed) the bytes were taken
  /// from.
  Status Restore(const std::string& name, std::span<const uint8_t> bytes);

  Status DropSession(const std::string& name);

  Result<ServerStats> Stats();

  /// The server's metrics snapshot as Prometheus text exposition: the
  /// process-wide registry plus per-session `rept_session_*` gauges. See
  /// docs/server_protocol.md (METRICS) and docs/observability.md.
  Result<std::string> Metrics();

  /// Asks the server to drain and exit. The connection is unusable after.
  Status Shutdown();

 private:
  /// Per-session client state for re-attach and ingest sequencing.
  struct SessionState {
    SessionSpec spec;
    /// Sequence number the next INGEST frame will carry.
    uint64_t next_seq = 1;
  };

  /// One request/response exchange on the current socket; maps kError
  /// replies onto Status and rejects replies of any type other than
  /// `expected`. `transport_failure` reports whether the failure happened
  /// at the frame transport (retryable on a fresh connection) as opposed to
  /// a server-delivered error (retrying would just repeat it).
  Result<Frame> Exchange(MessageType request,
                         std::span<const uint8_t> payload,
                         MessageType expected, bool* transport_failure);

  /// Exchange + the reconnect/replay loop when the policy is enabled.
  Result<Frame> Roundtrip(MessageType request,
                          std::span<const uint8_t> payload,
                          MessageType expected);

  /// The CREATE payload; shared by CreateSession and re-attach.
  static std::vector<uint8_t> EncodeCreate(const SessionSpec& spec,
                                           bool attach);

  /// Tears the socket down, redials, and re-attaches every registered
  /// session (resyncing its sequence window from the server).
  Status Reconnect();

  /// Jittered exponential backoff before reconnect attempt `attempt`.
  void BackoffSleep(int attempt);

  TcpSocket socket_;
  std::string host_;
  uint16_t port_ = 0;
  uint64_t max_frame_payload_ = kDefaultMaxFramePayload;
  uint64_t roundtrip_deadline_ms_ = 0;
  ReconnectPolicy reconnect_;
  Rng jitter_{0};
  uint64_t reconnects_ = 0;
  std::map<std::string, SessionState> sessions_;
};

}  // namespace rept::net
