// Planted-structure generator: disjoint cliques over an Erdős–Rényi
// background. Because the cliques occupy disjoint vertex sets, the graph is
// guaranteed at least num_cliques * C(clique_size, 3) triangles — a useful
// lower-bound fixture — while the exact counter supplies ground truth for
// the full mixture.
#pragma once

#include <cstdint>

#include "graph/edge_stream.hpp"

namespace rept::gen {

struct PlantedCliqueParams {
  VertexId num_vertices = 0;
  uint64_t background_edges = 0;
  uint32_t num_cliques = 0;
  uint32_t clique_size = 0;
};

/// Clique vertex sets are disjoint, drawn from a seeded permutation of the
/// vertex ids; clique edges and background edges are interleaved into a
/// shuffled stream. Duplicate background/clique edges are removed.
EdgeStream PlantedCliques(const PlantedCliqueParams& params, uint64_t seed);

}  // namespace rept::gen
