// Erdős–Rényi G(n, M): M distinct uniform edges. Low clustering baseline and
// the background noise layer for planted-structure fixtures.
#pragma once

#include <cstdint>

#include "graph/edge_stream.hpp"

namespace rept::gen {

struct ErdosRenyiParams {
  VertexId num_vertices = 0;
  uint64_t num_edges = 0;
};

/// Generates exactly `num_edges` distinct non-loop edges chosen uniformly
/// from all C(n,2) pairs; stream order is the (random) generation order.
/// Requires num_edges <= C(n,2).
EdgeStream ErdosRenyi(const ErdosRenyiParams& params, uint64_t seed);

}  // namespace rept::gen
