// Holme–Kim model: Barabási–Albert preferential attachment plus a triad-
// formation step, producing power-law degrees *and* tunable (potentially very
// high) clustering. With triad probability near 1 this is our stand-in for
// extremely triangle-dense graphs such as Flickr (Table II: 108 M triangles
// on only 2.3 M edges).
#pragma once

#include <cstdint>

#include "graph/edge_stream.hpp"

namespace rept::gen {

struct HolmeKimParams {
  VertexId num_vertices = 0;
  /// Edges added per new vertex.
  uint32_t edges_per_vertex = 1;
  /// Probability that each attachment after the first closes a triangle with
  /// the previous target instead of following preferential attachment.
  double triad_probability = 0.5;
};

EdgeStream HolmeKim(const HolmeKimParams& params, uint64_t seed);

}  // namespace rept::gen
