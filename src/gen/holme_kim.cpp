#include "gen/holme_kim.hpp"

#include <unordered_set>

#include "util/check.hpp"
#include "util/random.hpp"

namespace rept::gen {

EdgeStream HolmeKim(const HolmeKimParams& params, uint64_t seed) {
  const VertexId n = params.num_vertices;
  const uint32_t m = params.edges_per_vertex;
  const double pt = params.triad_probability;
  REPT_CHECK(m >= 1);
  REPT_CHECK(pt >= 0.0 && pt <= 1.0);
  const VertexId seed_size = m + 1;
  REPT_CHECK(n > seed_size);

  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(seed_size) * (seed_size - 1) / 2 +
                static_cast<size_t>(n - seed_size) * m);
  std::vector<VertexId> endpoints;          // preferential-attachment urn
  endpoints.reserve(edges.capacity() * 2);
  std::vector<std::vector<VertexId>> adj(n);  // needed for triad steps

  auto add_edge = [&](VertexId a, VertexId b) {
    edges.emplace_back(a, b);
    endpoints.push_back(a);
    endpoints.push_back(b);
    adj[a].push_back(b);
    adj[b].push_back(a);
  };

  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) add_edge(u, v);
  }

  std::unordered_set<VertexId> picked;
  picked.reserve(m);
  for (VertexId v = seed_size; v < n; ++v) {
    picked.clear();
    VertexId last_target = 0;
    bool have_last = false;
    uint32_t added = 0;
    while (added < m) {
      VertexId target = 0;
      bool found = false;
      if (have_last && rng.Bernoulli(pt)) {
        // Triad formation: link to a not-yet-picked neighbor of last_target.
        const auto& nbrs = adj[last_target];
        // Rejection-sample a few times; dense nodes almost always succeed.
        for (int attempt = 0; attempt < 8 && !found; ++attempt) {
          const VertexId w = nbrs[rng.Below(nbrs.size())];
          if (w != v && picked.find(w) == picked.end()) {
            target = w;
            found = true;
          }
        }
      }
      while (!found) {
        const VertexId w = endpoints[rng.Below(endpoints.size())];
        if (w != v && picked.find(w) == picked.end()) {
          target = w;
          found = true;
        }
      }
      picked.insert(target);
      add_edge(v, target);
      last_target = target;
      have_last = true;
      ++added;
    }
  }
  return EdgeStream("holme_kim", n, std::move(edges));
}

}  // namespace rept::gen
