#include "gen/rmat.hpp"

#include <cmath>
#include <unordered_set>

#include "util/check.hpp"
#include "util/random.hpp"

namespace rept::gen {

EdgeStream Rmat(const RmatParams& params, uint64_t seed) {
  REPT_CHECK(params.scale >= 1 && params.scale <= 30);
  const double sum = params.a + params.b + params.c + params.d;
  REPT_CHECK(std::abs(sum - 1.0) < 1e-9);
  const VertexId n = VertexId{1} << params.scale;

  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(params.num_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(params.num_edges * 2);

  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  uint64_t attempts = 0;
  const uint64_t max_attempts =
      params.num_edges * static_cast<uint64_t>(params.max_attempt_factor);
  while (edges.size() < params.num_edges && attempts < max_attempts) {
    ++attempts;
    VertexId u = 0;
    VertexId v = 0;
    for (uint32_t level = 0; level < params.scale; ++level) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left quadrant: no bits set
      } else if (r < ab) {
        v |= 1;
      } else if (r < abc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    edges.emplace_back(u, v);
  }
  return EdgeStream("rmat", n, std::move(edges));
}

}  // namespace rept::gen
