#include "gen/watts_strogatz.hpp"

#include <unordered_set>

#include "util/check.hpp"
#include "util/random.hpp"

namespace rept::gen {

EdgeStream WattsStrogatz(const WattsStrogatzParams& params, uint64_t seed) {
  const VertexId n = params.num_vertices;
  const uint32_t k = params.k;
  REPT_CHECK(k >= 2 && k % 2 == 0);
  REPT_CHECK(n > k);
  REPT_CHECK(params.beta >= 0.0 && params.beta <= 1.0);

  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(n) * (k / 2));
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * (k / 2));

  // Lattice edges (u, u+offset mod n), rewired with probability beta.
  for (uint32_t offset = 1; offset <= k / 2; ++offset) {
    for (VertexId u = 0; u < n; ++u) {
      VertexId v = (u + offset) % n;
      if (rng.Bernoulli(params.beta)) {
        // Rewire: keep u, redraw v avoiding loops and duplicates.
        for (int attempt = 0; attempt < 16; ++attempt) {
          const VertexId w = static_cast<VertexId>(rng.Below(n));
          if (w != u && seen.find(EdgeKey(u, w)) == seen.end()) {
            v = w;
            break;
          }
        }
      }
      if (u == v) continue;
      if (!seen.insert(EdgeKey(u, v)).second) continue;
      edges.emplace_back(u, v);
    }
  }
  return EdgeStream("watts_strogatz", n, std::move(edges));
}

}  // namespace rept::gen
