// Barabási–Albert preferential attachment: heavy-tailed degrees, modest
// triangle density. Stand-in base for social-network-like streams.
#pragma once

#include <cstdint>

#include "graph/edge_stream.hpp"

namespace rept::gen {

struct BarabasiAlbertParams {
  VertexId num_vertices = 0;
  /// Edges added per new vertex (attachment count).
  uint32_t edges_per_vertex = 1;
};

/// Classic BA model seeded with a complete graph on (edges_per_vertex + 1)
/// vertices. Each arriving vertex attaches to `edges_per_vertex` distinct
/// existing vertices chosen proportionally to degree.
EdgeStream BarabasiAlbert(const BarabasiAlbertParams& params, uint64_t seed);

}  // namespace rept::gen
