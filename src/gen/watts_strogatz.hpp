// Watts–Strogatz small-world model: a ring lattice with rewiring. High,
// uniform clustering with narrow degree spread — the opposite regime from
// R-MAT, rounding out the eta/tau spectrum the dataset suite covers.
#pragma once

#include <cstdint>

#include "graph/edge_stream.hpp"

namespace rept::gen {

struct WattsStrogatzParams {
  VertexId num_vertices = 0;
  /// Each vertex connects to `k` nearest ring neighbors (k even, k/2 each
  /// side).
  uint32_t k = 4;
  /// Probability of rewiring each lattice edge's far endpoint.
  double beta = 0.1;
};

EdgeStream WattsStrogatz(const WattsStrogatzParams& params, uint64_t seed);

}  // namespace rept::gen
