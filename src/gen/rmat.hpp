// R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos 2004):
// heavy-tailed, community-structured graphs. Our primary stand-in family for
// the paper's large social / web graphs, with the (a,b,c,d) quadrant
// probabilities steering degree skew and triangle-pair overlap (the eta/tau
// ratio Figure 1 studies).
#pragma once

#include <cstdint>

#include "graph/edge_stream.hpp"

namespace rept::gen {

struct RmatParams {
  /// num_vertices = 2^scale.
  uint32_t scale = 10;
  /// Target number of distinct edges.
  uint64_t num_edges = 0;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Give up after max_attempt_factor * num_edges samples (deduplication can
  /// starve extremely skewed configurations); the stream then simply has
  /// fewer edges.
  uint32_t max_attempt_factor = 32;
};

EdgeStream Rmat(const RmatParams& params, uint64_t seed);

}  // namespace rept::gen
