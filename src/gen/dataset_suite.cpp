#include "gen/dataset_suite.hpp"

#include <algorithm>
#include <cmath>

#include "gen/barabasi_albert.hpp"
#include "gen/holme_kim.hpp"
#include "gen/rmat.hpp"
#include "graph/permutation.hpp"
#include "util/random.hpp"

namespace rept::gen {

namespace {

double SizeFactor(DatasetSize size) {
  switch (size) {
    case DatasetSize::kTiny:
      return 0.1;
    case DatasetSize::kSmall:
      return 0.3;
    case DatasetSize::kDefault:
      return 1.0;
  }
  return 1.0;
}

uint32_t ScaledLog2(uint32_t base_scale, double factor) {
  // Scaling vertex count n = 2^s by `factor` shifts s by log2(factor).
  const double s = base_scale + std::log2(factor);
  return static_cast<uint32_t>(std::max(8.0, std::round(s)));
}

VertexId ScaledCount(VertexId base, double factor, VertexId minimum) {
  const double scaled = static_cast<double>(base) * factor;
  return std::max<VertexId>(minimum, static_cast<VertexId>(scaled));
}

uint64_t ScaledEdges(uint64_t base, double factor) {
  return std::max<uint64_t>(1024, static_cast<uint64_t>(
                                      static_cast<double>(base) * factor));
}

}  // namespace

const std::vector<DatasetInfo>& DatasetCatalog() {
  static const std::vector<DatasetInfo> kCatalog = {
      {"twitter-sim", "Twitter", "R-MAT s=12 |E|=131k skew=0.65 (eta-heavy)"},
      {"orkut-sim", "com-Orkut", "R-MAT s=13 |E|=131k skew=0.57 (dense)"},
      {"livejournal-sim", "LiveJournal", "R-MAT s=14 |E|=98k skew=0.52"},
      {"pokec-sim", "Pokec", "R-MAT s=14 |E|=82k skew=0.48"},
      {"flickr-sim", "Flickr", "Holme-Kim n=6k m=16 pt=0.95 (triangle-dense)"},
      {"wikitalk-sim", "Wiki-Talk", "R-MAT s=15 |E|=49k skew=0.65 (star-heavy)"},
      {"webgoogle-sim", "Web-Google", "Holme-Kim n=24k m=4 pt=0.5"},
      {"youtube-sim", "YouTube", "Holme-Kim n=40k m=2 pt=0.25 (triangle-poor)"},
  };
  return kCatalog;
}

Result<EdgeStream> MakeDataset(const std::string& name, DatasetSize size,
                               uint64_t seed) {
  const double f = SizeFactor(size);
  SeedSequence seeds(seed, /*salt=*/0xda7a5e7);
  // Stable per-dataset seeds so one dataset's stream does not change when
  // others are regenerated at a different time.
  uint64_t index = 0;
  for (const DatasetInfo& info : DatasetCatalog()) {
    if (info.name == name) break;
    ++index;
  }
  const uint64_t gen_seed = seeds.SeedFor(index * 2);
  const uint64_t shuffle_seed = seeds.SeedFor(index * 2 + 1);

  EdgeStream stream;
  if (name == "twitter-sim") {
    // Dense, highly skewed: the eta/tau >> 1 regime where the covariance
    // term dominates (the paper's Twitter has the most extreme ratio).
    RmatParams p;
    p.scale = ScaledLog2(12, f);
    p.num_edges = ScaledEdges(131072, f);
    p.a = 0.65;
    p.b = 0.15;
    p.c = 0.15;
    p.d = 0.05;
    stream = Rmat(p, gen_seed);
  } else if (name == "orkut-sim") {
    RmatParams p;
    p.scale = ScaledLog2(13, f);
    p.num_edges = ScaledEdges(131072, f);
    p.a = 0.57;
    p.b = 0.19;
    p.c = 0.19;
    p.d = 0.05;
    stream = Rmat(p, gen_seed);
  } else if (name == "livejournal-sim") {
    RmatParams p;
    p.scale = ScaledLog2(14, f);
    p.num_edges = ScaledEdges(98304, f);
    p.a = 0.52;
    p.b = 0.20;
    p.c = 0.20;
    p.d = 0.08;
    stream = Rmat(p, gen_seed);
  } else if (name == "pokec-sim") {
    RmatParams p;
    p.scale = ScaledLog2(14, f);
    p.num_edges = ScaledEdges(81920, f);
    p.a = 0.48;
    p.b = 0.22;
    p.c = 0.22;
    p.d = 0.08;
    stream = Rmat(p, gen_seed);
  } else if (name == "flickr-sim") {
    HolmeKimParams p;
    p.num_vertices = ScaledCount(6000, f, 64);
    p.edges_per_vertex = 16;
    p.triad_probability = 0.95;
    stream = HolmeKim(p, gen_seed);
  } else if (name == "wikitalk-sim") {
    RmatParams p;
    p.scale = ScaledLog2(15, f);
    p.num_edges = ScaledEdges(49152, f);
    p.a = 0.65;
    p.b = 0.15;
    p.c = 0.15;
    p.d = 0.05;
    stream = Rmat(p, gen_seed);
  } else if (name == "webgoogle-sim") {
    HolmeKimParams p;
    p.num_vertices = ScaledCount(24000, f, 64);
    p.edges_per_vertex = 4;
    p.triad_probability = 0.5;
    stream = HolmeKim(p, gen_seed);
  } else if (name == "youtube-sim") {
    // Light triad closure: triangle-poor but not triangle-free, matching
    // YouTube's tau ~ |E| regime.
    HolmeKimParams p;
    p.num_vertices = ScaledCount(40000, f, 64);
    p.edges_per_vertex = 2;
    p.triad_probability = 0.25;
    stream = HolmeKim(p, gen_seed);
  } else {
    return Status::NotFound("unknown dataset: " + name);
  }

  ShuffleStream(stream, shuffle_seed);
  stream.set_name(name);
  return stream;
}

std::vector<EdgeStream> MakeSuite(DatasetSize size, uint64_t seed) {
  std::vector<EdgeStream> suite;
  suite.reserve(DatasetCatalog().size());
  for (const DatasetInfo& info : DatasetCatalog()) {
    suite.push_back(std::move(MakeDataset(info.name, size, seed).value()));
  }
  return suite;
}

}  // namespace rept::gen
