#include "gen/erdos_renyi.hpp"

#include <unordered_set>

#include "util/check.hpp"
#include "util/random.hpp"

namespace rept::gen {

EdgeStream ErdosRenyi(const ErdosRenyiParams& params, uint64_t seed) {
  const VertexId n = params.num_vertices;
  const uint64_t m = params.num_edges;
  REPT_CHECK(n >= 2);
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  REPT_CHECK(m <= max_edges);

  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  while (edges.size() < m) {
    const VertexId u = static_cast<VertexId>(rng.Below(n));
    const VertexId v = static_cast<VertexId>(rng.Below(n));
    if (u == v) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    edges.emplace_back(u, v);
  }
  return EdgeStream("erdos_renyi", n, std::move(edges));
}

}  // namespace rept::gen
