// Deterministic graph families with closed-form triangle structure. These
// are the primary fixtures of the exactness tests:
//   complete K_n:        tau = C(n,3), tau_v = C(n-1,2)
//   wheel W_n (rim >=4): tau = rim, tau_center = rim, tau_rim_vertex = 2
//   star / path / cycle(>3) / complete bipartite / grid: tau = 0
#pragma once

#include "graph/edge_stream.hpp"

namespace rept::gen {

/// K_n; edges in lexicographic (u < v) order.
EdgeStream Complete(VertexId n);

/// Star with center 0 and `leaves` leaves.
EdgeStream Star(VertexId leaves);

/// Simple path 0-1-...-(n-1).
EdgeStream Path(VertexId n);

/// Cycle 0-1-...-(n-1)-0; n >= 3 (n == 3 is a triangle).
EdgeStream Cycle(VertexId n);

/// Wheel: cycle of `rim` vertices (ids 1..rim) plus center 0 joined to all.
/// Spokes stream first, then rim edges.
EdgeStream Wheel(VertexId rim);

/// K_{a,b}: triangle-free.
EdgeStream CompleteBipartite(VertexId a, VertexId b);

/// rows x cols 4-neighbor grid: triangle-free.
EdgeStream Grid(VertexId rows, VertexId cols);

}  // namespace rept::gen
