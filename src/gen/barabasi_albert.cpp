#include "gen/barabasi_albert.hpp"

#include <unordered_set>

#include "util/check.hpp"
#include "util/random.hpp"

namespace rept::gen {

EdgeStream BarabasiAlbert(const BarabasiAlbertParams& params, uint64_t seed) {
  const VertexId n = params.num_vertices;
  const uint32_t m = params.edges_per_vertex;
  REPT_CHECK(m >= 1);
  const VertexId seed_size = m + 1;
  REPT_CHECK(n > seed_size);

  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(seed_size) * (seed_size - 1) / 2 +
                static_cast<size_t>(n - seed_size) * m);

  // Repeated-endpoint array: each vertex appears once per unit of degree, so
  // a uniform draw implements preferential attachment.
  std::vector<VertexId> endpoints;
  endpoints.reserve(edges.capacity() * 2);

  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::unordered_set<VertexId> picked;
  picked.reserve(m);
  for (VertexId v = seed_size; v < n; ++v) {
    picked.clear();
    while (picked.size() < m) {
      const VertexId target = endpoints[rng.Below(endpoints.size())];
      picked.insert(target);
    }
    for (VertexId target : picked) {
      edges.emplace_back(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return EdgeStream("barabasi_albert", n, std::move(edges));
}

}  // namespace rept::gen
