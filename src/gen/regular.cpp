#include "gen/regular.hpp"

#include "util/check.hpp"

namespace rept::gen {

EdgeStream Complete(VertexId n) {
  REPT_CHECK(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return EdgeStream("complete", n, std::move(edges));
}

EdgeStream Star(VertexId leaves) {
  REPT_CHECK(leaves >= 1);
  std::vector<Edge> edges;
  edges.reserve(leaves);
  for (VertexId v = 1; v <= leaves; ++v) edges.emplace_back(0, v);
  return EdgeStream("star", leaves + 1, std::move(edges));
}

EdgeStream Path(VertexId n) {
  REPT_CHECK(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return EdgeStream("path", n, std::move(edges));
}

EdgeStream Cycle(VertexId n) {
  REPT_CHECK(n >= 3);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  edges.emplace_back(n - 1, 0);
  return EdgeStream("cycle", n, std::move(edges));
}

EdgeStream Wheel(VertexId rim) {
  REPT_CHECK(rim >= 3);
  std::vector<Edge> edges;
  edges.reserve(2 * static_cast<size_t>(rim));
  for (VertexId v = 1; v <= rim; ++v) edges.emplace_back(0, v);
  for (VertexId v = 1; v < rim; ++v) edges.emplace_back(v, v + 1);
  edges.emplace_back(rim, 1);
  return EdgeStream("wheel", rim + 1, std::move(edges));
}

EdgeStream CompleteBipartite(VertexId a, VertexId b) {
  REPT_CHECK(a >= 1 && b >= 1);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(a) * b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  }
  return EdgeStream("complete_bipartite", a + b, std::move(edges));
}

EdgeStream Grid(VertexId rows, VertexId cols) {
  REPT_CHECK(rows >= 1 && cols >= 1);
  std::vector<Edge> edges;
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return EdgeStream("grid", rows * cols, std::move(edges));
}

}  // namespace rept::gen
