// The eight synthetic stand-ins for the paper's Table II datasets.
//
// The real graphs (Twitter 1.2 B edges, com-Orkut, LiveJournal, Pokec,
// Flickr, Wiki-Talk, Web-Google, YouTube) are not redistributable inside
// this offline environment, so each is replaced by a seeded generator
// configuration chosen to reproduce the property the evaluation actually
// exercises: a wide spread of eta/tau ratios (Figure 1) and heavy-tailed
// degrees, at sizes where every bench completes in minutes. See DESIGN.md §4
// for the substitution argument and EXPERIMENTS.md for measured tau/eta per
// stand-in.
#pragma once

#include <string>
#include <vector>

#include "graph/edge_stream.hpp"
#include "util/status.hpp"

namespace rept::gen {

/// Relative size of the generated stand-ins.
enum class DatasetSize {
  kTiny,     // ~10% of default; unit/integration tests
  kSmall,    // ~30% of default; quick bench runs
  kDefault,  // bench default (1e5-class edge counts)
};

struct DatasetInfo {
  std::string name;        // e.g. "twitter-sim"
  std::string paper_name;  // e.g. "Twitter"
  std::string generator;   // human-readable generator description
};

/// Names of the eight stand-ins, in the paper's Table II order.
const std::vector<DatasetInfo>& DatasetCatalog();

/// Generates a stand-in by name ("twitter-sim", ..., "youtube-sim").
/// The stream order is a seeded shuffle (uniformly random arrival order).
Result<EdgeStream> MakeDataset(const std::string& name,
                               DatasetSize size = DatasetSize::kDefault,
                               uint64_t seed = 42);

/// Generates the full suite in catalog order.
std::vector<EdgeStream> MakeSuite(DatasetSize size = DatasetSize::kDefault,
                                  uint64_t seed = 42);

}  // namespace rept::gen
