#include "gen/planted.hpp"

#include <numeric>
#include <unordered_set>

#include "util/check.hpp"
#include "util/random.hpp"

namespace rept::gen {

EdgeStream PlantedCliques(const PlantedCliqueParams& params, uint64_t seed) {
  const VertexId n = params.num_vertices;
  REPT_CHECK(n >= 2);
  REPT_CHECK(static_cast<uint64_t>(params.num_cliques) * params.clique_size <=
             n);

  Rng rng(seed);
  const size_t expected_edges =
      static_cast<size_t>(params.num_cliques) * params.clique_size *
          (params.clique_size - 1) / 2 +
      static_cast<size_t>(params.background_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(expected_edges);
  std::vector<Edge> edges;
  edges.reserve(expected_edges);

  // Disjoint clique membership from a seeded permutation prefix.
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Below(i)]);
  }
  size_t cursor = 0;
  for (uint32_t k = 0; k < params.num_cliques; ++k) {
    for (uint32_t i = 0; i < params.clique_size; ++i) {
      for (uint32_t j = i + 1; j < params.clique_size; ++j) {
        const VertexId u = perm[cursor + i];
        const VertexId v = perm[cursor + j];
        if (seen.insert(EdgeKey(u, v)).second) edges.emplace_back(u, v);
      }
    }
    cursor += params.clique_size;
  }

  uint64_t added_background = 0;
  uint64_t attempts = 0;
  const uint64_t max_attempts = params.background_edges * 32 + 1024;
  while (added_background < params.background_edges &&
         attempts < max_attempts) {
    ++attempts;
    const VertexId u = static_cast<VertexId>(rng.Below(n));
    const VertexId v = static_cast<VertexId>(rng.Below(n));
    if (u == v) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    edges.emplace_back(u, v);
    ++added_background;
  }

  // Interleave plant and background in the stream.
  for (size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.Below(i)]);
  }
  return EdgeStream("planted_cliques", n, std::move(edges));
}

}  // namespace rept::gen
