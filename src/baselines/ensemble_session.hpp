// Streaming session of a ParallelEnsemble: c independent StreamCounter
// instances fed batch by batch, estimates averaged at every Snapshot().
//
// Determinism matches the pre-session batch runner: instance i is seeded
// with SeedSequence(seed).SeedFor(i), consumes the ingested edge sequence in
// arrival order, and the combination accumulates in fixed instance order —
// so a full-ingest Snapshot() is bit-identical to the legacy Run()
// regardless of batch boundaries or the thread pool.
//
// Concurrency: single-writer, concurrent snapshots OK (the
// StreamingEstimator contract). Baseline counters have no published-tally
// fast path, so Snapshot() and StoredEdges() serialize with the in-flight
// batch on a mutex — a mid-ingest reader blocks for at most one batch and
// always observes a batch boundary.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "baselines/stream_counter.hpp"
#include "core/estimates.hpp"
#include "core/streaming_estimator.hpp"

namespace rept {

class ThreadPool;

/// \brief Streaming session over c independent baseline instances.
class EnsembleSession : public StreamingEstimator {
 public:
  /// Budget-based instances size their reservoirs from
  /// `factory->BudgetFor(options.expected_edges)`; with no hint the
  /// factory's default budget applies. `pool` may be nullptr and must
  /// outlive the session.
  EnsembleSession(std::shared_ptr<const StreamCounterFactory> factory,
                  uint32_t c, std::string name, uint64_t seed,
                  ThreadPool* pool, const SessionOptions& options = {});

  std::string Name() const override { return name_; }

  using StreamingEstimator::Ingest;
  void Ingest(std::span<const Edge> edges) override;

  TriangleEstimates Snapshot() const override;
  uint64_t StoredEdges() const override;

  /// Binds a checkpoint to (display name, instance count, per-instance
  /// budget, seed). The name carries the method and its (m, c) label, and
  /// the budget pins the reservoir sizing that SessionOptions hints chose
  /// at creation, so a restored session always re-derives identical
  /// instances; per-counter construction parameters are additionally echoed
  /// and verified inside each instance payload.
  uint64_t StateFingerprint() const override;
  Status Checkpoint(CheckpointWriter& writer) const override;
  Status Restore(CheckpointReader& reader) override;

  /// The per-instance stored-edge budget the session was opened with (0 for
  /// probability-based methods).
  uint64_t edge_budget() const { return edge_budget_; }

 private:
  std::string name_;
  ThreadPool* pool_;
  uint64_t seed_;
  uint64_t edge_budget_;
  std::vector<std::unique_ptr<StreamCounter>> instances_;
  /// Serializes instance mutation (Ingest) against concurrent snapshots.
  mutable std::mutex ingest_mutex_;
};

}  // namespace rept
