#include "baselines/mascot.hpp"

#include "util/check.hpp"

namespace rept {

MascotCounter::MascotCounter(double p, uint64_t seed, bool track_local)
    : p_(p), inv_p2_(1.0 / (p * p)), rng_(seed) {
  REPT_CHECK(p > 0.0 && p <= 1.0);
  SemiTriangleCounter::Options options;
  options.track_local = track_local;
  counter_ = SemiTriangleCounter(options);
}

void MascotCounter::ProcessEdge(VertexId u, VertexId v) {
  counter_.CountArrival(u, v);
  if (rng_.Bernoulli(p_)) counter_.InsertSampled(u, v);
}

}  // namespace rept
