#include "baselines/mascot.hpp"

#include <cstring>

#include "persist/checkpoint_io.hpp"
#include "persist/state_codec.hpp"
#include "util/check.hpp"

namespace rept {

MascotCounter::MascotCounter(double p, uint64_t seed, bool track_local)
    : p_(p), inv_p2_(1.0 / (p * p)), rng_(seed) {
  REPT_CHECK(p > 0.0 && p <= 1.0);
  SemiTriangleCounter::Options options;
  options.track_local = track_local;
  counter_ = SemiTriangleCounter(options);
}

void MascotCounter::ProcessEdge(VertexId u, VertexId v) {
  // One Bernoulli draw per edge either way, and the count never touches the
  // RNG — flipping first is bit-identical and lets the (usual) reject path
  // take the lighter no-store arrival.
  if (rng_.Bernoulli(p_)) {
    counter_.CountArrival(u, v);
    counter_.InsertSampled(u, v);
  } else {
    counter_.CountArrivalNoStore(u, v);
  }
}

Status MascotCounter::SaveState(CheckpointWriter& writer) const {
  writer.AppendU8('M');
  writer.AppendDouble(p_);
  SaveRng(writer, rng_);
  counter_.SaveState(writer);
  return writer.status();
}

Status MascotCounter::LoadState(CheckpointReader& reader) {
  if (reader.ReadU8() != 'M') {
    return Status::Corruption("not a MASCOT instance payload");
  }
  const double p = reader.ReadDouble();
  REPT_RETURN_NOT_OK(reader.status());
  if (std::memcmp(&p, &p_, sizeof(p)) != 0) {
    return Status::Corruption(
        "MASCOT sampling probability mismatch: checkpoint was written by a "
        "differently configured instance");
  }
  REPT_RETURN_NOT_OK(LoadRng(reader, rng_));
  return counter_.LoadState(reader);
}

}  // namespace rept
