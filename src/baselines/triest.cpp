#include "baselines/triest.hpp"

#include "persist/checkpoint_io.hpp"
#include "persist/state_codec.hpp"
#include "util/check.hpp"

namespace rept {

TriestCounter::TriestCounter(uint64_t budget, uint64_t seed,
                             TriestVariant variant, bool track_local)
    : variant_(variant),
      budget_(budget),
      track_local_(track_local),
      rng_(seed) {
  REPT_CHECK(budget_ >= 6);  // keeps both xi denominators positive
  reservoir_.reserve(budget_);
}

Status TriestCounter::SaveState(CheckpointWriter& writer) const {
  writer.AppendU8('T');
  writer.AppendU8(variant_ == TriestVariant::kImpr ? 0 : 1);
  writer.AppendU8(track_local_ ? 1 : 0);
  writer.AppendU64(budget_);
  writer.AppendU64(t_);
  SaveRng(writer, rng_);
  writer.AppendDouble(global_);
  // Reservoir slots in index order: eviction picks a slot by index, so the
  // layout (not just the edge set) is part of the resumable state. The
  // adjacency is serialized separately rather than rebuilt from the
  // reservoir — duplicate stream edges can leave the two out of sync (a
  // later eviction of one copy erases the adjacency entry), and restore
  // must reproduce the sample exactly as it was.
  writer.AppendU64(reservoir_.size());
  for (const Edge& e : reservoir_) {
    writer.AppendU32(e.u);
    writer.AppendU32(e.v);
  }
  SaveSampledGraph(writer, sample_);
  SaveVertexTallies(writer, local_);
  return writer.status();
}

Status TriestCounter::LoadState(CheckpointReader& reader) {
  if (reader.ReadU8() != 'T') {
    return Status::Corruption("not a TRIEST instance payload");
  }
  const bool is_base = reader.ReadU8() != 0;
  const bool track_local = reader.ReadU8() != 0;
  const uint64_t budget = reader.ReadU64();
  const uint64_t t = reader.ReadU64();
  REPT_RETURN_NOT_OK(reader.status());
  if (is_base != (variant_ == TriestVariant::kBase) || budget != budget_ ||
      track_local != track_local_) {
    return Status::Corruption(
        "TRIEST variant/budget mismatch: checkpoint was written by a "
        "differently configured instance");
  }
  REPT_RETURN_NOT_OK(LoadRng(reader, rng_));
  const double global = reader.ReadDouble();
  const uint64_t reservoir_size =
      reader.ReadCount(2 * sizeof(VertexId));
  REPT_RETURN_NOT_OK(reader.status());
  if (reservoir_size > budget_) {
    return Status::Corruption("TRIEST reservoir exceeds its budget");
  }
  std::vector<Edge> reservoir;
  reservoir.reserve(budget_);
  for (uint64_t i = 0; i < reservoir_size; ++i) {
    const VertexId u = reader.ReadU32();
    const VertexId v = reader.ReadU32();
    reservoir.emplace_back(u, v);
  }
  REPT_RETURN_NOT_OK(reader.status());
  REPT_RETURN_NOT_OK(LoadSampledGraph(reader, sample_));
  REPT_RETURN_NOT_OK(LoadVertexTallies(reader, local_));
  t_ = t;
  global_ = global;
  reservoir_ = std::move(reservoir);
  return Status::OK();
}

double TriestCounter::EstimateScale() const {
  if (variant_ == TriestVariant::kImpr) return 1.0;
  const double t = static_cast<double>(t_);
  const double m = static_cast<double>(budget_);
  const double xi =
      (t * (t - 1.0) * (t - 2.0)) / (m * (m - 1.0) * (m - 2.0));
  return xi > 1.0 ? xi : 1.0;
}

double TriestCounter::GlobalEstimate() const {
  return global_ * EstimateScale();
}

void TriestCounter::AccumulateLocal(std::vector<double>& acc,
                                    double weight) const {
  const double scale = weight * EstimateScale();
  for (const auto& [v, count] : local_) {
    REPT_DCHECK(v < acc.size());
    acc[v] += scale * count;
  }
}

void TriestCounter::CountInSample(VertexId u, VertexId v, double delta) {
  scratch_.clear();
  sample_.ForEachCommonNeighbor(u, v,
                                [this](VertexId w) { scratch_.push_back(w); });
  if (scratch_.empty()) return;
  global_ += delta * static_cast<double>(scratch_.size());
  if (track_local_) {
    local_[u] += delta * static_cast<double>(scratch_.size());
    local_[v] += delta * static_cast<double>(scratch_.size());
    for (VertexId w : scratch_) local_[w] += delta;
  }
}

bool TriestCounter::ReservoirSample(VertexId u, VertexId v) {
  if (t_ <= budget_) {
    reservoir_.emplace_back(u, v);
    sample_.Insert(u, v);
    return true;
  }
  if (!rng_.Bernoulli(static_cast<double>(budget_) /
                      static_cast<double>(t_))) {
    return false;
  }
  const size_t slot = static_cast<size_t>(rng_.Below(budget_));
  const Edge evicted = reservoir_[slot];
  if (variant_ == TriestVariant::kBase) {
    // BASE decrements the triangles the evicted edge participated in.
    CountInSample(evicted.u, evicted.v, -1.0);
  }
  sample_.Erase(evicted.u, evicted.v);
  reservoir_[slot] = Edge(u, v);
  sample_.Insert(u, v);
  return true;
}

void TriestCounter::ProcessEdge(VertexId u, VertexId v) {
  if (u == v) return;
  ++t_;
  if (variant_ == TriestVariant::kImpr) {
    // Weighted unconditional count before the reservoir decision.
    const double t = static_cast<double>(t_);
    const double m = static_cast<double>(budget_);
    double xi = ((t - 1.0) * (t - 2.0)) / (m * (m - 1.0));
    if (xi < 1.0) xi = 1.0;
    CountInSample(u, v, xi);
    ReservoirSample(u, v);
  } else {
    // BASE counts only after (and if) the edge enters the reservoir. The
    // arriving edge itself is not yet in the sample when intersecting, and
    // the intersection N(u) ∩ N(v) does not contain u or v, so counting
    // after insertion is equivalent.
    if (ReservoirSample(u, v)) CountInSample(u, v, 1.0);
  }
}

}  // namespace rept
