#include "baselines/triest.hpp"

#include "util/check.hpp"

namespace rept {

TriestCounter::TriestCounter(uint64_t budget, uint64_t seed,
                             TriestVariant variant, bool track_local)
    : variant_(variant),
      budget_(budget),
      track_local_(track_local),
      rng_(seed) {
  REPT_CHECK(budget_ >= 6);  // keeps both xi denominators positive
  reservoir_.reserve(budget_);
}

double TriestCounter::EstimateScale() const {
  if (variant_ == TriestVariant::kImpr) return 1.0;
  const double t = static_cast<double>(t_);
  const double m = static_cast<double>(budget_);
  const double xi =
      (t * (t - 1.0) * (t - 2.0)) / (m * (m - 1.0) * (m - 2.0));
  return xi > 1.0 ? xi : 1.0;
}

double TriestCounter::GlobalEstimate() const {
  return global_ * EstimateScale();
}

void TriestCounter::AccumulateLocal(std::vector<double>& acc,
                                    double weight) const {
  const double scale = weight * EstimateScale();
  for (const auto& [v, count] : local_) {
    REPT_DCHECK(v < acc.size());
    acc[v] += scale * count;
  }
}

void TriestCounter::CountInSample(VertexId u, VertexId v, double delta) {
  scratch_.clear();
  sample_.ForEachCommonNeighbor(u, v,
                                [this](VertexId w) { scratch_.push_back(w); });
  if (scratch_.empty()) return;
  global_ += delta * static_cast<double>(scratch_.size());
  if (track_local_) {
    local_[u] += delta * static_cast<double>(scratch_.size());
    local_[v] += delta * static_cast<double>(scratch_.size());
    for (VertexId w : scratch_) local_[w] += delta;
  }
}

bool TriestCounter::ReservoirSample(VertexId u, VertexId v) {
  if (t_ <= budget_) {
    reservoir_.emplace_back(u, v);
    sample_.Insert(u, v);
    return true;
  }
  if (!rng_.Bernoulli(static_cast<double>(budget_) /
                      static_cast<double>(t_))) {
    return false;
  }
  const size_t slot = static_cast<size_t>(rng_.Below(budget_));
  const Edge evicted = reservoir_[slot];
  if (variant_ == TriestVariant::kBase) {
    // BASE decrements the triangles the evicted edge participated in.
    CountInSample(evicted.u, evicted.v, -1.0);
  }
  sample_.Erase(evicted.u, evicted.v);
  reservoir_[slot] = Edge(u, v);
  sample_.Insert(u, v);
  return true;
}

void TriestCounter::ProcessEdge(VertexId u, VertexId v) {
  if (u == v) return;
  ++t_;
  if (variant_ == TriestVariant::kImpr) {
    // Weighted unconditional count before the reservoir decision.
    const double t = static_cast<double>(t_);
    const double m = static_cast<double>(budget_);
    double xi = ((t - 1.0) * (t - 2.0)) / (m * (m - 1.0));
    if (xi < 1.0) xi = 1.0;
    CountInSample(u, v, xi);
    ReservoirSample(u, v);
  } else {
    // BASE counts only after (and if) the edge enters the reservoir. The
    // arriving edge itself is not yet in the sample when intersecting, and
    // the intersection N(u) ∩ N(v) does not contain u or v, so counting
    // after insertion is equivalent.
    if (ReservoirSample(u, v)) CountInSample(u, v, 1.0);
  }
}

}  // namespace rept
