// Direct parallelization of a single-processor sampler: c independent
// instances, estimates averaged. This is precisely the strawman the paper
// argues against — its variance keeps the full 2*eta covariance term
// ((tau(m^2-1) + 2 eta(m-1))/c for MASCOT, §I) — and the baseline REPT is
// compared to in every accuracy figure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "baselines/stream_counter.hpp"
#include "core/estimates.hpp"

namespace rept {

class ThreadPool;

/// \brief c independent StreamCounter instances, averaged. Sessions are
/// EnsembleSession (baselines/ensemble_session.hpp).
class ParallelEnsemble : public EstimatorSystem {
 public:
  /// `label` customizes Name() (defaults to "<Method>(c=<c>)").
  ParallelEnsemble(std::shared_ptr<const StreamCounterFactory> factory,
                   uint32_t c, std::string label = "");

  std::string Name() const override;
  uint32_t NumProcessors() const override { return c_; }

  /// Opens an EnsembleSession. For budget-based methods (TRIEST, GPS) pass
  /// `options.expected_edges` when the stream length is known — it
  /// reproduces the paper's budget = fraction * |E| reservoir sizing;
  /// without it the factory's default budget applies. InvalidArgument on an
  /// absurd processor count or sizing hint.
  Result<std::unique_ptr<StreamingEstimator>> CreateSession(
      uint64_t seed, ThreadPool* pool,
      const SessionOptions& options = {}) const override;

 private:
  std::shared_ptr<const StreamCounterFactory> factory_;
  uint32_t c_;
  std::string label_;
};

}  // namespace rept
