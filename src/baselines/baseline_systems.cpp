#include "baselines/baseline_systems.hpp"

#include <sstream>

#include "baselines/gps.hpp"
#include "baselines/mascot.hpp"
#include "baselines/parallel_ensemble.hpp"
#include "baselines/triest.hpp"
#include "core/rept_estimator.hpp"
#include "util/check.hpp"

namespace rept {

namespace {

std::string Label(const char* method, uint32_t m, uint32_t c) {
  std::ostringstream out;
  out << method << "(m=" << m << ",c=" << c << ")";
  return out.str();
}

}  // namespace

std::unique_ptr<EstimatorSystem> MakeParallelMascot(uint32_t m, uint32_t c,
                                                    bool track_local) {
  REPT_CHECK(m >= 2);
  auto factory = std::make_shared<MascotFactory>(1.0 / m, track_local);
  return std::make_unique<ParallelEnsemble>(factory, c, Label("MASCOT", m, c));
}

std::unique_ptr<EstimatorSystem> MakeParallelTriest(uint32_t m, uint32_t c,
                                                    bool track_local) {
  REPT_CHECK(m >= 2);
  auto factory = std::make_shared<TriestFactory>(
      1.0 / m, TriestVariant::kImpr, track_local);
  return std::make_unique<ParallelEnsemble>(factory, c, Label("TRIEST", m, c));
}

std::unique_ptr<EstimatorSystem> MakeParallelGps(uint32_t m, uint32_t c,
                                                 bool track_local,
                                                 double alpha) {
  REPT_CHECK(m >= 2);
  // Half budget: sampled edges carry weights/ranks, doubling per-edge cost.
  auto factory =
      std::make_shared<GpsFactory>(0.5 / m, alpha, track_local);
  return std::make_unique<ParallelEnsemble>(factory, c, Label("GPS", m, c));
}

std::unique_ptr<EstimatorSystem> MakeMascotS(uint32_t m, uint32_t c,
                                             bool track_local) {
  REPT_CHECK(c <= m);  // total probability c/m must stay <= 1
  auto factory = std::make_shared<MascotFactory>(
      static_cast<double>(c) / m, track_local);
  return std::make_unique<ParallelEnsemble>(factory, 1,
                                            Label("MASCOT-S", m, c));
}

std::unique_ptr<EstimatorSystem> MakeTriestS(uint32_t m, uint32_t c,
                                             bool track_local) {
  auto factory = std::make_shared<TriestFactory>(
      static_cast<double>(c) / m, TriestVariant::kImpr, track_local);
  return std::make_unique<ParallelEnsemble>(factory, 1,
                                            Label("TRIEST-S", m, c));
}

std::unique_ptr<EstimatorSystem> MakeGpsS(uint32_t m, uint32_t c,
                                          bool track_local, double alpha) {
  auto factory = std::make_shared<GpsFactory>(
      0.5 * static_cast<double>(c) / m, alpha, track_local);
  return std::make_unique<ParallelEnsemble>(factory, 1, Label("GPS-S", m, c));
}

std::unique_ptr<EstimatorSystem> MakeRept(uint32_t m, uint32_t c,
                                          bool track_local,
                                          bool strict_eta_pairs) {
  ReptConfig config;
  config.m = m;
  config.c = c;
  config.track_local = track_local;
  config.strict_eta_pairs = strict_eta_pairs;
  return std::make_unique<ReptEstimator>(config);
}

}  // namespace rept
