// Wedge sampling for *static* graphs (Seshadhri, Pinar, Kolda 2014), the
// method the paper's §III-D concedes is preferable when the graph already
// sits in memory: sample wedges (length-2 paths) proportionally to each
// vertex's wedge count, check closure, and scale.
//
//   W = sum_v C(deg(v), 2);  tau_hat = (closed fraction) * W / 3.
//
// Included so the library covers the paper's scope discussion: the
// REPT-vs-wedge-sampling trade (streaming one-pass vs random access) is
// measurable with bench_ablation_static.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace rept {

class WedgeSampler {
 public:
  /// Prepares the per-vertex cumulative wedge distribution; O(|V|).
  explicit WedgeSampler(const Graph& graph);

  /// Samples `num_wedges` wedges and returns the triangle count estimate.
  /// Unbiased for any num_wedges >= 1. Deterministic per seed.
  double EstimateGlobal(uint64_t num_wedges, uint64_t seed) const;

  /// Estimate of the global clustering coefficient (closed wedge fraction).
  double EstimateClosureRate(uint64_t num_wedges, uint64_t seed) const;

  /// Total number of wedges in the graph.
  double total_wedges() const { return total_wedges_; }

 private:
  /// Samples one wedge center + two distinct neighbors; returns closure.
  bool SampleOneWedge(Rng& rng) const;

  const Graph& graph_;
  /// Cumulative wedge counts per vertex (for proportional center sampling).
  std::vector<double> cumulative_;
  double total_wedges_ = 0.0;
};

}  // namespace rept
