#include "baselines/wedge_sampler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rept {

WedgeSampler::WedgeSampler(const Graph& graph) : graph_(graph) {
  cumulative_.reserve(graph.num_vertices());
  double running = 0.0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const double d = graph.degree(v);
    running += d * (d - 1.0) / 2.0;
    cumulative_.push_back(running);
  }
  total_wedges_ = running;
}

bool WedgeSampler::SampleOneWedge(Rng& rng) const {
  // Center v chosen with probability C(deg(v),2)/W via the cumulative table.
  const double target = rng.NextDouble() * total_wedges_;
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  const VertexId v =
      static_cast<VertexId>(std::distance(cumulative_.begin(), it));
  const auto nbrs = graph_.neighbors(v);
  REPT_DCHECK(nbrs.size() >= 2);
  // Two distinct uniform neighbors.
  const uint64_t i = rng.Below(nbrs.size());
  uint64_t j = rng.Below(nbrs.size() - 1);
  if (j >= i) ++j;
  return graph_.HasEdge(nbrs[i], nbrs[j]);
}

double WedgeSampler::EstimateClosureRate(uint64_t num_wedges,
                                         uint64_t seed) const {
  REPT_CHECK(num_wedges >= 1);
  if (total_wedges_ <= 0.0) return 0.0;
  Rng rng(seed);
  uint64_t closed = 0;
  for (uint64_t i = 0; i < num_wedges; ++i) {
    if (SampleOneWedge(rng)) ++closed;
  }
  return static_cast<double>(closed) / static_cast<double>(num_wedges);
}

double WedgeSampler::EstimateGlobal(uint64_t num_wedges,
                                    uint64_t seed) const {
  // Every triangle contains exactly three closed wedges.
  return EstimateClosureRate(num_wedges, seed) * total_wedges_ / 3.0;
}

}  // namespace rept
