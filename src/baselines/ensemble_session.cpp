#include "baselines/ensemble_session.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace rept {

EnsembleSession::EnsembleSession(
    std::shared_ptr<const StreamCounterFactory> factory, uint32_t c,
    std::string name, uint64_t seed, ThreadPool* pool,
    const SessionOptions& options)
    : name_(std::move(name)), pool_(pool), edge_budget_(0) {
  REPT_CHECK(factory != nullptr);
  REPT_CHECK(c >= 1);
  edge_budget_ = factory->BudgetFor(options.expected_edges);
  NoteVertices(options.expected_vertices);
  SeedSequence seeds(seed);
  instances_.reserve(c);
  for (uint32_t i = 0; i < c; ++i) {
    instances_.push_back(factory->Create(seeds.SeedFor(i), edge_budget_));
  }
}

void EnsembleSession::Ingest(std::span<const Edge> edges) {
  RecordBatch(edges);
  if (edges.empty()) return;
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  auto body = [this, edges](size_t i) { instances_[i]->ProcessBatch(edges); };
  if (pool_ != nullptr) {
    ParallelFor(*pool_, instances_.size(), body);
  } else {
    for (size_t i = 0; i < instances_.size(); ++i) body(i);
  }
}

TriangleEstimates EnsembleSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  // Deterministic combination: fixed instance order, serial accumulation.
  TriangleEstimates estimates;
  const double inv_c = 1.0 / static_cast<double>(instances_.size());
  double sum = 0.0;
  for (const auto& instance : instances_) sum += instance->GlobalEstimate();
  estimates.global = sum * inv_c;
  estimates.local.assign(num_vertices(), 0.0);
  for (const auto& instance : instances_) {
    instance->AccumulateLocal(estimates.local, inv_c);
  }
  return estimates;
}

uint64_t EnsembleSession::StoredEdges() const {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  uint64_t total = 0;
  for (const auto& instance : instances_) total += instance->StoredEdges();
  return total;
}

}  // namespace rept
