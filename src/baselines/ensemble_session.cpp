#include "baselines/ensemble_session.hpp"

#include <limits>
#include <string_view>
#include <utility>
#include <vector>

#include "persist/checkpoint_io.hpp"
#include "util/check.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace rept {

EnsembleSession::EnsembleSession(
    std::shared_ptr<const StreamCounterFactory> factory, uint32_t c,
    std::string name, uint64_t seed, ThreadPool* pool,
    const SessionOptions& options)
    : name_(std::move(name)), pool_(pool), seed_(seed), edge_budget_(0) {
  REPT_CHECK(factory != nullptr);
  REPT_CHECK(c >= 1);
  edge_budget_ = factory->BudgetFor(options.expected_edges);
  NoteVertices(options.expected_vertices);
  SeedSequence seeds(seed);
  instances_.reserve(c);
  for (uint32_t i = 0; i < c; ++i) {
    instances_.push_back(factory->Create(seeds.SeedFor(i), edge_budget_));
    if (options.expected_edges > 0) {
      instances_.back()->ReserveForExpectedEdges(options.expected_edges,
                                                 options.expected_vertices);
    }
  }
}

void EnsembleSession::Ingest(std::span<const Edge> edges) {
  RecordBatch(edges);
  if (edges.empty()) return;
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  auto body = [this, edges](size_t i) { instances_[i]->ProcessBatch(edges); };
  if (pool_ != nullptr) {
    ParallelFor(*pool_, instances_.size(), body);
  } else {
    for (size_t i = 0; i < instances_.size(); ++i) body(i);
  }
}

TriangleEstimates EnsembleSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  // Deterministic combination: fixed instance order, serial accumulation.
  TriangleEstimates estimates;
  const double inv_c = 1.0 / static_cast<double>(instances_.size());
  double sum = 0.0;
  for (const auto& instance : instances_) sum += instance->GlobalEstimate();
  estimates.global = sum * inv_c;
  estimates.local.assign(num_vertices(), 0.0);
  for (const auto& instance : instances_) {
    instance->AccumulateLocal(estimates.local, inv_c);
  }
  return estimates;
}

uint64_t EnsembleSession::StoredEdges() const {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  uint64_t total = 0;
  for (const auto& instance : instances_) total += instance->StoredEdges();
  return total;
}

uint64_t EnsembleSession::StateFingerprint() const {
  return FingerprintBuilder()
      .MixString("ENSEMBLE")
      .MixString(name_)
      .Mix(instances_.size())
      .Mix(edge_budget_)
      .Mix(seed_)
      .Finish();
}

Status EnsembleSession::Checkpoint(CheckpointWriter& writer) const {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  writer.BeginSection(kSectionEnsembleMeta);
  writer.AppendU64(edges_ingested());
  writer.AppendU64(num_vertices());
  writer.AppendU64(edge_budget_);
  writer.AppendU32(static_cast<uint32_t>(instances_.size()));
  writer.AppendU64(name_.size());
  writer.AppendBytes(name_.data(), name_.size());
  REPT_RETURN_NOT_OK(writer.EndSection());

  for (size_t i = 0; i < instances_.size(); ++i) {
    writer.BeginSection(kSectionEnsembleInstance);
    writer.AppendU32(static_cast<uint32_t>(i));
    writer.AppendU64(instances_[i]->StoredEdges());
    REPT_RETURN_NOT_OK(instances_[i]->SaveState(writer));
    REPT_RETURN_NOT_OK(writer.EndSection());
  }
  return writer.status();
}

Status EnsembleSession::Restore(CheckpointReader& reader) {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  const Result<uint32_t> meta_id = reader.NextSection();
  REPT_RETURN_NOT_OK(meta_id.status());
  if (*meta_id != kSectionEnsembleMeta) {
    return Status::Corruption("expected ensemble meta section, found id " +
                              std::to_string(*meta_id));
  }
  const uint64_t edges = reader.ReadU64();
  const uint64_t vertices = reader.ReadU64();
  const uint64_t edge_budget = reader.ReadU64();
  const uint32_t num_instances = reader.ReadU32();
  const uint64_t name_len = reader.ReadCount(1);
  std::vector<char> name(static_cast<size_t>(name_len));
  if (name_len > 0) {
    REPT_RETURN_NOT_OK(reader.ReadBytes(name.data(), name.size()));
  }
  REPT_RETURN_NOT_OK(reader.ExpectSectionEnd());
  if (edge_budget != edge_budget_ || num_instances != instances_.size() ||
      std::string_view(name.data(), name.size()) != name_) {
    return Status::Corruption(
        "checkpoint configuration does not match session " + Name());
  }
  if (vertices > std::numeric_limits<VertexId>::max()) {
    return Status::Corruption("checkpoint vertex bound exceeds id space");
  }

  for (size_t i = 0; i < instances_.size(); ++i) {
    const Result<uint32_t> id = reader.NextSection();
    REPT_RETURN_NOT_OK(id.status());
    if (*id != kSectionEnsembleInstance) {
      return Status::Corruption(
          "expected ensemble instance section, found id " +
          std::to_string(*id));
    }
    const uint32_t index = reader.ReadU32();
    const uint64_t stored = reader.ReadU64();
    REPT_RETURN_NOT_OK(reader.status());
    if (index != i) {
      return Status::Corruption("instance sections out of order");
    }
    REPT_RETURN_NOT_OK(instances_[i]->LoadState(reader));
    REPT_RETURN_NOT_OK(reader.ExpectSectionEnd());
    if (instances_[i]->StoredEdges() != stored) {
      return Status::Corruption(
          "restored instance stored-edge count mismatch");
    }
  }

  RestoreStreamAccounting(static_cast<VertexId>(vertices), edges);
  return Status::OK();
}

}  // namespace rept
