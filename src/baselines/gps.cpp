#include "baselines/gps.hpp"

#include "util/check.hpp"

namespace rept {

GpsCounter::GpsCounter(uint64_t budget, uint64_t seed, double alpha,
                       bool track_local)
    : budget_(budget), alpha_(alpha), track_local_(track_local), rng_(seed) {
  REPT_CHECK(budget_ >= 2);
  REPT_CHECK(alpha_ >= 0.0);
}

void GpsCounter::ProcessEdge(VertexId u, VertexId v) {
  if (u == v) return;
  if (sample_.Contains(u, v)) return;  // simple-stream model

  // 1. In-stream HT estimation against the current sample and threshold.
  scratch_.clear();
  sample_.ForEachCommonNeighbor(u, v,
                                [this](VertexId w) { scratch_.push_back(w); });
  for (VertexId w : scratch_) {
    const double wu = edge_weight_.at(EdgeKey(u, w));
    const double wv = edge_weight_.at(EdgeKey(v, w));
    const double inc =
        1.0 / (InclusionProbability(wu) * InclusionProbability(wv));
    global_ += inc;
    if (track_local_) {
      local_[u] += inc;
      local_[v] += inc;
      local_[w] += inc;
    }
  }

  // 2. Weight from the number of sampled triangles the edge closes, rank
  // from an independent uniform.
  const double weight = alpha_ * static_cast<double>(scratch_.size()) + 1.0;
  const double rank = weight / rng_.NextDoublePositive();

  // 3. Insert, then evict the minimum-rank edge if over budget (possibly the
  // new edge itself) and raise the threshold.
  sample_.Insert(u, v);
  edge_weight_[EdgeKey(u, v)] = weight;
  heap_.push(HeapEntry{rank, u, v});
  if (sample_.num_edges() > budget_) {
    const HeapEntry evicted = heap_.top();
    heap_.pop();
    if (evicted.rank > z_star_) z_star_ = evicted.rank;
    sample_.Erase(evicted.u, evicted.v);
    edge_weight_.erase(EdgeKey(evicted.u, evicted.v));
  }
}

void GpsCounter::AccumulateLocal(std::vector<double>& acc,
                                 double weight) const {
  for (const auto& [v, count] : local_) {
    REPT_DCHECK(v < acc.size());
    acc[v] += weight * count;
  }
}

}  // namespace rept
