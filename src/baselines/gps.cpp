#include "baselines/gps.hpp"

#include <cstring>

#include "persist/checkpoint_io.hpp"
#include "persist/state_codec.hpp"
#include "util/check.hpp"

namespace rept {

GpsCounter::GpsCounter(uint64_t budget, uint64_t seed, double alpha,
                       bool track_local)
    : budget_(budget), alpha_(alpha), track_local_(track_local), rng_(seed) {
  REPT_CHECK(budget_ >= 2);
  REPT_CHECK(alpha_ >= 0.0);
}

void GpsCounter::ProcessEdge(VertexId u, VertexId v) {
  if (u == v) return;
  if (sample_.Contains(u, v)) return;  // simple-stream model

  // 1. In-stream HT estimation against the current sample and threshold.
  scratch_.clear();
  sample_.ForEachCommonNeighbor(u, v,
                                [this](VertexId w) { scratch_.push_back(w); });
  for (VertexId w : scratch_) {
    const double wu = edge_weight_.at(EdgeKey(u, w));
    const double wv = edge_weight_.at(EdgeKey(v, w));
    const double inc =
        1.0 / (InclusionProbability(wu) * InclusionProbability(wv));
    global_ += inc;
    if (track_local_) {
      local_[u] += inc;
      local_[v] += inc;
      local_[w] += inc;
    }
  }

  // 2. Weight from the number of sampled triangles the edge closes, rank
  // from an independent uniform.
  const double weight = alpha_ * static_cast<double>(scratch_.size()) + 1.0;
  const double rank = weight / rng_.NextDoublePositive();

  // 3. Insert, then evict the minimum-rank edge if over budget (possibly the
  // new edge itself) and raise the threshold.
  sample_.Insert(u, v);
  edge_weight_[EdgeKey(u, v)] = weight;
  heap_.push_back(HeapEntry{rank, u, v});
  std::push_heap(heap_.begin(), heap_.end(), RankGreater{});
  if (sample_.num_edges() > budget_) {
    const HeapEntry evicted = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), RankGreater{});
    heap_.pop_back();
    if (evicted.rank > z_star_) z_star_ = evicted.rank;
    sample_.Erase(evicted.u, evicted.v);
    edge_weight_.erase(EdgeKey(evicted.u, evicted.v));
  }
}

Status GpsCounter::SaveState(CheckpointWriter& writer) const {
  writer.AppendU8('G');
  writer.AppendU8(track_local_ ? 1 : 0);
  writer.AppendU64(budget_);
  writer.AppendDouble(alpha_);
  SaveRng(writer, rng_);
  writer.AppendDouble(z_star_);
  writer.AppendDouble(global_);
  SaveSampledGraph(writer, sample_);
  // Weights keyed like the sampled edges, then the heap array verbatim
  // (rank ties evict by layout, so the layout is part of the state).
  SaveSortedMap(writer, edge_weight_);
  writer.AppendU64(heap_.size());
  for (const HeapEntry& entry : heap_) {
    writer.AppendDouble(entry.rank);
    writer.AppendU32(entry.u);
    writer.AppendU32(entry.v);
  }
  SaveVertexTallies(writer, local_);
  return writer.status();
}

Status GpsCounter::LoadState(CheckpointReader& reader) {
  if (reader.ReadU8() != 'G') {
    return Status::Corruption("not a GPS instance payload");
  }
  const bool track_local = reader.ReadU8() != 0;
  const uint64_t budget = reader.ReadU64();
  const double alpha = reader.ReadDouble();
  REPT_RETURN_NOT_OK(reader.status());
  if (track_local != track_local_ || budget != budget_ ||
      std::memcmp(&alpha, &alpha_, sizeof(alpha)) != 0) {
    return Status::Corruption(
        "GPS budget/alpha mismatch: checkpoint was written by a "
        "differently configured instance");
  }
  REPT_RETURN_NOT_OK(LoadRng(reader, rng_));
  const double z_star = reader.ReadDouble();
  const double global = reader.ReadDouble();
  REPT_RETURN_NOT_OK(LoadSampledGraph(reader, sample_));
  REPT_RETURN_NOT_OK(LoadSortedMap(reader, edge_weight_, "GPS weights"));
  if (edge_weight_.size() != sample_.num_edges()) {
    return Status::Corruption("GPS weight map out of sync with sample");
  }
  const uint64_t heap_size =
      reader.ReadCount(sizeof(double) + 2 * sizeof(VertexId));
  REPT_RETURN_NOT_OK(reader.status());
  std::vector<HeapEntry> heap;
  heap.reserve(static_cast<size_t>(heap_size));
  for (uint64_t i = 0; i < heap_size; ++i) {
    HeapEntry entry;
    entry.rank = reader.ReadDouble();
    entry.u = reader.ReadU32();
    entry.v = reader.ReadU32();
    heap.push_back(entry);
  }
  REPT_RETURN_NOT_OK(reader.status());
  if (heap.size() != sample_.num_edges()) {
    return Status::Corruption("GPS heap out of sync with sample");
  }
  if (!std::is_heap(heap.begin(), heap.end(), RankGreater{})) {
    return Status::Corruption("GPS heap array violates the heap property");
  }
  REPT_RETURN_NOT_OK(LoadVertexTallies(reader, local_));
  z_star_ = z_star;
  global_ = global;
  heap_ = std::move(heap);
  return Status::OK();
}

void GpsCounter::AccumulateLocal(std::vector<double>& acc,
                                 double weight) const {
  for (const auto& [v, count] : local_) {
    REPT_DCHECK(v < acc.size());
    acc[v] += weight * count;
  }
}

}  // namespace rept
