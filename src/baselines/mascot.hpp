// MASCOT (Lim & Kang, KDD 2015), improved variant: for every arriving edge,
// count its semi-triangle completions against the current sample
// *unconditionally*, then store the edge with fixed probability p. The
// unbiased estimates are tau_hat = tau^(i)/p^2 and tau_v_hat = tau_v^(i)/p^2
// (each counted semi-triangle had both early edges sampled, probability p^2).
//
// This is the variant whose variance the REPT paper quotes:
//   Var = tau(p^-2 - 1) + 2 eta(p^-1 - 1).
#pragma once

#include <cstdint>
#include <memory>

#include "baselines/stream_counter.hpp"
#include "core/semi_triangle_counter.hpp"
#include "util/random.hpp"

namespace rept {

class MascotCounter : public StreamCounter {
 public:
  /// `p` is the edge sampling probability (the paper uses p = 1/m for
  /// parallel runs and c*p for the single-threaded MASCOT-S comparison).
  MascotCounter(double p, uint64_t seed, bool track_local = true);

  void ProcessEdge(VertexId u, VertexId v) override;

  /// Expected stored edges are p|E| (independent coin flips).
  void ReserveForExpectedEdges(uint64_t expected_edges,
                               VertexId expected_vertices) override {
    counter_.ReserveFor(static_cast<uint64_t>(
                            p_ * static_cast<double>(expected_edges)) +
                            1,
                        expected_vertices);
  }

  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader) override;

  double GlobalEstimate() const override {
    return counter_.global() * inv_p2_;
  }
  void AccumulateLocal(std::vector<double>& acc,
                       double weight) const override {
    counter_.AccumulateLocal(acc, weight * inv_p2_);
  }
  uint64_t StoredEdges() const override { return counter_.stored_edges(); }

  /// Raw (unscaled) semi-triangle tally tau^(i).
  double RawGlobal() const { return counter_.global(); }

  /// Underlying counting engine (memory accounting, diagnostics).
  const SemiTriangleCounter& counter() const { return counter_; }

 private:
  double p_;
  double inv_p2_;
  Rng rng_;
  SemiTriangleCounter counter_;
};

class MascotFactory : public StreamCounterFactory {
 public:
  MascotFactory(double p, bool track_local = true)
      : p_(p), track_local_(track_local) {}

  /// MASCOT samples by probability, not by budget: `edge_budget` is ignored
  /// (and BudgetFor stays at the base-class 0).
  std::unique_ptr<StreamCounter> Create(
      uint64_t seed, uint64_t /*edge_budget*/) const override {
    return std::make_unique<MascotCounter>(p_, seed, track_local_);
  }
  std::string MethodName() const override { return "MASCOT"; }

 private:
  double p_;
  bool track_local_;
};

}  // namespace rept
