#include "baselines/parallel_ensemble.hpp"

#include <vector>

#include "util/check.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace rept {

ParallelEnsemble::ParallelEnsemble(
    std::shared_ptr<const StreamCounterFactory> factory, uint32_t c,
    std::string label)
    : factory_(std::move(factory)), c_(c), label_(std::move(label)) {
  REPT_CHECK(factory_ != nullptr);
  REPT_CHECK(c_ >= 1);
}

std::string ParallelEnsemble::Name() const {
  if (!label_.empty()) return label_;
  return factory_->MethodName() + "(c=" + std::to_string(c_) + ")";
}

TriangleEstimates ParallelEnsemble::Run(const EdgeStream& stream,
                                        uint64_t seed,
                                        ThreadPool* pool) const {
  SeedSequence seeds(seed);
  std::vector<std::unique_ptr<StreamCounter>> instances;
  instances.reserve(c_);
  for (uint32_t i = 0; i < c_; ++i) {
    instances.push_back(factory_->Create(seeds.SeedFor(i), stream));
  }

  auto body = [&instances, &stream](size_t i) {
    instances[i]->ProcessStream(stream);
  };
  if (pool != nullptr) {
    ParallelFor(*pool, instances.size(), body);
  } else {
    for (size_t i = 0; i < instances.size(); ++i) body(i);
  }

  // Deterministic combination: fixed instance order, serial accumulation.
  TriangleEstimates estimates;
  const double inv_c = 1.0 / static_cast<double>(c_);
  double sum = 0.0;
  for (const auto& instance : instances) sum += instance->GlobalEstimate();
  estimates.global = sum * inv_c;
  estimates.local.assign(stream.num_vertices(), 0.0);
  for (const auto& instance : instances) {
    instance->AccumulateLocal(estimates.local, inv_c);
  }
  return estimates;
}

}  // namespace rept
