#include "baselines/parallel_ensemble.hpp"

#include "baselines/ensemble_session.hpp"
#include "core/rept_config.hpp"
#include "util/check.hpp"

namespace rept {

ParallelEnsemble::ParallelEnsemble(
    std::shared_ptr<const StreamCounterFactory> factory, uint32_t c,
    std::string label)
    : factory_(std::move(factory)), c_(c), label_(std::move(label)) {
  REPT_CHECK(factory_ != nullptr);
  REPT_CHECK(c_ >= 1);
}

std::string ParallelEnsemble::Name() const {
  if (!label_.empty()) return label_;
  return factory_->MethodName() + "(c=" + std::to_string(c_) + ")";
}

Result<std::unique_ptr<StreamingEstimator>> ParallelEnsemble::CreateSession(
    uint64_t seed, ThreadPool* pool, const SessionOptions& options) const {
  if (c_ < 1 || c_ > ReptConfig::kMaxProcessors) {
    return Status::InvalidArgument(
        "ensemble c must be in [1, " +
        std::to_string(ReptConfig::kMaxProcessors) + "], got " +
        std::to_string(c_));
  }
  REPT_RETURN_NOT_OK(options.Check());
  return std::unique_ptr<StreamingEstimator>(std::make_unique<EnsembleSession>(
      factory_, c_, Name(), seed, pool, options));
}

}  // namespace rept
