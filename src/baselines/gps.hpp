// GPS — Graph Priority Sampling (Ahmed, Duffield, Willke, Rossi, VLDB 2017),
// In-Stream estimation variant.
//
// Each arriving edge k gets a weight w(k) = alpha * (# sampled triangles k
// closes) + 1 and a priority rank r(k) = w(k) / Uniform(0,1]. The sample
// keeps the `budget` highest-rank edges; z* is the largest rank ever
// evicted. An edge's Horvitz-Thompson inclusion probability is
// q(k) = min(1, w(k)/z*) (1 while the sample has never overflowed).
//
// In-stream estimation: when edge (u, v) arrives, every stored wedge
// (u,w),(v,w) it closes contributes 1 / (q(u,w) * q(v,w)) to the global and
// to the u/v/w local tallies, evaluated at the *current* threshold. The
// tallies are the estimates (no end-of-stream rescaling).
//
// The REPT paper runs GPS with budget p|E|/2 per processor because storing
// weights and ranks doubles per-edge memory (§IV-B).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/stream_counter.hpp"
#include "graph/sampled_graph.hpp"
#include "util/random.hpp"

namespace rept {

class GpsCounter : public StreamCounter {
 public:
  GpsCounter(uint64_t budget, uint64_t seed, double alpha = 9.0,
             bool track_local = true);

  void ProcessEdge(VertexId u, VertexId v) override;

  /// The priority sample stores min(budget, |E|) edges.
  void ReserveForExpectedEdges(uint64_t expected_edges,
                               VertexId expected_vertices) override {
    const size_t stored =
        static_cast<size_t>(std::min(budget_, expected_edges));
    size_t vertices = 2 * stored;
    if (expected_vertices > 0) {
      vertices = std::min(vertices, size_t{expected_vertices});
    }
    sample_.ReserveVertices(vertices);
    edge_weight_.reserve(stored);
    heap_.reserve(stored + 1);
    if (track_local_) local_.reserve(vertices);
  }

  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader) override;

  double GlobalEstimate() const override { return global_; }
  void AccumulateLocal(std::vector<double>& acc,
                       double weight) const override;
  uint64_t StoredEdges() const override { return sample_.num_edges(); }

  double threshold() const { return z_star_; }

 private:
  struct HeapEntry {
    double rank;
    VertexId u, v;
  };
  struct RankGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.rank > b.rank;  // min-heap on rank
    }
  };

  double InclusionProbability(double weight) const {
    if (z_star_ <= 0.0) return 1.0;
    const double q = weight / z_star_;
    return q < 1.0 ? q : 1.0;
  }

  uint64_t budget_;
  double alpha_;
  bool track_local_;
  Rng rng_;

  SampledGraph sample_;
  std::unordered_map<uint64_t, double> edge_weight_;
  /// Min-heap on rank, managed with std::push_heap/std::pop_heap (exactly
  /// what std::priority_queue is specified to do). An explicit vector so a
  /// checkpoint can persist the array layout verbatim: with equal ranks the
  /// eviction order depends on the layout, and restore must replay the
  /// uninterrupted run bit for bit.
  std::vector<HeapEntry> heap_;
  double z_star_ = 0.0;

  double global_ = 0.0;
  std::unordered_map<VertexId, double> local_;
  std::vector<VertexId> scratch_;
};

class GpsFactory : public StreamCounterFactory {
 public:
  /// `budget_fraction` of the expected |E| becomes the per-instance edge
  /// budget (the REPT paper passes p/2); `default_budget` is used when the
  /// expected length is unknown (open-ended streaming sessions).
  GpsFactory(double budget_fraction, double alpha = 9.0,
             bool track_local = true, uint64_t default_budget = 1 << 16)
      : budget_fraction_(budget_fraction),
        alpha_(alpha),
        track_local_(track_local),
        default_budget_(default_budget) {}

  std::unique_ptr<StreamCounter> Create(
      uint64_t seed, uint64_t edge_budget) const override {
    return std::make_unique<GpsCounter>(edge_budget, seed, alpha_,
                                        track_local_);
  }
  uint64_t BudgetFor(uint64_t expected_edges) const override {
    if (expected_edges == 0) return std::max<uint64_t>(2, default_budget_);
    return std::max<uint64_t>(
        2, static_cast<uint64_t>(budget_fraction_ *
                                 static_cast<double>(expected_edges)));
  }
  std::string MethodName() const override { return "GPS"; }

 private:
  double budget_fraction_;
  double alpha_;
  bool track_local_;
  uint64_t default_budget_;
};

}  // namespace rept
