// Interface of a single logical stream processor for the baseline methods.
// A ParallelEnsemble owns c independent instances and averages their
// (already unbiased) estimates, which is exactly how the paper parallelizes
// MASCOT / TRIEST / GPS (§I, §IV-B).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/edge_stream.hpp"
#include "graph/types.hpp"

namespace rept {

/// \brief One logical processor producing unbiased global/local estimates.
class StreamCounter {
 public:
  virtual ~StreamCounter() = default;

  virtual void ProcessEdge(VertexId u, VertexId v) = 0;

  void ProcessStream(const EdgeStream& stream) {
    for (const Edge& e : stream) ProcessEdge(e.u, e.v);
  }

  /// Unbiased estimate of the global triangle count tau from this instance
  /// alone (scaling included).
  virtual double GlobalEstimate() const = 0;

  /// acc[v] += weight * (this instance's unbiased estimate of tau_v), for
  /// every v the instance tallied.
  virtual void AccumulateLocal(std::vector<double>& acc,
                               double weight) const = 0;

  /// Number of edges currently stored (memory accounting).
  virtual uint64_t StoredEdges() const = 0;
};

/// \brief Creates pre-seeded instances; seed differs per ensemble member.
/// The stream is passed so budget-based methods (TRIEST, GPS) can size their
/// reservoirs from |E| the way the paper configures them (budget = p|E|).
class StreamCounterFactory {
 public:
  virtual ~StreamCounterFactory() = default;
  virtual std::unique_ptr<StreamCounter> Create(
      uint64_t seed, const EdgeStream& stream) const = 0;
  /// Short method tag, e.g. "MASCOT".
  virtual std::string MethodName() const = 0;
};

}  // namespace rept
