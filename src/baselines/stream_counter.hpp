// Interface of a single logical stream processor for the baseline methods.
// A ParallelEnsemble owns c independent instances and averages their
// (already unbiased) estimates, which is exactly how the paper parallelizes
// MASCOT / TRIEST / GPS (§I, §IV-B).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_stream.hpp"
#include "graph/types.hpp"
#include "util/status.hpp"

namespace rept {

class CheckpointReader;
class CheckpointWriter;

/// \brief One logical processor producing unbiased global/local estimates.
class StreamCounter {
 public:
  virtual ~StreamCounter() = default;

  virtual void ProcessEdge(VertexId u, VertexId v) = 0;

  void ProcessBatch(std::span<const Edge> edges) {
    for (const Edge& e : edges) ProcessEdge(e.u, e.v);
  }

  void ProcessStream(const EdgeStream& stream) {
    for (const Edge& e : stream) ProcessEdge(e.u, e.v);
  }

  /// Pre-sizes internal structures for an expected stream length and id
  /// space (SessionOptions hints plumbed through EnsembleSession;
  /// `expected_vertices` of 0 = unknown, used to cap vertex-keyed
  /// reservations). Pure capacity hint: results are identical with or
  /// without it. Default: no-op.
  virtual void ReserveForExpectedEdges(uint64_t expected_edges,
                                       VertexId expected_vertices) {
    (void)expected_edges;
    (void)expected_vertices;
  }

  /// Unbiased estimate of the global triangle count tau from this instance
  /// alone (scaling included).
  virtual double GlobalEstimate() const = 0;

  /// acc[v] += weight * (this instance's unbiased estimate of tau_v), for
  /// every v the instance tallied.
  virtual void AccumulateLocal(std::vector<double>& acc,
                               double weight) const = 0;

  /// Number of edges currently stored (memory accounting).
  virtual uint64_t StoredEdges() const = 0;

  /// Appends the instance's complete state (including RNG engine state, so
  /// a restored instance replays the uninterrupted run bit for bit) to the
  /// writer's current section. Default: not checkpointable — an
  /// EnsembleSession over such counters reports Unsupported.
  virtual Status SaveState(CheckpointWriter& writer) const {
    (void)writer;
    return Status::Unsupported("counter does not support checkpointing");
  }

  /// Restores from a SaveState payload written by an identically
  /// constructed instance (construction parameters are echoed and verified;
  /// a mismatch is Corruption).
  virtual Status LoadState(CheckpointReader& reader) {
    (void)reader;
    return Status::Unsupported("counter does not support checkpointing");
  }
};

/// \brief Creates pre-seeded instances; seed differs per ensemble member.
///
/// Budget-based methods (TRIEST, GPS) size their reservoirs from an explicit
/// `edge_budget` (stored-edge capacity M). A streaming session cannot know
/// |E| up front, so the old Create(seed, stream) signature — which read
/// stream.size() — is gone: callers translate an *expected* stream length
/// (possibly unknown) into an absolute budget via BudgetFor, then pass it to
/// Create. The paper's configuration (budget = p|E|, §IV-B) is recovered by
/// passing the true |E| as the expectation, which is what the legacy Run()
/// path does.
class StreamCounterFactory {
 public:
  virtual ~StreamCounterFactory() = default;

  /// Creates a pre-seeded instance. `edge_budget` is the absolute stored-
  /// edge capacity M for budget-based methods; probability-based methods
  /// (MASCOT) ignore it.
  virtual std::unique_ptr<StreamCounter> Create(
      uint64_t seed, uint64_t edge_budget) const = 0;

  /// Maps an expected stream length to this method's per-instance budget
  /// (paper: fraction * |E|, floored at the method's minimum).
  /// `expected_edges == 0` means unknown and yields the factory's default
  /// budget. Methods without a budget return 0.
  virtual uint64_t BudgetFor(uint64_t expected_edges) const {
    (void)expected_edges;
    return 0;
  }

  /// Short method tag, e.g. "MASCOT".
  virtual std::string MethodName() const = 0;
};

}  // namespace rept
