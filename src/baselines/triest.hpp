// TRIEST (De Stefani, Epasto, Riondato, Upfal, KDD 2016): reservoir-sampled
// triangle counting with a fixed edge budget M.
//
//  * TRIEST-IMPR (the variant the REPT paper compares against): counters are
//    updated unconditionally *before* the reservoir decision, each completed
//    triangle weighted by xi_t = max(1, (t-1)(t-2) / (M(M-1))) — the inverse
//    probability that both early edges are in the reservoir at time t.
//    Evictions never decrement. The tally itself is the unbiased estimate.
//  * TRIEST-BASE: counts only triangles fully inside the reservoir,
//    incrementing on insertion and decrementing on eviction; the estimate
//    rescales by xi_t = max(1, t(t-1)(t-2) / (M(M-1)(M-2))).
//
// The REPT paper sets M = p|E| per processor (§IV-B).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/stream_counter.hpp"
#include "graph/sampled_graph.hpp"
#include "util/random.hpp"

namespace rept {

enum class TriestVariant { kImpr, kBase };

class TriestCounter : public StreamCounter {
 public:
  TriestCounter(uint64_t budget, uint64_t seed,
                TriestVariant variant = TriestVariant::kImpr,
                bool track_local = true);

  void ProcessEdge(VertexId u, VertexId v) override;

  /// The reservoir stores min(M, |E|) edges.
  void ReserveForExpectedEdges(uint64_t expected_edges,
                               VertexId expected_vertices) override {
    const size_t stored =
        static_cast<size_t>(std::min(budget_, expected_edges));
    size_t vertices = 2 * stored;
    if (expected_vertices > 0) {
      vertices = std::min(vertices, size_t{expected_vertices});
    }
    sample_.ReserveVertices(vertices);
    reservoir_.reserve(stored);
    if (track_local_) local_.reserve(vertices);
  }

  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader) override;

  double GlobalEstimate() const override;
  void AccumulateLocal(std::vector<double>& acc,
                       double weight) const override;
  uint64_t StoredEdges() const override { return sample_.num_edges(); }

  uint64_t time() const { return t_; }
  uint64_t budget() const { return budget_; }

 private:
  /// Scale applied to tallies at estimate time (1 for IMPR; xi_base(t) for
  /// BASE).
  double EstimateScale() const;
  /// Reservoir step: returns true if (u, v) was inserted.
  bool ReservoirSample(VertexId u, VertexId v);
  void CountInSample(VertexId u, VertexId v, double delta);

  TriestVariant variant_;
  uint64_t budget_;
  bool track_local_;
  Rng rng_;

  SampledGraph sample_;
  std::vector<Edge> reservoir_;
  uint64_t t_ = 0;

  double global_ = 0.0;
  std::unordered_map<VertexId, double> local_;
  std::vector<VertexId> scratch_;
};

class TriestFactory : public StreamCounterFactory {
 public:
  /// `budget_fraction` of the expected stream length becomes each
  /// instance's M (see BudgetFor); `default_budget` is used when the
  /// expected length is unknown (open-ended streaming sessions).
  TriestFactory(double budget_fraction,
                TriestVariant variant = TriestVariant::kImpr,
                bool track_local = true, uint64_t default_budget = 1 << 16)
      : budget_fraction_(budget_fraction),
        variant_(variant),
        track_local_(track_local),
        default_budget_(default_budget) {}

  std::unique_ptr<StreamCounter> Create(
      uint64_t seed, uint64_t edge_budget) const override {
    return std::make_unique<TriestCounter>(edge_budget, seed, variant_,
                                           track_local_);
  }
  uint64_t BudgetFor(uint64_t expected_edges) const override {
    if (expected_edges == 0) return std::max<uint64_t>(6, default_budget_);
    return std::max<uint64_t>(
        6, static_cast<uint64_t>(budget_fraction_ *
                                 static_cast<double>(expected_edges)));
  }
  std::string MethodName() const override {
    return variant_ == TriestVariant::kImpr ? "TRIEST" : "TRIEST-BASE";
  }

 private:
  double budget_fraction_;
  TriestVariant variant_;
  bool track_local_;
  uint64_t default_budget_;
};

}  // namespace rept
