// Factory helpers assembling the exact estimator systems the paper's
// evaluation compares (Section IV-B):
//
//   parallel MASCOT   — c independent MASCOT(p = 1/m) instances, averaged
//   parallel TRIEST   — c independent TRIEST-IMPR reservoirs, M = |E|/m
//   parallel GPS      — c independent GPS In-Stream samplers, M = |E|/(2m)
//   MASCOT-S          — one MASCOT instance with p = c/m      (Figure 8)
//   TRIEST-S          — one reservoir with M = c|E|/m         (Figure 8)
//   GPS-S             — one GPS sampler with M = c|E|/(2m)    (Figure 8)
//
// plus MakeRept for symmetric construction in sweep code.
#pragma once

#include <cstdint>
#include <memory>

#include "core/estimates.hpp"

namespace rept {

std::unique_ptr<EstimatorSystem> MakeParallelMascot(uint32_t m, uint32_t c,
                                                    bool track_local = true);

std::unique_ptr<EstimatorSystem> MakeParallelTriest(uint32_t m, uint32_t c,
                                                    bool track_local = true);

std::unique_ptr<EstimatorSystem> MakeParallelGps(uint32_t m, uint32_t c,
                                                 bool track_local = true,
                                                 double alpha = 9.0);

std::unique_ptr<EstimatorSystem> MakeMascotS(uint32_t m, uint32_t c,
                                             bool track_local = true);

std::unique_ptr<EstimatorSystem> MakeTriestS(uint32_t m, uint32_t c,
                                             bool track_local = true);

std::unique_ptr<EstimatorSystem> MakeGpsS(uint32_t m, uint32_t c,
                                          bool track_local = true,
                                          double alpha = 9.0);

std::unique_ptr<EstimatorSystem> MakeRept(uint32_t m, uint32_t c,
                                          bool track_local = true,
                                          bool strict_eta_pairs = false);

}  // namespace rept
