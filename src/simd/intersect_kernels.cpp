#include "simd/intersect_kernels.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "container/arena.hpp"
#include "container/sorted_intersect.hpp"

#if defined(REPT_SIMD_X86)
#include <immintrin.h>
#endif

namespace rept::simd {

static_assert(Arena::kOverreadPadIds >= kOverreadPadIds,
              "gallop kernels load a full vector spanning end(); the arena "
              "must pad every spilled list by at least that much");

namespace {

// ---------------------------------------------------------------------------
// Scalar reference pieces. MergeCount/MergeWrite are also the tail of every
// dense block kernel: when fewer than a vector remains on either side the
// block loop hands its cursors here, which is correct because block advances
// never skip an uncounted match and never leave a counted one in both
// suffixes (see the invariant note at DenseCountSse2).

uint32_t MergeCount(const VertexId* pa, const VertexId* a_end,
                    const VertexId* pb, const VertexId* b_end) {
  uint32_t count = 0;
  while (pa != a_end && pb != b_end) {
    const VertexId x = *pa;
    const VertexId y = *pb;
    count += x == y;
    pa += x <= y;
    pb += y <= x;
  }
  return count;
}

uint32_t MergeWrite(const VertexId* pa, const VertexId* a_end,
                    const VertexId* pb, const VertexId* b_end, VertexId* out,
                    uint32_t count) {
  while (pa != a_end && pb != b_end) {
    const VertexId x = *pa;
    const VertexId y = *pb;
    if (x == y) out[count++] = x;
    pa += x <= y;
    pb += y <= x;
  }
  return count;
}

uint32_t GallopCountScalar(const VertexId* a, size_t na, const VertexId* b,
                           size_t nb) {
  uint32_t count = 0;
  const VertexId* cursor = b;
  const VertexId* const b_end = b + nb;
  for (size_t i = 0; i < na; ++i) {
    const VertexId x = a[i];
    cursor = internal::GallopLowerBound(cursor, b_end, x);
    if (cursor == b_end) break;
    if (*cursor == x) {
      ++count;
      if (++cursor == b_end) break;
    }
  }
  return count;
}

uint32_t GallopWriteScalar(const VertexId* a, size_t na, const VertexId* b,
                           size_t nb, VertexId* out) {
  uint32_t count = 0;
  const VertexId* cursor = b;
  const VertexId* const b_end = b + nb;
  for (size_t i = 0; i < na; ++i) {
    const VertexId x = a[i];
    cursor = internal::GallopLowerBound(cursor, b_end, x);
    if (cursor == b_end) break;
    if (*cursor == x) {
      out[count++] = x;
      if (++cursor == b_end) break;
    }
  }
  return count;
}

/// Shared adaptive split: true when (na, nb) should gallop (nb is the
/// larger side). Must match sorted_intersect.hpp's selection exactly so the
/// scalar kernel is the reference implementation of the template.
bool UseGallop(size_t na, size_t nb) {
  return nb >= kGallopSkew && nb >= kGallopSkew * na;
}

}  // namespace

uint32_t IntersectCountScalar(const VertexId* a, size_t na, const VertexId* b,
                              size_t nb) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (UseGallop(na, nb)) return GallopCountScalar(a, na, b, nb);
  return MergeCount(a, a + na, b, b + nb);
}

uint32_t IntersectWriteScalar(const VertexId* a, size_t na, const VertexId* b,
                              size_t nb, VertexId* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (UseGallop(na, nb)) return GallopWriteScalar(a, na, b, nb, out);
  return MergeWrite(a, a + na, b, b + nb, out, 0);
}

#if defined(REPT_SIMD_X86)

namespace {

// ---------------------------------------------------------------------------
// SSE2 kernels (x86-64 baseline).
//
// Dense path: compare a 4-lane block of A against all 4 rotations of a
// 4-lane block of B; lane i of the OR-ed compare mask says a[i] is present
// in B's block (B is duplicate-free, so at most one rotation hits). Advance
// the block whose max is smaller (both on a tie). Invariant: each (A-block,
// B-block) pair is compared at most once before one of them is advanced
// past, every match's blocks are both current when it is counted, and after
// any exit every remaining match lies in both suffixes — so chaining a
// narrower block loop or the scalar merge from the cursors is exact.

uint32_t DenseCountSse2(const VertexId* pa, const VertexId* a_end,
                        const VertexId* pb, const VertexId* b_end) {
  uint32_t count = 0;
  while (pa + 4 <= a_end && pb + 4 <= b_end) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    count += static_cast<uint32_t>(
        std::popcount(static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(eq)))));
    const VertexId amax = pa[3];
    const VertexId bmax = pb[3];
    if (amax <= bmax) pa += 4;
    if (bmax <= amax) pb += 4;
  }
  return count + MergeCount(pa, a_end, pb, b_end);
}

uint32_t DenseWriteSse2(const VertexId* pa, const VertexId* a_end,
                        const VertexId* pb, const VertexId* b_end,
                        VertexId* out) {
  uint32_t count = 0;
  while (pa + 4 <= a_end && pb + 4 <= b_end) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    uint32_t mask =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    while (mask != 0) {
      // A lanes ascending == ascending values; across iterations matches
      // from a later B block are strictly larger, so emission stays sorted.
      out[count++] = pa[std::countr_zero(mask)];
      mask &= mask - 1;
    }
    const VertexId amax = pa[3];
    const VertexId bmax = pb[3];
    if (amax <= bmax) pa += 4;
    if (bmax <= amax) pb += 4;
  }
  return MergeWrite(pa, a_end, pb, b_end, out, count);
}

/// Index of the first element >= x in [p, p + n), n >= 1: a one-vector scan
/// of the head (the common case — gallop cursors advance in small steps),
/// then exponential probe + binary search down to one vector. May read up
/// to 4 lanes past p + n (arena pad); garbage lanes are clamped away via
/// min() against the valid window.
size_t LowerBoundSse2(const VertexId* p, size_t n, VertexId x) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vx = _mm_set1_epi32(static_cast<int>(x ^ 0x80000000u));
  __m128i blk = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), bias);
  uint32_t lt = static_cast<uint32_t>(
      _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(vx, blk))));
  if (lt != 0xF) return std::min<size_t>(std::countr_one(lt), n);
  if (n <= 4) return n;

  size_t hi = 8;
  while (hi < n && p[hi - 1] < x) hi <<= 1;
  size_t first = (hi >> 1);  // p[first - 1] < x
  size_t last = std::min(hi, n);
  while (last - first > 4) {
    const size_t mid = first + (last - first) / 2;
    if (p[mid] < x) {
      first = mid + 1;
    } else {
      last = mid;
    }
  }
  if (first == last) return first;
  blk = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + first)), bias);
  lt = static_cast<uint32_t>(
      _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(vx, blk))));
  return first + std::min<size_t>(std::countr_one(lt), last - first);
}

uint32_t GallopCountSse2(const VertexId* a, size_t na, const VertexId* b,
                         size_t nb) {
  uint32_t count = 0;
  size_t pos = 0;
  for (size_t i = 0; i < na; ++i) {
    const VertexId x = a[i];
    pos += LowerBoundSse2(b + pos, nb - pos, x);
    if (pos == nb) break;
    if (b[pos] == x) {
      ++count;
      if (++pos == nb) break;
    }
  }
  return count;
}

uint32_t GallopWriteSse2(const VertexId* a, size_t na, const VertexId* b,
                         size_t nb, VertexId* out) {
  uint32_t count = 0;
  size_t pos = 0;
  for (size_t i = 0; i < na; ++i) {
    const VertexId x = a[i];
    pos += LowerBoundSse2(b + pos, nb - pos, x);
    if (pos == nb) break;
    if (b[pos] == x) {
      out[count++] = x;
      if (++pos == nb) break;
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// AVX2 kernels. Same structure, 8 lanes: the 8 alignments of B's block are
// the 4 in-lane rotations of the block plus the 4 of its half-swapped
// (permute2x128) copy. The dense loop drops to the SSE2 4-lane loop, then
// scalar, when fewer than 8 remain on either side.

__attribute__((target("avx2"))) uint32_t DenseCountAvx2(
    const VertexId* pa, const VertexId* a_end, const VertexId* pb,
    const VertexId* b_end) {
  uint32_t count = 0;
  while (pa + 8 <= a_end && pb + 8 <= b_end) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
    const __m256i vbs = _mm256_permute2x128_si256(vb, vb, 1);
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vbs));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vbs, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vbs, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vbs, _MM_SHUFFLE(2, 1, 0, 3))));
    count += static_cast<uint32_t>(std::popcount(static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
    const VertexId amax = pa[7];
    const VertexId bmax = pb[7];
    if (amax <= bmax) pa += 8;
    if (bmax <= amax) pb += 8;
  }
  return count + DenseCountSse2(pa, a_end, pb, b_end);
}

__attribute__((target("avx2"))) uint32_t DenseWriteAvx2(
    const VertexId* pa, const VertexId* a_end, const VertexId* pb,
    const VertexId* b_end, VertexId* out) {
  uint32_t count = 0;
  while (pa + 8 <= a_end && pb + 8 <= b_end) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
    const __m256i vbs = _mm256_permute2x128_si256(vb, vb, 1);
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vbs));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vbs, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vbs, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(
                va, _mm256_shuffle_epi32(vbs, _MM_SHUFFLE(2, 1, 0, 3))));
    uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    while (mask != 0) {
      out[count++] = pa[std::countr_zero(mask)];
      mask &= mask - 1;
    }
    const VertexId amax = pa[7];
    const VertexId bmax = pb[7];
    if (amax <= bmax) pa += 8;
    if (bmax <= amax) pb += 8;
  }
  return DenseWriteSse2(pa, a_end, pb, b_end, out + count) + count;
}

/// 8-lane LowerBoundSse2; may read up to 8 lanes past p + n (arena pad).
__attribute__((target("avx2"))) size_t LowerBoundAvx2(const VertexId* p,
                                                      size_t n, VertexId x) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vx = _mm256_set1_epi32(static_cast<int>(x ^ 0x80000000u));
  __m256i blk = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), bias);
  uint32_t lt = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vx, blk))));
  if (lt != 0xFF) return std::min<size_t>(std::countr_one(lt), n);
  if (n <= 8) return n;

  size_t hi = 16;
  while (hi < n && p[hi - 1] < x) hi <<= 1;
  size_t first = (hi >> 1);  // p[first - 1] < x
  size_t last = std::min(hi, n);
  while (last - first > 8) {
    const size_t mid = first + (last - first) / 2;
    if (p[mid] < x) {
      first = mid + 1;
    } else {
      last = mid;
    }
  }
  if (first == last) return first;
  blk = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + first)), bias);
  lt = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vx, blk))));
  return first + std::min<size_t>(std::countr_one(lt), last - first);
}

__attribute__((target("avx2"))) uint32_t GallopCountAvx2(const VertexId* a,
                                                         size_t na,
                                                         const VertexId* b,
                                                         size_t nb) {
  uint32_t count = 0;
  size_t pos = 0;
  for (size_t i = 0; i < na; ++i) {
    const VertexId x = a[i];
    pos += LowerBoundAvx2(b + pos, nb - pos, x);
    if (pos == nb) break;
    if (b[pos] == x) {
      ++count;
      if (++pos == nb) break;
    }
  }
  return count;
}

__attribute__((target("avx2"))) uint32_t GallopWriteAvx2(const VertexId* a,
                                                         size_t na,
                                                         const VertexId* b,
                                                         size_t nb,
                                                         VertexId* out) {
  uint32_t count = 0;
  size_t pos = 0;
  for (size_t i = 0; i < na; ++i) {
    const VertexId x = a[i];
    pos += LowerBoundAvx2(b + pos, nb - pos, x);
    if (pos == nb) break;
    if (b[pos] == x) {
      out[count++] = x;
      if (++pos == nb) break;
    }
  }
  return count;
}

}  // namespace

uint32_t IntersectCountSse2(const VertexId* a, size_t na, const VertexId* b,
                            size_t nb) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (UseGallop(na, nb)) return GallopCountSse2(a, na, b, nb);
  return DenseCountSse2(a, a + na, b, b + nb);
}

uint32_t IntersectWriteSse2(const VertexId* a, size_t na, const VertexId* b,
                            size_t nb, VertexId* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (UseGallop(na, nb)) return GallopWriteSse2(a, na, b, nb, out);
  return DenseWriteSse2(a, a + na, b, b + nb, out);
}

uint32_t IntersectCountAvx2(const VertexId* a, size_t na, const VertexId* b,
                            size_t nb) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (UseGallop(na, nb)) return GallopCountAvx2(a, na, b, nb);
  return DenseCountAvx2(a, a + na, b, b + nb);
}

uint32_t IntersectWriteAvx2(const VertexId* a, size_t na, const VertexId* b,
                            size_t nb, VertexId* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (UseGallop(na, nb)) return GallopWriteAvx2(a, na, b, nb, out);
  return DenseWriteAvx2(a, a + na, b, b + nb, out);
}

#endif  // REPT_SIMD_X86

}  // namespace rept::simd
