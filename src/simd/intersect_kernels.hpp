// Per-ISA sorted-intersection kernels behind simd::KernelTable. Call these
// directly only from differential tests and benches; hot paths go through
// dispatch (simd/dispatch.hpp) or the wrappers in
// container/sorted_intersect.hpp.
//
// Every kernel implements the same adaptive split as the scalar reference:
// a block compare for balanced degrees, galloping from the smaller side
// under >= kGallopSkew skew. Inputs are sorted and duplicate-free; outputs
// are bit-identical across ISAs (the match *set* is fully determined by the
// inputs, and write kernels emit it in ascending order).
//
// Overread contract: the galloping search loads full vectors that may span
// end() of the *larger* range, reading at most kOverreadPadIds - 1 ids past
// it. Ranges of size >= kGallopSkew must therefore sit in storage with
// Arena::kOverreadPadIds ids readable past the end — which every spilled
// NeighborList gets from the arena. The dense block path only loads full
// in-bounds vectors, so small (inline) lists need no padding.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/types.hpp"

namespace rept::simd {

/// Ids the gallop kernels may read past the end of a size >= kGallopSkew
/// range. Arena::kOverreadPadIds guarantees exactly this.
inline constexpr uint32_t kOverreadPadIds = 8;

uint32_t IntersectCountScalar(const VertexId* a, size_t na, const VertexId* b,
                              size_t nb);
uint32_t IntersectWriteScalar(const VertexId* a, size_t na, const VertexId* b,
                              size_t nb, VertexId* out);

// x86-64 only: SSE2 is baseline there, so the SSE2 bodies need no target
// attributes and the only attributed functions are the AVX2 ones.
#if defined(__x86_64__)
#define REPT_SIMD_X86 1

uint32_t IntersectCountSse2(const VertexId* a, size_t na, const VertexId* b,
                            size_t nb);
uint32_t IntersectWriteSse2(const VertexId* a, size_t na, const VertexId* b,
                            size_t nb, VertexId* out);

uint32_t IntersectCountAvx2(const VertexId* a, size_t na, const VertexId* b,
                            size_t nb);
uint32_t IntersectWriteAvx2(const VertexId* a, size_t na, const VertexId* b,
                            size_t nb, VertexId* out);

#endif  // x86

}  // namespace rept::simd
