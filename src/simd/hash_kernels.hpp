// Batched MixEdgeHasher bucket evaluation — the per-edge fixed cost of
// BatchRouter's stage-1 hash pass, vectorized 8 edges per iteration.
//
// Each kernel computes, for every edge, exactly
//   FastRange(Mix64(EdgeKey(u, v) ^ seed_offset), m)
// (hash/edge_hash.hpp): canonical min/max pairing into the 64-bit edge key,
// the SplitMix64 finalizer, and the multiply-shift bucket reduction, all in
// integer lanes — so the routed sublists, and therefore the estimates, are
// bit-identical to the scalar hasher at every dispatch level.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/types.hpp"

namespace rept::simd {

void HashBucketsScalar(const Edge* edges, size_t n, uint64_t seed_offset,
                       uint32_t m, uint32_t* out);

#if defined(__x86_64__)

void HashBucketsSse2(const Edge* edges, size_t n, uint64_t seed_offset,
                     uint32_t m, uint32_t* out);
void HashBucketsAvx2(const Edge* edges, size_t n, uint64_t seed_offset,
                     uint32_t m, uint32_t* out);

#endif  // x86-64

}  // namespace rept::simd
