#include "simd/hash_kernels.hpp"

#include <cstddef>
#include <cstdint>

#include "hash/edge_hash.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace rept::simd {

void HashBucketsScalar(const Edge* edges, size_t n, uint64_t seed_offset,
                       uint32_t m, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] =
        FastRange(Mix64(EdgeKey(edges[i].u, edges[i].v) ^ seed_offset), m);
  }
}

#if defined(__x86_64__)

namespace {

// Mix64 multiplier/increment constants (util/random.hpp), lane-replicated.
constexpr int64_t kMixAdd = static_cast<int64_t>(0x9e3779b97f4a7c15ULL);
constexpr int64_t kMixMul1 = static_cast<int64_t>(0xbf58476d1ce4e5b9ULL);
constexpr int64_t kMixMul2 = static_cast<int64_t>(0x94d049bb133111ebULL);

// ---------------------------------------------------------------------------
// SSE2: two edges per vector. An Edge is two packed u32 (static_assert in
// the kernels below), so a 16-byte load is two edges; the canonical key
// (min << 32) | max is built with an unsigned min/max (sign-bias compare)
// and a dword blend, then Mix64 and the multiply-shift reduction run in
// 64-bit lanes (64x64 low multiply from three 32x32 widening multiplies;
// FastRange's 128-bit product high word from two widening multiplies, exact
// because zhi*m + (zlo*m >> 32) < 2^64 for 32-bit m).

/// 64x64 -> low 64 multiply per lane, b from memory-invariant constants.
inline __m128i Mul64Sse2(__m128i a, __m128i b) {
  const __m128i cross = _mm_add_epi64(
      _mm_mul_epu32(a, _mm_srli_epi64(b, 32)),
      _mm_mul_epu32(_mm_srli_epi64(a, 32), b));
  return _mm_add_epi64(_mm_mul_epu32(a, b), _mm_slli_epi64(cross, 32));
}

/// Buckets of edges[0..1]: result dwords [b0, b1, b0, b1].
inline __m128i Bucket2Sse2(const Edge* edges, __m128i offset, __m128i mvec) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i v =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(edges));
  const __m128i sw = _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1));
  const __m128i gt = _mm_cmpgt_epi32(_mm_xor_si128(v, bias),
                                     _mm_xor_si128(sw, bias));  // v > sw
  const __m128i mn =
      _mm_or_si128(_mm_and_si128(gt, sw), _mm_andnot_si128(gt, v));
  const __m128i mx =
      _mm_or_si128(_mm_and_si128(gt, v), _mm_andnot_si128(gt, sw));
  // Key lane = (min << 32) | max: odd dwords (high halves) from mn.
  const __m128i odd = _mm_set_epi32(-1, 0, -1, 0);
  __m128i z = _mm_or_si128(_mm_and_si128(odd, mn), _mm_andnot_si128(odd, mx));
  z = _mm_xor_si128(z, offset);
  z = _mm_add_epi64(z, _mm_set1_epi64x(kMixAdd));
  z = Mul64Sse2(_mm_xor_si128(z, _mm_srli_epi64(z, 30)),
                _mm_set1_epi64x(kMixMul1));
  z = Mul64Sse2(_mm_xor_si128(z, _mm_srli_epi64(z, 27)),
                _mm_set1_epi64x(kMixMul2));
  z = _mm_xor_si128(z, _mm_srli_epi64(z, 31));
  const __m128i sum = _mm_add_epi64(
      _mm_mul_epu32(_mm_srli_epi64(z, 32), mvec),
      _mm_srli_epi64(_mm_mul_epu32(z, mvec), 32));
  return _mm_shuffle_epi32(_mm_srli_epi64(sum, 32), _MM_SHUFFLE(2, 0, 2, 0));
}

// ---------------------------------------------------------------------------
// AVX2: four edges per vector, eight per iteration (two chains for ILP).

__attribute__((target("avx2"))) inline __m256i Mul64Avx2(__m256i a,
                                                         __m256i b) {
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                          _mm256_slli_epi64(cross, 32));
}

/// Buckets of edges[0..3], packed into the low 4 dwords.
__attribute__((target("avx2"))) inline __m128i Bucket4Avx2(const Edge* edges,
                                                           __m256i offset,
                                                           __m256i mvec) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(edges));
  const __m256i sw = _mm256_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1));
  const __m256i mn = _mm256_min_epu32(v, sw);
  const __m256i mx = _mm256_max_epu32(v, sw);
  __m256i z = _mm256_blend_epi32(mx, mn, 0xAA);  // odd dwords from mn
  z = _mm256_xor_si256(z, offset);
  z = _mm256_add_epi64(z, _mm256_set1_epi64x(kMixAdd));
  z = Mul64Avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                _mm256_set1_epi64x(kMixMul1));
  z = Mul64Avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                _mm256_set1_epi64x(kMixMul2));
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
  const __m256i sum = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(z, 32), mvec),
      _mm256_srli_epi64(_mm256_mul_epu32(z, mvec), 32));
  const __m256i buckets = _mm256_srli_epi64(sum, 32);
  const __m256i pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(buckets, pack));
}

}  // namespace

void HashBucketsSse2(const Edge* edges, size_t n, uint64_t seed_offset,
                     uint32_t m, uint32_t* out) {
  static_assert(sizeof(Edge) == 2 * sizeof(VertexId),
                "vector loads treat an Edge as two packed u32");
  const __m128i offset =
      _mm_set1_epi64x(static_cast<int64_t>(seed_offset));
  const __m128i mvec = _mm_set1_epi64x(static_cast<int64_t>(m));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i b01 = Bucket2Sse2(edges + i, offset, mvec);
    const __m128i b23 = Bucket2Sse2(edges + i + 2, offset, mvec);
    const __m128i b45 = Bucket2Sse2(edges + i + 4, offset, mvec);
    const __m128i b67 = Bucket2Sse2(edges + i + 6, offset, mvec);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi64(b01, b23));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_unpacklo_epi64(b45, b67));
  }
  HashBucketsScalar(edges + i, n - i, seed_offset, m, out + i);
}

__attribute__((target("avx2"))) void HashBucketsAvx2(const Edge* edges,
                                                     size_t n,
                                                     uint64_t seed_offset,
                                                     uint32_t m,
                                                     uint32_t* out) {
  static_assert(sizeof(Edge) == 2 * sizeof(VertexId),
                "vector loads treat an Edge as two packed u32");
  const __m256i offset =
      _mm256_set1_epi64x(static_cast<int64_t>(seed_offset));
  const __m256i mvec = _mm256_set1_epi64x(static_cast<int64_t>(m));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i lo = Bucket4Avx2(edges + i, offset, mvec);
    const __m128i hi = Bucket4Avx2(edges + i + 4, offset, mvec);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4), hi);
  }
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     Bucket4Avx2(edges + i, offset, mvec));
  }
  HashBucketsScalar(edges + i, n - i, seed_offset, m, out + i);
}

#endif  // x86-64

}  // namespace rept::simd
