#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "simd/hash_kernels.hpp"
#include "simd/intersect_kernels.hpp"
#include "util/check.hpp"

namespace rept::simd {

namespace {

constexpr KernelTable kScalarTable = {IntersectCountScalar,
                                      IntersectWriteScalar, HashBucketsScalar,
                                      IsaLevel::kScalar};

#if defined(REPT_SIMD_X86)
constexpr KernelTable kSse2Table = {IntersectCountSse2, IntersectWriteSse2,
                                    HashBucketsSse2, IsaLevel::kSse2};
constexpr KernelTable kAvx2Table = {IntersectCountAvx2, IntersectWriteAvx2,
                                    HashBucketsAvx2, IsaLevel::kAvx2};
#endif

/// REPT_FORCE_SCALAR pins the scalar reference when set to anything but ""
/// or "0" (CI sets "1"; an empty value means unset so matrix legs can pass
/// it through unconditionally).
bool ForceScalarFromEnv() {
  const char* value = std::getenv("REPT_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

/// Published at table-selection time (not per kernel call: the gauge cell
/// is shared, and kernel invocations are the hottest loop in the system).
void PublishDispatchLevel(IsaLevel level) {
  static const obs::Gauge gauge = obs::MetricsRegistry::Global().RegisterGauge(
      "rept_simd_dispatch_level",
      "Active kernel ISA level (0=scalar, 1=sse2, 2=avx2)");
  gauge.Set(static_cast<int64_t>(level));
}

const KernelTable* DefaultTable() {
  static const KernelTable* const table = [] {
    const KernelTable* chosen =
        ForceScalarFromEnv() ? &kScalarTable : &KernelsFor(BestLevel());
    PublishDispatchLevel(chosen->level);
    return chosen;
  }();
  return table;
}

/// Test/bench override; null means "env + detection". The benign race of
/// two first-use readers resolving the same default is avoided by keeping
/// the default in a function-local static instead.
std::atomic<const KernelTable*> g_forced{nullptr};

}  // namespace

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSse2:
      return "sse2";
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

IsaLevel BestLevel() {
#if defined(REPT_SIMD_X86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return IsaLevel::kSse2;
#endif
  return IsaLevel::kScalar;
}

std::vector<IsaLevel> SupportedLevels() {
  std::vector<IsaLevel> levels = {IsaLevel::kScalar};
#if defined(REPT_SIMD_X86)
  const IsaLevel best = BestLevel();
  if (best >= IsaLevel::kSse2) levels.push_back(IsaLevel::kSse2);
  if (best >= IsaLevel::kAvx2) levels.push_back(IsaLevel::kAvx2);
#endif
  return levels;
}

const KernelTable& KernelsFor(IsaLevel level) {
  REPT_CHECK(level <= BestLevel());
  switch (level) {
    case IsaLevel::kScalar:
      break;
#if defined(REPT_SIMD_X86)
    case IsaLevel::kSse2:
      return kSse2Table;
    case IsaLevel::kAvx2:
      return kAvx2Table;
#else
    default:
      break;
#endif
  }
  return kScalarTable;
}

const KernelTable& ActiveKernels() {
  const KernelTable* forced = g_forced.load(std::memory_order_acquire);
  return forced != nullptr ? *forced : *DefaultTable();
}

void ForceIsaLevel(IsaLevel level) {
  g_forced.store(&KernelsFor(level), std::memory_order_release);
  PublishDispatchLevel(level);
}

void ClearForcedIsaLevel() {
  g_forced.store(nullptr, std::memory_order_release);
  PublishDispatchLevel(DefaultTable()->level);
}

}  // namespace rept::simd
