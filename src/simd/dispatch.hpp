// Runtime ISA dispatch for the ingest hot-path kernels.
//
// The three kernel families (sorted-intersection count, sorted-intersection
// match-write, batched edge-hash bucketing) each exist in scalar, SSE2, and
// AVX2 flavors (src/simd/intersect_kernels.*, src/simd/hash_kernels.*). At
// first use the best level the CPU supports is detected and a KernelTable of
// function pointers is published; the hot paths (sorted_intersect.hpp,
// BatchRouter) call through it. Every flavor computes bit-identical results
// — the SIMD kernels are drop-in replacements for the scalar reference, and
// the golden suites (seed_stability_test, checkpoint_roundtrip_test) pin
// that at every level.
//
// Overrides, in precedence order:
//  1. ForceIsaLevel() — programmatic, used by simd_intersect_fuzz_test and
//     the bench breakdowns to exercise a specific level.
//  2. REPT_FORCE_SCALAR env var (set, non-empty, not "0") — pins the scalar
//     reference, so the fallback path stays testable on any box (CI runs a
//     forced-scalar Release leg).
//  3. CPU detection (__builtin_cpu_supports on x86; scalar elsewhere).
//
// NEON is deliberately absent: this tree has no aarch64 toolchain to even
// compile-check a NEON body against, and shipping unverifiable intrinsics
// is worse than the scalar fallback non-x86 targets get today.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace rept::simd {

/// Dispatch levels, ascending. SSE2 is the x86-64 baseline; AVX2 is the
/// widest level with a kernel (AVX-512 downclocking is not worth it for
/// lists this short).
enum class IsaLevel : uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Human-readable level name ("scalar" / "sse2" / "avx2"), used by bench
/// JSON extras and CI logs.
const char* IsaName(IsaLevel level);

/// \brief Count-only |a ∩ b| of two sorted duplicate-free ranges.
/// Spans of size >= 8 must obey the Arena overread contract
/// (Arena::kOverreadPadIds readable past the end — see intersect_kernels).
using IntersectCountFn = uint32_t (*)(const VertexId* a, size_t na,
                                      const VertexId* b, size_t nb);

/// \brief Writes a ∩ b to `out` in ascending order, returns the match
/// count. `out` must hold min(na, nb) ids. Same padding contract.
using IntersectWriteFn = uint32_t (*)(const VertexId* a, size_t na,
                                      const VertexId* b, size_t nb,
                                      VertexId* out);

/// \brief out[i] = FastRange(Mix64(EdgeKey(edges[i]) ^ seed_offset), m) for
/// every edge — the MixEdgeHasher bucket, batched. No padding needed.
using HashBucketsFn = void (*)(const Edge* edges, size_t n,
                               uint64_t seed_offset, uint32_t m,
                               uint32_t* out);

struct KernelTable {
  IntersectCountFn intersect_count;
  IntersectWriteFn intersect_write;
  HashBucketsFn hash_buckets;
  IsaLevel level;
};

/// Best level this CPU supports (independent of any override).
IsaLevel BestLevel();

/// Levels with a usable kernel table on this CPU, ascending from kScalar.
std::vector<IsaLevel> SupportedLevels();

/// Kernel table of a specific level; `level` must be in SupportedLevels()
/// (checked). For differential tests and per-level bench rows.
const KernelTable& KernelsFor(IsaLevel level);

/// The table the hot paths dispatch through, after overrides.
const KernelTable& ActiveKernels();

/// Level of ActiveKernels().
inline IsaLevel ActiveLevel() { return ActiveKernels().level; }

/// Pins dispatch to `level` (must be supported) until
/// ClearForcedIsaLevel(). Test/bench hook: not for use while another thread
/// is inside a kernel.
void ForceIsaLevel(IsaLevel level);
void ClearForcedIsaLevel();

}  // namespace rept::simd
