// Simple tabulation hashing over the 8-byte canonical edge key.
//
// Tabulation hashing (Zobrist/Carter-Wegman) is 3-independent, which more
// than satisfies the pairwise independence REPT's analysis assumes. It costs
// 8 table lookups per edge and 16 KiB of tables per hasher.
#pragma once

#include <array>
#include <cstdint>

#include "graph/types.hpp"
#include "hash/edge_hash.hpp"
#include "util/random.hpp"

namespace rept {

/// \brief 3-independent tabulation hasher for undirected edges.
class TabulationEdgeHasher {
 public:
  explicit TabulationEdgeHasher(uint64_t seed = 0) {
    Rng rng(seed ^ 0x7ab07ab07ab07ab0ULL);
    for (auto& table : tables_) {
      for (auto& entry : table) entry = rng.Next();
    }
  }

  uint64_t Hash(VertexId u, VertexId v) const {
    uint64_t key = EdgeKey(u, v);
    uint64_t h = 0;
    for (size_t byte = 0; byte < 8; ++byte) {
      h ^= tables_[byte][key & 0xff];
      key >>= 8;
    }
    return h;
  }

  uint32_t Bucket(VertexId u, VertexId v, uint32_t m) const {
    REPT_DCHECK(m > 0);
    return FastRange(Hash(u, v), m);
  }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

}  // namespace rept
