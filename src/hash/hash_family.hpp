// Families of mutually independent edge hashers.
//
// REPT(1/m, c > m) divides processors into groups; each group k uses its own
// hash function h_k, and the h_k must be independent of one another so the
// per-group estimates are independent (Section III-B of the paper). A
// HashFamily derives the k-th hasher's seed from a master seed through
// SeedSequence, which decorrelates sequential indices.
#pragma once

#include <cstdint>

#include "hash/edge_hash.hpp"
#include "hash/tabulation.hpp"
#include "util/random.hpp"

namespace rept {

/// \brief Produces the k-th member of a seeded family of edge hashers.
template <typename Hasher = MixEdgeHasher>
class HashFamily {
 public:
  explicit HashFamily(uint64_t master_seed)
      : seeds_(master_seed, /*salt=*/0x4a5e1e4bULL) {}

  /// Independent hasher number `k` (k = 0, 1, ...).
  Hasher MakeHasher(uint64_t k) const { return Hasher(seeds_.SeedFor(k)); }

 private:
  SeedSequence seeds_;
};

}  // namespace rept
