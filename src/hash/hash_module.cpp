// The hash module is header-only (hot-path inlining); this anchor keeps the
// module visible to the build and hosts nothing else.
#include "hash/edge_hash.hpp"
#include "hash/hash_family.hpp"
#include "hash/tabulation.hpp"

namespace rept {}  // namespace rept
