// Seeded uniform hashing of undirected edges into m buckets.
//
// REPT's probabilistic guarantees (Theorems 1-3 of the paper) need a hash
// function h(u,v) that maps every edge uniformly and (pairwise)
// independently into {0, ..., m-1}. We provide two families:
//
//  * MixEdgeHasher  — a strong 64-bit finalizer (SplitMix64 mixing over the
//    canonical edge key XOR a seeded offset). Not formally pairwise
//    independent, but statistically indistinguishable in our chi-square and
//    pair-collision tests and very fast. Default.
//  * TabulationEdgeHasher (tabulation.hpp) — simple tabulation hashing,
//    which is provably 3-independent. Used to validate that REPT's accuracy
//    does not secretly rely on idealized hashing (bench_ablation_hash).
//
// Bucket reduction uses the multiply-shift ("fastrange") technique, which
// keeps the map unbiased for any m, not just powers of two.
#pragma once

#include <cstdint>

#include "graph/types.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace rept {

/// Maps a 64-bit hash to [0, m) without modulo bias.
inline uint32_t FastRange(uint64_t hash, uint32_t m) {
  return static_cast<uint32_t>(
      (static_cast<__uint128_t>(hash) * m) >> 64);
}

/// \brief Default seeded edge hasher (SplitMix64 finalizer).
class MixEdgeHasher {
 public:
  explicit MixEdgeHasher(uint64_t seed = 0)
      : offset_(Mix64(seed ^ 0xabcdef0123456789ULL)) {}

  /// 64-bit hash of the undirected edge (orientation independent).
  uint64_t Hash(VertexId u, VertexId v) const {
    return Mix64(EdgeKey(u, v) ^ offset_);
  }

  /// Bucket of the edge in {0, ..., m-1}.
  uint32_t Bucket(VertexId u, VertexId v, uint32_t m) const {
    REPT_DCHECK(m > 0);
    return FastRange(Hash(u, v), m);
  }

  uint64_t seed_offset() const { return offset_; }

 private:
  uint64_t offset_;
};

}  // namespace rept
