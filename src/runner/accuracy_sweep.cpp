#include "runner/accuracy_sweep.hpp"

#include "baselines/baseline_systems.hpp"
#include "runner/evaluation.hpp"
#include "util/check.hpp"

namespace rept {

std::vector<AccuracySweepRow> RunAccuracySweep(const EdgeStream& stream,
                                               const ExactCounts& exact,
                                               const AccuracySweepConfig& cfg,
                                               ThreadPool* pool) {
  REPT_CHECK(!cfg.c_values.empty());
  std::vector<AccuracySweepRow> rows;
  rows.reserve(cfg.c_values.size());

  EvaluationOptions opts;
  opts.runs = cfg.runs;
  opts.master_seed = cfg.seed;
  opts.evaluate_local = cfg.evaluate_local;

  for (uint32_t c : cfg.c_values) {
    AccuracySweepRow row;
    row.c = c;

    const auto rept_sys = MakeRept(cfg.m, c, cfg.evaluate_local);
    const auto mascot_sys =
        MakeParallelMascot(cfg.m, c, cfg.evaluate_local);
    const auto triest_sys =
        MakeParallelTriest(cfg.m, c, cfg.evaluate_local);

    const EvaluationResult r_rept =
        EvaluateSystem(*rept_sys, stream, exact, opts, pool);
    const EvaluationResult r_mascot =
        EvaluateSystem(*mascot_sys, stream, exact, opts, pool);
    const EvaluationResult r_triest =
        EvaluateSystem(*triest_sys, stream, exact, opts, pool);

    row.rept = r_rept.global_nrmse;
    row.mascot = r_mascot.global_nrmse;
    row.triest = r_triest.global_nrmse;
    if (cfg.evaluate_local) {
      row.rept_local = r_rept.mean_local_nrmse;
      row.mascot_local = r_mascot.mean_local_nrmse;
      row.triest_local = r_triest.mean_local_nrmse;
    }
    if (cfg.include_gps) {
      const auto gps_sys = MakeParallelGps(cfg.m, c, /*track_local=*/false);
      EvaluationOptions gps_opts = opts;
      gps_opts.evaluate_local = false;  // paper: GPS global-only figures
      row.gps = EvaluateSystem(*gps_sys, stream, exact, gps_opts, pool)
                    .global_nrmse;
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace rept
