// The shared shape of Figures 3-6: for one dataset, sweep the processor
// count c over a grid, evaluating REPT against the parallel baselines at a
// fixed sampling probability p = 1/m, reporting either global or local
// NRMSE per method.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exact/exact_counts.hpp"
#include "graph/edge_stream.hpp"

namespace rept {

class ThreadPool;

struct AccuracySweepConfig {
  uint32_t m = 10;
  std::vector<uint32_t> c_values;
  uint32_t runs = 5;
  uint64_t seed = 1;
  /// Evaluate local NRMSE (Figures 5/6) in addition to global (Figures 3/4).
  bool evaluate_local = true;
  /// Include the GPS baseline (the paper omits it from the local figures).
  bool include_gps = true;
};

struct AccuracySweepRow {
  uint32_t c = 0;
  // Global NRMSE per method; NaN when not evaluated.
  double rept = 0.0;
  double mascot = 0.0;
  double triest = 0.0;
  double gps = 0.0;
  // Mean local NRMSE per method (when evaluate_local).
  double rept_local = 0.0;
  double mascot_local = 0.0;
  double triest_local = 0.0;
};

/// Runs the four systems over the c grid. Deterministic per config.seed.
std::vector<AccuracySweepRow> RunAccuracySweep(const EdgeStream& stream,
                                               const ExactCounts& exact,
                                               const AccuracySweepConfig& cfg,
                                               ThreadPool* pool);

}  // namespace rept
