// Wall-clock measurement helper for the runtime figures (7 and 8a/8b).
// Reports the median of `repeats` timed runs of EstimatorSystem::Run.
#pragma once

#include <cstdint>

#include "core/estimates.hpp"
#include "graph/edge_stream.hpp"

namespace rept {

class ThreadPool;

struct RuntimeMeasurement {
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  uint32_t repeats = 0;
};

/// Times complete runs (instance construction + one stream pass + estimate
/// combination), the unit the paper's Figure 7 plots.
RuntimeMeasurement MeasureRuntime(const EstimatorSystem& system,
                                  const EdgeStream& stream, uint64_t seed,
                                  ThreadPool* pool, uint32_t repeats = 3);

}  // namespace rept
