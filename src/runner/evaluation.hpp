// NRMSE evaluation harness (paper §IV-C):
//   NRMSE(mu_hat) = sqrt(E[(mu_hat - mu)^2]) / mu
// estimated over R independent runs of an estimator system. Local accuracy
// is reported as the mean NRMSE over all nodes with tau_v > 0 (the paper
// plots one local-error number per configuration; see DESIGN.md §3.5 for
// the aggregation convention).
#pragma once

#include <cstdint>
#include <string>

#include "core/estimates.hpp"
#include "exact/exact_counts.hpp"
#include "graph/edge_stream.hpp"

namespace rept {

class ThreadPool;

struct EvaluationOptions {
  /// Independent runs (distinct derived seeds).
  uint32_t runs = 5;
  uint64_t master_seed = 1;
  /// Also evaluate local (per-node) NRMSE; costs a dense pass per run.
  bool evaluate_local = true;
  /// Run the R runs concurrently instead of parallelizing inside each run.
  /// Auto-selected when unset: systems with few logical processors
  /// parallelize better across runs.
  enum class RunParallelism { kAuto, kAcrossRuns, kWithinRun };
  RunParallelism parallelism = RunParallelism::kAuto;
};

struct EvaluationResult {
  std::string system_name;
  uint32_t runs = 0;
  double global_nrmse = 0.0;
  /// Relative bias of the mean estimate (sanity signal: should be ~0 for
  /// unbiased estimators).
  double global_bias = 0.0;
  /// Mean over v (tau_v > 0) of NRMSE(tau_v_hat). NaN-free: nodes the
  /// estimator never tallies contribute their full truth as error.
  double mean_local_nrmse = 0.0;
  /// Mean wall-clock seconds per run (excludes evaluation overhead).
  double mean_run_seconds = 0.0;
};

/// Runs `system` opts.runs times over `stream` and scores it against the
/// exact counts. Deterministic given opts.master_seed.
EvaluationResult EvaluateSystem(const EstimatorSystem& system,
                                const EdgeStream& stream,
                                const ExactCounts& exact,
                                const EvaluationOptions& opts,
                                ThreadPool* pool);

}  // namespace rept
