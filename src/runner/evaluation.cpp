#include "runner/evaluation.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace rept {

EvaluationResult EvaluateSystem(const EstimatorSystem& system,
                                const EdgeStream& stream,
                                const ExactCounts& exact,
                                const EvaluationOptions& opts,
                                ThreadPool* pool) {
  REPT_CHECK(opts.runs >= 1);
  REPT_CHECK(exact.tau > 0);  // NRMSE undefined otherwise

  bool across_runs;
  switch (opts.parallelism) {
    case EvaluationOptions::RunParallelism::kAcrossRuns:
      across_runs = true;
      break;
    case EvaluationOptions::RunParallelism::kWithinRun:
      across_runs = false;
      break;
    case EvaluationOptions::RunParallelism::kAuto:
    default:
      // Few logical processors -> a single run cannot use the pool well.
      across_runs = system.NumProcessors() < 4;
      break;
  }

  SeedSequence seeds(opts.master_seed, /*salt=*/0xe7a1);
  std::vector<TriangleEstimates> results(opts.runs);
  std::vector<double> run_seconds(opts.runs, 0.0);

  auto one_run = [&](size_t r, ThreadPool* run_pool) {
    WallTimer timer;
    results[r] = system.Run(stream, seeds.SeedFor(r), run_pool);
    run_seconds[r] = timer.Seconds();
  };

  if (across_runs && pool != nullptr && opts.runs > 1) {
    ParallelFor(*pool, opts.runs,
                [&one_run](size_t r) { one_run(r, nullptr); });
  } else {
    for (uint32_t r = 0; r < opts.runs; ++r) one_run(r, pool);
  }

  EvaluationResult out;
  out.system_name = system.Name();
  out.runs = opts.runs;

  ErrorStats global_stats(static_cast<double>(exact.tau));
  for (const TriangleEstimates& est : results) {
    global_stats.AddEstimate(est.global);
  }
  out.global_nrmse = global_stats.nrmse();
  out.global_bias = global_stats.relative_bias();

  double total_seconds = 0.0;
  for (double s : run_seconds) total_seconds += s;
  out.mean_run_seconds = total_seconds / opts.runs;

  if (opts.evaluate_local) {
    const size_t n = exact.tau_v.size();
    std::vector<double> sq_err(n, 0.0);
    for (const TriangleEstimates& est : results) {
      REPT_CHECK(est.local.size() == n);
      for (size_t v = 0; v < n; ++v) {
        if (exact.tau_v[v] == 0) continue;
        const double err =
            est.local[v] - static_cast<double>(exact.tau_v[v]);
        sq_err[v] += err * err;
      }
    }
    double nrmse_sum = 0.0;
    uint64_t counted = 0;
    for (size_t v = 0; v < n; ++v) {
      if (exact.tau_v[v] == 0) continue;
      const double rmse = std::sqrt(sq_err[v] / opts.runs);
      nrmse_sum += rmse / static_cast<double>(exact.tau_v[v]);
      ++counted;
    }
    out.mean_local_nrmse = counted > 0 ? nrmse_sum / counted : 0.0;
  }
  return out;
}

}  // namespace rept
