#include "runner/runtime_measure.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace rept {

RuntimeMeasurement MeasureRuntime(const EstimatorSystem& system,
                                  const EdgeStream& stream, uint64_t seed,
                                  ThreadPool* pool, uint32_t repeats) {
  REPT_CHECK(repeats >= 1);
  SeedSequence seeds(seed, /*salt=*/0x71e3);
  // Untimed warmup: first-touch page faults and allocator growth otherwise
  // penalize whichever system is measured first.
  (void)system.Run(stream, seeds.SeedFor(repeats), pool);
  std::vector<double> times;
  times.reserve(repeats);
  for (uint32_t r = 0; r < repeats; ++r) {
    WallTimer timer;
    const TriangleEstimates est = system.Run(stream, seeds.SeedFor(r), pool);
    times.push_back(timer.Seconds());
    // Keep the optimizer from discarding the run.
    REPT_CHECK(est.global >= 0.0);
  }
  std::sort(times.begin(), times.end());
  RuntimeMeasurement out;
  out.repeats = repeats;
  out.min_seconds = times.front();
  out.max_seconds = times.back();
  out.median_seconds = times[times.size() / 2];
  return out;
}

}  // namespace rept
