#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace rept::obs {

#if !defined(REPT_OBS_DISABLED)

namespace {

struct TraceEvent {
  const char* name;
  uint64_t start_nanos;
  uint64_t end_nanos;
  uint32_t tid;
};

std::mutex g_trace_mutex;
std::vector<TraceEvent>& Events() {
  static std::vector<TraceEvent>* const events = new std::vector<TraceEvent>();
  return *events;
}

uint32_t LocalTraceTid() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RecordSpan(const char* name, uint64_t start_nanos, uint64_t end_nanos) {
  const uint32_t tid = LocalTraceTid();
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  Events().push_back(TraceEvent{name, start_nanos, end_nanos, tid});
}

}  // namespace internal

void StartTracing() {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  Events().clear();
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

Status StopTracingToFile(const std::string& path) {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(g_trace_mutex);
    internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
    events.swap(Events());
  }
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::IOError("cannot write trace to " + path);
  }
  // Rebase timestamps so the capture starts near t=0; chrome://tracing
  // expects microseconds.
  uint64_t base = ~uint64_t{0};
  for (const TraceEvent& e : events) {
    if (e.start_nanos < base) base = e.start_nanos;
  }
  std::fprintf(out, "{\"traceEvents\": [");
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const double ts = static_cast<double>(e.start_nanos - base) / 1e3;
    const double dur = static_cast<double>(e.end_nanos - e.start_nanos) / 1e3;
    std::fprintf(out,
                 "%s\n  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                 "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
                 i == 0 ? "" : ",", e.name, e.tid, ts, dur);
  }
  std::fprintf(out, "\n]}\n");
  if (std::fclose(out) != 0) {
    return Status::IOError("short write of trace to " + path);
  }
  return Status::OK();
}

#else  // REPT_OBS_DISABLED

Status StopTracingToFile(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::IOError("cannot write trace to " + path);
  }
  std::fprintf(out, "{\"traceEvents\": []}\n");
  if (std::fclose(out) != 0) {
    return Status::IOError("short write of trace to " + path);
  }
  return Status::OK();
}

#endif  // REPT_OBS_DISABLED

}  // namespace rept::obs
