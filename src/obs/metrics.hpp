// Process-wide metrics registry: named counters, gauges, and histograms
// with wait-free hot-path writes, aggregated on read — the TallyBoard
// philosophy applied to operational telemetry.
//
// Write side: every thread owns one Shard (an array of relaxed-atomic u64
// slots, created lazily on the thread's first increment and never freed, so
// counts survive thread exit). A Counter::Increment is a single-writer
// load+store on the caller's own shard slot — no RMW, no lock prefix, no
// contention — which is what lets the SIMD kernels and the routed ingest
// loop carry live counters inside the 3% overhead budget the CI bench gate
// enforces. Histograms burn one slot per bucket plus a bit-cast double sum
// slot on the same shard machinery.
//
// Read side: Snapshot()/RenderPrometheus()/RenderJson() sum the slots across
// all shards under the registry mutex. Readers may observe a prefix of a
// concurrent increment burst (each slot is individually untorn and
// per-shard monotone, so aggregated counters never go backwards between two
// reads that each observe all prior batches — the METRICS loopback test
// pins this).
//
// Registration is idempotent by name (re-registering returns the existing
// handle; kind mismatches are a programming error). Handles are trivially
// copyable and cheap to cache in function-local statics:
//
//   static const obs::Counter& c = [] -> const obs::Counter& {
//     static const obs::Counter counter =
//         obs::MetricsRegistry::Global().RegisterCounter("rept_x_total", "…");
//     return counter;
//   }();
//
// Compiled-out mode: -DREPT_OBS_DISABLED (the REPT_OBS=OFF CMake option)
// turns every handle method into an empty inline — call sites survive
// unchanged and the optimizer deletes the surrounding bookkeeping.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace rept::obs {

/// \brief One metric's aggregated state at read time.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  /// Counter value (sum over shards).
  uint64_t counter_value = 0;
  /// Gauge value.
  int64_t gauge_value = 0;
  /// Histogram bucket upper bounds; bucket_counts has one extra trailing
  /// +Inf bucket. Non-cumulative (RenderPrometheus accumulates).
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
  double sum = 0.0;
  uint64_t count = 0;
};

#if defined(REPT_OBS_DISABLED)

class Counter {
 public:
  void Increment(uint64_t n = 1) const { (void)n; }
};

class Gauge {
 public:
  void Set(int64_t v) const { (void)v; }
  void Add(int64_t v) const { (void)v; }
};

class Histogram {
 public:
  void Observe(double v) const { (void)v; }
};

#else  // metrics enabled

namespace internal {

/// Slot budget per shard; registration fails a REPT_CHECK past it. 4096
/// u64 slots = one 32 KiB shard per participating thread.
inline constexpr size_t kMaxSlots = 4096;

struct alignas(64) Shard {
  std::atomic<uint64_t> slots[kMaxSlots];
};

/// Registers a fresh zeroed shard with the global registry (mutex-guarded,
/// once per thread).
Shard* CreateShardSlow();

inline Shard& LocalShard() {
  thread_local Shard* shard = CreateShardSlow();
  return *shard;
}

/// Single-writer add: the slot belongs to this thread's shard, so a relaxed
/// load+store is race-free against every other writer and merely "stale at
/// worst" against concurrent aggregating readers.
inline void AddSlot(uint32_t slot, uint64_t n) {
  std::atomic<uint64_t>& s = LocalShard().slots[slot];
  s.store(s.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

/// Same, accumulating a double through its bit pattern (histogram sums).
inline void AddSlotDouble(uint32_t slot, double v) {
  std::atomic<uint64_t>& s = LocalShard().slots[slot];
  const double current =
      std::bit_cast<double>(s.load(std::memory_order_relaxed));
  s.store(std::bit_cast<uint64_t>(current + v), std::memory_order_relaxed);
}

}  // namespace internal

class MetricsRegistry;

/// \brief Wait-free monotone counter handle.
class Counter {
 public:
  void Increment(uint64_t n = 1) const { internal::AddSlot(slot_, n); }

 private:
  friend class MetricsRegistry;
  explicit Counter(uint32_t slot) : slot_(slot) {}
  uint32_t slot_;
};

/// \brief Point-in-time gauge; Set/Add hit one shared relaxed atomic (gauges
/// are set at coarse boundaries, not in per-edge loops).
class Gauge {
 public:
  void Set(int64_t v) const { cell_->store(v, std::memory_order_relaxed); }
  void Add(int64_t v) const {
    cell_->fetch_add(v, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<int64_t>* cell) : cell_(cell) {}
  std::atomic<int64_t>* cell_;
};

/// \brief Fixed-bucket histogram handle; Observe is two shard writes.
class Histogram {
 public:
  void Observe(double v) const {
    uint32_t b = 0;
    while (b < num_bounds_ && v > bounds_[b]) ++b;
    internal::AddSlot(first_slot_ + b, 1);
    internal::AddSlotDouble(first_slot_ + num_bounds_ + 1, v);
  }

 private:
  friend class MetricsRegistry;
  Histogram(uint32_t first_slot, const double* bounds, uint32_t num_bounds)
      : first_slot_(first_slot), bounds_(bounds), num_bounds_(num_bounds) {}
  /// Slot layout: [first_slot_, first_slot_ + num_bounds_] inclusive are
  /// the bucket counts (last = +Inf overflow); the next slot is the sum.
  uint32_t first_slot_;
  const double* bounds_;
  uint32_t num_bounds_;
};

#endif  // REPT_OBS_DISABLED

/// \brief The process-wide registry. All methods are thread-safe.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Idempotent by name: a second registration of the same name (and, for
  /// histograms, the same bucket count) returns the original handle; a kind
  /// mismatch is a checked programming error.
  Counter RegisterCounter(const std::string& name, const std::string& help);
  Gauge RegisterGauge(const std::string& name, const std::string& help);
  Histogram RegisterHistogram(const std::string& name,
                              const std::string& help,
                              std::span<const double> bounds);

  /// Aggregated values of every registered metric, in registration order.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Prometheus text exposition (HELP/TYPE comments, cumulative histogram
  /// buckets). The compiled-out build returns a single comment line.
  std::string RenderPrometheus() const;

  /// Compact JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} for --metrics-out dumps and BENCH_*.json rows.
  std::string RenderJson() const;

 private:
  MetricsRegistry() = default;
};

/// Writes RenderJson() to `path` (--metrics-out plumbing).
Status WriteMetricsJson(const std::string& path);

/// Finds `name` in a Prometheus text exposition and parses its value.
/// `name` must match the full label part too when the line carries one
/// (e.g. `rept_session_edges_ingested{session="x"}`). Returns false when
/// the metric is absent.
bool FindPrometheusValue(std::string_view text, std::string_view name,
                         double* value);

}  // namespace rept::obs
