#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "util/check.hpp"

namespace rept::obs {

#if !defined(REPT_OBS_DISABLED)

namespace {

constexpr size_t kMaxGauges = 256;

struct MetricInfo {
  MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
  std::string name;
  std::string help;
  /// Counter/histogram: first shard slot. Gauge: index into gauges.
  uint32_t slot = 0;
  /// Histogram bucket upper bounds (empty otherwise). unique_ptr keeps the
  /// array address stable across registrations so handles can point at it.
  std::unique_ptr<double[]> bounds;
  uint32_t num_bounds = 0;
};

struct RegistryState {
  mutable std::mutex mutex;
  std::vector<MetricInfo> metrics;
  std::map<std::string, size_t, std::less<>> by_name;
  uint32_t next_slot = 0;
  uint32_t next_gauge = 0;
  /// Shards live until process exit: a thread's counts outlive the thread.
  std::vector<std::unique_ptr<internal::Shard>> shards;
  /// Gauge cells are a fixed array so handles hold stable pointers.
  std::atomic<int64_t> gauges[kMaxGauges] = {};
};

RegistryState& State() {
  // Leaked on purpose: worker threads (and their shard writes) may outlive
  // every static destructor, and telemetry must never order process exit.
  static RegistryState* const state = new RegistryState();
  return *state;
}

/// Sums `slot` across every shard (registry mutex held).
uint64_t SumSlot(const RegistryState& state, uint32_t slot) {
  uint64_t total = 0;
  for (const auto& shard : state.shards) {
    total += shard->slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

double SumSlotDouble(const RegistryState& state, uint32_t slot) {
  double total = 0.0;
  for (const auto& shard : state.shards) {
    total += std::bit_cast<double>(
        shard->slots[slot].load(std::memory_order_relaxed));
  }
  return total;
}

/// Finds an existing metric or appends a new one; returns its index. The
/// caller fills slot/bounds for a fresh entry (found == false).
size_t FindOrAppend(RegistryState& state, const std::string& name,
                    const std::string& help, MetricSnapshot::Kind kind,
                    bool* found) {
  const auto it = state.by_name.find(name);
  if (it != state.by_name.end()) {
    const MetricInfo& existing = state.metrics[it->second];
    REPT_CHECK(existing.kind == kind);
    *found = true;
    return it->second;
  }
  MetricInfo info;
  info.kind = kind;
  info.name = name;
  info.help = help;
  state.metrics.push_back(std::move(info));
  state.by_name.emplace(name, state.metrics.size() - 1);
  *found = false;
  return state.metrics.size() - 1;
}

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

}  // namespace

namespace internal {

Shard* CreateShardSlow() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.shards.push_back(std::make_unique<Shard>());
  return state.shards.back().get();
}

}  // namespace internal

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter MetricsRegistry::RegisterCounter(const std::string& name,
                                         const std::string& help) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  bool found = false;
  const size_t index =
      FindOrAppend(state, name, help, MetricSnapshot::Kind::kCounter, &found);
  if (!found) {
    REPT_CHECK(state.next_slot + 1 <= internal::kMaxSlots);
    state.metrics[index].slot = state.next_slot++;
  }
  return Counter(state.metrics[index].slot);
}

Gauge MetricsRegistry::RegisterGauge(const std::string& name,
                                     const std::string& help) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  bool found = false;
  const size_t index =
      FindOrAppend(state, name, help, MetricSnapshot::Kind::kGauge, &found);
  if (!found) {
    REPT_CHECK(state.next_gauge + 1 <= kMaxGauges);
    state.metrics[index].slot = state.next_gauge++;
  }
  return Gauge(&state.gauges[state.metrics[index].slot]);
}

Histogram MetricsRegistry::RegisterHistogram(const std::string& name,
                                             const std::string& help,
                                             std::span<const double> bounds) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  bool found = false;
  const size_t index = FindOrAppend(state, name, help,
                                    MetricSnapshot::Kind::kHistogram, &found);
  MetricInfo& info = state.metrics[index];
  if (!found) {
    // Buckets + overflow + sum.
    const uint32_t slots = static_cast<uint32_t>(bounds.size()) + 2;
    REPT_CHECK(state.next_slot + slots <= internal::kMaxSlots);
    info.slot = state.next_slot;
    state.next_slot += slots;
    info.num_bounds = static_cast<uint32_t>(bounds.size());
    info.bounds = std::make_unique<double[]>(bounds.size());
    for (size_t i = 0; i < bounds.size(); ++i) {
      REPT_CHECK(i == 0 || bounds[i] > bounds[i - 1]);
      info.bounds[i] = bounds[i];
    }
  }
  REPT_CHECK(info.num_bounds == bounds.size());
  return Histogram(info.slot, info.bounds.get(), info.num_bounds);
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<MetricSnapshot> out;
  out.reserve(state.metrics.size());
  for (const MetricInfo& info : state.metrics) {
    MetricSnapshot snap;
    snap.name = info.name;
    snap.help = info.help;
    snap.kind = info.kind;
    switch (info.kind) {
      case MetricSnapshot::Kind::kCounter:
        snap.counter_value = SumSlot(state, info.slot);
        break;
      case MetricSnapshot::Kind::kGauge:
        snap.gauge_value =
            state.gauges[info.slot].load(std::memory_order_relaxed);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        snap.bounds.assign(info.bounds.get(),
                           info.bounds.get() + info.num_bounds);
        snap.bucket_counts.resize(info.num_bounds + 1);
        for (uint32_t b = 0; b <= info.num_bounds; ++b) {
          snap.bucket_counts[b] = SumSlot(state, info.slot + b);
          snap.count += snap.bucket_counts[b];
        }
        snap.sum = SumSlotDouble(state, info.slot + info.num_bounds + 1);
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  for (const MetricSnapshot& snap : Snapshot()) {
    out += "# HELP " + snap.name + " " + snap.help + "\n";
    switch (snap.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += "# TYPE " + snap.name + " counter\n";
        out += snap.name + " " + std::to_string(snap.counter_value) + "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out += "# TYPE " + snap.name + " gauge\n";
        out += snap.name + " " + std::to_string(snap.gauge_value) + "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out += "# TYPE " + snap.name + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t b = 0; b < snap.bounds.size(); ++b) {
          cumulative += snap.bucket_counts[b];
          out += snap.name + "_bucket{le=\"" + FormatDouble(snap.bounds[b]) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        out += snap.name + "_bucket{le=\"+Inf\"} " +
               std::to_string(snap.count) + "\n";
        out += snap.name + "_sum " + FormatDouble(snap.sum) + "\n";
        out += snap.name + "_count " + std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const MetricSnapshot& snap : Snapshot()) {
    switch (snap.kind) {
      case MetricSnapshot::Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        counters +=
            "\"" + snap.name + "\": " + std::to_string(snap.counter_value);
        break;
      case MetricSnapshot::Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += "\"" + snap.name + "\": " + std::to_string(snap.gauge_value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        if (!histograms.empty()) histograms += ", ";
        histograms += "\"" + snap.name + "\": {\"buckets\": [";
        for (size_t b = 0; b < snap.bucket_counts.size(); ++b) {
          if (b > 0) histograms += ", ";
          const std::string le = b < snap.bounds.size()
                                     ? FormatDouble(snap.bounds[b])
                                     : std::string("\"+Inf\"");
          histograms += "[" + le + ", " +
                        std::to_string(snap.bucket_counts[b]) + "]";
        }
        histograms += "], \"sum\": " + FormatDouble(snap.sum) +
                      ", \"count\": " + std::to_string(snap.count) + "}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

#else  // REPT_OBS_DISABLED

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter MetricsRegistry::RegisterCounter(const std::string&,
                                         const std::string&) {
  return Counter();
}

Gauge MetricsRegistry::RegisterGauge(const std::string&, const std::string&) {
  return Gauge();
}

Histogram MetricsRegistry::RegisterHistogram(const std::string&,
                                             const std::string&,
                                             std::span<const double>) {
  return Histogram();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const { return {}; }

std::string MetricsRegistry::RenderPrometheus() const {
  return "# rept metrics compiled out (REPT_OBS=OFF)\n";
}

std::string MetricsRegistry::RenderJson() const {
  return "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}";
}

#endif  // REPT_OBS_DISABLED

Status WriteMetricsJson(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::IOError("cannot write metrics to " + path);
  }
  const std::string json = MetricsRegistry::Global().RenderJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), out);
  const bool newline_ok = std::fputc('\n', out) != EOF;
  if (std::fclose(out) != 0 || written != json.size() || !newline_ok) {
    return Status::IOError("short write of metrics to " + path);
  }
  return Status::OK();
}

bool FindPrometheusValue(std::string_view text, std::string_view name,
                         double* value) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    // The metric id is everything before the first space (labels included,
    // so a caller can match `name{session="x"}` exactly).
    const size_t space = line.find(' ');
    if (space == std::string_view::npos) continue;
    if (line.substr(0, space) != name) continue;
    const std::string number(line.substr(space + 1));
    char* parsed_end = nullptr;
    const double v = std::strtod(number.c_str(), &parsed_end);
    if (parsed_end == number.c_str()) return false;
    if (value != nullptr) *value = v;
    return true;
  }
  return false;
}

}  // namespace rept::obs
