// Lightweight trace spans emitting chrome://tracing JSON.
//
// A TraceSpan is a scoped RAII timer: when tracing is off (the default) its
// constructor is one relaxed atomic load and nothing else, so spans can sit
// permanently on the sub-batch task boundaries of the routed pipeline. When
// StartTracing() has been called, each span records {name, start, duration,
// thread} and the destructor appends the completed event to a global buffer
// under a mutex — the lock is taken once per *span*, not per edge, and span
// granularity is a pipeline task, so contention is negligible next to the
// work being timed.
//
// StopTracingToFile() disables collection and writes the buffered events as
// a chrome://tracing / Perfetto "traceEvents" array ("X" complete events,
// microsecond timestamps). Load the file via chrome://tracing or
// https://ui.perfetto.dev to see stage-1/stage-2 overlap across pool
// workers (docs/observability.md has a committed capture).
//
// With -DREPT_OBS_DISABLED the span is an empty struct and the file writer
// emits an empty trace, keeping call sites unconditional.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace rept::obs {

#if defined(REPT_OBS_DISABLED)

class TraceSpan {
 public:
  explicit TraceSpan(const char* name) { (void)name; }
};

inline bool TracingEnabled() { return false; }
inline void StartTracing() {}

#else  // tracing enabled

namespace internal {

extern std::atomic<bool> g_tracing_enabled;

/// Monotonic nanoseconds (steady clock).
uint64_t TraceNowNanos();

/// Records one completed span (cold path; takes the trace buffer mutex).
void RecordSpan(const char* name, uint64_t start_nanos, uint64_t end_nanos);

}  // namespace internal

/// \brief True between StartTracing() and StopTracingToFile().
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// \brief Begins buffering spans (clears any previous capture).
void StartTracing();

/// \brief Scoped span: times its own lifetime under `name`. `name` must be
/// a string literal (the pointer is kept until the trace is written).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      start_nanos_ = internal::TraceNowNanos();
    }
  }

  ~TraceSpan() {
    if (name_ != nullptr && TracingEnabled()) {
      internal::RecordSpan(name_, start_nanos_, internal::TraceNowNanos());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_nanos_ = 0;
};

#endif  // REPT_OBS_DISABLED

/// Stops tracing and writes the buffered spans to `path` as a
/// chrome://tracing JSON document. Writes an empty trace when tracing was
/// never started (or the build compiled it out).
Status StopTracingToFile(const std::string& path);

}  // namespace rept::obs
