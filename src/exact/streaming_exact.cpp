#include "exact/streaming_exact.hpp"

namespace rept {

StreamingExactCounter::StreamingExactCounter(VertexId num_vertices,
                                             bool track_eta)
    : track_eta_(track_eta), tau_v_(num_vertices, 0) {
  if (track_eta_) eta_v_.assign(num_vertices, 0);
}

void StreamingExactCounter::ProcessEdge(VertexId u, VertexId v) {
  if (u == v) return;
  scratch_.clear();
  graph_.ForEachCommonNeighbor(u, v,
                               [this](VertexId w) { scratch_.push_back(w); });
  tau_ += scratch_.size();
  if (!scratch_.empty()) {
    tau_v_[u] += scratch_.size();
    tau_v_[v] += scratch_.size();
    for (VertexId w : scratch_) ++tau_v_[w];
  }
  if (track_eta_) {
    // New triangle {u, v, w} has early edges (u,w) and (v,w): pair it with
    // every prior triangle in which those edges are early, then register it.
    for (VertexId w : scratch_) {
      const uint64_t key_uw = EdgeKey(u, w);
      const uint64_t key_vw = EdgeKey(v, w);
      uint32_t* kuw = &early_count_[key_uw];
      const uint64_t generation = early_count_.generation();
      uint32_t* kvw = &early_count_[key_vw];
      if (early_count_.generation() != generation) {
        // The second insert may rehash the flat map; re-find the first.
        kuw = early_count_.Find(key_uw);
      }
      eta_ += *kuw + *kvw;
      eta_v_[w] += *kuw + *kvw;  // shared edge incident to w either way
      eta_v_[u] += *kuw;         // pairs through (u,w) are incident to u
      eta_v_[v] += *kvw;         // pairs through (v,w) are incident to v
      ++*kuw;
      ++*kvw;
    }
  }
  graph_.Insert(u, v);
}

}  // namespace rept
