// Exact triangle enumeration via the "forward" (compact-forward) algorithm:
// vertices are ranked by degree, edges directed low-rank -> high-rank, and
// each triangle is discovered exactly once as the intersection of two
// directed adjacency lists. O(m^{3/2}) time, O(m) space.
//
// The visitor receives, for every triangle {u, v, w}, the arrival indices of
// its three edges in the canonical stream (Graph::edges() order), which is
// what the stream-order quantities eta / eta_v are defined over.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/graph.hpp"

namespace rept {

/// One enumerated triangle: vertices plus the 0-based arrival indices of
/// edges {a,b}, {a,c}, {b,c} in Graph::edges().
struct TriangleHit {
  VertexId a, b, c;
  uint32_t arrival_ab, arrival_ac, arrival_bc;
};

/// Calls `visitor` once per triangle of `graph`.
void EnumerateTriangles(const Graph& graph,
                        const std::function<void(const TriangleHit&)>& visitor);

/// Convenience: just the global count.
uint64_t CountTriangles(const Graph& graph);

}  // namespace rept
