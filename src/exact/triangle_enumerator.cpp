#include "exact/triangle_enumerator.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace rept {

namespace {

struct DirectedEntry {
  uint32_t rank;      // rank of the target vertex
  VertexId id;        // target vertex id
  uint32_t arrival;   // arrival index of the edge
};

}  // namespace

void EnumerateTriangles(
    const Graph& graph,
    const std::function<void(const TriangleHit&)>& visitor) {
  const VertexId n = graph.num_vertices();
  if (n < 3) return;

  // Rank by (degree, id): ties broken deterministically.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&graph](VertexId a, VertexId b) {
    const uint32_t da = graph.degree(a);
    const uint32_t db = graph.degree(b);
    return da != db ? da < db : a < b;
  });
  std::vector<uint32_t> rank(n);
  for (uint32_t i = 0; i < n; ++i) rank[order[i]] = i;

  // Directed adjacency: u -> v iff rank(u) < rank(v); lists sorted by target
  // rank so intersections are linear merges.
  std::vector<uint32_t> out_degree(n, 0);
  for (const Edge& e : graph.edges()) {
    ++out_degree[rank[e.u] < rank[e.v] ? e.u : e.v];
  }
  std::vector<uint64_t> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + out_degree[v];
  std::vector<DirectedEntry> directed(offsets[n]);
  {
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    const auto& edges = graph.edges();
    for (uint32_t i = 0; i < edges.size(); ++i) {
      VertexId lo = edges[i].u;
      VertexId hi = edges[i].v;
      if (rank[lo] > rank[hi]) std::swap(lo, hi);
      directed[cursor[lo]++] = DirectedEntry{rank[hi], hi, i};
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(directed.begin() + static_cast<int64_t>(offsets[v]),
              directed.begin() + static_cast<int64_t>(offsets[v + 1]),
              [](const DirectedEntry& a, const DirectedEntry& b) {
                return a.rank < b.rank;
              });
  }

  // For each directed edge (u -> v), triangles are A+(u) ∩ A+(v).
  for (VertexId u = 0; u < n; ++u) {
    const uint64_t u_begin = offsets[u];
    const uint64_t u_end = offsets[u + 1];
    for (uint64_t ei = u_begin; ei < u_end; ++ei) {
      const DirectedEntry& uv = directed[ei];
      const VertexId v = uv.id;
      uint64_t i = u_begin;
      uint64_t j = offsets[v];
      const uint64_t j_end = offsets[v + 1];
      while (i < u_end && j < j_end) {
        if (directed[i].rank < directed[j].rank) {
          ++i;
        } else if (directed[i].rank > directed[j].rank) {
          ++j;
        } else {
          const DirectedEntry& uw = directed[i];
          const DirectedEntry& vw = directed[j];
          visitor(TriangleHit{u, v, uw.id, uv.arrival, uw.arrival,
                              vw.arrival});
          ++i;
          ++j;
        }
      }
    }
  }
}

uint64_t CountTriangles(const Graph& graph) {
  uint64_t count = 0;
  EnumerateTriangles(graph, [&count](const TriangleHit&) { ++count; });
  return count;
}

}  // namespace rept
