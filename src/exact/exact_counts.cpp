#include "exact/exact_counts.hpp"

#include <algorithm>

#include "exact/triangle_enumerator.hpp"
#include "graph/graph_builder.hpp"

namespace rept {

uint64_t ExactCounts::NumTriangleVertices() const {
  uint64_t count = 0;
  for (uint64_t t : tau_v) {
    if (t > 0) ++count;
  }
  return count;
}

ExactCounts ComputeExactCounts(const Graph& graph, bool with_eta) {
  ExactCounts counts;
  counts.tau_v.assign(graph.num_vertices(), 0);

  // k_g per edge arrival index: triangles in which edge g is early
  // (not the stream-last edge of the triangle).
  std::vector<uint32_t> early_count;
  if (with_eta) early_count.assign(graph.num_edges(), 0);

  EnumerateTriangles(graph, [&](const TriangleHit& t) {
    ++counts.tau;
    ++counts.tau_v[t.a];
    ++counts.tau_v[t.b];
    ++counts.tau_v[t.c];
    if (with_eta) {
      // The two non-max arrivals are the early edges of this triangle.
      const uint32_t last =
          std::max({t.arrival_ab, t.arrival_ac, t.arrival_bc});
      if (t.arrival_ab != last) ++early_count[t.arrival_ab];
      if (t.arrival_ac != last) ++early_count[t.arrival_ac];
      if (t.arrival_bc != last) ++early_count[t.arrival_bc];
    }
  });

  if (with_eta) {
    counts.eta_v.assign(graph.num_vertices(), 0);
    const auto& edges = graph.edges();
    for (uint32_t i = 0; i < edges.size(); ++i) {
      const uint64_t k = early_count[i];
      if (k < 2) continue;
      const uint64_t pairs = k * (k - 1) / 2;
      counts.eta += pairs;
      counts.eta_v[edges[i].u] += pairs;
      counts.eta_v[edges[i].v] += pairs;
    }
  }
  return counts;
}

ExactCounts ComputeExactCounts(const EdgeStream& stream, bool with_eta) {
  GraphBuilder builder;
  builder.AddEdges(stream.edges());
  const Graph graph = builder.Build(stream.num_vertices());
  return ComputeExactCounts(graph, with_eta);
}

}  // namespace rept
