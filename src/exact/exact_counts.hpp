// Exact ground truth for the paper's four graph/stream quantities:
//   tau    — global triangle count (Table I)
//   tau_v  — per-node triangle counts
//   eta    — unordered pairs of distinct triangles sharing an edge g where g
//            is the last stream edge of neither triangle
//   eta_v  — same restricted to triangle pairs incident to v (the shared
//            edge of such a pair is necessarily incident to v)
//
// eta drives every variance expression in the paper; the NRMSE harness needs
// tau/tau_v; Figure 1 and the Algorithm 2 weights need eta/eta_v.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_stream.hpp"
#include "graph/graph.hpp"

namespace rept {

struct ExactCounts {
  uint64_t tau = 0;
  std::vector<uint64_t> tau_v;  // indexed by vertex id
  uint64_t eta = 0;
  std::vector<uint64_t> eta_v;  // indexed by vertex id

  /// Number of vertices with tau_v > 0 (denominator of mean local NRMSE).
  uint64_t NumTriangleVertices() const;
};

/// Computes tau/tau_v (and eta/eta_v when `with_eta`). Stream order is
/// Graph::edges() order.
///
/// eta derivation: for each edge g let k_g be the number of triangles in
/// which g is NOT the last edge ("early" edge). A triangle pair sharing g
/// qualifies iff g is early in both members, so eta = sum_g C(k_g, 2). For a
/// pair of distinct triangles that both contain v, the shared edge must be
/// incident to v (otherwise the two triangles coincide), and every triangle
/// containing an edge incident to v contains v; hence
/// eta_v = sum_{g incident to v} C(k_g, 2).
ExactCounts ComputeExactCounts(const Graph& graph, bool with_eta = true);

/// Convenience overload: builds the Graph from a stream first.
ExactCounts ComputeExactCounts(const EdgeStream& stream, bool with_eta = true);

}  // namespace rept
