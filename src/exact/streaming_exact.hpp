// Full-storage streaming exact counter: processes the stream one edge at a
// time, storing everything, so its "sample" is the entire prefix graph.
// At end of stream it yields exact tau, tau_v and (optionally) exact eta,
// eta_v computed online with the strict pair-counting rule.
//
// Serves three purposes: an independent cross-check of the batch enumerator
// (the two are tested to agree), the "exact" reference line in examples, and
// the m = 1 degenerate case of the semi-triangle machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "container/flat_hash_map.hpp"
#include "graph/edge_stream.hpp"
#include "graph/sampled_graph.hpp"
#include "graph/types.hpp"

namespace rept {

class StreamingExactCounter {
 public:
  explicit StreamingExactCounter(VertexId num_vertices, bool track_eta = true);

  void ProcessEdge(VertexId u, VertexId v);

  void ProcessStream(const EdgeStream& stream) {
    for (const Edge& e : stream) ProcessEdge(e.u, e.v);
  }

  uint64_t tau() const { return tau_; }
  uint64_t tau_v(VertexId v) const { return tau_v_[v]; }
  const std::vector<uint64_t>& tau_v_all() const { return tau_v_; }
  uint64_t eta() const { return eta_; }
  uint64_t eta_v(VertexId v) const { return eta_v_[v]; }

 private:
  bool track_eta_;
  SampledGraph graph_;
  uint64_t tau_ = 0;
  std::vector<uint64_t> tau_v_;
  uint64_t eta_ = 0;
  std::vector<uint64_t> eta_v_;
  /// Early-edge triangle tally per stored edge (k_g in exact_counts.hpp).
  FlatHashMap<uint64_t, uint32_t> early_count_;
  std::vector<VertexId> scratch_;
};

}  // namespace rept
