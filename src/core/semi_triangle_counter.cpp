#include "core/semi_triangle_counter.hpp"

#include <algorithm>

#include "persist/checkpoint_io.hpp"
#include "persist/state_codec.hpp"
#include "util/check.hpp"

namespace rept {

void SemiTriangleCounter::Reset() {
  sample_.Clear();
  global_ = 0.0;
  local_.clear();
  eta_ = 0.0;
  eta_local_.clear();
  edge_triangles_.clear();
  last_valid_ = false;
}

void SemiTriangleCounter::ReserveFor(uint64_t expected_stored_edges,
                                     VertexId max_vertices) {
  if (expected_stored_edges == 0) return;
  const size_t stored = static_cast<size_t>(
      std::min<uint64_t>(expected_stored_edges, uint64_t{1} << 32));
  // A sample of E edges touches at most 2E distinct vertices — but never
  // more than the stream's id space; tallied vertices (endpoints and
  // shared neighbors of completions) concentrate on the same set.
  size_t vertices = 2 * stored;
  if (max_vertices > 0) {
    vertices = std::min(vertices, size_t{max_vertices});
  }
  sample_.ReserveVertices(vertices);
  if (options_.track_local) {
    local_.reserve(vertices);
    if (options_.track_pairs) eta_local_.reserve(vertices);
  }
  if (options_.track_pairs) edge_triangles_.reserve(stored);
}

void SemiTriangleCounter::TallyCompletions(VertexId u, VertexId v,
                                           uint32_t completions) {
  global_ += completions;
  if (options_.track_local) {
    local_[u] += completions;
    local_[v] += completions;
    for (VertexId w : scratch_) local_[w] += 1.0;
  }
  if (options_.track_pairs) {
    // Algorithm 2, UpdateTrianglePairCNT: the new semi-triangle {u,v,w}
    // (early edges (u,w) and (v,w)) pairs with every semi-triangle already
    // registered on those shared edges, then registers itself.
    for (VertexId w : scratch_) {
      const uint64_t key_uw = EdgeKey(u, w);
      const uint64_t key_vw = EdgeKey(v, w);
      uint32_t* kuw = &edge_triangles_[key_uw];
      const uint64_t generation = edge_triangles_.generation();
      uint32_t* kvw = &edge_triangles_[key_vw];
      if (edge_triangles_.generation() != generation) {
        // Inserting the second register rehashed the flat map; re-find
        // the first (flat slots, unlike unordered_map nodes, move).
        kuw = edge_triangles_.Find(key_uw);
      }
      eta_ += *kuw + *kvw;
      if (options_.track_local) {
        // Guarded so zero increments do not create map entries.
        if (*kuw + *kvw > 0) eta_local_[w] += *kuw + *kvw;
        if (*kuw > 0) eta_local_[u] += *kuw;
        if (*kvw > 0) eta_local_[v] += *kvw;
      }
      ++*kuw;
      ++*kvw;
    }
  }
}

void SemiTriangleCounter::InsertSampled(VertexId u, VertexId v) {
  const bool cached =
      last_valid_ && last_probe_.u == u && last_probe_.v == v;
  const bool inserted =
      cached ? sample_.InsertWithProbe(last_probe_) : sample_.Insert(u, v);
  if (!inserted) {
    last_valid_ = false;
    return;
  }
  if (options_.track_pairs && !options_.strict_pairs) {
    // Paper-faithful initialization: τ^(i)_(u,v) ← |N^(i)_u,v| — the
    // semi-triangles whose last edge is (u, v) itself.
    uint32_t completions;
    if (cached) {
      completions = last_completions_;
    } else {
      // Insert() already added the edge; adjacency of u/v now contains each
      // other, but a vertex is never its own neighbor, so the intersection
      // is unaffected by the new edge.
      completions = sample_.CountCommonNeighbors(u, v);
    }
    if (completions > 0) edge_triangles_[EdgeKey(u, v)] = completions;
  }
  last_valid_ = false;
}

void SemiTriangleCounter::EraseSampled(VertexId u, VertexId v) {
  if (!sample_.Erase(u, v)) return;
  if (options_.track_pairs) edge_triangles_.erase(EdgeKey(u, v));
  last_valid_ = false;
}

size_t SemiTriangleCounter::MemoryBytes() const {
  return sample_.MemoryBytes() + local_.MemoryBytes() +
         eta_local_.MemoryBytes() + edge_triangles_.MemoryBytes();
}

void SemiTriangleCounter::SaveState(CheckpointWriter& writer) const {
  writer.AppendU8(options_.track_local ? 1 : 0);
  writer.AppendU8(options_.track_pairs ? 1 : 0);
  writer.AppendU8(options_.strict_pairs ? 1 : 0);
  SaveSampledGraph(writer, sample_);
  writer.AppendDouble(global_);
  SaveVertexTallies(writer, local_);
  writer.AppendDouble(eta_);
  SaveVertexTallies(writer, eta_local_);
  SaveEdgeCounters(writer, edge_triangles_);
}

Status SemiTriangleCounter::LoadState(CheckpointReader& reader) {
  const bool track_local = reader.ReadU8() != 0;
  const bool track_pairs = reader.ReadU8() != 0;
  const bool strict_pairs = reader.ReadU8() != 0;
  REPT_RETURN_NOT_OK(reader.status());
  if (track_local != options_.track_local ||
      track_pairs != options_.track_pairs ||
      strict_pairs != options_.strict_pairs) {
    return Status::Corruption(
        "counter options mismatch: checkpoint was written under different "
        "tally-tracking rules");
  }
  Reset();
  REPT_RETURN_NOT_OK(LoadSampledGraph(reader, sample_));
  global_ = reader.ReadDouble();
  REPT_RETURN_NOT_OK(LoadVertexTallies(reader, local_));
  eta_ = reader.ReadDouble();
  REPT_RETURN_NOT_OK(LoadVertexTallies(reader, eta_local_));
  REPT_RETURN_NOT_OK(LoadEdgeCounters(reader, edge_triangles_));
  return reader.status();
}

void SemiTriangleCounter::AccumulateLocal(std::vector<double>& local_acc,
                                          double weight) const {
  for (const auto& [v, count] : local_) {
    REPT_DCHECK(v < local_acc.size());
    local_acc[v] += weight * count;
  }
}

void SemiTriangleCounter::AccumulateEtaLocal(std::vector<double>& eta_acc,
                                             double weight) const {
  for (const auto& [v, count] : eta_local_) {
    REPT_DCHECK(v < eta_acc.size());
    eta_acc[v] += weight * count;
  }
}

}  // namespace rept
