#include "core/rept_estimator.hpp"

#include <sstream>

#include "core/rept_session.hpp"

namespace rept {

ReptEstimator::ReptEstimator(ReptConfig config) : config_(config) {
  config_.Validate();
}

std::string ReptEstimator::Name() const {
  std::ostringstream name;
  name << "REPT(m=" << config_.m << ",c=" << config_.c << ")";
  return name.str();
}

std::unique_ptr<StreamingEstimator> ReptEstimator::CreateSession(
    uint64_t seed, ThreadPool* pool, const SessionOptions& options) const {
  return std::make_unique<ReptSession>(config_, seed, pool, options);
}

ReptEstimator::RunDetail ReptEstimator::RunDetailed(const EdgeStream& stream,
                                                    uint64_t seed,
                                                    ThreadPool* pool) const {
  ReptSession session(config_, seed, pool);
  session.Ingest(stream);
  return session.SnapshotDetailed();
}

}  // namespace rept
