#include "core/rept_estimator.hpp"

#include <sstream>

#include "core/rept_session.hpp"

namespace rept {

// Deliberately no Validate() here: the estimator may be constructed from
// untrusted wire input (rept_server builds one per CREATE_SESSION request);
// CreateSession() is the validation gate that turns a bad config into an
// InvalidArgument instead of a process abort.
ReptEstimator::ReptEstimator(ReptConfig config) : config_(config) {}

std::string ReptEstimator::Name() const {
  std::ostringstream name;
  name << "REPT(m=" << config_.m << ",c=" << config_.c << ")";
  return name.str();
}

Result<std::unique_ptr<StreamingEstimator>> ReptEstimator::CreateSession(
    uint64_t seed, ThreadPool* pool, const SessionOptions& options) const {
  REPT_RETURN_NOT_OK(config_.Check());
  REPT_RETURN_NOT_OK(options.Check());
  return std::unique_ptr<StreamingEstimator>(
      std::make_unique<ReptSession>(config_, seed, pool, options));
}

ReptEstimator::RunDetail ReptEstimator::RunDetailed(const EdgeStream& stream,
                                                    uint64_t seed,
                                                    ThreadPool* pool) const {
  ReptSession session(config_, seed, pool);
  session.Ingest(stream);
  return session.SnapshotDetailed();
}

}  // namespace rept
