#include "core/variance.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rept::variance {

double MascotSingle(double tau, double eta, double m) {
  REPT_DCHECK(m >= 1.0);
  return tau * (m * m - 1.0) + 2.0 * eta * (m - 1.0);
}

double ParallelMascot(double tau, double eta, double m, double c) {
  REPT_DCHECK(c >= 1.0);
  return MascotSingle(tau, eta, m) / c;
}

double ReptSmallC(double tau, double eta, double m, double c) {
  REPT_DCHECK(c >= 1.0 && c <= m);
  return (tau * (m * m - c) + 2.0 * eta * (m - c)) / c;
}

double ReptFullGroups(double tau, double m, double c1) {
  REPT_DCHECK(c1 >= 1.0);
  return tau * (m - 1.0) / c1;
}

double ReptRemainderGroup(double tau, double eta, double m, double c2) {
  REPT_DCHECK(c2 >= 1.0 && c2 < m);
  return (tau * (m * m - c2) + 2.0 * eta * (m - c2)) / c2;
}

double Combined(double v1, double v2) {
  if (v1 + v2 <= 0.0) return 0.0;
  return v1 * v2 / (v1 + v2);
}

double Rept(double tau, double eta, double m, double c) {
  if (c <= m) return ReptSmallC(tau, eta, m, c);
  const double c1 = std::floor(c / m);
  const double c2 = c - c1 * m;
  const double v1 = ReptFullGroups(tau, m, c1);
  if (c2 == 0.0) return v1;
  const double v2 = ReptRemainderGroup(tau, eta, m, c2);
  return Combined(v1, v2);
}

VarianceTerms MascotTerms(double tau, double eta, double p) {
  REPT_DCHECK(p > 0.0 && p <= 1.0);
  VarianceTerms terms;
  terms.tau_term = tau * (1.0 / (p * p) - 1.0);
  terms.eta_term = 2.0 * eta * (1.0 / p - 1.0);
  return terms;
}

}  // namespace rept::variance
