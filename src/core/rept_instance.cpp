#include "core/rept_instance.hpp"

// Header-only; anchor translation unit.
namespace rept {}  // namespace rept
