#include "core/batch_router.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace rept {

namespace {

/// Edges hashed per (group, edge-range) tile: large enough that the per-tile
/// claim (one relaxed atomic op) is noise, small enough that a typical chunk
/// still splits across workers.
constexpr size_t kRouteTileEdges = 4096;

/// One increment per hash_buckets kernel call (a call covers up to a whole
/// tile of edges; rept_router_edges_hashed_total carries the edge volume).
struct RouterMetrics {
  obs::Counter hash_calls = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_simd_hash_buckets_calls_total",
      "Dispatched hash_buckets kernel invocations");
  obs::Counter edges_hashed = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_router_edges_hashed_total",
      "Edge-group pairs pushed through the batch hash kernel");
};

const RouterMetrics& Metrics() {
  static const RouterMetrics metrics;
  return metrics;
}

}  // namespace

BatchRouter::BatchRouter(std::vector<GroupSpec> groups) {
  groups_.reserve(groups.size());
  for (GroupSpec& spec : groups) {
    REPT_CHECK(spec.live_buckets >= 1);
    REPT_CHECK(spec.live_buckets <= spec.num_buckets);
    GroupState state;
    state.spec = spec;
    state.offsets.assign(spec.live_buckets + 1, 0);
    groups_.push_back(std::move(state));
  }
}

void BatchRouter::BeginBatch(std::span<const Edge> edges) {
  REPT_CHECK(edges.size() <= kMaxBatchEdges);
  batch_ = edges;
  routed_entries_ = 0;
}

void BatchRouter::RouteGroup(size_t g) {
  // Hash pass for this group only, then its counting sort. Touches nothing
  // but groups_[g] scratch, so concurrent RouteGroup(g') calls are disjoint.
  GroupState& group = groups_[g];
  const size_t n = batch_.size();
  group.buckets.resize(n);
  Metrics().hash_calls.Increment();
  Metrics().edges_hashed.Increment(n);
  simd::ActiveKernels().hash_buckets(batch_.data(), n,
                                     group.spec.hasher.seed_offset(),
                                     group.spec.num_buckets,
                                     group.buckets.data());
  ScatterGroup(g);
}

void BatchRouter::FinishBatch() {
  routed_entries_ = 0;
  for (const GroupState& group : groups_) {
    routed_entries_ += group.routed.size();
  }
  batch_ = {};
}

void BatchRouter::ScatterGroup(size_t g) {
  // Counting-sort the group's live-bucket hits into the per-instance
  // sublists (ascending within a bucket because the scan is in stream
  // order).
  GroupState& group = groups_[g];
  const size_t n = group.buckets.size();
  const uint32_t live = group.spec.live_buckets;
  std::fill(group.offsets.begin(), group.offsets.end(), 0u);
  for (size_t t = 0; t < n; ++t) {
    const uint32_t b = group.buckets[t];
    if (b < live) ++group.offsets[b + 1];
  }
  for (uint32_t b = 0; b < live; ++b) {
    group.offsets[b + 1] += group.offsets[b];
  }
  group.routed.resize(group.offsets[live]);
  group.cursor.assign(group.offsets.begin(), group.offsets.end() - 1);
  for (size_t t = 0; t < n; ++t) {
    const uint32_t b = group.buckets[t];
    if (b < live) {
      group.routed[group.cursor[b]++] = static_cast<uint32_t>(t);
    }
  }
}

void BatchRouter::Route(std::span<const Edge> edges, ThreadPool* pool) {
  BeginBatch(edges);
  const size_t n = edges.size();

  // Pass A — hashing, the per-edge hot loop. The flattened work space is
  // num_groups x n edge slots, claimed as (group, edge-range) tiles; each
  // tile runs the dispatched batch hash kernel over a disjoint slice of one
  // group's bucket scratch (per-edge results are independent, so tiling
  // does not affect them).
  for (GroupState& group : groups_) group.buckets.resize(n);
  const simd::KernelTable& kernels = simd::ActiveKernels();
  auto hash_range = [this, edges, n, &kernels](size_t begin, size_t end) {
    while (begin < end) {
      const size_t g = begin / n;
      const size_t first = begin % n;
      const size_t last = std::min(n, first + (end - begin));
      GroupState& group = groups_[g];
      Metrics().hash_calls.Increment();
      Metrics().edges_hashed.Increment(last - first);
      kernels.hash_buckets(edges.data() + first, last - first,
                           group.spec.hasher.seed_offset(),
                           group.spec.num_buckets,
                           group.buckets.data() + first);
      begin += last - first;
    }
  };
  if (pool != nullptr && n > 0) {
    ParallelForChunked(*pool, groups_.size() * n, kRouteTileEdges, hash_range);
  } else {
    hash_range(0, groups_.size() * n);
  }

  // Pass B — scatter. Groups are independent.
  auto scatter_group = [this](size_t g) { ScatterGroup(g); };
  if (pool != nullptr && groups_.size() > 1) {
    ParallelFor(*pool, groups_.size(), scatter_group);
  } else {
    for (size_t g = 0; g < groups_.size(); ++g) ScatterGroup(g);
  }

  FinishBatch();
}

std::span<const uint32_t> BatchRouter::Inserts(size_t group,
                                               uint32_t bucket) const {
  const GroupState& state = groups_[group];
  REPT_DCHECK(bucket < state.spec.live_buckets);
  const uint32_t begin = state.offsets[bucket];
  const uint32_t end = state.offsets[bucket + 1];
  return std::span<const uint32_t>(state.routed.data() + begin, end - begin);
}

}  // namespace rept
