// Closed-form variance expressions from the paper, used to (a) validate the
// implementation empirically (property tests compare Monte-Carlo variance to
// these formulas), (b) reproduce Figure 1's term decomposition, and
// (c) predict the error-reduction ratios quoted in §III-C.
//
// All formulas are for estimates of tau (substitute tau_v / eta_v for local
// counts).
#pragma once

#include <cstdint>

namespace rept::variance {

/// Variance of a single MASCOT instance with sampling probability p = 1/m
/// (Lemma 6 of [16] as quoted in the paper):
///   tau(p^-2 - 1) + 2 eta(p^-1 - 1) = tau(m^2 - 1) + 2 eta(m - 1).
double MascotSingle(double tau, double eta, double m);

/// Variance of averaging c independent MASCOT/TRIEST instances:
///   (tau(m^2 - 1) + 2 eta(m - 1)) / c.
double ParallelMascot(double tau, double eta, double m, double c);

/// REPT with c <= m (Theorem 3):
///   (tau(m^2 - c) + 2 eta(m - c)) / c.
double ReptSmallC(double tau, double eta, double m, double c);

/// REPT with c = c1 * m full groups (Section III-B case c2 = 0):
///   tau(m - 1) / c1.
double ReptFullGroups(double tau, double m, double c1);

/// The remainder group of Algorithm 2 (equation (2)):
///   (tau(m^2 - c2) + 2 eta(m - c2)) / c2.
double ReptRemainderGroup(double tau, double eta, double m, double c2);

/// Variance of the Graybill-Deal combination: v1*v2 / (v1 + v2).
double Combined(double v1, double v2);

/// Variance of the full REPT(m, c) system with true tau/eta plugged in
/// (dispatches on c <= m / c % m == 0 / otherwise).
double Rept(double tau, double eta, double m, double c);

/// Figure 1's two terms for a single MASCOT instance: tau(p^-2 - 1) and
/// 2 eta(p^-1 - 1).
struct VarianceTerms {
  double tau_term = 0.0;
  double eta_term = 0.0;
};
VarianceTerms MascotTerms(double tau, double eta, double p);

}  // namespace rept::variance
