// The full REPT system (the paper's contribution): random edge partition and
// triangle counting across c logical processors.
//
//  * c <= m (Algorithm 1): one group; processor i keeps bucket i of a single
//    shared hash h. Estimate: tau_hat = (m^2/c) * sum_i tau^(i).
//  * c > m, c % m == 0: c1 = c/m independent groups of m processors, group k
//    using its own hash h_k. Estimate: tau_hat = (m/c1) * sum_i tau^(i).
//  * c > m, c % m != 0 (Algorithm 2): c1 full groups plus a remainder group
//    of c2 processors. Two unbiased estimates tau_hat^(1) (full groups) and
//    tau_hat^(2) (remainder) are combined Graybill-Deal style with plug-in
//    variances built from tau_hat^(1) and the pair-count estimate
//    eta_hat = (m^3/c) * sum_i eta^(i). Same machinery per node for local
//    counts.
//
// All execution lives in ReptSession (core/rept_session.hpp); this class is
// the named configuration that spawns sessions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/estimates.hpp"
#include "core/rept_config.hpp"

namespace rept {

class ThreadPool;

/// \brief REPT estimator system. Thread-compatible: CreateSession() and
/// Run() are const and re-entrant (all run state lives in the session).
class ReptEstimator : public EstimatorSystem {
 public:
  explicit ReptEstimator(ReptConfig config);

  std::string Name() const override;
  uint32_t NumProcessors() const override { return config_.c; }

  /// Opens a ReptSession (see core/rept_session.hpp). The sizing hints in
  /// `options` are optional: REPT's per-processor sampling rate is 1/m, so
  /// no reservoir sizing depends on |E|. InvalidArgument when the config
  /// fails ReptConfig::Check() or the hints fail SessionOptions::Check().
  Result<std::unique_ptr<StreamingEstimator>> CreateSession(
      uint64_t seed, ThreadPool* pool,
      const SessionOptions& options = {}) const override;

  /// \brief Diagnostic payload exposed for tests, ablations, and the
  /// EXPERIMENTS.md tables.
  struct RunDetail {
    TriangleEstimates estimates;
    /// Raw per-processor semi-triangle tallies tau^(i).
    std::vector<double> instance_tallies;
    /// Algorithm 2 intermediates (meaningful only when c > m, c % m != 0).
    double tau_hat1 = 0.0;
    double tau_hat2 = 0.0;
    double eta_hat = 0.0;
    double w1 = 0.0;
    double w2 = 0.0;
    bool used_combination = false;
  };

  RunDetail RunDetailed(const EdgeStream& stream, uint64_t seed,
                        ThreadPool* pool) const;

  const ReptConfig& config() const { return config_; }

 private:
  ReptConfig config_;
};

}  // namespace rept
