// REPT system configuration.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace rept {

/// \brief Configuration of a full REPT run (Algorithms 1 and 2).
struct ReptConfig {
  /// Sampling denominator: p = 1/m, m >= 2.
  uint32_t m = 10;
  /// Number of logical processors.
  uint32_t c = 1;
  /// Track per-node estimates (disable for global-only sweeps).
  bool track_local = true;
  /// Use the strict eta pair-counting rule instead of the paper-faithful
  /// initialization (see SemiTriangleCounter::Options::strict_pairs).
  bool strict_eta_pairs = false;
  /// Execute each group of m processors as one fused pass (identical
  /// results, different parallel granularity; ablation knob).
  bool fused_groups = false;

  void Validate() const {
    REPT_CHECK(m >= 2);
    REPT_CHECK(c >= 1);
  }

  double sampling_probability() const { return 1.0 / m; }

  /// True when Algorithm 2's remainder-group machinery (eta estimation and
  /// Graybill-Deal combination) is active.
  bool NeedsPairTracking() const { return c > m && c % m != 0; }
};

}  // namespace rept
