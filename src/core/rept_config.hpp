// REPT system configuration.
#pragma once

#include <cstdint>
#include <string>

#include "util/check.hpp"
#include "util/status.hpp"

namespace rept {

/// \brief Ingest execution strategy of a ReptSession. Every mode produces
/// bit-identical tallies for the same (stream, seed) — this is a performance
/// and scheduling knob only (ablation + bench comparison).
enum class DispatchMode : uint8_t {
  /// Two-stage dispatch pipeline (default): stage 1 hashes each edge once
  /// per fused hash group and routes it to the one instance whose bucket it
  /// hits; stage 2 replays the batch per instance from the routed sublists,
  /// never re-hashing. c/m hash evaluations per edge instead of c.
  kRouted,
  /// Legacy: every instance replays the whole batch and re-evaluates the
  /// group hash itself — c hash evaluations per edge.
  kBroadcast,
  /// Legacy fused ablation: one pass per group of m processors, hashing each
  /// edge once per instance but scheduling at group granularity.
  kFused,
};

/// \brief Configuration of a full REPT run (Algorithms 1 and 2).
struct ReptConfig {
  /// Sampling denominator: p = 1/m, m >= 2.
  uint32_t m = 10;
  /// Number of logical processors.
  uint32_t c = 1;
  /// Track per-node estimates (disable for global-only sweeps).
  bool track_local = true;
  /// Use the strict eta pair-counting rule instead of the paper-faithful
  /// initialization (see SemiTriangleCounter::Options::strict_pairs).
  bool strict_eta_pairs = false;
  /// Ingest scheduling strategy (identical results in every mode).
  DispatchMode dispatch = DispatchMode::kRouted;
  /// Routed-mode sub-batch size in edges. One Ingest() call is split into
  /// sub-batches of at most this many edges; each sub-batch is routed,
  /// replayed, and published as one pipeline step (routing of sub-batch k+1
  /// overlaps the replay of sub-batch k on the session's pool). Bounds the
  /// router scratch to O(num_groups x sub-batch) and keeps every routed
  /// batch far below BatchRouter::kMaxBatchEdges. Scheduling knob only —
  /// results are sub-batch-boundary invariant by construction — and, like
  /// `dispatch`, excluded from the checkpoint fingerprint.
  uint32_t routed_sub_batch = 1u << 20;

  /// Hard ceilings on the configuration space. Values beyond these are
  /// treated as hostile or nonsensical (a processor count in the millions
  /// would eagerly allocate that many counters): Check() rejects them so a
  /// network-facing caller (rept_server CREATE_SESSION) can refuse a bad
  /// request instead of dying on a REPT_CHECK or exhausting memory. The
  /// paper evaluates c up to 320; 65536 leaves two orders of headroom.
  static constexpr uint32_t kMaxProcessors = 1u << 16;
  static constexpr uint32_t kMaxSamplingDenominator = 1u << 28;

  /// Recoverable validation: InvalidArgument with a narrative message for
  /// out-of-domain or absurd values, OK otherwise. The untrusted-input
  /// counterpart of Validate().
  Status Check() const {
    if (m < 2 || m > kMaxSamplingDenominator) {
      return Status::InvalidArgument(
          "m must be in [2, " + std::to_string(kMaxSamplingDenominator) +
          "], got " + std::to_string(m));
    }
    if (c < 1 || c > kMaxProcessors) {
      return Status::InvalidArgument(
          "c must be in [1, " + std::to_string(kMaxProcessors) + "], got " +
          std::to_string(c));
    }
    if (routed_sub_batch < 1) {
      return Status::InvalidArgument("routed_sub_batch must be >= 1");
    }
    return Status::OK();
  }

  void Validate() const {
    const Status st = Check();
    REPT_CHECK(st.ok() && "invalid ReptConfig (see ReptConfig::Check)");
  }

  double sampling_probability() const { return 1.0 / m; }

  /// True when Algorithm 2's remainder-group machinery (eta estimation and
  /// Graybill-Deal combination) is active.
  bool NeedsPairTracking() const { return c > m && c % m != 0; }
};

}  // namespace rept
