// One REPT logical processor: stores the edges a shared hash function maps to
// its bucket and tallies semi-triangles (plus pair counts when Algorithm 2 is
// active).
#pragma once

#include <cstdint>

#include "core/semi_triangle_counter.hpp"
#include "graph/edge_stream.hpp"
#include "graph/types.hpp"
#include "hash/edge_hash.hpp"

namespace rept {

/// \brief Processor i of a REPT group: keeps edge (u,v) iff
/// h_group(u, v) == bucket, where h_group is shared by the whole group.
class ReptInstance {
 public:
  /// `hasher` seed must be identical across a group's instances — the
  /// within-group dependence of the stored sets is REPT's whole point.
  ReptInstance(MixEdgeHasher hasher, uint32_t m, uint32_t bucket,
               SemiTriangleCounter::Options counter_options)
      : hasher_(hasher), m_(m), bucket_(bucket), counter_(counter_options) {
    REPT_CHECK(bucket < m);
  }

  void ProcessEdge(VertexId u, VertexId v) {
    counter_.CountArrival(u, v);
    if (hasher_.Bucket(u, v, m_) == bucket_) counter_.InsertSampled(u, v);
  }

  void ProcessStream(const EdgeStream& stream) {
    for (const Edge& e : stream) ProcessEdge(e.u, e.v);
  }

  /// Raw (unscaled) tallies tau^(i), eta^(i) and accessors used by the
  /// system-level combiner.
  const SemiTriangleCounter& counter() const { return counter_; }
  SemiTriangleCounter& counter() { return counter_; }

  uint32_t bucket() const { return bucket_; }
  uint32_t m() const { return m_; }

 private:
  MixEdgeHasher hasher_;
  uint32_t m_;
  uint32_t bucket_;
  SemiTriangleCounter counter_;
};

}  // namespace rept
