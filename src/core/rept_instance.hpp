// One REPT logical processor: stores the edges a shared hash function maps to
// its bucket and tallies semi-triangles (plus pair counts when Algorithm 2 is
// active).
#pragma once

#include <cstdint>
#include <span>

#include "core/semi_triangle_counter.hpp"
#include "graph/edge_stream.hpp"
#include "graph/types.hpp"
#include "hash/edge_hash.hpp"

namespace rept {

/// \brief Processor i of a REPT group: keeps edge (u,v) iff
/// h_group(u, v) == bucket, where h_group is shared by the whole group.
class ReptInstance {
 public:
  /// `hasher` seed must be identical across a group's instances — the
  /// within-group dependence of the stored sets is REPT's whole point.
  ReptInstance(MixEdgeHasher hasher, uint32_t m, uint32_t bucket,
               SemiTriangleCounter::Options counter_options)
      : hasher_(hasher), m_(m), bucket_(bucket), counter_(counter_options) {
    REPT_CHECK(bucket < m);
  }

  void ProcessEdge(VertexId u, VertexId v) {
    // The bucket decision involves no counter state, so it can lead the
    // count: stored edges take the probe-caching arrival (its probes feed
    // the insert), the other m-1 of m take the lighter no-store variant.
    if (hasher_.Bucket(u, v, m_) == bucket_) {
      counter_.CountArrival(u, v);
      counter_.InsertSampled(u, v);
    } else {
      counter_.CountArrivalNoStore(u, v);
    }
  }

  void ProcessStream(const EdgeStream& stream) {
    for (const Edge& e : stream) ProcessEdge(e.u, e.v);
  }

  /// Stage 2 of the dispatch pipeline: replays a routed batch with zero hash
  /// evaluations. `inserts` holds the ascending in-batch indices of the
  /// edges whose (pre-evaluated, shared-hash) bucket matched this instance —
  /// every edge is still counted, exactly as ProcessEdge would have, so the
  /// resulting tallies are bit-identical to a broadcast replay.
  void ReplayRouted(std::span<const Edge> edges,
                    std::span<const uint32_t> inserts) {
    // Software-pipelined: the adjacency slots of edge t + k are prefetched
    // while edge t is counted, overlapping the per-edge cache misses that
    // dominate replay (pure scheduling — results are untouched).
    constexpr size_t kPrefetchAhead = 8;
    size_t next = 0;
    for (size_t t = 0; t < edges.size(); ++t) {
      if (t + kPrefetchAhead < edges.size()) {
        const Edge& ahead = edges[t + kPrefetchAhead];
        counter_.PrefetchArrival(ahead.u, ahead.v);
      }
      const Edge& e = edges[t];
      if (next < inserts.size() && inserts[next] == t) {
        counter_.CountArrival(e.u, e.v);
        counter_.InsertSampled(e.u, e.v);
        ++next;
      } else {
        counter_.CountArrivalNoStore(e.u, e.v);
      }
    }
    REPT_DCHECK(next == inserts.size());
  }

  /// Raw (unscaled) tallies tau^(i), eta^(i) and accessors used by the
  /// system-level combiner.
  const SemiTriangleCounter& counter() const { return counter_; }
  SemiTriangleCounter& counter() { return counter_; }

  uint32_t bucket() const { return bucket_; }
  uint32_t m() const { return m_; }
  const MixEdgeHasher& hasher() const { return hasher_; }

 private:
  MixEdgeHasher hasher_;
  uint32_t m_;
  uint32_t bucket_;
  SemiTriangleCounter counter_;
};

}  // namespace rept
