// The per-processor semi-triangle counting engine (the body of the paper's
// UpdateTriangleCNT / UpdateTrianglePairCNT functions).
//
// A semi-triangle of a processor is a triangle whose first two stream edges
// are in the processor's stored edge set E^(i), regardless of its last edge.
// For every arriving edge (u, v) the engine counts the stored common
// neighborhood N^(i)_u ∩ N^(i)_v — exactly the semi-triangles whose last
// edge is (u, v) — and maintains:
//
//   tau^(i)        global semi-triangle tally
//   tau_v^(i)      per-node tallies (u, v, and every shared neighbor w)
//   eta^(i)/eta_v^(i)   (optional) triangle-pair tallies via the per-edge
//                  counters τ^(i)_(u,v) of Algorithm 2
//
// Whether the arriving edge is then *stored* is the caller's policy: REPT
// stores on hash match, MASCOT on a coin flip. Counting always happens
// first, mirroring the pseudocode.
//
// All per-edge state lives in flat, arena-backed structures (container/):
// the sampled adjacency is a FlatHashMap of inline-small NeighborLists and
// every tally map is a FlatHashMap — no node allocations or pointer chases
// anywhere on the arrival path. CountArrival records the adjacency slots it
// probed so an immediately following InsertSampled reuses them instead of
// re-hashing.
#pragma once

#include <cstdint>
#include <vector>

#include "container/flat_hash_map.hpp"
#include "graph/sampled_graph.hpp"
#include "graph/types.hpp"
#include "util/status.hpp"

namespace rept {

class CheckpointReader;
class CheckpointWriter;

/// \brief Per-processor counting state shared by REPT instances and MASCOT.
class SemiTriangleCounter {
 public:
  /// Per-node tally map: vertex -> tau_v^(i) (or eta_v^(i)).
  using VertexTallyMap = FlatHashMap<VertexId, double>;
  /// Per-edge pair registers of Algorithm 2: EdgeKey -> τ^(i)_(u,v).
  using EdgeCounterMap = FlatHashMap<uint64_t, uint32_t>;

  struct Options {
    /// Maintain per-node tallies (cheap to disable for global-only benches).
    bool track_local = true;
    /// Maintain eta^(i)/eta_v^(i) pair counters (Algorithm 2; only needed
    /// when REPT runs with c > m and c % m != 0).
    bool track_pairs = false;
    /// Paper-faithful pair counting initializes the per-edge counter of a
    /// newly *stored* edge to its current completion count (Algorithm 2,
    /// "τ^(i)_(u,v) ← |N^(i)_u,v|"), which also registers triangles whose
    /// shared edge would be their *last* edge — a small positive bias of
    /// E[η̂] (DESIGN.md §3.1). Setting strict_pairs skips that
    /// initialization so eta^(i) counts exactly the pairs in the paper's
    /// definition of eta.
    bool strict_pairs = false;
  };

  SemiTriangleCounter() : options_(Options{}) {}
  explicit SemiTriangleCounter(const Options& options) : options_(options) {}

  void Reset();

  /// Pre-sizes the sampled adjacency and tally maps for a stream expected
  /// to leave `expected_stored_edges` edges in this processor's sample, so
  /// steady-state ingest never pays a rehash spike (SessionOptions /
  /// BudgetFor hints flow here). `max_vertices` caps the vertex-keyed
  /// reservations at the stream's declared id-space size (0 = unknown) —
  /// without it a large edge hint would over-commit slot arrays far beyond
  /// the number of ids that can ever exist.
  void ReserveFor(uint64_t expected_stored_edges, VertexId max_vertices = 0);

  /// Processes arriving edge (u, v): tallies its semi-triangle completions
  /// (and pair counts when enabled). Returns |N^(i)_u ∩ N^(i)_v|. Records
  /// the arrival's adjacency probes so an immediately following
  /// InsertSampled(u, v) reuses them.
  uint32_t CountArrival(VertexId u, VertexId v) {
    return CountArrivalImpl</*kCacheProbe=*/true>(u, v);
  }

  /// CountArrival for an edge the caller already knows it will NOT store
  /// (REPT's routed replay pre-computes the bucket decision): identical
  /// tallies, but skips the probe/completion caching an insert would have
  /// consumed. Calling InsertSampled afterwards is still correct — it just
  /// recomputes.
  uint32_t CountArrivalNoStore(VertexId u, VertexId v) {
    return CountArrivalImpl</*kCacheProbe=*/false>(u, v);
  }

  /// Cache hint for an upcoming CountArrival(u, v): see
  /// SampledGraph::PrefetchVertices. Batch replay loops issue this a few
  /// edges ahead of the one being counted.
  void PrefetchArrival(VertexId u, VertexId v) const {
    sample_.PrefetchVertices(u, v);
  }

  /// Stores (u, v) in E^(i). Must be called right after CountArrival(u, v)
  /// when the caller's sampling policy accepts the edge (the arrival's
  /// adjacency probes and completion count are reused).
  void InsertSampled(VertexId u, VertexId v);

  /// Removes a stored edge (reservoir evictions). Pair counters for the
  /// edge, if any, are dropped.
  void EraseSampled(VertexId u, VertexId v);

  double global() const { return global_; }
  double eta() const { return eta_; }

  const VertexTallyMap& local() const { return local_; }
  const VertexTallyMap& eta_local() const { return eta_local_; }

  /// local_acc[v] += weight * tau_v^(i) for all tallied v.
  void AccumulateLocal(std::vector<double>& local_acc, double weight) const;
  /// eta_acc[v] += weight * eta_v^(i).
  void AccumulateEtaLocal(std::vector<double>& eta_acc, double weight) const;

  const SampledGraph& sample() const { return sample_; }
  uint64_t stored_edges() const { return sample_.num_edges(); }

  /// Heap bytes of the engine's hot-path state: sampled adjacency (slot
  /// array + arena) plus every tally map's slot array.
  size_t MemoryBytes() const;

  /// Appends the engine's complete state (options echo, sampled edges,
  /// tallies, pair registers) to the writer's current section, in canonical
  /// order. The completion cache is deliberately not persisted: it is only
  /// consulted between a CountArrival and the immediately following
  /// InsertSampled, and checkpoints are taken at batch boundaries where the
  /// next operation is always a CountArrival (which recomputes the same
  /// value from the same sampled graph anyway).
  void SaveState(CheckpointWriter& writer) const;

  /// Resets the engine and rebuilds it from a SaveState payload. The echoed
  /// options must match this engine's construction options (a mismatch is
  /// Corruption: the tallies would be interpreted under the wrong rules).
  Status LoadState(CheckpointReader& reader);

 private:
  /// The shared arrival body, inlined into both entry points. The
  /// kCacheProbe instantiation fills the completion cache for a following
  /// InsertSampled; the no-store instantiation runs the plain (lighter)
  /// intersection.
  template <bool kCacheProbe>
  uint32_t CountArrivalImpl(VertexId u, VertexId v) {
    if (!options_.track_local && !options_.track_pairs) {
      // Count-only sessions (global-only tallies) never read the completion
      // set, so the arrival runs the count kernel and skips materializing
      // scratch_ entirely. `global_ += completions` is the exact arithmetic
      // TallyCompletions performs, so estimates stay bit-identical.
      uint32_t completions;
      if constexpr (kCacheProbe) {
        last_probe_ = sample_.ProbeCountCommonNeighbors(u, v, &completions);
        last_completions_ = completions;
        last_valid_ = true;
      } else {
        completions = sample_.CountCommonNeighbors(u, v);
        last_valid_ = false;
      }
      if (completions > 0) global_ += completions;
      return completions;
    }
    scratch_.clear();
    if constexpr (kCacheProbe) {
      last_probe_ = sample_.ProbeCommonNeighbors(
          u, v, [this](VertexId w) { scratch_.push_back(w); });
    } else {
      sample_.ForEachCommonNeighbor(
          u, v, [this](VertexId w) { scratch_.push_back(w); });
    }
    const uint32_t completions = static_cast<uint32_t>(scratch_.size());
    if (completions > 0) TallyCompletions(u, v, completions);
    if constexpr (kCacheProbe) {
      last_completions_ = completions;
      last_valid_ = true;
    } else {
      last_valid_ = false;
    }
    return completions;
  }

  /// The (rare) tally-update tail of an arrival with completions.
  void TallyCompletions(VertexId u, VertexId v, uint32_t completions);

  Options options_;
  SampledGraph sample_;

  double global_ = 0.0;
  VertexTallyMap local_;

  double eta_ = 0.0;
  VertexTallyMap eta_local_;
  /// τ^(i)_(u,v): semi-triangles registered on stored edge (u,v).
  EdgeCounterMap edge_triangles_;

  /// Completion cache so InsertSampled can reuse the intersection — and the
  /// adjacency slots — that CountArrival just computed (same state, same
  /// result).
  SampledGraph::ArrivalProbe last_probe_;
  uint32_t last_completions_ = 0;
  bool last_valid_ = false;

  std::vector<VertexId> scratch_;
};

}  // namespace rept
