// The per-processor semi-triangle counting engine (the body of the paper's
// UpdateTriangleCNT / UpdateTrianglePairCNT functions).
//
// A semi-triangle of a processor is a triangle whose first two stream edges
// are in the processor's stored edge set E^(i), regardless of its last edge.
// For every arriving edge (u, v) the engine counts the stored common
// neighborhood N^(i)_u ∩ N^(i)_v — exactly the semi-triangles whose last
// edge is (u, v) — and maintains:
//
//   tau^(i)        global semi-triangle tally
//   tau_v^(i)      per-node tallies (u, v, and every shared neighbor w)
//   eta^(i)/eta_v^(i)   (optional) triangle-pair tallies via the per-edge
//                  counters τ^(i)_(u,v) of Algorithm 2
//
// Whether the arriving edge is then *stored* is the caller's policy: REPT
// stores on hash match, MASCOT on a coin flip. Counting always happens
// first, mirroring the pseudocode.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/sampled_graph.hpp"
#include "graph/types.hpp"
#include "util/status.hpp"

namespace rept {

class CheckpointReader;
class CheckpointWriter;

/// \brief Per-processor counting state shared by REPT instances and MASCOT.
class SemiTriangleCounter {
 public:
  struct Options {
    /// Maintain per-node tallies (cheap to disable for global-only benches).
    bool track_local = true;
    /// Maintain eta^(i)/eta_v^(i) pair counters (Algorithm 2; only needed
    /// when REPT runs with c > m and c % m != 0).
    bool track_pairs = false;
    /// Paper-faithful pair counting initializes the per-edge counter of a
    /// newly *stored* edge to its current completion count (Algorithm 2,
    /// "τ^(i)_(u,v) ← |N^(i)_u,v|"), which also registers triangles whose
    /// shared edge would be their *last* edge — a small positive bias of
    /// E[η̂] (DESIGN.md §3.1). Setting strict_pairs skips that
    /// initialization so eta^(i) counts exactly the pairs in the paper's
    /// definition of eta.
    bool strict_pairs = false;
  };

  SemiTriangleCounter() : options_(Options{}) {}
  explicit SemiTriangleCounter(const Options& options) : options_(options) {}

  void Reset();

  /// Processes arriving edge (u, v): tallies its semi-triangle completions
  /// (and pair counts when enabled). Returns |N^(i)_u ∩ N^(i)_v|.
  uint32_t CountArrival(VertexId u, VertexId v);

  /// Stores (u, v) in E^(i). Must be called right after CountArrival(u, v)
  /// when the caller's sampling policy accepts the edge.
  void InsertSampled(VertexId u, VertexId v);

  /// Removes a stored edge (reservoir evictions). Pair counters for the
  /// edge, if any, are dropped.
  void EraseSampled(VertexId u, VertexId v);

  double global() const { return global_; }
  double eta() const { return eta_; }

  const std::unordered_map<VertexId, double>& local() const { return local_; }
  const std::unordered_map<VertexId, double>& eta_local() const {
    return eta_local_;
  }

  /// local_acc[v] += weight * tau_v^(i) for all tallied v.
  void AccumulateLocal(std::vector<double>& local_acc, double weight) const;
  /// eta_acc[v] += weight * eta_v^(i).
  void AccumulateEtaLocal(std::vector<double>& eta_acc, double weight) const;

  const SampledGraph& sample() const { return sample_; }
  uint64_t stored_edges() const { return sample_.num_edges(); }

  /// Appends the engine's complete state (options echo, sampled edges,
  /// tallies, pair registers) to the writer's current section, in canonical
  /// order. The completion cache is deliberately not persisted: it is only
  /// consulted between a CountArrival and the immediately following
  /// InsertSampled, and checkpoints are taken at batch boundaries where the
  /// next operation is always a CountArrival (which recomputes the same
  /// value from the same sampled graph anyway).
  void SaveState(CheckpointWriter& writer) const;

  /// Resets the engine and rebuilds it from a SaveState payload. The echoed
  /// options must match this engine's construction options (a mismatch is
  /// Corruption: the tallies would be interpreted under the wrong rules).
  Status LoadState(CheckpointReader& reader);

 private:
  Options options_;
  SampledGraph sample_;

  double global_ = 0.0;
  std::unordered_map<VertexId, double> local_;

  double eta_ = 0.0;
  std::unordered_map<VertexId, double> eta_local_;
  /// τ^(i)_(u,v): semi-triangles registered on stored edge (u,v).
  std::unordered_map<uint64_t, uint32_t> edge_triangles_;

  /// Completion cache so InsertSampled can reuse the intersection that
  /// CountArrival just computed (same state, same result).
  VertexId last_u_ = 0;
  VertexId last_v_ = 0;
  uint32_t last_completions_ = 0;
  bool last_valid_ = false;

  std::vector<VertexId> scratch_;
};

}  // namespace rept
