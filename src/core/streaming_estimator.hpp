// The streaming-session interface: the push side of the incremental API.
//
// A StreamingEstimator is a long-lived estimation session created by
// EstimatorSystem::CreateSession. Callers push edge batches of any size with
// Ingest() and may call Snapshot() at any time — including from another
// thread while an Ingest() is in flight — to obtain anytime estimates of the
// triangle counts of the stream prefix ingested so far. Ingesting the same
// edge sequence always yields the same tallies regardless of how it was
// chunked into batches, so a full-stream ingest followed by Snapshot()
// reproduces the legacy one-shot EstimatorSystem::Run() bit for bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "core/estimates.hpp"
#include "graph/edge_stream.hpp"
#include "graph/types.hpp"
#include "util/status.hpp"

namespace rept {

class CheckpointReader;
class CheckpointWriter;

/// \brief A long-lived estimation session over an unbounded edge stream.
///
/// Concurrency contract: single-writer, concurrent snapshots OK.
///  * Ingest() calls must be externally serialized (each call may fan work
///    out across the session's thread pool internally).
///  * Snapshot(), StoredEdges(), num_vertices(), and edges_ingested() are
///    safe to call from other threads at any time, including while an
///    Ingest() is running. A snapshot taken mid-ingest reflects a batch
///    boundary: the published state after some completed Ingest() call (it
///    never observes a half-applied batch). Implementations either read
///    seqlock-published tallies (wait-free; REPT's global path) or serialize
///    with the in-flight batch (blocking at most one batch; local-tally
///    paths).
///  * edges_ingested()/num_vertices() may lead the published tallies by the
///    one batch currently being applied.
///  * Do NOT call Snapshot()/StoredEdges() from a task running on the
///    session's own thread pool: serializing implementations block on the
///    in-flight batch, and that batch's fan-out is waiting for pool tasks —
///    including the blocked snapshotter — to finish (deadlock). Snapshot
///    from dedicated reader threads (or any thread outside the pool).
class StreamingEstimator {
 public:
  virtual ~StreamingEstimator() = default;

  /// Display name, e.g. "REPT(m=10,c=32)".
  virtual std::string Name() const = 0;

  /// Pushes one batch of arriving edges, in stream order. Batch boundaries
  /// carry no meaning: ingesting a stream edge-by-edge, in chunks, or all at
  /// once produces identical session state.
  virtual void Ingest(std::span<const Edge> edges) = 0;

  /// Convenience: notes the stream's declared vertex count, then ingests all
  /// of its edges as one batch.
  void Ingest(const EdgeStream& stream) {
    NoteVertices(stream.num_vertices());
    Ingest(std::span<const Edge>(stream.edges()));
  }

  /// Anytime estimate of the global and local triangle counts of the prefix
  /// ingested so far. Unbiased at every prefix; after a full ingest it equals
  /// the legacy Run() result for the same (stream, seed). Safe to call
  /// concurrently with Ingest() (see the class contract).
  virtual TriangleEstimates Snapshot() const = 0;

  /// Total edges currently stored across the session's logical processors
  /// (memory accounting). Safe to call concurrently with Ingest();
  /// eviction-free samplers (REPT) publish a monotone non-decreasing
  /// sequence.
  virtual uint64_t StoredEdges() const = 0;

  /// Approximate resident bytes of the session's sampled state (adjacency
  /// slots, arenas, tally maps). Writer-side like Checkpoint(): read it at
  /// batch boundaries, serialized with Ingest() — rept_server does so to
  /// enforce per-session and global memory budgets. 0 = not tracked.
  virtual size_t MemoryBytes() const { return 0; }

  /// Raises the session's vertex-id-space bound to at least `num_vertices`.
  /// Ingest() already tracks the max vertex id seen; this only matters for
  /// streams whose declared id space exceeds the ids observed (isolated
  /// trailing vertices), so that Snapshot().local has the expected size.
  /// Writer-side: serialize with Ingest() like any other mutation.
  void NoteVertices(VertexId num_vertices) {
    if (num_vertices > num_vertices_.load(std::memory_order_relaxed)) {
      num_vertices_.store(num_vertices, std::memory_order_relaxed);
    }
  }

  /// Current vertex-id-space bound: max(noted bound, max ingested id + 1).
  /// Snapshot().local is indexed by vertex id and has exactly this size.
  VertexId num_vertices() const {
    return num_vertices_.load(std::memory_order_relaxed);
  }

  /// Number of edges ingested so far (the stream time t).
  uint64_t edges_ingested() const {
    return edges_ingested_.load(std::memory_order_relaxed);
  }

  /// \brief Reader-safe view of a session's ingest-path accounting, exposed
  /// both cumulatively (over the session lifetime, surviving Restore) and
  /// for the most recent Ingest() call.
  struct IngestStatsView {
    uint64_t batches = 0;
    uint64_t sub_batches = 0;
    uint64_t routed_entries = 0;
    double route_seconds = 0.0;
    double estimate_seconds = 0.0;
  };

  /// Fills the requested views (either pointer may be null) from state the
  /// writer publishes at batch boundaries; safe to call concurrently with
  /// Ingest() like Snapshot(). Returns false when the session does not
  /// track ingest stats (the views are untouched).
  virtual bool ReadIngestStats(IngestStatsView* cumulative,
                               IngestStatsView* last_batch) const {
    (void)cumulative;
    (void)last_batch;
    return false;
  }

  // -------------------------------------------------------------------------
  // Durability (src/persist). A session taken at a batch boundary can be
  // serialized and later restored into a session created with the same
  // (estimator config, seed) — possibly on a different machine, with a
  // different thread pool — such that ingesting the remainder of the stream
  // yields tallies bit-identical to an uninterrupted run. See
  // persist/checkpoint.hpp for the file-level entry points.

  /// Stable 64-bit identity of (estimator type, semantic config, seed).
  /// Written into every checkpoint header; restore refuses a mismatch.
  /// Performance-only knobs (thread pool, dispatch mode) are excluded.
  /// 0 means the session does not support checkpointing.
  virtual uint64_t StateFingerprint() const { return 0; }

  /// Serializes the session's full state as framed sections. Writer-side
  /// call: serialize with Ingest() externally (IngestAll does); concurrent
  /// Snapshot()/StoredEdges() readers are safe. Like Snapshot(), never call
  /// it from a task on the session's own pool.
  virtual Status Checkpoint(CheckpointWriter& writer) const {
    (void)writer;
    return Status::Unsupported(Name() + ": checkpointing not implemented");
  }

  /// Overwrites the session's state from a checkpoint produced by a session
  /// with the same StateFingerprint(). Consumes exactly the sections
  /// Checkpoint() wrote. On failure the state is unspecified but valid —
  /// recreate the session before further use.
  virtual Status Restore(CheckpointReader& reader) {
    (void)reader;
    return Status::Unsupported(Name() + ": checkpointing not implemented");
  }

 protected:
  /// Restore-side counterpart of RecordBatch: installs the persisted
  /// stream-time accounting. Writer-side only.
  void RestoreStreamAccounting(VertexId num_vertices,
                               uint64_t edges_ingested) {
    num_vertices_.store(num_vertices, std::memory_order_relaxed);
    edges_ingested_.store(edges_ingested, std::memory_order_relaxed);
  }

  /// Implementations call this at the top of Ingest() to maintain the
  /// vertex-bound and stream-time accounting. Writer-side only.
  void RecordBatch(std::span<const Edge> edges) {
    VertexId bound = num_vertices_.load(std::memory_order_relaxed);
    for (const Edge& e : edges) {
      if (e.u >= bound) bound = e.u + 1;
      if (e.v >= bound) bound = e.v + 1;
    }
    num_vertices_.store(bound, std::memory_order_relaxed);
    edges_ingested_.store(
        edges_ingested_.load(std::memory_order_relaxed) + edges.size(),
        std::memory_order_relaxed);
  }

 private:
  // Relaxed atomics: written only by the (serialized) ingest thread, read by
  // concurrent snapshotters. Monotone, so readers tolerate staleness.
  std::atomic<VertexId> num_vertices_{0};
  std::atomic<uint64_t> edges_ingested_{0};
};

}  // namespace rept
