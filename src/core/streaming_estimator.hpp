// The streaming-session interface: the push side of the incremental API.
//
// A StreamingEstimator is a long-lived estimation session created by
// EstimatorSystem::CreateSession. Callers push edge batches of any size with
// Ingest() and may call Snapshot() at any time to obtain anytime estimates of
// the triangle counts of the stream prefix ingested so far. Ingesting the
// same edge sequence always yields the same tallies regardless of how it was
// chunked into batches, so a full-stream ingest followed by Snapshot()
// reproduces the legacy one-shot EstimatorSystem::Run() bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/estimates.hpp"
#include "graph/edge_stream.hpp"
#include "graph/types.hpp"

namespace rept {

/// \brief A long-lived estimation session over an unbounded edge stream.
///
/// Sessions are single-writer: Ingest() calls must be externally serialized
/// (each call may fan work out across the session's thread pool internally).
/// Snapshot() is const and may be interleaved between Ingest() calls.
class StreamingEstimator {
 public:
  virtual ~StreamingEstimator() = default;

  /// Display name, e.g. "REPT(m=10,c=32)".
  virtual std::string Name() const = 0;

  /// Pushes one batch of arriving edges, in stream order. Batch boundaries
  /// carry no meaning: ingesting a stream edge-by-edge, in chunks, or all at
  /// once produces identical session state.
  virtual void Ingest(std::span<const Edge> edges) = 0;

  /// Convenience: notes the stream's declared vertex count, then ingests all
  /// of its edges as one batch.
  void Ingest(const EdgeStream& stream) {
    NoteVertices(stream.num_vertices());
    Ingest(std::span<const Edge>(stream.edges()));
  }

  /// Anytime estimate of the global and local triangle counts of the prefix
  /// ingested so far. Unbiased at every prefix; after a full ingest it equals
  /// the legacy Run() result for the same (stream, seed).
  virtual TriangleEstimates Snapshot() const = 0;

  /// Total edges currently stored across the session's logical processors
  /// (memory accounting).
  virtual uint64_t StoredEdges() const = 0;

  /// Raises the session's vertex-id-space bound to at least `num_vertices`.
  /// Ingest() already tracks the max vertex id seen; this only matters for
  /// streams whose declared id space exceeds the ids observed (isolated
  /// trailing vertices), so that Snapshot().local has the expected size.
  void NoteVertices(VertexId num_vertices) {
    if (num_vertices > num_vertices_) num_vertices_ = num_vertices;
  }

  /// Current vertex-id-space bound: max(noted bound, max ingested id + 1).
  /// Snapshot().local is indexed by vertex id and has exactly this size.
  VertexId num_vertices() const { return num_vertices_; }

  /// Number of edges ingested so far (the stream time t).
  uint64_t edges_ingested() const { return edges_ingested_; }

 protected:
  /// Implementations call this at the top of Ingest() to maintain the
  /// vertex-bound and stream-time accounting.
  void RecordBatch(std::span<const Edge> edges) {
    VertexId bound = num_vertices_;
    for (const Edge& e : edges) {
      if (e.u >= bound) bound = e.u + 1;
      if (e.v >= bound) bound = e.v + 1;
    }
    num_vertices_ = bound;
    edges_ingested_ += edges.size();
  }

 private:
  VertexId num_vertices_ = 0;
  uint64_t edges_ingested_ = 0;
};

}  // namespace rept
