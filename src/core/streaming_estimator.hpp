// The streaming-session interface: the push side of the incremental API.
//
// A StreamingEstimator is a long-lived estimation session created by
// EstimatorSystem::CreateSession. Callers push edge batches of any size with
// Ingest() and may call Snapshot() at any time — including from another
// thread while an Ingest() is in flight — to obtain anytime estimates of the
// triangle counts of the stream prefix ingested so far. Ingesting the same
// edge sequence always yields the same tallies regardless of how it was
// chunked into batches, so a full-stream ingest followed by Snapshot()
// reproduces the legacy one-shot EstimatorSystem::Run() bit for bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "core/estimates.hpp"
#include "graph/edge_stream.hpp"
#include "graph/types.hpp"

namespace rept {

/// \brief A long-lived estimation session over an unbounded edge stream.
///
/// Concurrency contract: single-writer, concurrent snapshots OK.
///  * Ingest() calls must be externally serialized (each call may fan work
///    out across the session's thread pool internally).
///  * Snapshot(), StoredEdges(), num_vertices(), and edges_ingested() are
///    safe to call from other threads at any time, including while an
///    Ingest() is running. A snapshot taken mid-ingest reflects a batch
///    boundary: the published state after some completed Ingest() call (it
///    never observes a half-applied batch). Implementations either read
///    seqlock-published tallies (wait-free; REPT's global path) or serialize
///    with the in-flight batch (blocking at most one batch; local-tally
///    paths).
///  * edges_ingested()/num_vertices() may lead the published tallies by the
///    one batch currently being applied.
///  * Do NOT call Snapshot()/StoredEdges() from a task running on the
///    session's own thread pool: serializing implementations block on the
///    in-flight batch, and that batch's fan-out is waiting for pool tasks —
///    including the blocked snapshotter — to finish (deadlock). Snapshot
///    from dedicated reader threads (or any thread outside the pool).
class StreamingEstimator {
 public:
  virtual ~StreamingEstimator() = default;

  /// Display name, e.g. "REPT(m=10,c=32)".
  virtual std::string Name() const = 0;

  /// Pushes one batch of arriving edges, in stream order. Batch boundaries
  /// carry no meaning: ingesting a stream edge-by-edge, in chunks, or all at
  /// once produces identical session state.
  virtual void Ingest(std::span<const Edge> edges) = 0;

  /// Convenience: notes the stream's declared vertex count, then ingests all
  /// of its edges as one batch.
  void Ingest(const EdgeStream& stream) {
    NoteVertices(stream.num_vertices());
    Ingest(std::span<const Edge>(stream.edges()));
  }

  /// Anytime estimate of the global and local triangle counts of the prefix
  /// ingested so far. Unbiased at every prefix; after a full ingest it equals
  /// the legacy Run() result for the same (stream, seed). Safe to call
  /// concurrently with Ingest() (see the class contract).
  virtual TriangleEstimates Snapshot() const = 0;

  /// Total edges currently stored across the session's logical processors
  /// (memory accounting). Safe to call concurrently with Ingest();
  /// eviction-free samplers (REPT) publish a monotone non-decreasing
  /// sequence.
  virtual uint64_t StoredEdges() const = 0;

  /// Raises the session's vertex-id-space bound to at least `num_vertices`.
  /// Ingest() already tracks the max vertex id seen; this only matters for
  /// streams whose declared id space exceeds the ids observed (isolated
  /// trailing vertices), so that Snapshot().local has the expected size.
  /// Writer-side: serialize with Ingest() like any other mutation.
  void NoteVertices(VertexId num_vertices) {
    if (num_vertices > num_vertices_.load(std::memory_order_relaxed)) {
      num_vertices_.store(num_vertices, std::memory_order_relaxed);
    }
  }

  /// Current vertex-id-space bound: max(noted bound, max ingested id + 1).
  /// Snapshot().local is indexed by vertex id and has exactly this size.
  VertexId num_vertices() const {
    return num_vertices_.load(std::memory_order_relaxed);
  }

  /// Number of edges ingested so far (the stream time t).
  uint64_t edges_ingested() const {
    return edges_ingested_.load(std::memory_order_relaxed);
  }

 protected:
  /// Implementations call this at the top of Ingest() to maintain the
  /// vertex-bound and stream-time accounting. Writer-side only.
  void RecordBatch(std::span<const Edge> edges) {
    VertexId bound = num_vertices_.load(std::memory_order_relaxed);
    for (const Edge& e : edges) {
      if (e.u >= bound) bound = e.u + 1;
      if (e.v >= bound) bound = e.v + 1;
    }
    num_vertices_.store(bound, std::memory_order_relaxed);
    edges_ingested_.store(
        edges_ingested_.load(std::memory_order_relaxed) + edges.size(),
        std::memory_order_relaxed);
  }

 private:
  // Relaxed atomics: written only by the (serialized) ingest thread, read by
  // concurrent snapshotters. Monotone, so readers tolerate staleness.
  std::atomic<VertexId> num_vertices_{0};
  std::atomic<uint64_t> edges_ingested_{0};
};

}  // namespace rept
