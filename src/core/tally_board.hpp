// Seqlock-published per-instance scalar tallies: the bridge that makes
// Snapshot() safe while Ingest() is running.
//
// The ingest thread finishes a batch, then publishes each instance's raw
// tallies (tau^(i), eta^(i)) and the aggregate stored-edge count under an
// odd/even epoch counter. Reader threads take a consistent copy with the
// classic seqlock retry loop — wait-free for the writer, lock-free for
// readers (a retry only happens when a publish raced the read). All payload
// slots are relaxed atomics, so the protocol is data-race-free under the C++
// memory model (and clean under ThreadSanitizer); the fences follow Boehm's
// "Can seqlocks get along with programming language memory models?" recipe.
//
// Published values are bit-exact copies of the live counters, so estimates
// computed from a TallyBoard view are bit-identical to estimates computed
// from the counters themselves at the same batch boundary.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rept {

/// \brief Single-writer, many-reader board of published scalar tallies.
class TallyBoard {
 public:
  explicit TallyBoard(size_t num_instances);

  /// A consistent copy of one published epoch.
  struct View {
    std::vector<double> global;  ///< tau^(i) per instance.
    std::vector<double> eta;     ///< eta^(i) per instance.
    uint64_t stored_edges = 0;   ///< Sum of stored edges over instances.
  };

  /// Publishes a new epoch. Single writer: must only be called by the
  /// (externally serialized) ingest thread. Spans must have size
  /// num_instances.
  void Publish(std::span<const double> global, std::span<const double> eta,
               uint64_t stored_edges);

  /// Copies the latest published epoch into `out` (buffers reused across
  /// calls, so a snapshot loop allocates nothing in steady state); retries
  /// if a publish races the read.
  void Read(View& out) const;

  /// Latest published stored-edge total. Monotone for eviction-free samplers
  /// (REPT never evicts), so concurrent readers observe a non-decreasing
  /// sequence.
  uint64_t ReadStoredEdges() const {
    return stored_edges_.load(std::memory_order_acquire);
  }

  /// Number of completed Publish() calls so far (the publish cadence).
  /// Monotone; safe from any thread. A long Ingest() that sub-batches
  /// internally publishes once per sub-batch, so readers see this advance
  /// while the call is still in flight.
  uint64_t PublishedEpochs() const {
    return seq_.load(std::memory_order_acquire) / 2;
  }

  size_t num_instances() const { return global_.size(); }

 private:
  std::atomic<uint64_t> seq_{0};
  // Payload slots are atomics so torn reads discarded by the retry loop are
  // still well-defined reads. Vectors are sized once in the constructor and
  // never resized (atomics are not movable).
  std::vector<std::atomic<double>> global_;
  std::vector<std::atomic<double>> eta_;
  std::atomic<uint64_t> stored_edges_{0};
};

}  // namespace rept
