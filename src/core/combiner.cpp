#include "core/combiner.hpp"

#include "util/check.hpp"

namespace rept {

CombinedEstimate GraybillDeal(double x1, double w1, double x2, double w2,
                              double n1, double n2) {
  REPT_DCHECK(w1 >= 0.0 && w2 >= 0.0);
  CombinedEstimate result;
  const double total = w1 + w2;
  if (total > 0.0) {
    result.value = (w2 * x1 + w1 * x2) / total;
    result.weighted = true;
  } else {
    REPT_DCHECK(n1 + n2 > 0.0);
    result.value = (n1 * x1 + n2 * x2) / (n1 + n2);
    result.weighted = false;
  }
  return result;
}

}  // namespace rept
