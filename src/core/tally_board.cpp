#include "core/tally_board.hpp"

#include "util/check.hpp"

namespace rept {

TallyBoard::TallyBoard(size_t num_instances)
    : global_(num_instances), eta_(num_instances) {
  for (size_t i = 0; i < num_instances; ++i) {
    global_[i].store(0.0, std::memory_order_relaxed);
    eta_[i].store(0.0, std::memory_order_relaxed);
  }
}

void TallyBoard::Publish(std::span<const double> global,
                         std::span<const double> eta,
                         uint64_t stored_edges) {
  REPT_DCHECK(global.size() == global_.size());
  REPT_DCHECK(eta.size() == eta_.size());
  const uint64_t seq = seq_.load(std::memory_order_relaxed);
  seq_.store(seq + 1, std::memory_order_relaxed);  // Odd: write in progress.
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < global.size(); ++i) {
    global_[i].store(global[i], std::memory_order_relaxed);
    eta_[i].store(eta[i], std::memory_order_relaxed);
  }
  stored_edges_.store(stored_edges, std::memory_order_release);
  seq_.store(seq + 2, std::memory_order_release);  // Even: epoch visible.
}

void TallyBoard::Read(View& out) const {
  out.global.resize(global_.size());
  out.eta.resize(eta_.size());
  for (;;) {
    const uint64_t seq_before = seq_.load(std::memory_order_acquire);
    if (seq_before & 1) continue;  // Publish in progress; spin.
    for (size_t i = 0; i < global_.size(); ++i) {
      out.global[i] = global_[i].load(std::memory_order_relaxed);
      out.eta[i] = eta_[i].load(std::memory_order_relaxed);
    }
    out.stored_edges = stored_edges_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t seq_after = seq_.load(std::memory_order_relaxed);
    if (seq_before == seq_after) return;
  }
}

}  // namespace rept
