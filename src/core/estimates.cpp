#include "core/estimates.hpp"

#include "core/streaming_estimator.hpp"

namespace rept {

TriangleEstimates EstimatorSystem::Run(const EdgeStream& stream, uint64_t seed,
                                       ThreadPool* pool) const {
  SessionOptions options;
  options.expected_edges = stream.size();
  options.expected_vertices = stream.num_vertices();
  // Run() is the trusted-caller wrapper: a config bad enough to fail
  // CreateSession is a programming error here, so unwrap.
  const std::unique_ptr<StreamingEstimator> session =
      CreateSession(seed, pool, options).value();
  session->Ingest(stream);
  return session->Snapshot();
}

}  // namespace rept
