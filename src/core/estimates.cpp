#include "core/estimates.hpp"

// Interface-only translation unit.
namespace rept {}  // namespace rept
