#include "core/estimates.hpp"

#include "core/streaming_estimator.hpp"

namespace rept {

TriangleEstimates EstimatorSystem::Run(const EdgeStream& stream, uint64_t seed,
                                       ThreadPool* pool) const {
  SessionOptions options;
  options.expected_edges = stream.size();
  options.expected_vertices = stream.num_vertices();
  const std::unique_ptr<StreamingEstimator> session =
      CreateSession(seed, pool, options);
  session->Ingest(stream);
  return session->Snapshot();
}

}  // namespace rept
