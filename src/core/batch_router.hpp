// Stage 1 of the REPT dispatch pipeline: hash-route a batch once per fused
// hash group instead of once per instance.
//
// Every group of m logical processors shares one edge hash; an arriving edge
// is *stored* by at most one of them (the one whose bucket the hash hits),
// while every processor still *counts* it. Broadcasting therefore wastes
// c - c/m hash evaluations per edge. The router evaluates each group's hash
// exactly once per edge — tiled across the pool as (group, edge-range) work
// items — and emits per-instance routed sublists: the ascending in-batch
// indices of the edges that instance will store. Edges whose bucket falls
// outside the group's live range (the remainder group of Algorithm 2 has
// c % m live buckets) cannot survive the group's sampling threshold and are
// routed nowhere. Stage 2 (ReptInstance::ReplayRouted) then replays the
// batch per instance with zero hash evaluations, bit-identical to the
// broadcast replay by construction: the router ran the same hash the
// instance would have.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "hash/edge_hash.hpp"

namespace rept {

class ThreadPool;

/// \brief Per-batch hash router for a fixed set of fused hash groups.
/// Single-writer: Route() overwrites the previous batch's sublists (buffers
/// are reused, so steady-state routing allocates nothing).
class BatchRouter {
 public:
  struct GroupSpec {
    /// The hash shared by the group's instances.
    MixEdgeHasher hasher;
    /// Hash range (the sampling denominator m).
    uint32_t num_buckets = 1;
    /// Instances actually present: buckets [0, live_buckets) are routed,
    /// higher buckets are dropped (remainder groups have live < m).
    uint32_t live_buckets = 1;
  };

  explicit BatchRouter(std::vector<GroupSpec> groups);

  /// Routes one batch: evaluates every group's hash once per edge (tiled
  /// across `pool` when given) and rebuilds the per-instance sublists.
  void Route(std::span<const Edge> edges, ThreadPool* pool);

  /// Ascending indices into the last routed batch of the edges instance
  /// (`group`, `bucket`) stores. Valid until the next Route().
  std::span<const uint32_t> Inserts(size_t group, uint32_t bucket) const;

  size_t num_groups() const { return groups_.size(); }

  /// Total routed entries of the last batch (= edges that hit a live bucket,
  /// summed over groups); dispatch-stage statistic.
  uint64_t routed_entries() const { return routed_entries_; }

 private:
  struct GroupState {
    GroupSpec spec;
    /// Scratch: hash bucket of each batch edge under this group's hash.
    std::vector<uint32_t> buckets;
    /// Prefix offsets into `routed` per live bucket (live_buckets + 1).
    std::vector<uint32_t> offsets;
    /// Scatter cursors (reused copy of offsets[0..live), advanced in place).
    std::vector<uint32_t> cursor;
    /// Edge indices grouped by bucket, ascending within each bucket.
    std::vector<uint32_t> routed;
  };

  std::vector<GroupState> groups_;
  uint64_t routed_entries_ = 0;
};

}  // namespace rept
