// Stage 1 of the REPT dispatch pipeline: hash-route a batch once per fused
// hash group instead of once per instance.
//
// Every group of m logical processors shares one edge hash; an arriving edge
// is *stored* by at most one of them (the one whose bucket the hash hits),
// while every processor still *counts* it. Broadcasting therefore wastes
// c - c/m hash evaluations per edge. The router evaluates each group's hash
// exactly once per edge — tiled across the pool as (group, edge-range) work
// items — and emits per-instance routed sublists: the ascending in-batch
// indices of the edges that instance will store. Edges whose bucket falls
// outside the group's live range (the remainder group of Algorithm 2 has
// c % m live buckets) cannot survive the group's sampling threshold and are
// routed nowhere. Stage 2 (ReptInstance::ReplayRouted) then replays the
// batch per instance with zero hash evaluations, bit-identical to the
// broadcast replay by construction: the router ran the same hash the
// instance would have.
//
// Two routing shapes are exposed:
//  * Route(edges, pool) — route a whole batch, fanning the hash pass across
//    the pool internally and blocking until the sublists are ready;
//  * BeginBatch / RouteGroup / FinishBatch — the same work sliced per group
//    so a caller can schedule routing of batch k+1 *alongside* other pool
//    work (ReptSession's pipelined ingest overlaps it with the stage-2
//    replay of batch k). Groups touch disjoint state, so RouteGroup calls
//    for different groups may run on different threads concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "hash/edge_hash.hpp"

namespace rept {

class ThreadPool;

/// \brief Per-batch hash router for a fixed set of fused hash groups.
/// Single-writer per batch: Route()/BeginBatch() overwrites the previous
/// batch's sublists (buffers are reused, so steady-state routing allocates
/// nothing).
class BatchRouter {
 public:
  /// Largest batch a single Route()/BeginBatch() accepts. Routed sublists
  /// index edges with uint32_t (4 bytes per entry instead of 8 — the
  /// sublists are the router's memory footprint), so a batch must stay below
  /// 2^32 edges; Route() enforces this with a hard REPT_CHECK rather than
  /// silently wrapping. Callers with unbounded batches split first:
  /// ReptSession sub-batches at kMaxRoutedSubBatch (1M edges), three orders
  /// of magnitude below this ceiling.
  static constexpr size_t kMaxBatchEdges =
      std::numeric_limits<uint32_t>::max();

  struct GroupSpec {
    /// The hash shared by the group's instances.
    MixEdgeHasher hasher;
    /// Hash range (the sampling denominator m).
    uint32_t num_buckets = 1;
    /// Instances actually present: buckets [0, live_buckets) are routed,
    /// higher buckets are dropped (remainder groups have live < m).
    uint32_t live_buckets = 1;
  };

  explicit BatchRouter(std::vector<GroupSpec> groups);

  /// Routes one batch: evaluates every group's hash once per edge (tiled
  /// across `pool` when given) and rebuilds the per-instance sublists.
  /// `edges.size()` must be <= kMaxBatchEdges (checked).
  void Route(std::span<const Edge> edges, ThreadPool* pool);

  /// Pipelined routing, step 1: binds the router to `edges` (size checked
  /// against kMaxBatchEdges) and invalidates the previous batch's sublists.
  void BeginBatch(std::span<const Edge> edges);
  /// Pipelined routing, step 2: hashes and counting-sorts group `g` of the
  /// BeginBatch() edges. Each group owns disjoint scratch, so concurrent
  /// calls for different groups are race-free; call each group exactly once
  /// per batch.
  void RouteGroup(size_t g);
  /// Pipelined routing, step 3: finalizes batch statistics. Call after every
  /// RouteGroup() of the batch has completed (from one thread).
  void FinishBatch();

  /// Ascending indices into the last routed batch of the edges instance
  /// (`group`, `bucket`) stores. Valid until the next Route()/BeginBatch().
  std::span<const uint32_t> Inserts(size_t group, uint32_t bucket) const;

  size_t num_groups() const { return groups_.size(); }

  /// Total routed entries of the last batch (= edges that hit a live bucket,
  /// summed over groups); dispatch-stage statistic.
  uint64_t routed_entries() const { return routed_entries_; }

 private:
  struct GroupState {
    GroupSpec spec;
    /// Scratch: hash bucket of each batch edge under this group's hash.
    std::vector<uint32_t> buckets;
    /// Prefix offsets into `routed` per live bucket (live_buckets + 1).
    std::vector<uint32_t> offsets;
    /// Scatter cursors (reused copy of offsets[0..live), advanced in place).
    std::vector<uint32_t> cursor;
    /// Edge indices grouped by bucket, ascending within each bucket.
    std::vector<uint32_t> routed;
  };

  /// Counting-sort of group `g`'s live-bucket hits into its sublists, from
  /// the already-populated bucket scratch.
  void ScatterGroup(size_t g);

  std::vector<GroupState> groups_;
  /// Edges bound by the in-flight BeginBatch() (empty outside a batch).
  std::span<const Edge> batch_;
  uint64_t routed_entries_ = 0;
};

}  // namespace rept
