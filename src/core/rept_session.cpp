#include "core/rept_session.hpp"

#include <algorithm>

#include "core/combiner.hpp"
#include "hash/hash_family.hpp"
#include "util/thread_pool.hpp"

namespace rept {

namespace {

// Identical instance layout to the pre-session batch runner: one shared hash
// per group of m processors (a single group when c <= m), groups seeded in
// order from the same HashFamily.
std::vector<std::unique_ptr<ReptInstance>> BuildInstances(
    const ReptConfig& config, uint64_t seed) {
  const uint32_t m = config.m;
  const uint32_t c = config.c;

  SemiTriangleCounter::Options counter_options;
  counter_options.track_local = config.track_local;
  counter_options.track_pairs = config.NeedsPairTracking();
  counter_options.strict_pairs = config.strict_eta_pairs;

  HashFamily<MixEdgeHasher> family(seed);
  std::vector<std::unique_ptr<ReptInstance>> instances;
  instances.reserve(c);
  if (c <= m) {
    const MixEdgeHasher hasher = family.MakeHasher(0);
    for (uint32_t i = 0; i < c; ++i) {
      instances.push_back(std::make_unique<ReptInstance>(
          hasher, m, /*bucket=*/i, counter_options));
    }
  } else {
    const uint32_t c1 = c / m;
    const uint32_t c2 = c % m;
    for (uint32_t group = 0; group < c1; ++group) {
      const MixEdgeHasher hasher = family.MakeHasher(group);
      for (uint32_t bucket = 0; bucket < m; ++bucket) {
        instances.push_back(std::make_unique<ReptInstance>(
            hasher, m, bucket, counter_options));
      }
    }
    if (c2 != 0) {
      const MixEdgeHasher hasher = family.MakeHasher(c1);
      for (uint32_t bucket = 0; bucket < c2; ++bucket) {
        instances.push_back(std::make_unique<ReptInstance>(
            hasher, m, bucket, counter_options));
      }
    }
  }
  return instances;
}

}  // namespace

ReptSession::ReptSession(const ReptConfig& config, uint64_t seed,
                         ThreadPool* pool, const SessionOptions& options)
    : config_(config), pool_(pool) {
  config_.Validate();
  NoteVertices(options.expected_vertices);
  instances_ = BuildInstances(config_, seed);
  const uint32_t group_size = config_.c <= config_.m ? config_.c : config_.m;
  for (size_t begin = 0; begin < instances_.size();) {
    const size_t end = std::min(instances_.size(),
                                begin + static_cast<size_t>(group_size));
    group_ranges_.emplace_back(begin, end);
    begin = end;
  }
}

std::string ReptSession::Name() const {
  return "REPT(m=" + std::to_string(config_.m) +
         ",c=" + std::to_string(config_.c) + ")";
}

void ReptSession::Ingest(std::span<const Edge> edges) {
  RecordBatch(edges);
  if (edges.empty()) return;

  if (!config_.fused_groups) {
    // One parallel task per logical processor, each replaying the batch.
    auto body = [this, edges](size_t i) {
      ReptInstance& instance = *instances_[i];
      for (const Edge& e : edges) instance.ProcessEdge(e.u, e.v);
    };
    if (pool_ != nullptr) {
      ParallelFor(*pool_, instances_.size(), body);
    } else {
      for (size_t i = 0; i < instances_.size(); ++i) body(i);
    }
    return;
  }

  // Fused execution: instances sharing a hash function run in one pass that
  // hashes each edge once. Identical results (counters are independent);
  // coarser parallel granularity.
  auto body = [this, edges](size_t g) {
    const auto [begin, end] = group_ranges_[g];
    for (const Edge& e : edges) {
      for (size_t i = begin; i < end; ++i) {
        instances_[i]->ProcessEdge(e.u, e.v);
      }
    }
  };
  if (pool_ != nullptr) {
    ParallelFor(*pool_, group_ranges_.size(), body);
  } else {
    for (size_t g = 0; g < group_ranges_.size(); ++g) body(g);
  }
}

uint64_t ReptSession::StoredEdges() const {
  uint64_t total = 0;
  for (const auto& inst : instances_) total += inst->counter().stored_edges();
  return total;
}

TriangleEstimates ReptSession::Snapshot() const {
  return SnapshotDetailed().estimates;
}

ReptEstimator::RunDetail ReptSession::SnapshotDetailed() const {
  const double m = config_.m;
  const uint32_t c = config_.c;

  ReptEstimator::RunDetail detail;
  detail.instance_tallies.reserve(instances_.size());
  for (const auto& inst : instances_) {
    detail.instance_tallies.push_back(inst->counter().global());
  }

  const size_t n = num_vertices();
  TriangleEstimates& est = detail.estimates;
  if (config_.track_local) est.local.assign(n, 0.0);

  if (c <= config_.m) {
    // Algorithm 1: tau_hat = (m^2 / c) * sum_i tau^(i).
    const double scale = m * m / c;
    double sum = 0.0;
    for (const auto& inst : instances_) sum += inst->counter().global();
    est.global = scale * sum;
    if (config_.track_local) {
      for (const auto& inst : instances_) {
        inst->counter().AccumulateLocal(est.local, scale);
      }
    }
    return detail;
  }

  const uint32_t c1 = c / config_.m;
  const uint32_t c2 = c % config_.m;
  const size_t full_count = static_cast<size_t>(c1) * config_.m;

  if (c2 == 0) {
    // Full groups only: tau_hat = (m / c1) * sum_i tau^(i).
    const double scale = m / c1;
    double sum = 0.0;
    for (const auto& inst : instances_) sum += inst->counter().global();
    est.global = scale * sum;
    if (config_.track_local) {
      for (const auto& inst : instances_) {
        inst->counter().AccumulateLocal(est.local, scale);
      }
    }
    return detail;
  }

  // Algorithm 2 (c2 != 0): combine the full-group estimate with the
  // remainder-group estimate using plug-in variances.
  detail.used_combination = true;
  const double scale1 = m / c1;
  const double scale2 = m * m / c2;
  const double scale_eta = m * m * m / c;

  double sum1 = 0.0;
  double sum2 = 0.0;
  double sum_eta = 0.0;
  for (size_t i = 0; i < instances_.size(); ++i) {
    const SemiTriangleCounter& counter = instances_[i]->counter();
    if (i < full_count) {
      sum1 += counter.global();
    } else {
      sum2 += counter.global();
    }
    sum_eta += counter.eta();
  }
  detail.tau_hat1 = scale1 * sum1;
  detail.tau_hat2 = scale2 * sum2;
  detail.eta_hat = scale_eta * sum_eta;

  // w^(1) = tau_hat^(1)(m-1)/c1;
  // w^(2) = (tau_hat^(1)(m^2-c2) + 2 eta_hat(m-c2))/c2.
  detail.w1 = detail.tau_hat1 * (m - 1.0) / c1;
  detail.w2 = (detail.tau_hat1 * (m * m - c2) +
               2.0 * detail.eta_hat * (m - c2)) /
              c2;
  est.global = GraybillDeal(detail.tau_hat1, detail.w1, detail.tau_hat2,
                            detail.w2, static_cast<double>(full_count),
                            static_cast<double>(c2))
                   .value;

  if (config_.track_local) {
    std::vector<double> local1(n, 0.0);
    std::vector<double> local2(n, 0.0);
    std::vector<double> eta_local(n, 0.0);
    for (size_t i = 0; i < instances_.size(); ++i) {
      const SemiTriangleCounter& counter = instances_[i]->counter();
      if (i < full_count) {
        counter.AccumulateLocal(local1, scale1);
      } else {
        counter.AccumulateLocal(local2, scale2);
      }
      counter.AccumulateEtaLocal(eta_local, scale_eta);
    }
    for (size_t v = 0; v < n; ++v) {
      const double w1v = local1[v] * (m - 1.0) / c1;
      const double w2v = (local1[v] * (m * m - c2) +
                          2.0 * eta_local[v] * (m - c2)) /
                         c2;
      est.local[v] = GraybillDeal(local1[v], w1v, local2[v], w2v,
                                  static_cast<double>(full_count),
                                  static_cast<double>(c2))
                         .value;
    }
  }
  return detail;
}

}  // namespace rept
