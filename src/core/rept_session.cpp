#include "core/rept_session.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "core/combiner.hpp"
#include "hash/hash_family.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint_io.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace rept {

namespace {

/// Process-wide ingest counters (all REPT sessions summed; per-session
/// splits come from the STATS/METRICS server surface, which reads each
/// session's published IngestStats at scrape time instead of burning
/// per-session registry cardinality).
struct SessionMetrics {
  obs::Counter batches = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_ingest_batches_total", "Ingest() calls completed");
  obs::Counter edges = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_ingest_edges_total", "Edges ingested across all sessions");
  obs::Counter sub_batches = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_ingest_sub_batches_total",
      "Routed sub-batches processed (TallyBoard publishes from ingest)");
  obs::Counter routed_entries = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_ingest_routed_entries_total",
      "Routed-sublist entries built by stage 1");
  obs::Counter route_micros = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_ingest_route_task_micros_total",
      "Stage-1 (hash+scatter) summed task time, microseconds");
  obs::Counter replay_micros = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_ingest_replay_task_micros_total",
      "Stage-2 (replay/estimate) summed task time, microseconds");
};

const SessionMetrics& Metrics() {
  static const SessionMetrics metrics;
  return metrics;
}

// The fused hash-group layout: one shared hash per group of m processors (a
// single group of c live buckets when c <= m, c1 full groups plus a c % m
// remainder group otherwise), groups seeded in order from one HashFamily.
// This is THE definition of the (config, seed) -> instances map: both the
// router and the instance set are derived from it, so the hash a router
// evaluates in stage 1 is the exact hash the instance would have evaluated.
std::vector<BatchRouter::GroupSpec> BuildGroupSpecs(const ReptConfig& config,
                                                    uint64_t seed) {
  config.Validate();
  const uint32_t m = config.m;
  const uint32_t c = config.c;
  HashFamily<MixEdgeHasher> family(seed);
  std::vector<BatchRouter::GroupSpec> specs;
  if (c <= m) {
    specs.push_back({family.MakeHasher(0), m, c});
  } else {
    const uint32_t c1 = c / m;
    const uint32_t c2 = c % m;
    specs.reserve(c1 + (c2 != 0 ? 1 : 0));
    for (uint32_t group = 0; group < c1; ++group) {
      specs.push_back({family.MakeHasher(group), m, m});
    }
    if (c2 != 0) specs.push_back({family.MakeHasher(c1), m, c2});
  }
  return specs;
}

// Instance i of group g keeps bucket i (its ordinal within the group) of the
// group's shared hash — identical layout to the pre-session batch runner.
std::vector<std::unique_ptr<ReptInstance>> BuildInstances(
    const ReptConfig& config,
    const std::vector<BatchRouter::GroupSpec>& specs) {
  SemiTriangleCounter::Options counter_options;
  counter_options.track_local = config.track_local;
  counter_options.track_pairs = config.NeedsPairTracking();
  counter_options.strict_pairs = config.strict_eta_pairs;

  std::vector<std::unique_ptr<ReptInstance>> instances;
  instances.reserve(config.c);
  for (const BatchRouter::GroupSpec& spec : specs) {
    for (uint32_t bucket = 0; bucket < spec.live_buckets; ++bucket) {
      instances.push_back(std::make_unique<ReptInstance>(
          spec.hasher, spec.num_buckets, bucket, counter_options));
    }
  }
  return instances;
}

// The scalar (global-count) part of a snapshot as a pure function of the
// per-instance tallies. Both snapshot paths — live counters under the ingest
// mutex, and a seqlock-published TallyBoard view — run exactly this
// arithmetic, in exactly this accumulation order, which is what makes them
// bit-identical to each other and to the legacy Run() at a batch boundary.
ReptEstimator::RunDetail ComputeScalarDetail(const ReptConfig& config,
                                             std::span<const double> tallies,
                                             std::span<const double> etas) {
  const double m = config.m;
  const uint32_t c = config.c;

  ReptEstimator::RunDetail detail;
  detail.instance_tallies.assign(tallies.begin(), tallies.end());
  TriangleEstimates& est = detail.estimates;

  if (c <= config.m) {
    // Algorithm 1: tau_hat = (m^2 / c) * sum_i tau^(i).
    const double scale = m * m / c;
    double sum = 0.0;
    for (const double tally : tallies) sum += tally;
    est.global = scale * sum;
    return detail;
  }

  const uint32_t c1 = c / config.m;
  const uint32_t c2 = c % config.m;
  const size_t full_count = static_cast<size_t>(c1) * config.m;

  if (c2 == 0) {
    // Full groups only: tau_hat = (m / c1) * sum_i tau^(i).
    const double scale = m / c1;
    double sum = 0.0;
    for (const double tally : tallies) sum += tally;
    est.global = scale * sum;
    return detail;
  }

  // Algorithm 2 (c2 != 0): combine the full-group estimate with the
  // remainder-group estimate using plug-in variances.
  detail.used_combination = true;
  const double scale1 = m / c1;
  const double scale2 = m * m / c2;
  const double scale_eta = m * m * m / c;

  double sum1 = 0.0;
  double sum2 = 0.0;
  double sum_eta = 0.0;
  for (size_t i = 0; i < tallies.size(); ++i) {
    if (i < full_count) {
      sum1 += tallies[i];
    } else {
      sum2 += tallies[i];
    }
    sum_eta += etas[i];
  }
  detail.tau_hat1 = scale1 * sum1;
  detail.tau_hat2 = scale2 * sum2;
  detail.eta_hat = scale_eta * sum_eta;

  // w^(1) = tau_hat^(1)(m-1)/c1;
  // w^(2) = (tau_hat^(1)(m^2-c2) + 2 eta_hat(m-c2))/c2.
  detail.w1 = detail.tau_hat1 * (m - 1.0) / c1;
  detail.w2 = (detail.tau_hat1 * (m * m - c2) +
               2.0 * detail.eta_hat * (m - c2)) /
              c2;
  est.global = GraybillDeal(detail.tau_hat1, detail.w1, detail.tau_hat2,
                            detail.w2, static_cast<double>(full_count),
                            static_cast<double>(c2))
                   .value;
  return detail;
}

}  // namespace

ReptSession::ReptSession(const ReptConfig& config, uint64_t seed,
                         ThreadPool* pool, const SessionOptions& options)
    : ReptSession(config, seed, BuildGroupSpecs(config, seed), pool,
                  options) {}

ReptSession::ReptSession(const ReptConfig& config, uint64_t seed,
                         std::vector<BatchRouter::GroupSpec> specs,
                         ThreadPool* pool, const SessionOptions& options)
    : config_(config),
      seed_(seed),
      pool_(pool),
      routers_{BatchRouter(specs), BatchRouter(specs)},
      board_(config.c) {
  NoteVertices(options.expected_vertices);
  instances_ = BuildInstances(config_, specs);
  if (options.expected_edges > 0) {
    // Every processor keeps one of its group's m hash buckets, so it is
    // expected to store |E|/m edges; pre-size the adjacency and tally maps
    // accordingly (capacity hint only — results are identical without it).
    // The vertex hint caps the per-instance reservations at the id space.
    const uint64_t stored_hint = options.expected_edges / config_.m + 1;
    for (auto& instance : instances_) {
      instance->counter().ReserveFor(stored_hint, options.expected_vertices);
    }
  }
  instance_group_.reserve(instances_.size());
  size_t begin = 0;
  for (size_t g = 0; g < specs.size(); ++g) {
    const size_t end = begin + specs[g].live_buckets;
    group_ranges_.emplace_back(begin, end);
    for (size_t i = begin; i < end; ++i) {
      instance_group_.push_back(static_cast<uint32_t>(g));
    }
    begin = end;
  }
  REPT_CHECK(begin == instances_.size());
  publish_global_.resize(instances_.size(), 0.0);
  publish_eta_.resize(instances_.size(), 0.0);
}

std::string ReptSession::Name() const {
  return "REPT(m=" + std::to_string(config_.m) +
         ",c=" + std::to_string(config_.c) + ")";
}

void ReptSession::Ingest(std::span<const Edge> edges) {
  RecordBatch(edges);
  if (edges.empty()) return;
  obs::TraceSpan span("ingest_batch");
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  const IngestStats before = stats_;
  switch (config_.dispatch) {
    case DispatchMode::kRouted:
      IngestRouted(edges);
      break;
    case DispatchMode::kBroadcast:
      IngestBroadcast(edges);
      PublishTallies();
      break;
    case DispatchMode::kFused:
      IngestFused(edges);
      PublishTallies();
      break;
  }
  ++stats_.batches;
  last_batch_.batches = stats_.batches - before.batches;
  last_batch_.sub_batches = stats_.sub_batches - before.sub_batches;
  last_batch_.routed_entries = stats_.routed_entries - before.routed_entries;
  last_batch_.route_seconds = stats_.route_seconds - before.route_seconds;
  last_batch_.estimate_seconds =
      stats_.estimate_seconds - before.estimate_seconds;
  PublishIngestStats();

  Metrics().batches.Increment();
  Metrics().edges.Increment(edges.size());
  Metrics().sub_batches.Increment(last_batch_.sub_batches);
  Metrics().routed_entries.Increment(last_batch_.routed_entries);
  Metrics().route_micros.Increment(
      static_cast<uint64_t>(last_batch_.route_seconds * 1e6));
  Metrics().replay_micros.Increment(
      static_cast<uint64_t>(last_batch_.estimate_seconds * 1e6));
}

void ReptSession::ReplayInstance(const BatchRouter& router, size_t i,
                                 std::span<const Edge> batch) {
  ReptInstance& instance = *instances_[i];
  instance.ReplayRouted(
      batch, router.Inserts(instance_group_[i], instance.bucket()));
}

void ReptSession::IngestRouted(std::span<const Edge> edges) {
  // The router's scratch is O(num_groups x sub-batch edges); capping the
  // sub-batch (config.routed_sub_batch) bounds that at a few MB per group
  // even when a caller (e.g. the one-shot Run() wrapper) ingests a whole
  // stream in one call, and keeps every routed batch far below
  // BatchRouter::kMaxBatchEdges. Sub-batching cannot change the result:
  // session state is batch-boundary invariant by construction. Tallies are
  // published per sub-batch, so snapshot readers observe progress inside
  // one large Ingest() call.
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    IngestRoutedPipelined(edges);
    return;
  }
  const size_t sub = config_.routed_sub_batch;
  for (size_t begin = 0; begin < edges.size(); begin += sub) {
    const std::span<const Edge> batch =
        edges.subspan(begin, std::min(sub, edges.size() - begin));

    // Stage 1 — DISPATCH/ROUTE: one hash evaluation per (group, edge);
    // builds the per-instance routed sublists.
    {
      obs::TraceSpan route_span("route_subbatch");
      WallTimer route_timer;
      routers_[0].Route(batch, pool_);
      stats_.route_seconds += route_timer.Seconds();
    }
    stats_.routed_entries += routers_[0].routed_entries();

    // Stage 2 — ESTIMATE: every instance replays the batch from its
    // sublist with zero hash evaluations.
    {
      obs::TraceSpan replay_span("replay_subbatch");
      WallTimer estimate_timer;
      for (size_t i = 0; i < instances_.size(); ++i) {
        ReplayInstance(routers_[0], i, batch);
      }
      stats_.estimate_seconds += estimate_timer.Seconds();
    }
    ++stats_.sub_batches;
    PublishTallies();
  }
}

void ReptSession::IngestRoutedPipelined(std::span<const Edge> edges) {
  if (edges.empty()) return;
  const size_t sub = config_.routed_sub_batch;
  const size_t num_batches = (edges.size() + sub - 1) / sub;
  const auto sub_batch = [edges, sub](size_t k) {
    const size_t begin = k * sub;
    return edges.subspan(begin, std::min(sub, edges.size() - begin));
  };

  // Prologue: route sub-batch 0 alone (nothing to overlap it with yet),
  // fanned across the pool as fine-grained (group, edge-range) tiles.
  {
    obs::TraceSpan route_span("route_subbatch");
    WallTimer route_timer;
    routers_[0].Route(sub_batch(0), pool_);
    stats_.route_seconds += route_timer.Seconds();
    stats_.routed_entries += routers_[0].routed_entries();
  }

  for (size_t k = 0; k < num_batches; ++k) {
    BatchRouter& current = routers_[k & 1];
    BatchRouter& next_router = routers_[(k + 1) & 1];
    const std::span<const Edge> batch = sub_batch(k);
    const bool route_next = k + 1 < num_batches;
    if (route_next) next_router.BeginBatch(sub_batch(k + 1));

    // One claimable index space for both overlapped stages: indices
    // [0, route_items) route a whole group of sub-batch k+1 into the spare
    // router buffer; the rest replay one instance of sub-batch k from the
    // current buffer. Routing work is listed first so the pipeline's
    // lookahead starts immediately; workers that finish it (or never get
    // any) drain replay items. Every item touches only state owned by the
    // claimed group/instance — per-instance counters, maps, and arenas are
    // strictly thread-local to the claiming worker for the duration.
    const size_t route_items = route_next ? next_router.num_groups() : 0;
    const size_t total_items = route_items + instances_.size();
    std::atomic<size_t> next_item{0};
    std::atomic<uint64_t> route_nanos{0};
    std::atomic<uint64_t> replay_nanos{0};
    auto drain = [&] {
      for (;;) {
        const size_t t = next_item.fetch_add(1, std::memory_order_relaxed);
        if (t >= total_items) return;
        WallTimer item_timer;
        if (t < route_items) {
          obs::TraceSpan item_span("route_group");
          next_router.RouteGroup(t);
          route_nanos.fetch_add(
              static_cast<uint64_t>(item_timer.Seconds() * 1e9),
              std::memory_order_relaxed);
        } else {
          obs::TraceSpan item_span("replay_instance");
          ReplayInstance(current, t - route_items, batch);
          replay_nanos.fetch_add(
              static_cast<uint64_t>(item_timer.Seconds() * 1e9),
              std::memory_order_relaxed);
        }
      }
    };
    const size_t workers = std::min(pool_->num_threads(), total_items);
    for (size_t w = 0; w < workers; ++w) {
      const bool ok = pool_->Submit(drain);
      REPT_CHECK(ok);
    }
    pool_->Wait();

    if (route_next) {
      next_router.FinishBatch();
      stats_.routed_entries += next_router.routed_entries();
    }
    stats_.route_seconds +=
        static_cast<double>(route_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    stats_.estimate_seconds +=
        static_cast<double>(replay_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    ++stats_.sub_batches;
    // Sub-batch boundary: replay of k is complete (Wait above), so the
    // counters hold a consistent prefix; publish it for snapshot readers.
    PublishTallies();
  }
}

void ReptSession::IngestBroadcast(std::span<const Edge> edges) {
  // Legacy schedule: every logical processor replays the whole batch and
  // re-evaluates its group hash per edge (c hash evaluations per edge).
  WallTimer estimate_timer;
  auto body = [this, edges](size_t i) {
    ReptInstance& instance = *instances_[i];
    for (const Edge& e : edges) instance.ProcessEdge(e.u, e.v);
  };
  if (pool_ != nullptr) {
    ParallelFor(*pool_, instances_.size(), body);
  } else {
    for (size_t i = 0; i < instances_.size(); ++i) body(i);
  }
  stats_.estimate_seconds += estimate_timer.Seconds();
}

void ReptSession::IngestFused(std::span<const Edge> edges) {
  // Legacy fused ablation: instances sharing a hash function run in one pass
  // over the batch. Identical results (counters are independent); coarser
  // parallel granularity, still one hash evaluation per (instance, edge).
  WallTimer estimate_timer;
  auto body = [this, edges](size_t g) {
    const auto [begin, end] = group_ranges_[g];
    for (const Edge& e : edges) {
      for (size_t i = begin; i < end; ++i) {
        instances_[i]->ProcessEdge(e.u, e.v);
      }
    }
  };
  if (pool_ != nullptr) {
    ParallelFor(*pool_, group_ranges_.size(), body);
  } else {
    for (size_t g = 0; g < group_ranges_.size(); ++g) body(g);
  }
  stats_.estimate_seconds += estimate_timer.Seconds();
}

void ReptSession::PublishTallies() {
  uint64_t stored = 0;
  for (size_t i = 0; i < instances_.size(); ++i) {
    const SemiTriangleCounter& counter = instances_[i]->counter();
    publish_global_[i] = counter.global();
    publish_eta_[i] = counter.eta();
    stored += counter.stored_edges();
  }
  board_.Publish(publish_global_, publish_eta_, stored);
}

uint64_t ReptSession::StoredEdges() const {
  return board_.ReadStoredEdges();
}

size_t ReptSession::MemoryBytes() const {
  size_t total = 0;
  for (const auto& instance : instances_) {
    total += instance->counter().MemoryBytes();
  }
  return total;
}

TriangleEstimates ReptSession::Snapshot() const {
  if (!config_.track_local) {
    // Wait-free path: scalar estimates from the seqlock-published board.
    return SnapshotFromBoard().estimates;
  }
  // Local tallies live in the instance counters; serialize with the
  // in-flight batch (blocking at most one batch).
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  return SnapshotFromCounters().estimates;
}

uint64_t ReptSession::StateFingerprint() const {
  return FingerprintBuilder()
      .MixString("REPT")
      .Mix(config_.m)
      .Mix(config_.c)
      .Mix(config_.track_local ? 1 : 0)
      .Mix(config_.strict_eta_pairs ? 1 : 0)
      .Mix(seed_)
      .Finish();
}

Status ReptSession::Checkpoint(CheckpointWriter& writer) const {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  writer.BeginSection(kSectionReptMeta);
  writer.AppendU64(edges_ingested());
  writer.AppendU64(num_vertices());
  writer.AppendU32(config_.m);
  writer.AppendU32(config_.c);
  writer.AppendU8(config_.track_local ? 1 : 0);
  writer.AppendU8(config_.NeedsPairTracking() ? 1 : 0);
  writer.AppendU8(config_.strict_eta_pairs ? 1 : 0);
  writer.AppendU32(static_cast<uint32_t>(instances_.size()));
  REPT_RETURN_NOT_OK(writer.EndSection());

  for (size_t i = 0; i < instances_.size(); ++i) {
    const SemiTriangleCounter& counter = instances_[i]->counter();
    writer.BeginSection(kSectionReptInstance);
    writer.AppendU32(static_cast<uint32_t>(i));
    writer.AppendU64(counter.stored_edges());
    counter.SaveState(writer);
    REPT_RETURN_NOT_OK(writer.EndSection());
  }
  return writer.status();
}

Status ReptSession::Restore(CheckpointReader& reader) {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  const Result<uint32_t> meta_id = reader.NextSection();
  REPT_RETURN_NOT_OK(meta_id.status());
  if (*meta_id != kSectionReptMeta) {
    return Status::Corruption("expected REPT meta section, found id " +
                              std::to_string(*meta_id));
  }
  const uint64_t edges = reader.ReadU64();
  const uint64_t vertices = reader.ReadU64();
  const uint32_t m = reader.ReadU32();
  const uint32_t c = reader.ReadU32();
  const bool track_local = reader.ReadU8() != 0;
  const bool track_pairs = reader.ReadU8() != 0;
  const bool strict_pairs = reader.ReadU8() != 0;
  const uint32_t num_instances = reader.ReadU32();
  REPT_RETURN_NOT_OK(reader.ExpectSectionEnd());
  // The header fingerprint already binds config and seed; this re-check
  // keeps a direct Restore() (no LoadCheckpoint wrapper) equally safe.
  if (m != config_.m || c != config_.c ||
      track_local != config_.track_local ||
      track_pairs != config_.NeedsPairTracking() ||
      strict_pairs != config_.strict_eta_pairs ||
      num_instances != instances_.size()) {
    return Status::Corruption(
        "checkpoint configuration does not match session " + Name());
  }
  if (vertices > std::numeric_limits<VertexId>::max()) {
    return Status::Corruption("checkpoint vertex bound exceeds id space");
  }

  for (size_t i = 0; i < instances_.size(); ++i) {
    const Result<uint32_t> id = reader.NextSection();
    REPT_RETURN_NOT_OK(id.status());
    if (*id != kSectionReptInstance) {
      return Status::Corruption("expected REPT instance section, found id " +
                                std::to_string(*id));
    }
    const uint32_t index = reader.ReadU32();
    const uint64_t stored = reader.ReadU64();
    REPT_RETURN_NOT_OK(reader.status());
    if (index != i) {
      return Status::Corruption("instance sections out of order");
    }
    SemiTriangleCounter& counter = instances_[i]->counter();
    REPT_RETURN_NOT_OK(counter.LoadState(reader));
    REPT_RETURN_NOT_OK(reader.ExpectSectionEnd());
    if (counter.stored_edges() != stored) {
      return Status::Corruption(
          "restored instance stored-edge count mismatch");
    }
  }

  RestoreStreamAccounting(static_cast<VertexId>(vertices), edges);
  // Cumulative stats survive the restore (a server session reloaded from a
  // checkpoint keeps its lifetime history); only the last-batch delta is
  // meaningless across the boundary and resets.
  last_batch_ = IngestStats{};
  PublishIngestStats();
  PublishTallies();
  return Status::OK();
}

void ReptSession::PublishIngestStats() {
  const auto publish = [](PublishedStats& out, const IngestStats& in) {
    out.batches.store(in.batches, std::memory_order_relaxed);
    out.sub_batches.store(in.sub_batches, std::memory_order_relaxed);
    out.routed_entries.store(in.routed_entries, std::memory_order_relaxed);
    out.route_nanos.store(static_cast<uint64_t>(in.route_seconds * 1e9),
                          std::memory_order_relaxed);
    out.estimate_nanos.store(static_cast<uint64_t>(in.estimate_seconds * 1e9),
                             std::memory_order_relaxed);
  };
  publish(published_cumulative_, stats_);
  publish(published_last_, last_batch_);
}

bool ReptSession::ReadIngestStats(IngestStatsView* cumulative,
                                  IngestStatsView* last_batch) const {
  const auto read = [](const PublishedStats& in, IngestStatsView* out) {
    out->batches = in.batches.load(std::memory_order_relaxed);
    out->sub_batches = in.sub_batches.load(std::memory_order_relaxed);
    out->routed_entries = in.routed_entries.load(std::memory_order_relaxed);
    out->route_seconds =
        static_cast<double>(in.route_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    out->estimate_seconds = static_cast<double>(in.estimate_nanos.load(
                                std::memory_order_relaxed)) *
                            1e-9;
  };
  if (cumulative != nullptr) read(published_cumulative_, cumulative);
  if (last_batch != nullptr) read(published_last_, last_batch);
  return true;
}

ReptEstimator::RunDetail ReptSession::SnapshotDetailed() const {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  return SnapshotFromCounters();
}

ReptEstimator::RunDetail ReptSession::SnapshotFromBoard() const {
  // One View per reader thread: the snapshot loop of a monitor allocates
  // nothing in steady state (Read reuses the buffers, resize is a no-op
  // once sized).
  thread_local TallyBoard::View view;
  board_.Read(view);
  return ComputeScalarDetail(config_, view.global, view.eta);
}

ReptEstimator::RunDetail ReptSession::SnapshotFromCounters() const {
  std::vector<double> tallies(instances_.size());
  std::vector<double> etas(instances_.size());
  for (size_t i = 0; i < instances_.size(); ++i) {
    const SemiTriangleCounter& counter = instances_[i]->counter();
    tallies[i] = counter.global();
    etas[i] = counter.eta();
  }
  ReptEstimator::RunDetail detail =
      ComputeScalarDetail(config_, tallies, etas);
  if (!config_.track_local) return detail;

  const double m = config_.m;
  const uint32_t c = config_.c;
  const size_t n = num_vertices();
  TriangleEstimates& est = detail.estimates;
  est.local.assign(n, 0.0);

  if (c <= config_.m) {
    const double scale = m * m / c;
    for (const auto& inst : instances_) {
      inst->counter().AccumulateLocal(est.local, scale);
    }
    return detail;
  }

  const uint32_t c1 = c / config_.m;
  const uint32_t c2 = c % config_.m;
  const size_t full_count = static_cast<size_t>(c1) * config_.m;

  if (c2 == 0) {
    const double scale = m / c1;
    for (const auto& inst : instances_) {
      inst->counter().AccumulateLocal(est.local, scale);
    }
    return detail;
  }

  const double scale1 = m / c1;
  const double scale2 = m * m / c2;
  const double scale_eta = m * m * m / c;
  std::vector<double> local1(n, 0.0);
  std::vector<double> local2(n, 0.0);
  std::vector<double> eta_local(n, 0.0);
  for (size_t i = 0; i < instances_.size(); ++i) {
    const SemiTriangleCounter& counter = instances_[i]->counter();
    if (i < full_count) {
      counter.AccumulateLocal(local1, scale1);
    } else {
      counter.AccumulateLocal(local2, scale2);
    }
    counter.AccumulateEtaLocal(eta_local, scale_eta);
  }
  for (size_t v = 0; v < n; ++v) {
    const double w1v = local1[v] * (m - 1.0) / c1;
    const double w2v = (local1[v] * (m * m - c2) +
                        2.0 * eta_local[v] * (m - c2)) /
                       c2;
    est.local[v] = GraybillDeal(local1[v], w1v, local2[v], w2v,
                                static_cast<double>(full_count),
                                static_cast<double>(c2))
                       .value;
  }
  return detail;
}

}  // namespace rept
