// Result types and the estimator-system interface shared by REPT and the
// parallel baselines.
//
// Notation (paper Table I): tau = |Δ| global triangle count, tau_v local
// count at node v, eta / eta_v covariance-pair counts, p = 1/m sampling
// probability, c = number of processors, τ^(i) per-processor semi-triangle
// tallies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/edge_stream.hpp"
#include "util/status.hpp"

namespace rept {

class ThreadPool;
class StreamingEstimator;

/// \brief Final output of one estimation run over a stream (or, through
/// StreamingEstimator::Snapshot, of a stream prefix).
struct TriangleEstimates {
  /// Estimate of the global triangle count tau.
  double global = 0.0;
  /// Estimate of tau_v, indexed by vertex id (size = stream vertex count).
  std::vector<double> local;
};

/// \brief Optional sizing hints for EstimatorSystem::CreateSession.
///
/// A session cannot know the final stream length up front; budget-based
/// baselines (TRIEST, GPS) size their reservoirs from `expected_edges` when
/// given, and fall back to a per-factory default budget otherwise. The
/// legacy Run() wrapper always passes exact values, which is what makes a
/// full-ingest Snapshot() bit-identical to Run().
struct SessionOptions {
  /// Expected number of stream edges; 0 = unknown.
  uint64_t expected_edges = 0;
  /// Expected vertex-id-space size; 0 = unknown. Pre-noted on the session.
  VertexId expected_vertices = 0;

  /// Hints are sizing inputs (reservoir budgets, hash-map reserves), so an
  /// absurd value is an up-front allocation bomb. Check() bounds them for
  /// untrusted callers; CreateSession implementations reject on failure.
  static constexpr uint64_t kMaxExpectedEdges = uint64_t{1} << 40;
  static constexpr VertexId kMaxExpectedVertices = VertexId{1} << 31;

  Status Check() const {
    if (expected_edges > kMaxExpectedEdges) {
      return Status::InvalidArgument("expected_edges hint is absurd: " +
                                     std::to_string(expected_edges));
    }
    if (expected_vertices > kMaxExpectedVertices) {
      return Status::InvalidArgument("expected_vertices hint is absurd: " +
                                     std::to_string(expected_vertices));
    }
    return Status::OK();
  }
};

/// \brief A complete estimation system: a named configuration that spawns
/// streaming sessions, internally running however many logical processors
/// its configuration demands.
///
/// Sessions (and therefore runs) are deterministic functions of
/// (edge sequence, seed) regardless of the thread pool or ingest chunking:
/// all per-instance randomness is pre-seeded.
class EstimatorSystem {
 public:
  virtual ~EstimatorSystem() = default;

  /// Display name, e.g. "REPT(m=10,c=32)".
  virtual std::string Name() const = 0;

  /// Number of logical processors (the paper's c).
  virtual uint32_t NumProcessors() const = 0;

  /// Opens a long-lived streaming session. `pool` may be nullptr (serial
  /// execution) and must outlive the session. `options` carries sizing hints
  /// for budget-based methods (see SessionOptions).
  ///
  /// Fallible: an invalid configuration or absurd sizing hint returns
  /// InvalidArgument instead of tripping a process-killing check, so
  /// network-facing callers (rept_server's CREATE_SESSION verb) can surface
  /// the failure as a protocol error. Library callers with known-good
  /// configs unwrap with .value().
  virtual Result<std::unique_ptr<StreamingEstimator>> CreateSession(
      uint64_t seed, ThreadPool* pool,
      const SessionOptions& options = {}) const = 0;

  /// One full pass over an in-memory stream: a thin
  /// create-ingest-snapshot wrapper over CreateSession.
  TriangleEstimates Run(const EdgeStream& stream, uint64_t seed,
                        ThreadPool* pool) const;
};

}  // namespace rept
