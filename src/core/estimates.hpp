// Result types and the estimator-system interface shared by REPT and the
// parallel baselines.
//
// Notation (paper Table I): tau = |Δ| global triangle count, tau_v local
// count at node v, eta / eta_v covariance-pair counts, p = 1/m sampling
// probability, c = number of processors, τ^(i) per-processor semi-triangle
// tallies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_stream.hpp"

namespace rept {

class ThreadPool;

/// \brief Final output of one estimation run over a stream.
struct TriangleEstimates {
  /// Estimate of the global triangle count tau.
  double global = 0.0;
  /// Estimate of tau_v, indexed by vertex id (size = stream vertex count).
  std::vector<double> local;
};

/// \brief A complete estimation system: given a stream and a seed it
/// produces estimates, internally running however many logical processors
/// its configuration demands.
///
/// Runs are deterministic functions of (stream, seed) regardless of the
/// thread pool: all per-instance randomness is pre-seeded.
class EstimatorSystem {
 public:
  virtual ~EstimatorSystem() = default;

  /// Display name, e.g. "REPT(m=10,c=32)".
  virtual std::string Name() const = 0;

  /// Number of logical processors (the paper's c).
  virtual uint32_t NumProcessors() const = 0;

  /// One full pass over the stream. `pool` may be nullptr (serial execution).
  virtual TriangleEstimates Run(const EdgeStream& stream, uint64_t seed,
                                ThreadPool* pool) const = 0;
};

}  // namespace rept
