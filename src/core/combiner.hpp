// Graybill-Deal combination of two independent unbiased estimators
// (Graybill & Deal 1959, cited as [20] in the paper): given estimates x1, x2
// with variances v1, v2, the minimum-variance unbiased combination is
//   x = (v2*x1 + v1*x2) / (v1 + v2),   Var(x) = v1*v2/(v1+v2).
// Algorithm 2 uses it with plug-in variance estimates w1, w2.
#pragma once

namespace rept {

struct CombinedEstimate {
  double value = 0.0;
  /// Weight legitimacy flag: false when both plug-in variances were zero and
  /// the fallback rule decided the value.
  bool weighted = true;
};

/// \brief Combines x1 (plug-in variance w1) and x2 (plug-in variance w2).
///
/// Degenerate case w1 + w2 == 0 (both variance estimates vanish; happens
/// when no semi-triangle was sampled anywhere): falls back to the
/// processor-count-weighted mean with weights n1, n2 — still a convex
/// combination of two unbiased estimates, hence unbiased.
CombinedEstimate GraybillDeal(double x1, double w1, double x2, double w2,
                              double n1, double n2);

}  // namespace rept
