// The REPT streaming session: c logical processors (ReptInstance) fed batch
// by batch through a two-stage dispatch pipeline, with anytime Algorithm 1 /
// Algorithm 2 estimates that stay readable while traffic flows.
//
// Ingest pipeline (DispatchMode::kRouted, the default):
//   stage 1  DISPATCH/ROUTE — the BatchRouter evaluates each fused hash
//            group's edge hash once per edge, tiled across the pool as
//            (group, edge-range) work items, and builds per-instance routed
//            sublists (only edges that can survive the group's sampling
//            threshold are routed anywhere).
//   stage 2  ESTIMATE — each instance replays the batch from its sublist
//            (ReptInstance::ReplayRouted) with zero hash evaluations,
//            fanned out across the pool per instance.
// An Ingest() call is split into sub-batches of config.routed_sub_batch
// edges, and on a multi-worker pool the two stages are software-pipelined
// across sub-batches with double-buffered routers: while the instances
// replay sub-batch k (one claimable work item per instance, all state
// thread-local to the claiming worker — each instance owns its counter,
// maps, and arena), the same workers also claim the per-group routing of
// sub-batch k+1 into the other router buffer. Per-instance tallies are
// published to the TallyBoard at every sub-batch boundary, so snapshot
// readers see progress even inside one huge Ingest() call. The legacy
// broadcast and fused-broadcast schedules remain available as
// ablation/bench comparison modes (ReptConfig::dispatch).
//
// Determinism: instance construction (grouping, per-group hash seeding) is a
// pure function of (config, seed), and every instance consumes the ingested
// edge sequence in arrival order, so session state after t edges is
// independent of batch boundaries, the thread pool, and the dispatch mode.
// Snapshot() after a full ingest is therefore bit-identical to the legacy
// one-shot Run().
//
// Concurrency: single-writer, concurrent snapshots OK. Each Ingest()
// publishes the per-instance scalar tallies to a seqlock-guarded TallyBoard
// at the batch boundary; global-only snapshots and StoredEdges() read the
// board wait-free, while local-tally snapshots serialize with the in-flight
// batch (blocking at most one batch).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_router.hpp"
#include "core/rept_config.hpp"
#include "core/rept_estimator.hpp"
#include "core/rept_instance.hpp"
#include "core/streaming_estimator.hpp"
#include "core/tally_board.hpp"

namespace rept {

class ThreadPool;

/// \brief Streaming session of a ReptEstimator.
class ReptSession : public StreamingEstimator {
 public:
  /// `pool` may be nullptr (serial ingest) and must outlive the session.
  ReptSession(const ReptConfig& config, uint64_t seed, ThreadPool* pool,
              const SessionOptions& options = {});

  std::string Name() const override;

  using StreamingEstimator::Ingest;
  void Ingest(std::span<const Edge> edges) override;

  TriangleEstimates Snapshot() const override;
  uint64_t StoredEdges() const override;
  /// Sum of the per-instance counter footprints (sampled adjacency + tally
  /// maps + arenas). Writer-side (see the base-class contract).
  size_t MemoryBytes() const override;

  /// Binds a checkpoint to (m, c, track_local, strict_eta_pairs, seed).
  /// The dispatch mode and thread pool are deliberately excluded: they are
  /// scheduling knobs with bit-identical results, so a checkpoint written
  /// under one may be restored under another (including a different pool
  /// size — state is per-instance, so migration falls out).
  uint64_t StateFingerprint() const override;
  Status Checkpoint(CheckpointWriter& writer) const override;
  /// Restores every instance's counter state, the stream-time accounting,
  /// and republishes the TallyBoard, all at the checkpoint's batch boundary.
  Status Restore(CheckpointReader& reader) override;

  /// Anytime equivalent of ReptEstimator::RunDetailed: the estimates plus
  /// raw tallies and Algorithm 2 intermediates for the current prefix.
  ReptEstimator::RunDetail SnapshotDetailed() const;

  /// \brief Cumulative ingest-path timings, split by pipeline stage.
  ///
  /// On a multi-worker pool the routed pipeline overlaps the two stages, so
  /// the per-stage numbers are summed task time (total work performed by
  /// that stage across all workers) rather than disjoint wall-clock
  /// intervals; their sum can exceed the Ingest() wall time by up to the
  /// parallel speedup. Serial ingest keeps the old wall-time meaning.
  struct IngestStats {
    uint64_t batches = 0;
    /// Routed sub-batches processed (= TallyBoard publishes from ingest).
    uint64_t sub_batches = 0;
    /// Routed-sublist entries built by stage 1 (0 in broadcast modes).
    uint64_t routed_entries = 0;
    /// Stage 1 time: hash evaluation + scatter (0 in broadcast modes).
    double route_seconds = 0.0;
    /// Stage 2 time: per-instance counting/estimation.
    double estimate_seconds = 0.0;
  };

  /// Writer-side statistic: read it from the ingesting thread (or after
  /// ingest quiesces), not concurrently with Ingest(). Cumulative over the
  /// session's lifetime — Restore() preserves it (a long-lived server
  /// session keeps its history across checkpoint reloads).
  const IngestStats& ingest_stats() const { return stats_; }

  /// Writer-side: the delta attributable to the most recent Ingest() call
  /// (zeroed by Restore()). Same access rules as ingest_stats().
  const IngestStats& last_batch_stats() const { return last_batch_; }

  /// Reader-safe views of ingest_stats()/last_batch_stats(), published at
  /// batch boundaries through relaxed atomics (a concurrent reader may see
  /// a consistent earlier boundary, never torn values).
  bool ReadIngestStats(IngestStatsView* cumulative,
                       IngestStatsView* last_batch) const override;

  const ReptConfig& config() const { return config_; }

 private:
  /// Delegation target: `specs` is the fused hash-group layout derived from
  /// (config, seed), the single source of truth for both the router and the
  /// instance set.
  ReptSession(const ReptConfig& config, uint64_t seed,
              std::vector<BatchRouter::GroupSpec> specs, ThreadPool* pool,
              const SessionOptions& options);

  void IngestBroadcast(std::span<const Edge> edges);
  void IngestFused(std::span<const Edge> edges);
  void IngestRouted(std::span<const Edge> edges);
  /// Pipelined routed ingest: double-buffered routing of sub-batch k+1
  /// overlapped with the replay of sub-batch k, both claimed from the same
  /// worker fan-out. Requires a pool with >= 2 workers.
  void IngestRoutedPipelined(std::span<const Edge> edges);
  /// Stage-2 replay of `batch` into instance `i` from `router`'s sublists.
  void ReplayInstance(const BatchRouter& router, size_t i,
                      std::span<const Edge> batch);
  /// Copies the per-instance scalar tallies to the TallyBoard (batch
  /// boundary publish). Caller holds ingest_mutex_.
  void PublishTallies();
  /// Full snapshot from the live counters. Caller holds ingest_mutex_.
  ReptEstimator::RunDetail SnapshotFromCounters() const;
  /// Global-only snapshot from a published TallyBoard view (wait-free path).
  ReptEstimator::RunDetail SnapshotFromBoard() const;
  /// Copies stats_/last_batch_ into the published atomic image. Caller
  /// holds ingest_mutex_.
  void PublishIngestStats();

  ReptConfig config_;
  /// Master seed the instance layout was derived from (checkpoint identity).
  uint64_t seed_;
  ThreadPool* pool_;
  // Instances are individually heap-allocated: worker threads mutate their
  // counters concurrently, and value-packing them in one vector caused
  // measurable false sharing between neighbors.
  std::vector<std::unique_ptr<ReptInstance>> instances_;
  /// Fused-mode task ranges: instances sharing a hash function, as
  /// contiguous [begin, end) runs.
  std::vector<std::pair<size_t, size_t>> group_ranges_;
  /// Group index of each instance (routed stage 2 lookup).
  std::vector<uint32_t> instance_group_;

  /// Double-buffered routers: routers_[k % 2] holds the sublists of the
  /// sub-batch currently replaying while the other buffer absorbs the
  /// routing of the next sub-batch. Non-pipelined paths only use [0].
  std::array<BatchRouter, 2> routers_;
  TallyBoard board_;
  /// Serializes instance mutation (Ingest) against local-tally snapshots.
  /// Global-only snapshots never take it — they read the board.
  mutable std::mutex ingest_mutex_;

  IngestStats stats_;
  IngestStats last_batch_;
  /// Published image of stats_/last_batch_ for concurrent readers (STATS
  /// while ingest is in flight). Written under ingest_mutex_, read
  /// lock-free; seconds travel as integer nanos so every field is one
  /// untearable relaxed atomic.
  struct PublishedStats {
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> sub_batches{0};
    std::atomic<uint64_t> routed_entries{0};
    std::atomic<uint64_t> route_nanos{0};
    std::atomic<uint64_t> estimate_nanos{0};
  };
  PublishedStats published_cumulative_;
  PublishedStats published_last_;
  /// Publish scratch, reused every batch.
  std::vector<double> publish_global_;
  std::vector<double> publish_eta_;
};

}  // namespace rept
