// The REPT streaming session: c logical processors (ReptInstance) fed batch
// by batch, with anytime Algorithm 1 / Algorithm 2 estimates.
//
// Determinism: instance construction (grouping, per-group hash seeding) is a
// pure function of (config, seed), and every instance consumes the ingested
// edge sequence in arrival order, so session state after t edges is
// independent of both batch boundaries and the thread pool. Snapshot() after
// a full ingest is therefore bit-identical to the legacy one-shot Run().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/rept_config.hpp"
#include "core/rept_estimator.hpp"
#include "core/rept_instance.hpp"
#include "core/streaming_estimator.hpp"

namespace rept {

class ThreadPool;

/// \brief Streaming session of a ReptEstimator.
class ReptSession : public StreamingEstimator {
 public:
  /// `pool` may be nullptr (serial ingest) and must outlive the session.
  ReptSession(const ReptConfig& config, uint64_t seed, ThreadPool* pool,
              const SessionOptions& options = {});

  std::string Name() const override;

  using StreamingEstimator::Ingest;
  void Ingest(std::span<const Edge> edges) override;

  TriangleEstimates Snapshot() const override;
  uint64_t StoredEdges() const override;

  /// Anytime equivalent of ReptEstimator::RunDetailed: the estimates plus
  /// raw tallies and Algorithm 2 intermediates for the current prefix.
  ReptEstimator::RunDetail SnapshotDetailed() const;

  const ReptConfig& config() const { return config_; }

 private:
  ReptConfig config_;
  ThreadPool* pool_;
  // Instances are individually heap-allocated: worker threads mutate their
  // counters concurrently, and value-packing them in one vector caused
  // measurable false sharing between neighbors.
  std::vector<std::unique_ptr<ReptInstance>> instances_;
  /// Fused-mode task ranges: instances sharing a hash function, as
  /// contiguous [begin, end) runs.
  std::vector<std::pair<size_t, size_t>> group_ranges_;
};

}  // namespace rept
