#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include <sys/time.h>

namespace rept {

namespace {

constexpr int kUnsetLevel = -1;

/// kUnsetLevel until the first GetLogLevel/emit, which folds in
/// REPT_LOG_LEVEL exactly once; SetLogLevel overrides unconditionally.
std::atomic<int> g_min_level{kUnsetLevel};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

int ResolveLevel() {
  int level = g_min_level.load(std::memory_order_relaxed);
  if (level != kUnsetLevel) return level;
  LogLevel from_env = LogLevel::kInfo;
  const char* env = std::getenv("REPT_LOG_LEVEL");
  if (env != nullptr && !LogLevelFromName(env, &from_env)) {
    from_env = LogLevel::kInfo;
  }
  // First resolver wins; a concurrent SetLogLevel may overwrite, which is
  // the documented precedence anyway.
  int expected = kUnsetLevel;
  g_min_level.compare_exchange_strong(expected, static_cast<int>(from_env),
                                      std::memory_order_relaxed);
  return g_min_level.load(std::memory_order_relaxed);
}

/// Small dense thread ids for log correlation (matches the trace writer's
/// scheme in spirit; ids are per-facility, not shared).
uint32_t LocalLogTid() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void FormatUtcTimestamp(char* buffer, size_t size) {
  struct timeval tv;
  ::gettimeofday(&tv, nullptr);
  struct tm parts;
  const time_t seconds = tv.tv_sec;
  ::gmtime_r(&seconds, &parts);
  const int millis = static_cast<int>(tv.tv_usec / 1000);
  std::snprintf(buffer, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                parts.tm_year + 1900, parts.tm_mon + 1, parts.tm_mday,
                parts.tm_hour, parts.tm_min, parts.tm_sec, millis);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(ResolveLevel()); }

bool LogLevelFromName(const std::string& name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warn") {
    *level = LogLevel::kWarn;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  char timestamp[32];
  FormatUtcTimestamp(timestamp, sizeof(timestamp));
  stream_ << "[" << timestamp << " " << LevelName(level)
          << " tid=" << LocalLogTid() << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < ResolveLevel()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace rept
