#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace rept {

namespace {

/// Pool-wide health counters: submits vs tasks catches dropped work,
/// steals/tasks is the load-imbalance ratio the ROADMAP scaling item needs.
struct PoolMetrics {
  obs::Counter submits = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_pool_submits_total", "Tasks accepted by ThreadPool::Submit");
  obs::Counter tasks = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_pool_tasks_total", "Tasks executed by pool workers");
  obs::Counter steals = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_pool_steals_total",
      "Tasks popped from another worker's queue (work stealing)");
};

const PoolMetrics& Metrics() {
  static const PoolMetrics metrics;
  return metrics;
}

}  // namespace

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 4;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  num_threads_ = num_threads;
  queues_ = std::make_unique<WorkerQueue[]>(num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  const size_t w =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % num_threads_;
  {
    std::lock_guard<std::mutex> lock(queues_[w].mutex);
    // Checked under the queue mutex: Shutdown()'s final drain also takes
    // every queue mutex after stop_ is set, so a Submit that observed
    // stop_ == false here enqueued before that drain ran (its task will be
    // executed), and one that lost the race observes stop_ == true.
    if (stop_.load(std::memory_order_relaxed)) return false;
    queues_[w].tasks.push_back(std::move(task));
    // pending_ rises before the task is visible to Wait()-ers and before
    // the submitting task (if any) can finish: a nested Submit therefore
    // keeps pending_ > 0 continuously until the child completes, which is
    // what makes Wait() count nested submissions correctly.
    pending_.fetch_add(1, std::memory_order_relaxed);
    // seq_cst pairs with the worker's sleepers_++ / queued_ check (a
    // store-buffer litmus): either this store is visible to the worker's
    // predicate, or the worker's sleepers_ increment is visible to the load
    // below — never neither, so a sleeper cannot be missed.
    queued_.fetch_add(1, std::memory_order_seq_cst);
  }
  Metrics().submits.Increment();
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // Empty critical section: orders this submission against a worker that
    // is between its predicate check and blocking, closing the lost-wakeup
    // window. Only reached when some worker is (going) idle.
    { std::lock_guard<std::mutex> lock(sleep_mutex_); }
    sleep_cv_.notify_one();
  }
  return true;
}

void ThreadPool::Wait() {
  if (pending_.load(std::memory_order_acquire) == 0) return;
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (joined_) return;
    stop_.store(true, std::memory_order_release);
    {
      // Wake every sleeper; they observe stop_, drain, and exit.
      std::lock_guard<std::mutex> sleep_lock(sleep_mutex_);
    }
    sleep_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
    joined_ = true;
  }
  // Drain: execute anything a racing Submit slipped in after the workers
  // last scanned their queues (see the ordering argument in Submit). Taking
  // each queue mutex here is also what publishes stop_ to late submitters.
  for (size_t w = 0; w < num_threads_; ++w) {
    for (;;) {
      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lock(queues_[w].mutex);
        if (queues_[w].tasks.empty()) break;
        task = std::move(queues_[w].tasks.front());
        queues_[w].tasks.pop_front();
        queued_.fetch_sub(1, std::memory_order_relaxed);
      }
      RunTask(task);
    }
  }
}

bool ThreadPool::TryPop(size_t self, std::function<void()>& task) {
  const size_t n = num_threads_;
  for (size_t k = 0; k < n; ++k) {
    WorkerQueue& queue = queues_[(self + k) % n];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    if (k == 0) {  // Own queue: FIFO.
      task = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    } else {  // Steal the coldest task from the victim's back.
      task = std::move(queue.tasks.back());
      queue.tasks.pop_back();
      Metrics().steals.Increment();
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::RunTask(std::function<void()>& task) {
  Metrics().tasks.Increment();
  task();
  task = nullptr;  // Destroy captures before completion is announced.
  // acq_rel: release publishes this task's writes to whoever observes the
  // decrement (a Wait()-er's acquire load), acquire orders the zero check.
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock-then-notify so a Wait()-er that just evaluated pending_ > 0
    // cannot block after this notification (no lost wakeup).
    { std::lock_guard<std::mutex> lock(wait_mutex_); }
    wait_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    std::function<void()> task;
    if (TryPop(self, task)) {
      RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    // seq_cst: see the pairing note in Submit().
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& body) {
  // Serial fallback: one index or one worker gains nothing from enqueueing
  // (a single worker would run the indices sequentially anyway, after a
  // wakeup round-trip per task batch).
  if (count == 0) return;
  if (count == 1 || pool.num_threads() == 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Dynamic scheduling: workers pull the next index from a shared counter,
  // which balances heterogeneous task costs (e.g., REPT group instances store
  // different numbers of edges).
  std::atomic<size_t> next{0};
  const size_t workers = std::min(pool.num_threads(), count);
  for (size_t w = 0; w < workers; ++w) {
    const bool ok = pool.Submit([&next, count, &body] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
    REPT_CHECK(ok);  // ParallelFor on a stopped pool is a programming error.
  }
  pool.Wait();
}

void ParallelForChunked(ThreadPool& pool, size_t count, size_t tile,
                        const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  if (tile == 0) tile = 1;
  if (count <= tile || pool.num_threads() == 1) {
    body(0, count);
    return;
  }
  // Workers claim [i, i + tile) ranges from a shared cursor: dynamic load
  // balancing with one atomic op per tile instead of one per index, and one
  // enqueue per worker instead of one per work item.
  std::atomic<size_t> next{0};
  const size_t num_tiles = (count + tile - 1) / tile;
  const size_t workers = std::min(pool.num_threads(), num_tiles);
  for (size_t w = 0; w < workers; ++w) {
    const bool ok = pool.Submit([&next, count, tile, &body] {
      for (;;) {
        const size_t begin = next.fetch_add(tile, std::memory_order_relaxed);
        if (begin >= count) return;
        body(begin, std::min(count, begin + tile));
      }
    });
    REPT_CHECK(ok);
  }
  pool.Wait();
}

ThreadPool& SharedThreadPool() {
  // Constructed on first use, destroyed at exit (Shutdown drains cleanly).
  static ThreadPool pool(0);
  return pool;
}

void ParallelFor(size_t threads, size_t count,
                 const std::function<void(size_t)>& body) {
  if (count <= 1 || threads == 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  if (threads == 0 || threads == SharedThreadPool().num_threads()) {
    ParallelFor(SharedThreadPool(), count, body);
    return;
  }
  // Explicit non-default width: honor it with a transient pool (tests pin
  // exact worker counts; production paths pass 0 or plumb a real pool).
  ThreadPool pool(threads);
  ParallelFor(pool, count, body);
}

}  // namespace rept
