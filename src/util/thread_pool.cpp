#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/check.hpp"

namespace rept {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    REPT_CHECK(!stop_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& body) {
  // Serial fallback: one index or one worker gains nothing from enqueueing
  // (a single worker would run the indices sequentially anyway, after a
  // wakeup round-trip per task batch).
  if (count == 0) return;
  if (count == 1 || pool.num_threads() == 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Dynamic scheduling: workers pull the next index from a shared counter,
  // which balances heterogeneous task costs (e.g., REPT group instances store
  // different numbers of edges).
  std::atomic<size_t> next{0};
  const size_t workers = std::min(pool.num_threads(), count);
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&next, count, &body] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  pool.Wait();
}

void ParallelForChunked(ThreadPool& pool, size_t count, size_t tile,
                        const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  if (tile == 0) tile = 1;
  if (count <= tile || pool.num_threads() == 1) {
    body(0, count);
    return;
  }
  // Workers claim [i, i + tile) ranges from a shared cursor: dynamic load
  // balancing with one atomic op per tile instead of one per index, and one
  // enqueue per worker instead of one per work item.
  std::atomic<size_t> next{0};
  const size_t num_tiles = (count + tile - 1) / tile;
  const size_t workers = std::min(pool.num_threads(), num_tiles);
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&next, count, tile, &body] {
      for (;;) {
        const size_t begin = next.fetch_add(tile, std::memory_order_relaxed);
        if (begin >= count) return;
        body(begin, std::min(count, begin + tile));
      }
    });
  }
  pool.Wait();
}

void ParallelFor(size_t threads, size_t count,
                 const std::function<void(size_t)>& body) {
  if (count <= 1 || threads == 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool pool(threads);
  ParallelFor(pool, count, body);
}

}  // namespace rept
