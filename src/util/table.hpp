// Aligned console tables: the benchmark harness prints each figure/table of
// the paper as a plain-text table (plus optional CSV via csv.hpp).
#pragma once

#include <string>
#include <vector>

namespace rept {

/// \brief Collects rows of string cells and renders them with aligned,
/// right-justified columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with %.*g precision.
  static std::string FormatDouble(double value, int precision = 6);
  static std::string FormatSci(double value, int precision = 3);

  /// Renders the table, header first, separated by a rule.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rept
