// Deterministic fault injection for durability and network chaos tests.
//
// Call sites name a fault point ("checkpoint.fsync", "net.recv_drop") and
// ask REPT_FAULT(site) whether to fail this time. In the default build
// (REPT_FAULT_INJECTION off, the shipping configuration) every query is a
// constant-false inline — zero code, zero branches survive in the binary,
// so production paths cannot be destabilized by the harness existing.
//
// With -DREPT_FAULT_INJECTION=ON (the CI chaos legs), sites are armed
// either programmatically from a test:
//
//   fault::Arm("checkpoint.rename", /*skip=*/2);   // 3rd rename fails
//
// or from the environment for child processes and tools:
//
//   REPT_FAULTS="checkpoint.fsync@0,net.recv_drop@5"
//
// where "site@n" skips the first n hits then fails once, "site@n#k" fails
// k times (k = -1: every hit after the skip), and a bare "site" fails the
// first hit. Arming is process-global and thread-safe; each armed site is
// consumed independently.
//
// Sites (see docs/fault_tolerance.md for the catalog):
//   checkpoint.open / .write / .fsync / .rename  — SaveCheckpoint stages
//   checkpoint.crash_before_rename — fail AND leave the .tmp orphan behind,
//                                    modeling a crash mid-save
//   net.recv_drop / net.send_drop  — kill the socket mid-frame
//   net.recv_delay                 — stall a read by ~50 ms (deadline tests)
#pragma once

#include <string>

namespace rept::fault {

#if defined(REPT_FAULT_INJECTION)

/// True when this build carries the injection layer.
constexpr bool Enabled() { return true; }

/// Arms `site`: skip the first `skip` hits, then report `fail_count`
/// failures (-1 = every subsequent hit). Re-arming replaces prior state.
void Arm(const std::string& site, int skip = 0, int fail_count = 1);

/// Removes `site`'s arming (unarmed sites never fail).
void Disarm(const std::string& site);

/// Clears every armed site (test teardown).
void DisarmAll();

/// Consumes one hit of `site` and reports whether the caller should fail.
/// The first call in a process also arms sites from $REPT_FAULTS.
bool ShouldFail(const char* site);

#else  // !REPT_FAULT_INJECTION

constexpr bool Enabled() { return false; }
inline void Arm(const std::string&, int = 0, int = 1) {}
inline void Disarm(const std::string&) {}
inline void DisarmAll() {}
constexpr bool ShouldFail(const char*) { return false; }

#endif  // REPT_FAULT_INJECTION

}  // namespace rept::fault

/// The call-site form: `if (REPT_FAULT("checkpoint.fsync")) return ...;`.
/// Compiles to `if (false)` — removed entirely — in the default build.
#define REPT_FAULT(site) (::rept::fault::ShouldFail(site))
