// Online and batch statistics used by the evaluation harness and by the
// statistical property tests (unbiasedness / variance validation).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace rept {

/// \brief Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  void Merge(const RunningStats& other);

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance (divides by n).
  double variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Unbiased sample variance (divides by n-1).
  double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double sample_stddev() const { return std::sqrt(sample_variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Accumulates squared error of repeated estimates of a known truth,
/// yielding MSE and NRMSE = sqrt(MSE)/truth (the paper's error metric, §IV-C).
class ErrorStats {
 public:
  explicit ErrorStats(double truth) : truth_(truth) {}

  void AddEstimate(double estimate) {
    const double err = estimate - truth_;
    sum_sq_err_ += err * err;
    sum_est_ += estimate;
    ++n_;
  }

  uint64_t count() const { return n_; }
  double truth() const { return truth_; }
  double mse() const { return n_ > 0 ? sum_sq_err_ / static_cast<double>(n_) : 0.0; }
  double rmse() const { return std::sqrt(mse()); }
  /// NRMSE(mu_hat) = sqrt(MSE)/mu. Requires truth != 0.
  double nrmse() const {
    REPT_DCHECK(truth_ != 0.0);
    return rmse() / truth_;
  }
  double mean_estimate() const {
    return n_ > 0 ? sum_est_ / static_cast<double>(n_) : 0.0;
  }
  /// Relative bias (mean estimate - truth)/truth.
  double relative_bias() const {
    REPT_DCHECK(truth_ != 0.0);
    return (mean_estimate() - truth_) / truth_;
  }

 private:
  double truth_;
  double sum_sq_err_ = 0.0;
  double sum_est_ = 0.0;
  uint64_t n_ = 0;
};

/// \brief Quantile helper over a batch of samples (copies & sorts).
double Quantile(std::vector<double> samples, double q);

/// \brief Pearson chi-square statistic of `observed` counts against a uniform
/// expectation. Used by the hash-uniformity tests.
double ChiSquareUniform(const std::vector<uint64_t>& observed);

}  // namespace rept
