#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace rept {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  REPT_CHECK(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  REPT_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::EscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string CsvWriter::ToString() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << EscapeField(row[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IOError("cannot open for writing: " + path);
  file << ToString();
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace rept
