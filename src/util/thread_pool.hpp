// Fixed-size thread pool and blocking parallel-for loops built on it.
//
// The evaluation harness runs up to several hundred logical stream
// processors (the paper evaluates c up to 320) on however many hardware
// threads exist; ParallelFor distributes those logical instances and
// ParallelForChunked distributes contiguous index ranges (tiles) so small
// work items are not paid for one enqueue each. Results are deterministic
// regardless of the number of worker threads because every task owns
// pre-seeded private state.
//
// Scheduling internals: each worker owns its own task queue (one mutex per
// queue, round-robin submission, idle workers steal from neighbors), and
// completion is tracked by a lone atomic counter — the Submit/Wait/complete
// path never serializes every task through one pool-wide mutex. Wait()
// counts *nested* submissions correctly: a task that submits another task
// increments the outstanding count before its own completion decrements it,
// so Wait() cannot return between the parent finishing and the child
// starting.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rept {

/// Number of workers a default-sized pool creates:
/// std::thread::hardware_concurrency(), or 4 when the runtime reports 0
/// (permitted by the standard on exotic platforms). Every "0 threads means
/// hardware concurrency" knob in the repo resolves through this one
/// function, so the fallback is uniform.
size_t HardwareThreads();

/// \brief Fixed-size worker pool executing enqueued tasks.
///
/// Tasks submitted from one thread start in submission order per worker
/// queue but may complete in any order (idle workers steal). Wait() blocks
/// until every submitted task — including tasks submitted by running tasks —
/// has finished. Never call Wait() from a task running on the pool itself:
/// the waiting worker is one of the threads Wait() is waiting for.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means HardwareThreads()).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Enqueues a task; it may begin executing immediately. The task is moved
  /// through into the queue, never copied. Returns true on enqueue. After
  /// Shutdown() has completed, returns false and the task is NOT enqueued —
  /// submitting to a stopped pool is a defined (checkable) error, not an
  /// abort. Every Submit that returns true runs exactly once, even when it
  /// races Shutdown()/destruction.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Blocks until all submitted tasks (including nested ones) have finished.
  void Wait();

  /// Stops the pool: runs every task already accepted (draining queues),
  /// joins the workers, and flips the pool into the stopped state in which
  /// Submit() returns false. Idempotent; called by the destructor. Safe to
  /// race with Submit() from other threads — each such Submit either returns
  /// false or its task is executed before Shutdown() returns.
  void Shutdown();

 private:
  // One queue per worker, each behind its own mutex so two submissions (or a
  // pop and a push) to different workers never contend. Cache-line aligned:
  // the queues are the only cross-thread-mutated state on the hot path.
  struct alignas(64) WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops the next task: own queue front first (FIFO for cache locality of
  /// freshly submitted work), then steals from other queues back to front.
  bool TryPop(size_t self, std::function<void()>& task);
  /// Completion bookkeeping shared by workers and the shutdown drain.
  void RunTask(std::function<void()>& task);

  /// Worker count, fixed before any worker thread starts. Everything the
  /// workers read to navigate (queue count, steal ring size) goes through
  /// this plain member, never workers_.size(): the vector is still growing
  /// while early workers already run, and reading its size would race the
  /// remaining emplace_back calls.
  size_t num_threads_ = 0;
  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerQueue[]> queues_;
  /// Round-robin submission cursor.
  std::atomic<size_t> next_queue_{0};
  /// Tasks submitted but not yet finished (queued + running). The only
  /// global word the per-task fast path touches.
  std::atomic<size_t> pending_{0};
  /// Tasks sitting in some queue (not yet popped); the idle-sleep predicate.
  std::atomic<size_t> queued_{0};
  std::atomic<bool> stop_{false};
  bool joined_ = false;  // Shutdown() ran to completion (guards re-entry).
  std::mutex shutdown_mutex_;

  // Idle workers sleep here; Submit only touches the mutex when a sleeper
  // exists (sleepers_ > 0), so a saturated pool never serializes on it.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<size_t> sleepers_{0};

  // Wait() blocks here; the worker that drops pending_ to zero notifies.
  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
};

/// \brief Runs body(i) for i in [0, count) across the pool; blocks until all
/// iterations complete. Iterations must be independent. Falls back to serial
/// in-place execution (no enqueue, no wakeups) when count <= 1 or the pool
/// has a single worker.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& body);

/// \brief Chunked variant: runs body(begin, end) over disjoint tiles covering
/// [0, count), each tile at most `tile` indices wide. Workers claim tiles
/// dynamically, so one enqueue serves many indices — the scheduling shape for
/// fine-grained work (per-edge hashing, per-instance replay). Tiles must be
/// independent; indices within a tile execute in order. Serial fallback (one
/// body(0, count) call) when the whole range fits in one tile or the pool has
/// a single worker.
void ParallelForChunked(ThreadPool& pool, size_t count, size_t tile,
                        const std::function<void(size_t, size_t)>& body);

/// \brief The process-wide shared pool (HardwareThreads() workers), created
/// on first use. For callers that need occasional parallelism without
/// plumbing a pool through their API — repeated calls reuse the same workers
/// instead of spawning and joining a fresh pool each time. Concurrent users
/// share the completion counter, so a ParallelFor on the shared pool may
/// also wait out another caller's in-flight tasks (correct, possibly
/// overlong); give hot paths their own pool.
ThreadPool& SharedThreadPool();

/// \brief Convenience: runs body(i) across `threads` workers (0 = hardware
/// concurrency). Serial when count <= 1 or threads == 1; otherwise runs on
/// SharedThreadPool() when `threads` is 0 or matches its size, and only
/// spins up a transient pool for an explicit non-default thread count.
void ParallelFor(size_t threads, size_t count,
                 const std::function<void(size_t)>& body);

}  // namespace rept
