// Fixed-size thread pool and blocking parallel-for loops built on it.
//
// The evaluation harness runs up to several hundred logical stream
// processors (the paper evaluates c up to 320) on however many hardware
// threads exist; ParallelFor distributes those logical instances and
// ParallelForChunked distributes contiguous index ranges (tiles) so small
// work items are not paid for one enqueue each. Results are deterministic
// regardless of the number of worker threads because every task owns
// pre-seeded private state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rept {

/// \brief Fixed-size worker pool executing enqueued tasks FIFO.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means std::thread::hardware_concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; it may begin executing immediately. The task is moved
  /// through into the queue, never copied.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// \brief Runs body(i) for i in [0, count) across the pool; blocks until all
/// iterations complete. Iterations must be independent. Falls back to serial
/// in-place execution (no enqueue, no wakeups) when count <= 1 or the pool
/// has a single worker.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& body);

/// \brief Chunked variant: runs body(begin, end) over disjoint tiles covering
/// [0, count), each tile at most `tile` indices wide. Workers claim tiles
/// dynamically, so one enqueue serves many indices — the scheduling shape for
/// fine-grained work (per-edge hashing, per-instance replay). Tiles must be
/// independent; indices within a tile execute in order. Serial fallback (one
/// body(0, count) call) when the whole range fits in one tile or the pool has
/// a single worker.
void ParallelForChunked(ThreadPool& pool, size_t count, size_t tile,
                        const std::function<void(size_t, size_t)>& body);

/// \brief Convenience: runs body(i) on a transient pool with `threads`
/// workers (0 = hardware concurrency). Falls back to serial execution when
/// count <= 1 or threads == 1.
void ParallelFor(size_t threads, size_t count,
                 const std::function<void(size_t)>& body);

}  // namespace rept
