#include "util/status.hpp"

namespace rept {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace rept
