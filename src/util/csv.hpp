// CSV output so reproduced figure series can be re-plotted externally.
#pragma once

#include <string>
#include <vector>

#include "util/status.hpp"

namespace rept {

/// \brief Buffers rows and writes an RFC-4180-ish CSV file (quotes fields
/// containing separators/quotes/newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  std::string ToString() const;

  /// Writes the buffered table to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  static std::string EscapeField(const std::string& field);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rept
