#include "util/statistics.hpp"

#include <algorithm>
#include <numeric>

namespace rept {

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Quantile(std::vector<double> samples, double q) {
  REPT_CHECK(!samples.empty());
  REPT_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double ChiSquareUniform(const std::vector<uint64_t>& observed) {
  REPT_CHECK(!observed.empty());
  const uint64_t total =
      std::accumulate(observed.begin(), observed.end(), uint64_t{0});
  const double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  REPT_CHECK(expected > 0.0);
  double chi2 = 0.0;
  for (uint64_t count : observed) {
    const double diff = static_cast<double>(count) - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

}  // namespace rept
