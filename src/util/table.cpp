#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace rept {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  REPT_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  REPT_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string TablePrinter::FormatSci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace rept
