// Leveled stderr logging for long-running harness binaries.
#pragma once

#include <sstream>
#include <string>

namespace rept {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// RAII line logger; flushes on destruction with a timestamped prefix.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rept

#define REPT_LOG(level) \
  ::rept::internal::LogMessage(::rept::LogLevel::level, __FILE__, __LINE__)
