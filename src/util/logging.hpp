// Leveled structured stderr logging for long-running harness binaries.
//
// Each line carries a UTC timestamp (millisecond precision), the level, a
// small sequential thread id, and the source location:
//
//   [2026-08-08T12:34:56.789Z INFO tid=3 server.cpp:142] session created
//
// The minimum level defaults to kInfo and can be set programmatically
// (SetLogLevel) or via the REPT_LOG_LEVEL environment variable
// (debug|info|warn|error, read once on first log call). Messages below the
// threshold still build their stream (keep expensive operands out of log
// statements) but never take the emit lock.
#pragma once

#include <sstream>
#include <string>

namespace rept {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level (default kInfo, or REPT_LOG_LEVEL when
/// set; an explicit SetLogLevel always wins over the environment).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug"/"info"/"warn"/"error" (case-sensitive). Returns false and
/// leaves `*level` untouched on anything else.
bool LogLevelFromName(const std::string& name, LogLevel* level);

namespace internal {

/// RAII line logger; flushes on destruction with a timestamped prefix.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rept

#define REPT_LOG(level) \
  ::rept::internal::LogMessage(::rept::LogLevel::level, __FILE__, __LINE__)
