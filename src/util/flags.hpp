// Minimal command-line flag parser for the example and benchmark binaries.
// Supports --name=value and --name value forms plus --help synthesis.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace rept {

/// \brief Declarative flag set: register typed flags bound to variables, then
/// Parse(argc, argv).
class FlagSet {
 public:
  explicit FlagSet(std::string program_description = "");

  FlagSet& AddInt64(const std::string& name, int64_t* target,
                    const std::string& help);
  FlagSet& AddUint64(const std::string& name, uint64_t* target,
                     const std::string& help);
  FlagSet& AddDouble(const std::string& name, double* target,
                     const std::string& help);
  FlagSet& AddString(const std::string& name, std::string* target,
                     const std::string& help);
  FlagSet& AddBool(const std::string& name, bool* target,
                   const std::string& help);

  /// Parses argv; unknown flags produce InvalidArgument. "--help" prints
  /// usage and returns a NotFound status the caller should treat as "exit 0".
  Status Parse(int argc, char** argv);

  /// Usage text assembled from registered flags and current defaults.
  std::string Usage() const;

  /// Positional (non-flag) arguments encountered during Parse.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Type { kInt64, kUint64, kDouble, kString, kBool };

  struct Flag {
    Type type;
    void* target;
    std::string help;
    std::string default_value;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rept
