#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace rept {

namespace {

std::string BoolToString(bool b) { return b ? "true" : "false"; }

}  // namespace

FlagSet::FlagSet(std::string program_description)
    : description_(std::move(program_description)) {}

FlagSet& FlagSet::AddInt64(const std::string& name, int64_t* target,
                           const std::string& help) {
  flags_[name] = Flag{Type::kInt64, target, help, std::to_string(*target)};
  return *this;
}

FlagSet& FlagSet::AddUint64(const std::string& name, uint64_t* target,
                            const std::string& help) {
  flags_[name] = Flag{Type::kUint64, target, help, std::to_string(*target)};
  return *this;
}

FlagSet& FlagSet::AddDouble(const std::string& name, double* target,
                            const std::string& help) {
  flags_[name] = Flag{Type::kDouble, target, help, std::to_string(*target)};
  return *this;
}

FlagSet& FlagSet::AddString(const std::string& name, std::string* target,
                            const std::string& help) {
  flags_[name] = Flag{Type::kString, target, help, *target};
  return *this;
}

FlagSet& FlagSet::AddBool(const std::string& name, bool* target,
                          const std::string& help) {
  flags_[name] = Flag{Type::kBool, target, help, BoolToString(*target)};
  return *this;
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  errno = 0;
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt64: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int64 for --" + name + ": " + value);
      }
      *static_cast<int64_t*>(flag.target) = v;
      break;
    }
    case Type::kUint64: {
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0' ||
          value.find('-') != std::string::npos) {
        return Status::InvalidArgument("bad uint64 for --" + name + ": " + value);
      }
      *static_cast<uint64_t*>(flag.target) = v;
      break;
    }
    case Type::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double for --" + name + ": " + value);
      }
      *static_cast<double*>(flag.target) = v;
      break;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      break;
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + name + ": " + value);
      }
      break;
    }
  }
  return Status::OK();
}

Status FlagSet::Parse(int argc, char** argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      return Status::NotFound("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare --flag enables a bool
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("missing value for --" + name);
      }
    }
    REPT_RETURN_NOT_OK(SetValue(name, value));
  }
  return Status::OK();
}

std::string FlagSet::Usage() const {
  std::ostringstream out;
  if (!description_.empty()) out << description_ << "\n\n";
  out << "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << "  (default: " << flag.default_value << ")\n"
        << "      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace rept
