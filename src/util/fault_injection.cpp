#include "util/fault_injection.hpp"

#if defined(REPT_FAULT_INJECTION)

#include <cstdlib>
#include <map>
#include <mutex>

#include "util/logging.hpp"

namespace rept::fault {

namespace {

struct SiteState {
  int skip = 0;
  /// Failures still to report; -1 = unbounded.
  int fails = 1;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, SiteState> sites;
};

Registry& TheRegistry() {
  static Registry registry;
  return registry;
}

/// Parses $REPT_FAULTS ("site@n#k,site2,...") once per process.
void ArmFromEnvLocked(Registry& registry) {
  const char* env = std::getenv("REPT_FAULTS");
  if (env == nullptr) return;
  const std::string spec(env);
  size_t at = 0;
  while (at < spec.size()) {
    size_t comma = spec.find(',', at);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(at, comma - at);
    at = comma + 1;
    if (item.empty()) continue;
    SiteState state;
    std::string site = item;
    const size_t hash = site.find('#');
    if (hash != std::string::npos) {
      state.fails = std::atoi(site.c_str() + hash + 1);
      site.resize(hash);
    }
    const size_t sep = site.find('@');
    if (sep != std::string::npos) {
      state.skip = std::atoi(site.c_str() + sep + 1);
      site.resize(sep);
    }
    if (site.empty()) continue;
    registry.sites[site] = state;
    REPT_LOG(kWarn) << "fault injection armed from REPT_FAULTS: " << site
                    << " skip=" << state.skip << " fails=" << state.fails;
  }
}

void EnsureEnvArmed(Registry& registry) {
  // Under the registry mutex; runs once.
  static bool armed = (ArmFromEnvLocked(registry), true);
  (void)armed;
}

}  // namespace

void Arm(const std::string& site, int skip, int fail_count) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites[site] = SiteState{skip, fail_count};
}

void Disarm(const std::string& site) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites.erase(site);
}

void DisarmAll() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites.clear();
}

bool ShouldFail(const char* site) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  EnsureEnvArmed(registry);
  const auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return false;
  SiteState& state = it->second;
  if (state.skip > 0) {
    --state.skip;
    return false;
  }
  if (state.fails == 0) return false;
  if (state.fails > 0) --state.fails;
  REPT_LOG(kWarn) << "injected fault at " << site;
  return true;
}

}  // namespace rept::fault

#endif  // REPT_FAULT_INJECTION
