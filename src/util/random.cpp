#include "util/random.hpp"

// random.hpp is header-only; this translation unit exists so the module shows
// up in the library and to anchor the vtable-free inline definitions for
// faster incremental builds if out-of-line versions are ever needed.
namespace rept {}  // namespace rept
