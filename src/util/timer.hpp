// Wall-clock timing for the benchmark harness.
#pragma once

#include <chrono>

namespace rept {

/// \brief Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rept
