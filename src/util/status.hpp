// Recoverable-error model in the RocksDB/Arrow style: operations that can
// fail for environmental reasons (I/O, malformed input, invalid user
// configuration) return Status or Result<T>; internal invariants use
// REPT_CHECK (check.hpp). No exceptions are thrown on hot paths.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/check.hpp"

namespace rept {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kUnsupported,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// \brief Lightweight success/error carrier for recoverable failures.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  /// An admission-control or budget limit was hit (session slots, memory
  /// budgets). Retryable once the load subsides, unlike InvalidArgument.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// A blocking operation ran past its configured deadline (socket
  /// read/write timeouts, client roundtrip deadlines). The operation did
  /// not complete, but unlike IOError the peer may still be alive —
  /// retryable after reconnecting, since a stream abandoned mid-frame can
  /// no longer be trusted to be in sync.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string; "OK" on success.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value or an error Status. Value access on an error status
/// aborts, mirroring the checked-access convention of Arrow's Result.
// GCC 12 -O2 falsely reports the variant's string member as
// maybe-uninitialized when ~Result is inlined (GCC PR 105562 family).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(implicit)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(implicit)
    REPT_CHECK(!std::get<Status>(value_).ok() &&
               "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(value_);
  }

  const T& value() const& {
    REPT_CHECK(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    REPT_CHECK(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    REPT_CHECK(ok());
    return std::move(std::get<T>(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace rept

/// Propagate a non-OK status to the caller.
#define REPT_RETURN_NOT_OK(expr)         \
  do {                                   \
    ::rept::Status _st = (expr);         \
    if (!_st.ok()) return _st;           \
  } while (0)
