// Internal invariant checking. REPT_CHECK is always on (cheap conditions
// only); REPT_DCHECK compiles out in release builds. Both abort with a
// source-located message: invariant violations are programming errors, not
// recoverable conditions, so no Status is returned (see status.hpp for the
// recoverable-error model).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rept {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "REPT_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace rept

#define REPT_CHECK(expr)                                    \
  do {                                                      \
    if (!(expr)) {                                          \
      ::rept::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                       \
  } while (0)

#ifdef NDEBUG
#define REPT_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define REPT_DCHECK(expr) REPT_CHECK(expr)
#endif
