// Deterministic, platform-independent random number generation.
//
// All randomized components of the library (samplers, generators, hash
// seeding) draw from these generators rather than <random> engines so that a
// fixed master seed reproduces bit-identical experiments on every platform
// and standard library implementation.
#pragma once

#include <array>
#include <cstdint>

#include "util/check.hpp"

namespace rept {

/// \brief SplitMix64 step: advances `state` and returns a mixed 64-bit value.
///
/// Used for seeding (Vigna's recommended seeder for xoshiro) and as a cheap
/// stateless mixer.
inline uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Stateless 64-bit finalizer (SplitMix64's mixing function).
inline uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** generator (Blackman & Vigna). Fast, 256-bit state,
/// passes BigCrush; our workhorse PRNG.
class Rng {
 public:
  /// Seeds the four state words from SplitMix64(seed); a zero seed is valid.
  explicit Rng(uint64_t seed = 0) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Next(sm);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t Below(uint64_t bound) {
    REPT_DCHECK(bound > 0);
    // 128-bit multiply rejection sampling.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0 (safe as a divisor, used by
  /// GPS priority ranks).
  double NextDoublePositive() {
    return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Bernoulli(p) trial.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Raw 256-bit engine state, for checkpointing. LoadState(SaveState())
  /// resumes the exact output sequence, which is what makes restored
  /// reservoir samplers replay the uninterrupted run bit for bit.
  std::array<uint64_t, 4> SaveState() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  void LoadState(const std::array<uint64_t, 4>& state) {
    for (size_t i = 0; i < state.size(); ++i) state_[i] = state[i];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// \brief Derives independent child seeds from a master seed.
///
/// Child i's seed is Mix64(master ^ Mix64(i + salt)); the double mixing keeps
/// sequential instance ids from producing correlated generator states.
class SeedSequence {
 public:
  explicit SeedSequence(uint64_t master_seed, uint64_t salt = 0)
      : master_(master_seed), salt_(salt) {}

  uint64_t SeedFor(uint64_t index) const {
    return Mix64(master_ ^ Mix64(index + 0x51ed2701 + salt_ * 0x9e3779b9ULL));
  }

 private:
  uint64_t master_;
  uint64_t salt_;
};

}  // namespace rept
