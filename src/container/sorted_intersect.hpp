// Adaptive intersection of two sorted VertexId ranges — the innermost loop
// of every estimator (|N_u ∩ N_v| per arriving edge, paper §III-C).
//
// Three entry points:
//  * IntersectSorted(a, b, fn)        — safe for arbitrary spans; scalar
//    adaptive kernel (branch-reduced merge / gallop under >= kGallopSkew
//    skew).
//  * IntersectSortedPadded(a, b, fn)  — same callback contract, but routes
//    large inputs through the runtime-dispatched SIMD kernels
//    (simd/dispatch.hpp). Spans of size >= kGallopSkew must obey the Arena
//    overread contract (Arena::kOverreadPadIds readable past end()), which
//    every NeighborList view does — these are the SampledGraph hot paths.
//  * IntersectCountPadded(a, b)       — count-only |a ∩ b| for callers that
//    never enumerate matches (global-only sessions); lets the SIMD side use
//    movemask+popcount without materializing anything.
//
// All three return identical match sets in ascending order; the dispatched
// kernels are differentially fuzzed against the scalar path at every ISA
// level (tests/simd_intersect_fuzz_test.cpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"

namespace rept {

/// Degree ratio beyond which the gallop kernel beats the linear merge.
inline constexpr size_t kGallopSkew = 8;

namespace internal {

/// lower_bound over [first, last) that gallops from `first`: doubles the
/// probe offset until it overshoots x, then binary-searches the last
/// window. O(log(position)) instead of O(log(size)) — and the caller
/// advances `first` monotonically, so a full intersection is
/// O(|small| log |large|) worst case and near-linear when matches cluster.
inline const VertexId* GallopLowerBound(const VertexId* first,
                                        const VertexId* last, VertexId x) {
  const size_t n = static_cast<size_t>(last - first);
  size_t hi = 1;
  while (hi < n && first[hi] < x) hi <<= 1;
  const size_t lo = hi >> 1;  // first[lo] < x whenever hi > 1
  return std::lower_bound(first + lo, first + std::min(hi + 1, n), x);
}

/// Orders (a, b) by size and rejects the trivial cases every entry point
/// shares: empty inputs and disjoint ranges (a hub-vs-leaf arrival whose
/// lists don't overlap at all is common, and the precheck is two compares
/// against walking the merge loop). Returns false when the intersection is
/// provably empty.
inline bool PrepareIntersect(std::span<const VertexId>& a,
                             std::span<const VertexId>& b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return false;
  if (a.back() < b.front() || b.back() < a.front()) return false;
  return true;
}

/// Dispatched-kernel invocation counters. Only the SIMD-eligible branches
/// count (the tiny-input inline merges stay untouched — they are the
/// per-edge common case and the counter would be the whole branch cost);
/// the ratio against rept_ingest_edges_total says how often lists are long
/// enough to vectorize.
struct IntersectKernelMetrics {
  obs::Counter count_calls = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_simd_intersect_count_calls_total",
      "Dispatched intersect_count kernel invocations");
  obs::Counter write_calls = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_simd_intersect_write_calls_total",
      "Dispatched intersect_write kernel invocations");
};

inline const IntersectKernelMetrics& KernelMetrics() {
  static const IntersectKernelMetrics metrics;
  return metrics;
}

}  // namespace internal

/// Calls fn(w) for every w present in both sorted ranges, in ascending
/// order. Safe for arbitrary storage (scalar kernel only).
template <typename Fn>
inline void IntersectSorted(std::span<const VertexId> a,
                            std::span<const VertexId> b, Fn&& fn) {
  if (!internal::PrepareIntersect(a, b)) return;

  // Short-circuit on b's size first: sampled-density lists are almost
  // always < kGallopSkew long, skipping the multiply entirely.
  if (b.size() >= kGallopSkew && b.size() >= kGallopSkew * a.size()) {
    const VertexId* cursor = b.data();
    const VertexId* const b_end = b.data() + b.size();
    for (const VertexId x : a) {
      cursor = internal::GallopLowerBound(cursor, b_end, x);
      if (cursor == b_end) return;
      if (*cursor == x) {
        fn(x);
        ++cursor;
        if (cursor == b_end) return;
      }
    }
    return;
  }

  // Branch-reduced merge: the advance of each cursor is computed as a
  // comparison result instead of a taken/not-taken branch, so the only
  // unpredictable branch left is the (rare) match itself.
  const VertexId* pa = a.data();
  const VertexId* pb = b.data();
  const VertexId* const a_end = pa + a.size();
  const VertexId* const b_end = pb + b.size();
  while (pa != a_end && pb != b_end) {
    const VertexId x = *pa;
    const VertexId y = *pb;
    if (x == y) {
      fn(x);
      ++pa;
      ++pb;
    } else {
      pa += x < y;
      pb += y < x;
    }
  }
}

/// Count-only |a ∩ b| through the dispatched kernels. Spans of size >=
/// kGallopSkew must obey the Arena overread contract (NeighborList views
/// always do). Tiny inputs stay on an inline merge — below a vector there
/// is nothing to vectorize and the indirect call would dominate.
inline uint32_t IntersectCountPadded(std::span<const VertexId> a,
                                     std::span<const VertexId> b) {
  if (!internal::PrepareIntersect(a, b)) return 0;
  if (b.size() < kGallopSkew) {
    const VertexId* pa = a.data();
    const VertexId* pb = b.data();
    const VertexId* const a_end = pa + a.size();
    const VertexId* const b_end = pb + b.size();
    uint32_t count = 0;
    while (pa != a_end && pb != b_end) {
      const VertexId x = *pa;
      const VertexId y = *pb;
      count += x == y;
      pa += x <= y;
      pb += y <= x;
    }
    return count;
  }
  internal::KernelMetrics().count_calls.Increment();
  return simd::ActiveKernels().intersect_count(a.data(), a.size(), b.data(),
                                               b.size());
}

/// IntersectSorted through the dispatched kernels (same padding contract as
/// IntersectCountPadded). Matches are buffered per thread and replayed to
/// `fn` in ascending order — the write kernels return a packed match array,
/// which also keeps fn out of the vector loop.
template <typename Fn>
inline void IntersectSortedPadded(std::span<const VertexId> a,
                                  std::span<const VertexId> b, Fn&& fn) {
  if (!internal::PrepareIntersect(a, b)) return;
  if (b.size() < kGallopSkew) {
    const VertexId* pa = a.data();
    const VertexId* pb = b.data();
    const VertexId* const a_end = pa + a.size();
    const VertexId* const b_end = pb + b.size();
    while (pa != a_end && pb != b_end) {
      const VertexId x = *pa;
      const VertexId y = *pb;
      if (x == y) {
        fn(x);
        ++pa;
        ++pb;
      } else {
        pa += x < y;
        pb += y < x;
      }
    }
    return;
  }
  // The match set is at most |a| ids; steady state never reallocates.
  internal::KernelMetrics().write_calls.Increment();
  thread_local std::vector<VertexId> matches;
  if (matches.size() < a.size()) matches.resize(a.size());
  const uint32_t count = simd::ActiveKernels().intersect_write(
      a.data(), a.size(), b.data(), b.size(), matches.data());
  for (uint32_t i = 0; i < count; ++i) fn(matches[i]);
}

}  // namespace rept
