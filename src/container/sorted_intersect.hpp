// Adaptive intersection of two sorted VertexId ranges — the innermost loop
// of every estimator (|N_u ∩ N_v| per arriving edge, paper §III-C).
//
// Kernel selection: a branch-reduced linear merge when the degrees are
// balanced, galloping (exponential probe + binary search) from the smaller
// side when they are skewed by kGallopSkew or more. Sampled subgraphs are
// heavy-tailed (a few hubs, many degree-<=4 vertices), so the skewed case is
// common and the gallop turns O(|a| + |b|) into O(|a| log |b|).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "graph/types.hpp"

namespace rept {

/// Degree ratio beyond which the gallop kernel beats the linear merge.
inline constexpr size_t kGallopSkew = 8;

namespace internal {

/// lower_bound over [first, last) that gallops from `first`: doubles the
/// probe offset until it overshoots x, then binary-searches the last
/// window. O(log(position)) instead of O(log(size)) — and the caller
/// advances `first` monotonically, so a full intersection is
/// O(|small| log |large|) worst case and near-linear when matches cluster.
inline const VertexId* GallopLowerBound(const VertexId* first,
                                        const VertexId* last, VertexId x) {
  const size_t n = static_cast<size_t>(last - first);
  size_t hi = 1;
  while (hi < n && first[hi] < x) hi <<= 1;
  const size_t lo = hi >> 1;  // first[lo] < x whenever hi > 1
  return std::lower_bound(first + lo, first + std::min(hi + 1, n), x);
}

}  // namespace internal

/// Calls fn(w) for every w present in both sorted ranges, in ascending
/// order.
template <typename Fn>
inline void IntersectSorted(std::span<const VertexId> a,
                            std::span<const VertexId> b, Fn&& fn) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return;

  // Short-circuit on b's size first: sampled-density lists are almost
  // always < kGallopSkew long, skipping the multiply entirely.
  if (b.size() >= kGallopSkew && b.size() >= kGallopSkew * a.size()) {
    const VertexId* cursor = b.data();
    const VertexId* const b_end = b.data() + b.size();
    for (const VertexId x : a) {
      cursor = internal::GallopLowerBound(cursor, b_end, x);
      if (cursor == b_end) return;
      if (*cursor == x) {
        fn(x);
        ++cursor;
        if (cursor == b_end) return;
      }
    }
    return;
  }

  // Branch-reduced merge: the advance of each cursor is computed as a
  // comparison result instead of a taken/not-taken branch, so the only
  // unpredictable branch left is the (rare) match itself.
  const VertexId* pa = a.data();
  const VertexId* pb = b.data();
  const VertexId* const a_end = pa + a.size();
  const VertexId* const b_end = pb + b.size();
  while (pa != a_end && pb != b_end) {
    const VertexId x = *pa;
    const VertexId y = *pb;
    if (x == y) {
      fn(x);
      ++pa;
      ++pb;
    } else {
      pa += x < y;
      pb += y < x;
    }
  }
}

}  // namespace rept
