#include "container/arena.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace rept {

namespace {

/// Block-grain only: per-array allocations ride the bump cursor and are
/// far too hot to count individually. Bytes here are capacity owned, not
/// live payload (free-listed arrays stay resident by design).
struct ArenaMetrics {
  obs::Counter blocks = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_arena_blocks_total", "Arena block allocations (all arenas)");
  obs::Counter block_bytes = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_arena_block_bytes_total",
      "Bytes of arena block storage ever allocated (all arenas)");
};

const ArenaMetrics& Metrics() {
  static const ArenaMetrics metrics;
  return metrics;
}

}  // namespace

VertexId* Arena::AllocateIds(uint32_t capacity) {
  const uint32_t size_class = ClassOf(capacity);
  if (FreeNode* node = free_lists_[size_class]) {
    free_lists_[size_class] = node->next;
    return reinterpret_cast<VertexId*>(node);
  }
  const size_t bytes = size_t{capacity} * sizeof(VertexId);
  // The bump check reserves the overread pad but the cursor only advances
  // by the payload: the pad is either the next allocation's storage or the
  // block's reserved tail, so every array stays readable kOverreadPadIds
  // past its end for the lifetime of the block.
  constexpr size_t kPadBytes = size_t{kOverreadPadIds} * sizeof(VertexId);
  static_assert(sizeof(FreeNode) <= kMinArrayCapacity * sizeof(VertexId));
  if (cursor_ + bytes + kPadBytes > block_capacity_) {
    const size_t block_bytes = std::max(next_block_bytes_, bytes + kPadBytes);
    blocks_.push_back(std::make_unique<std::byte[]>(block_bytes));
    Metrics().blocks.Increment();
    Metrics().block_bytes.Increment(block_bytes);
    total_block_bytes_ += block_bytes;
    block_capacity_ = block_bytes;
    cursor_ = 0;
    next_block_bytes_ = std::min(next_block_bytes_ * 2, kMaxBlockBytes);
  }
  // Sizes are multiples of 32 bytes in a fresh block, so alignment for
  // VertexId and the in-place FreeNode holds without padding.
  VertexId* ptr = reinterpret_cast<VertexId*>(blocks_.back().get() + cursor_);
  cursor_ += bytes;
  return ptr;
}

void Arena::FreeIds(VertexId* ptr, uint32_t capacity) {
  REPT_DCHECK(ptr != nullptr);
  const uint32_t size_class = ClassOf(capacity);
  FreeNode* node = reinterpret_cast<FreeNode*>(ptr);
  node->next = free_lists_[size_class];
  free_lists_[size_class] = node;
}

void Arena::Reset() {
  blocks_.clear();
  cursor_ = 0;
  block_capacity_ = 0;
  next_block_bytes_ = kMinBlockBytes;
  total_block_bytes_ = 0;
  std::fill(std::begin(free_lists_), std::end(free_lists_), nullptr);
}

}  // namespace rept
