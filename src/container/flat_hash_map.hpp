// Open-addressing hash map specialized for the ingest hot path: unsigned
// integer keys (VertexId / EdgeKey), linear probing over a power-of-two slot
// array, multiplicative (Fibonacci) hashing taking the high bits, max load
// factor 3/4, and backward-shift deletion (no tombstones, so probe chains
// never rot under reservoir churn).
//
// Layout: ONE slot array of {state, key, value} records — a probe lands on
// a single cache line that already holds the value (32 bytes per slot for
// the adjacency map's NeighborList values, 16 for vertex tallies), where
// std::unordered_map costs a bucket-array line plus a heap-node line, and a
// heap allocation per entry. Values must be plainly relocatable (moved with
// assignment during rehash and erase); NeighborList, doubles, and integer
// counters all qualify.
//
// The Probe/InsertAtProbe API exposes the slot a lookup landed on so the
// CountArrival -> InsertSampled fast path can reuse it instead of re-hashing
// (see SampledGraph::InsertWithProbe). A Probe is validated against the
// map's generation counter, which bumps on every rehash and clear.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <type_traits>
#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace rept {

namespace internal {

/// Shared across every FlatHashMap instantiation: the probe-length
/// distribution is the map's health signal (long tails mean clustering —
/// check the hash or the load factor before blaming the kernels), and the
/// rehash count exposes reserve() gaps in the ingest path.
struct FlatMapMetrics {
  obs::Histogram probe_length;
  obs::Counter rehashes;

  FlatMapMetrics()
      : probe_length([] {
          static const double bounds[] = {0, 1, 2, 4, 8, 16, 32, 64};
          return obs::MetricsRegistry::Global().RegisterHistogram(
              "rept_flatmap_insert_probe_length",
              "Slots walked past home on each FlatHashMap insert", bounds);
        }()),
        rehashes(obs::MetricsRegistry::Global().RegisterCounter(
            "rept_flatmap_rehashes_total",
            "FlatHashMap slot-array growth events")) {}
};

inline const FlatMapMetrics& MapMetrics() {
  static const FlatMapMetrics metrics;
  return metrics;
}

}  // namespace internal

/// \brief Flat open-addressing map from an unsigned integer key to a
/// relocatable value. Not thread-safe (single-writer per instance, like
/// every hot-path structure in this repo).
template <typename K, typename V>
class FlatHashMap {
  static_assert(std::is_unsigned_v<K> && (sizeof(K) == 4 || sizeof(K) == 8),
                "FlatHashMap is specialized for u32/u64 keys");

 public:
  using key_type = K;
  using mapped_type = V;

  FlatHashMap() = default;
  FlatHashMap(FlatHashMap&& other) noexcept { *this = std::move(other); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    slots_ = std::move(other.slots_);
    capacity_ = std::exchange(other.capacity_, 0);
    size_ = std::exchange(other.size_, 0);
    shift_ = std::exchange(other.shift_, 64);
    generation_ = other.generation_ + 1;
    return *this;
  }
  FlatHashMap(const FlatHashMap&) = delete;
  FlatHashMap& operator=(const FlatHashMap&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  /// Drops every entry but keeps the slot array (steady-state reuse).
  void clear() {
    for (size_t i = 0; i < capacity_; ++i) slots_[i].state = 0;
    size_ = 0;
    ++generation_;
  }

  /// Ensures `n` entries fit without rehashing.
  void reserve(size_t n) {
    const size_t needed = CapacityFor(n);
    if (needed > capacity_) Rehash(needed);
  }

  V* Find(K key) {
    if (capacity_ == 0) return nullptr;
    const Probe probe = FindProbe(key);
    return probe.found ? &slots_[probe.slot].value : nullptr;
  }
  const V* Find(K key) const {
    return const_cast<FlatHashMap*>(this)->Find(key);
  }

  bool contains(K key) const { return Find(key) != nullptr; }
  size_t count(K key) const { return contains(key) ? 1 : 0; }

  /// Checked lookup (the std::unordered_map::at of the tests); the key must
  /// be present.
  const V& at(K key) const {
    const V* value = Find(key);
    REPT_CHECK(value != nullptr);
    return *value;
  }

  /// Finds or value-initializes, exactly like std::unordered_map's
  /// operator[] — `map[k] += x` on a fresh key accumulates onto V{}.
  V& operator[](K key) { return *TryEmplace(key).first; }

  /// Finds or inserts a value-initialized entry; second is true when the
  /// entry was inserted by this call.
  std::pair<V*, bool> TryEmplace(K key) {
    ReserveForInsert();
    const Probe probe = FindProbe(key);
    if (probe.found) return {&slots_[probe.slot].value, false};
    return {&OccupySlot(probe.slot, key), true};
  }

  /// Inserts (key, value) if absent; no-op when present (codec input is
  /// pre-validated to be duplicate-free).
  void emplace(K key, V value) {
    auto [slot_value, inserted] = TryEmplace(key);
    if (inserted) *slot_value = std::move(value);
  }

  /// Removes `key` via backward-shift deletion; returns false if absent.
  /// Entries displaced by the shift are moved with plain assignment.
  bool erase(K key) {
    if (capacity_ == 0) return false;
    Probe probe = FindProbe(key);
    if (!probe.found) return false;
    const size_t mask = capacity_ - 1;
    size_t hole = probe.slot;
    size_t next = hole;
    for (;;) {
      next = (next + 1) & mask;
      if (!slots_[next].state) break;
      const size_t ideal = IndexFor(slots_[next].key);
      // Move next into the hole unless its ideal slot lies inside the
      // cyclic range (hole, next] — in that case the entry is already as
      // close to home as the probe invariant allows.
      const bool ideal_in_range = hole < next
                                      ? (ideal > hole && ideal <= next)
                                      : (ideal > hole || ideal <= next);
      if (!ideal_in_range) {
        slots_[hole].key = slots_[next].key;
        slots_[hole].value = std::move(slots_[next].value);
        hole = next;
      }
    }
    slots_[hole].state = 0;
    --size_;
    return true;
  }

  // -------------------------------------------------------------------
  // Probe API (the CountArrival fast path).

  /// A lookup's landing slot. Valid while generation() is unchanged and no
  /// erase ran in between.
  struct Probe {
    size_t slot = 0;
    bool found = false;
  };

  /// Hints the cache that `key`'s home slot is about to be probed. The
  /// arrival path prefetches both endpoints before either probe, so the two
  /// (usually L2/L3-missing) slot loads overlap instead of serializing.
  void Prefetch(K key) const {
#if defined(__GNUC__) || defined(__clang__)
    if (capacity_ != 0) __builtin_prefetch(&slots_[IndexFor(key)]);
#else
    (void)key;
#endif
  }

  /// The slot `key` occupies (found) or would occupy (not found). Requires
  /// capacity() > 0 for a meaningful slot; on an empty map returns
  /// {0, false} which InsertAtProbe handles by growing first.
  Probe FindProbe(K key) const {
    if (capacity_ == 0) return Probe{0, false};
    const size_t mask = capacity_ - 1;
    size_t slot = IndexFor(key);
    for (;;) {
      const Slot& s = slots_[slot];
      if (!s.state) return Probe{slot, false};
      if (s.key == key) return Probe{slot, true};
      slot = (slot + 1) & mask;
    }
  }

  /// Bumps on every rehash, clear, and move — any event that invalidates
  /// outstanding Probes.
  uint64_t generation() const { return generation_; }

  K slot_key(size_t slot) const { return slots_[slot].key; }
  V& slot_value(size_t slot) { return slots_[slot].value; }
  const V& slot_value(size_t slot) const { return slots_[slot].value; }

  /// Inserts `key` at a not-found Probe obtained at the current generation,
  /// skipping the re-probe. Falls back to a fresh probe when the insert
  /// forces a rehash. Returns the value-initialized slot value.
  V& InsertAtProbe(Probe probe, K key) {
    REPT_DCHECK(!probe.found);
    if (NeedsGrowth()) {
      Rehash(capacity_ == 0 ? kMinCapacity : capacity_ * 2);
      probe = FindProbe(key);
      REPT_DCHECK(!probe.found);
    }
    return OccupySlot(probe.slot, key);
  }

  // -------------------------------------------------------------------
  // Iteration (occupied slots, unspecified order — canonicalize before
  // persisting, exactly like the unordered_map contract this replaces).

  template <bool Const>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::pair<K, V>;
    using difference_type = std::ptrdiff_t;
    using MapPtr = std::conditional_t<Const, const FlatHashMap*, FlatHashMap*>;
    using VRef = std::conditional_t<Const, const V&, V&>;
    using reference = std::pair<const K&, VRef>;
    using pointer = void;

    Iter() = default;
    Iter(MapPtr map, size_t slot) : map_(map), slot_(slot) { SkipEmpty(); }

    reference operator*() const {
      return reference(map_->slots_[slot_].key, map_->slots_[slot_].value);
    }
    Iter& operator++() {
      ++slot_;
      SkipEmpty();
      return *this;
    }
    Iter operator++(int) {
      Iter copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.slot_ == b.slot_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) { return !(a == b); }

   private:
    void SkipEmpty() {
      while (slot_ < map_->capacity_ && !map_->slots_[slot_].state) ++slot_;
    }
    MapPtr map_ = nullptr;
    size_t slot_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, capacity_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, capacity_); }

  /// Slot-array bytes. Arena-backed values report their spill separately
  /// (SampledGraph::MemoryBytes adds the arena footprint).
  size_t MemoryBytes() const { return capacity_ * sizeof(Slot); }

 private:
  // state first so the compiler packs it into the key's alignment padding:
  // 16 bytes per slot for (u32 -> double), 32 for the adjacency map's
  // (u32 -> NeighborList) — whole slots per cache line, probe and value on
  // the same line.
  struct Slot {
    uint8_t state = 0;  // 0 empty, 1 occupied
    K key;
    V value;
  };

  static constexpr size_t kMinCapacity = 16;

  // Fibonacci multiplicative hash; the high bits feed the slot index, which
  // linear probing needs (low multiplicative bits cluster).
  size_t IndexFor(K key) const {
    const uint64_t h =
        static_cast<uint64_t>(key) * uint64_t{0x9E3779B97F4A7C15};
    return static_cast<size_t>(h >> shift_);
  }

  static size_t CapacityFor(size_t n) {
    size_t capacity = kMinCapacity;
    // Max load factor 3/4.
    while (capacity - capacity / 4 < n) capacity *= 2;
    return capacity;
  }

  bool NeedsGrowth() const { return size_ + 1 > capacity_ - capacity_ / 4; }

  void ReserveForInsert() {
    if (NeedsGrowth()) {
      Rehash(capacity_ == 0 ? kMinCapacity : capacity_ * 2);
    }
  }

  V& OccupySlot(size_t slot, K key) {
    REPT_DCHECK(!slots_[slot].state);
    internal::MapMetrics().probe_length.Observe(
        static_cast<double>((slot - IndexFor(key)) & (capacity_ - 1)));
    Slot& s = slots_[slot];
    s.state = 1;
    s.key = key;
    s.value = V{};
    ++size_;
    return s.value;
  }

  void Rehash(size_t new_capacity) {
    REPT_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    internal::MapMetrics().rehashes.Increment();
    std::unique_ptr<Slot[]> old_slots = std::move(slots_);
    const size_t old_capacity = capacity_;

    slots_ = std::make_unique<Slot[]>(new_capacity);  // value-init: empty
    capacity_ = new_capacity;
    shift_ = 64;
    for (size_t c = new_capacity; c > 1; c >>= 1) --shift_;
    ++generation_;

    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < old_capacity; ++i) {
      if (!old_slots[i].state) continue;
      size_t slot = IndexFor(old_slots[i].key);
      while (slots_[slot].state) slot = (slot + 1) & mask;
      Slot& s = slots_[slot];
      s.state = 1;
      s.key = old_slots[i].key;
      s.value = std::move(old_slots[i].value);
    }
  }

  std::unique_ptr<Slot[]> slots_;
  size_t capacity_ = 0;
  size_t size_ = 0;
  uint32_t shift_ = 64;  // 64 - log2(capacity): slot = hash >> shift_
  uint64_t generation_ = 0;
};

/// \brief Flat set over the same machinery (the streaming-text dedup set).
template <typename K>
class FlatHashSet {
 public:
  /// Returns true when `key` was newly inserted (the
  /// `unordered_set::insert(...).second` idiom of the dedup loops).
  bool insert(K key) { return map_.TryEmplace(key).second; }
  bool contains(K key) const { return map_.contains(key); }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(size_t n) { map_.reserve(n); }
  size_t MemoryBytes() const { return map_.MemoryBytes(); }

 private:
  struct Unit {};
  FlatHashMap<K, Unit> map_;
};

}  // namespace rept
