// Bump allocator backing the spilled (capacity > inline) neighbor-list
// storage of a SampledGraph. One Arena per sampled graph — and therefore,
// through SemiTriangleCounter, one per logical processor — so allocation is
// single-threaded by the repo's single-writer ingest contract and needs no
// synchronization.
//
// Lifetime rules (see docs/hot_path.md):
//  * AllocateIds hands out arrays whose storage lives until Reset(); there
//    is no per-array destructor. NeighborList values are therefore plain
//    24-byte records that a FlatHashMap may relocate freely — the pointers
//    they hold stay valid across rehashes and map moves.
//  * FreeIds recycles an array through a power-of-two free list (the next
//    pointer is stored in the freed storage itself), so reservoir churn
//    (TRIEST / GPS evictions) reuses blocks instead of growing the arena.
//  * Reset() drops every block and free list at once: O(#blocks), used by
//    SampledGraph::Clear and checkpoint restore.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace rept {

/// \brief Chunked bump allocator for VertexId arrays with per-size-class
/// recycling. Allocation sizes must be powers of two, at least
/// kMinArrayCapacity ids.
class Arena {
 public:
  /// Smallest array the arena hands out (must hold a free-list pointer).
  static constexpr uint32_t kMinArrayCapacity = 8;

  /// Every array AllocateIds returns has at least this many ids readable
  /// (same block, unspecified values) past its end: AllocateIds reserves a
  /// tail pad when it opens or bumps a block, and recycled arrays inherit
  /// the guarantee from their original allocation. The SIMD gallop kernels
  /// (simd/intersect_kernels.*) rely on this to load a full vector spanning
  /// a spilled NeighborList's end(); inline lists never need it because the
  /// dense kernels only load full in-bounds vectors.
  static constexpr uint32_t kOverreadPadIds = 8;

  Arena() = default;
  // Manual moves: the moved-from arena must forget its bump cursor and
  // free lists (they reference storage the destination now owns), so it is
  // left valid-and-empty rather than silently corrupting the destination
  // on reuse.
  Arena(Arena&& other) noexcept { *this = std::move(other); }
  Arena& operator=(Arena&& other) noexcept {
    blocks_ = std::move(other.blocks_);
    cursor_ = std::exchange(other.cursor_, 0);
    block_capacity_ = std::exchange(other.block_capacity_, 0);
    next_block_bytes_ = std::exchange(other.next_block_bytes_, kMinBlockBytes);
    total_block_bytes_ = std::exchange(other.total_block_bytes_, 0);
    for (size_t i = 0; i < kNumClasses; ++i) {
      free_lists_[i] = std::exchange(other.free_lists_[i], nullptr);
    }
    return *this;
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns an uninitialized array of `capacity` ids. `capacity` must be a
  /// power of two >= kMinArrayCapacity.
  VertexId* AllocateIds(uint32_t capacity);

  /// Recycles an AllocateIds array for reuse at the same capacity. The
  /// storage itself is only reclaimed by Reset().
  void FreeIds(VertexId* ptr, uint32_t capacity);

  /// Drops every block and free list. Invalidates all outstanding arrays.
  void Reset();

  /// Total bytes of block storage currently owned (the arena footprint used
  /// by MemoryBytes accounting; free-listed arrays are included since they
  /// are still resident).
  size_t MemoryBytes() const { return total_block_bytes_; }

 private:
  // Blocks grow geometrically from 4 KiB to a 256 KiB ceiling; oversize
  // requests get a dedicated block.
  static constexpr size_t kMinBlockBytes = size_t{1} << 12;
  static constexpr size_t kMaxBlockBytes = size_t{1} << 18;
  static constexpr size_t kNumClasses = 32;  // free list per log2(capacity)

  struct FreeNode {
    FreeNode* next;
  };

  static uint32_t ClassOf(uint32_t capacity) {
    REPT_DCHECK(capacity >= kMinArrayCapacity);
    REPT_DCHECK((capacity & (capacity - 1)) == 0);
    uint32_t log2 = 0;
    while ((uint32_t{1} << log2) < capacity) ++log2;
    return log2;
  }

  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  size_t cursor_ = 0;          // bump offset into blocks_.back()
  size_t block_capacity_ = 0;  // bytes in blocks_.back()
  size_t next_block_bytes_ = kMinBlockBytes;
  size_t total_block_bytes_ = 0;
  FreeNode* free_lists_[kNumClasses] = {};
};

}  // namespace rept
