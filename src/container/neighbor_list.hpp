// Sorted neighbor list with inline small-buffer storage, spilling into an
// Arena. At REPT's sampling rates (p = 1/m, m >= 10) most sampled-subgraph
// vertices have degree <= 4, so the common case lives entirely inside the
// 24-byte record — zero allocations, zero pointer chases — and intersection
// reads one or two cache lines per endpoint.
//
// A NeighborList is a plain relocatable record: it never owns storage (the
// Arena does) and has no destructor, so FlatHashMap may move it during
// rehashes and backward-shift deletions with plain assignment. Every
// mutating call that can grow takes the Arena explicitly; Release() hands
// spilled storage back to the arena's free list (map-erase path).
//
// SIMD overread contract: view() is always a legal input to the Padded
// intersection entry points (sorted_intersect.hpp). Lists of size >=
// kGallopSkew are necessarily spilled (kInlineCapacity < kGallopSkew), and
// every arena array carries Arena::kOverreadPadIds of readable tail — the
// only storage the gallop kernels may overread. Inline lists are only ever
// the *smaller* side of a vector-width block compare, which loads full
// in-bounds vectors, so the 4-id inline buffer needs no padding.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>

#include "container/arena.hpp"
#include "graph/types.hpp"
#include "util/check.hpp"

namespace rept {

/// \brief Sorted VertexId list: inline up to kInlineCapacity, arena-backed
/// beyond, geometric growth.
class NeighborList {
 public:
  static constexpr uint32_t kInlineCapacity = 4;

  NeighborList() : size_(0), capacity_(kInlineCapacity) {}

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const VertexId* data() const {
    return capacity_ == kInlineCapacity ? inline_ : heap_;
  }
  VertexId* data() { return capacity_ == kInlineCapacity ? inline_ : heap_; }

  std::span<const VertexId> view() const {
    return std::span<const VertexId>(data(), size_);
  }

  bool SortedContains(VertexId x) const {
    const VertexId* begin = data();
    return std::binary_search(begin, begin + size_, x);
  }

  /// Inserts x keeping ascending order; returns false if already present.
  bool SortedInsert(VertexId x, Arena& arena) {
    VertexId* begin = data();
    VertexId* pos = std::lower_bound(begin, begin + size_, x);
    if (pos != begin + size_ && *pos == x) return false;
    if (size_ == capacity_) {
      const size_t offset = static_cast<size_t>(pos - begin);
      Grow(arena);
      begin = data();
      pos = begin + offset;
    }
    std::memmove(pos + 1, pos,
                 static_cast<size_t>(begin + size_ - pos) * sizeof(VertexId));
    *pos = x;
    ++size_;
    return true;
  }

  /// Removes x; returns false if absent. Capacity is retained (spilled
  /// storage goes back to the arena only via Release).
  bool SortedErase(VertexId x) {
    VertexId* begin = data();
    VertexId* pos = std::lower_bound(begin, begin + size_, x);
    if (pos == begin + size_ || *pos != x) return false;
    std::memmove(pos, pos + 1,
                 static_cast<size_t>(begin + size_ - pos - 1) *
                     sizeof(VertexId));
    --size_;
    return true;
  }

  /// Returns spilled storage to the arena free list and resets to an empty
  /// inline list. Call before dropping the owning map entry.
  void Release(Arena& arena) {
    if (capacity_ != kInlineCapacity) {
      arena.FreeIds(heap_, capacity_);
      capacity_ = kInlineCapacity;
    }
    size_ = 0;
  }

  /// Bytes of arena storage this list holds (0 while inline).
  size_t SpilledBytes() const {
    return capacity_ == kInlineCapacity
               ? 0
               : size_t{capacity_} * sizeof(VertexId);
  }

 private:
  void Grow(Arena& arena) {
    const uint32_t new_capacity =
        std::max(capacity_ * 2, Arena::kMinArrayCapacity);
    VertexId* storage = arena.AllocateIds(new_capacity);
    std::memcpy(storage, data(), size_t{size_} * sizeof(VertexId));
    if (capacity_ != kInlineCapacity) arena.FreeIds(heap_, capacity_);
    heap_ = storage;
    capacity_ = new_capacity;
  }

  uint32_t size_;
  uint32_t capacity_;  // == kInlineCapacity iff the list is inline
  union {
    VertexId inline_[kInlineCapacity];
    VertexId* heap_;
  };
};

static_assert(sizeof(NeighborList) == 24,
              "NeighborList is the FlatHashMap value of the adjacency map; "
              "keep it one-third of a cache line");

}  // namespace rept
