#include "persist/state_codec.hpp"

#include <algorithm>
#include <vector>

namespace rept {

void SaveSampledGraph(CheckpointWriter& writer, const SampledGraph& graph) {
  std::vector<uint64_t> keys;
  keys.reserve(static_cast<size_t>(graph.num_edges()));
  graph.ForEachEdge(
      [&keys](VertexId u, VertexId v) { keys.push_back(EdgeKey(u, v)); });
  std::sort(keys.begin(), keys.end());
  writer.AppendU64(keys.size());
  for (const uint64_t key : keys) writer.AppendU64(key);
}

Status LoadSampledGraph(CheckpointReader& reader, SampledGraph& graph) {
  graph.Clear();
  const uint64_t count = reader.ReadCount(sizeof(uint64_t));
  uint64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t key = reader.ReadU64();
    if (!reader.status().ok()) return reader.status();
    if (i > 0 && key <= previous) {
      return Status::Corruption("sampled edge keys not strictly ascending");
    }
    previous = key;
    const VertexId u = static_cast<VertexId>(key >> 32);
    const VertexId v = static_cast<VertexId>(key & 0xffffffffu);
    if (!graph.Insert(u, v)) {
      return Status::Corruption("invalid sampled edge (self loop)");
    }
  }
  return reader.status();
}

void SaveRng(CheckpointWriter& writer, const Rng& rng) {
  const std::array<uint64_t, 4> state = rng.SaveState();
  for (const uint64_t word : state) writer.AppendU64(word);
}

Status LoadRng(CheckpointReader& reader, Rng& rng) {
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) word = reader.ReadU64();
  if (!reader.status().ok()) return reader.status();
  rng.LoadState(state);
  return Status::OK();
}

}  // namespace rept
