// File-level checkpoint operations: durable save (atomic tmp + rename),
// restore with fingerprint verification, and structural inspection for the
// rept_ckpt_dump debugging tool.
//
// The resume contract (tested in checkpoint_roundtrip_test): take a
// checkpoint at any batch boundary, restore it into a session created with
// the same (estimator config, seed) — the thread pool and dispatch mode may
// differ — ingest the remainder of the stream, and every tally is
// bit-identical to an uninterrupted run. Truncated, bit-flipped,
// version-mismatched, or config-mismatched files fail with
// Status::Corruption (or IOError for environmental failures), never UB or a
// crash.
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "util/status.hpp"

namespace rept {

class StreamingEstimator;
class CheckpointWriter;
class CheckpointReader;

/// Appends extra framed sections after the session's own sections, before
/// the end marker. Use BeginSection with an id outside the estimator range
/// (e.g. kSectionServerSession) and EndSection; the writer handles CRCs.
using CheckpointExtraWriter = std::function<Status(CheckpointWriter&)>;

/// Consumes one non-estimator trailing section (the payload is already
/// loaded and CRC-verified; read it with the typed getters). Called once
/// per extra section, in file order, with its id.
using CheckpointExtraReader =
    std::function<Status(uint32_t section_id, CheckpointReader&)>;

/// Serializes the session as one complete checkpoint (header, sections, end
/// marker) into `out`. The in-memory building block of SaveCheckpoint —
/// also the way to ship session state over a socket for migration. A
/// non-null `extra` contributes additional sections (e.g. the rept_server
/// sidecar) between the session's sections and the end marker; they do not
/// affect the fingerprint.
Status WriteCheckpointStream(const StreamingEstimator& session,
                             std::ostream& out,
                             const CheckpointExtraWriter& extra = nullptr);

/// Restores `session` from a WriteCheckpointStream payload, verifying the
/// fingerprint, every CRC, and the end marker. The stream is left
/// positioned just past the end marker, and data behind it is legal —
/// several checkpoints can ride one stream back to back. Set
/// `expect_stream_end` to additionally reject trailing bytes (the
/// file-level invariant; LoadCheckpoint does). A non-null `extra` receives
/// every trailing non-estimator section; without one, any such section is
/// Corruption (plain-library readers refuse sidecar-bearing files rather
/// than silently dropping state).
Status ReadCheckpointStream(StreamingEstimator& session, std::istream& in,
                            bool expect_stream_end = false,
                            const CheckpointExtraReader& extra = nullptr);

/// Writes the session's state to `path` atomically: the bytes go to
/// `path + ".tmp"` and are renamed over `path` only after a fully framed,
/// CRC'd checkpoint was flushed — a crash mid-save never clobbers the
/// previous checkpoint. Writer-side call: serialize with Ingest() like any
/// other mutation (concurrent Snapshot() readers are fine).
Status SaveCheckpoint(const StreamingEstimator& session,
                      const std::string& path,
                      const CheckpointExtraWriter& extra = nullptr);

/// Restores `session` from `path`. The session must have been created with
/// the same estimator configuration and seed that wrote the checkpoint
/// (verified via the header fingerprint). On any error the session's state
/// is unspecified but valid — recreate it before further use.
Status LoadCheckpoint(StreamingEstimator& session, const std::string& path,
                      const CheckpointExtraReader& extra = nullptr);

/// \brief Structural summary of a checkpoint file (rept_ckpt_dump).
struct CheckpointInfo {
  uint32_t format_version = 0;
  uint64_t fingerprint = 0;
  uint64_t file_bytes = 0;

  /// "REPT", "ENSEMBLE", or "" when no meta section was parseable.
  std::string kind;
  /// Ensemble display name, when present.
  std::string label;
  uint64_t edges_ingested = 0;
  uint64_t num_vertices = 0;
  uint32_t num_instances = 0;

  struct SectionInfo {
    uint32_t id = 0;
    uint64_t payload_bytes = 0;
    /// Instance ordinal for per-instance sections, -1 otherwise.
    int64_t instance = -1;
    /// Stored-edge count declared by a per-instance section.
    uint64_t stored_edges = 0;
  };
  std::vector<SectionInfo> sections;

  /// OK iff the whole file parsed and every CRC verified. On failure the
  /// fields above describe the readable prefix.
  Status error;
};

/// Walks the file section by section, CRC-verifying as it goes. Never
/// fails hard on corrupt input: the returned info carries the error plus
/// whatever prefix was readable.
CheckpointInfo InspectCheckpoint(const std::string& path);

}  // namespace rept
