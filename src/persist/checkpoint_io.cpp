#include "persist/checkpoint_io.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/check.hpp"

namespace rept {

namespace {

std::array<uint32_t, 256> BuildCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void EncodeU32(uint8_t out[4], uint32_t value) {
  out[0] = static_cast<uint8_t>(value);
  out[1] = static_cast<uint8_t>(value >> 8);
  out[2] = static_cast<uint8_t>(value >> 16);
  out[3] = static_cast<uint8_t>(value >> 24);
}

void EncodeU64(uint8_t out[8], uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

uint32_t DecodeU32(const uint8_t in[4]) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

uint64_t DecodeU64(const uint8_t in[8]) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

}  // namespace

uint32_t Crc32(uint32_t crc, const void* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = BuildCrc32Table();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------------------
// CheckpointWriter

void CheckpointWriter::WriteRaw(const void* data, size_t len) {
  if (!status_.ok()) return;
  file_crc_ = Crc32(file_crc_, data, len);
  if (!out_.write(static_cast<const char*>(data),
                  static_cast<std::streamsize>(len))) {
    status_ = Status::IOError("checkpoint stream write failed");
  }
}

Status CheckpointWriter::WriteHeader(uint64_t fingerprint) {
  REPT_CHECK(!header_written_);
  header_written_ = true;
  WriteRaw(kCheckpointMagic, sizeof(kCheckpointMagic));
  uint8_t version[4];
  EncodeU32(version, kCheckpointFormatVersion);
  WriteRaw(version, sizeof(version));
  uint8_t fp[8];
  EncodeU64(fp, fingerprint);
  WriteRaw(fp, sizeof(fp));
  return status_;
}

void CheckpointWriter::BeginSection(uint32_t id) {
  REPT_CHECK(header_written_ && !in_section_ && !finished_);
  REPT_CHECK(id != kSectionEnd);
  in_section_ = true;
  section_id_ = id;
  payload_.clear();
}

void CheckpointWriter::AppendU32(uint32_t value) {
  uint8_t buf[4];
  EncodeU32(buf, value);
  payload_.insert(payload_.end(), buf, buf + sizeof(buf));
}

void CheckpointWriter::AppendU64(uint64_t value) {
  uint8_t buf[8];
  EncodeU64(buf, value);
  payload_.insert(payload_.end(), buf, buf + sizeof(buf));
}

void CheckpointWriter::AppendDouble(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(bits);
}

void CheckpointWriter::AppendBytes(const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  payload_.insert(payload_.end(), bytes, bytes + len);
}

Status CheckpointWriter::EndSection() {
  REPT_CHECK(in_section_);
  in_section_ = false;
  uint8_t id[4];
  EncodeU32(id, section_id_);
  WriteRaw(id, sizeof(id));
  uint8_t len[8];
  EncodeU64(len, payload_.size());
  WriteRaw(len, sizeof(len));
  WriteRaw(payload_.data(), payload_.size());
  uint8_t crc[4];
  EncodeU32(crc, Crc32(0, payload_.data(), payload_.size()));
  WriteRaw(crc, sizeof(crc));
  payload_.clear();
  return status_;
}

Status CheckpointWriter::Finish() {
  REPT_CHECK(header_written_ && !in_section_ && !finished_);
  finished_ = true;
  uint8_t id[4];
  EncodeU32(id, kSectionEnd);
  WriteRaw(id, sizeof(id));
  uint8_t len[8];
  EncodeU64(len, 4);
  WriteRaw(len, sizeof(len));
  // The file CRC covers every byte written so far, including the end
  // marker's id and length — frame damage anywhere fails verification.
  uint8_t crc_payload[4];
  EncodeU32(crc_payload, file_crc_);
  WriteRaw(crc_payload, sizeof(crc_payload));
  uint8_t crc[4];
  EncodeU32(crc, Crc32(0, crc_payload, sizeof(crc_payload)));
  WriteRaw(crc, sizeof(crc));
  if (status_.ok()) out_.flush();
  if (status_.ok() && !out_) {
    status_ = Status::IOError("checkpoint stream flush failed");
  }
  return status_;
}

// ---------------------------------------------------------------------------
// CheckpointReader

CheckpointReader::CheckpointReader(std::istream& in, bool expect_stream_end)
    : in_(in), expect_stream_end_(expect_stream_end) {
  // Probe the stream length so corrupt section lengths are rejected before
  // any allocation. Non-seekable streams (pipes, sockets) fall back to
  // slab-wise payload reads: the allocation grows only with bytes that
  // actually arrive, so a corrupt length still fails with Corruption at
  // the first missing byte instead of one absurd resize.
  const std::istream::pos_type here = in_.tellg();
  if (here != std::istream::pos_type(-1)) {
    in_.seekg(0, std::ios::end);
    const std::istream::pos_type end = in_.tellg();
    in_.seekg(here);
    if (end != std::istream::pos_type(-1) && in_) {
      bytes_remaining_ = static_cast<uint64_t>(end - here);
      size_known_ = true;
    }
  }
  in_.clear();
}

Status CheckpointReader::Fail(Status status) {
  if (status_.ok()) status_ = std::move(status);
  return status_;
}

bool CheckpointReader::ReadRaw(void* dst, size_t len) {
  if (!status_.ok()) return false;
  if (size_known_ && len > bytes_remaining_) {
    Fail(Status::Corruption("checkpoint truncated"));
    return false;
  }
  if (!in_.read(static_cast<char*>(dst),
                static_cast<std::streamsize>(len))) {
    Fail(in_.bad() ? Status::IOError("checkpoint stream read failed")
                   : Status::Corruption("checkpoint truncated"));
    return false;
  }
  if (size_known_) bytes_remaining_ -= len;
  file_crc_ = Crc32(file_crc_, dst, len);
  return true;
}

Result<CheckpointReader::Header> CheckpointReader::ReadHeader() {
  REPT_CHECK(!header_read_);
  header_read_ = true;
  char magic[sizeof(kCheckpointMagic)];
  if (!ReadRaw(magic, sizeof(magic))) return status_;
  if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Fail(Status::Corruption("not a REPT checkpoint (bad magic)"));
  }
  uint8_t version[4];
  uint8_t fingerprint[8];
  if (!ReadRaw(version, sizeof(version)) ||
      !ReadRaw(fingerprint, sizeof(fingerprint))) {
    return status_;
  }
  Header header;
  header.version = DecodeU32(version);
  header.fingerprint = DecodeU64(fingerprint);
  if (header.version != kCheckpointFormatVersion) {
    return Fail(Status::Corruption(
        "unsupported checkpoint format version " +
        std::to_string(header.version) + " (expected " +
        std::to_string(kCheckpointFormatVersion) + ")"));
  }
  return header;
}

Result<uint32_t> CheckpointReader::NextSection() {
  REPT_CHECK(header_read_);
  if (!status_.ok()) return status_;
  if (end_seen_) {
    return Fail(Status::Corruption("read past checkpoint end marker"));
  }
  // The file CRC is compared against the bytes *before* the end marker's
  // payload, so snapshot it before consuming the frame.
  uint8_t id_buf[4];
  uint8_t len_buf[8];
  if (!ReadRaw(id_buf, sizeof(id_buf))) {
    // A clean EOF here means the end marker is missing.
    return status_;
  }
  if (!ReadRaw(len_buf, sizeof(len_buf))) return status_;
  const uint32_t id = DecodeU32(id_buf);
  const uint64_t len = DecodeU64(len_buf);
  const uint32_t expected_file_crc = file_crc_;
  if (size_known_ && len > bytes_remaining_) {
    return Fail(Status::Corruption("checkpoint section length exceeds file"));
  }
  if (id == kSectionEnd) {
    if (len != 4) {
      return Fail(Status::Corruption("malformed checkpoint end marker"));
    }
    uint8_t crc_payload[4];
    uint8_t crc_buf[4];
    if (!ReadRaw(crc_payload, sizeof(crc_payload)) ||
        !ReadRaw(crc_buf, sizeof(crc_buf))) {
      return status_;
    }
    if (DecodeU32(crc_buf) != Crc32(0, crc_payload, sizeof(crc_payload))) {
      return Fail(Status::Corruption("checkpoint end marker CRC mismatch"));
    }
    if (DecodeU32(crc_payload) != expected_file_crc) {
      return Fail(Status::Corruption("checkpoint file CRC mismatch"));
    }
    // Only a checkpoint *file* owns the whole stream; transport streams
    // may legitimately carry more data behind the end marker.
    if (expect_stream_end_ && size_known_ && bytes_remaining_ != 0) {
      return Fail(
          Status::Corruption("trailing bytes after checkpoint end marker"));
    }
    end_seen_ = true;
    payload_.clear();
    cursor_ = 0;
    return uint32_t{kSectionEnd};
  }
  // Slab-wise read: grow the buffer only as payload bytes actually arrive,
  // so on non-seekable streams (where the length prefix could not be
  // validated above) a corrupt length fails at the first short read
  // instead of driving one giant allocation.
  constexpr uint64_t kPayloadSlabBytes = uint64_t{64} << 20;
  payload_.clear();
  for (uint64_t remaining = len; remaining > 0;) {
    const size_t slab =
        static_cast<size_t>(std::min(remaining, kPayloadSlabBytes));
    const size_t old_size = payload_.size();
    payload_.resize(old_size + slab);
    if (!ReadRaw(payload_.data() + old_size, slab)) return status_;
    remaining -= slab;
  }
  uint8_t crc_buf[4];
  if (!ReadRaw(crc_buf, sizeof(crc_buf))) return status_;
  if (DecodeU32(crc_buf) != Crc32(0, payload_.data(), payload_.size())) {
    return Fail(Status::Corruption("checkpoint section CRC mismatch (id " +
                                   std::to_string(id) + ")"));
  }
  cursor_ = 0;
  return id;
}

uint8_t CheckpointReader::ReadU8() {
  uint8_t value = 0;
  ReadBytes(&value, sizeof(value));
  return value;
}

uint32_t CheckpointReader::ReadU32() {
  uint8_t buf[4] = {};
  ReadBytes(buf, sizeof(buf));
  return DecodeU32(buf);
}

uint64_t CheckpointReader::ReadU64() {
  uint8_t buf[8] = {};
  ReadBytes(buf, sizeof(buf));
  return DecodeU64(buf);
}

double CheckpointReader::ReadDouble() {
  const uint64_t bits = ReadU64();
  double value;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Status CheckpointReader::ReadBytes(void* dst, size_t len) {
  if (!status_.ok()) {
    std::memset(dst, 0, len);
    return status_;
  }
  if (len > SectionRemaining()) {
    std::memset(dst, 0, len);
    return Fail(Status::Corruption("checkpoint section field overruns"));
  }
  std::memcpy(dst, payload_.data() + cursor_, len);
  cursor_ += len;
  return Status::OK();
}

uint64_t CheckpointReader::ReadCount(size_t min_bytes_per_element) {
  REPT_CHECK(min_bytes_per_element > 0);
  const uint64_t count = ReadU64();
  if (!status_.ok()) return 0;
  if (count > SectionRemaining() / min_bytes_per_element) {
    Fail(Status::Corruption("checkpoint element count exceeds section size"));
    return 0;
  }
  return count;
}

Status CheckpointReader::ExpectSectionEnd() {
  if (!status_.ok()) return status_;
  if (SectionRemaining() != 0) {
    return Fail(
        Status::Corruption("checkpoint section has unconsumed bytes"));
  }
  return Status::OK();
}

}  // namespace rept
