// Shared field encoders for estimator state: the sampled-edge sets, per-node
// tally maps, and RNG engine state that every counter serializes. Encoding
// is canonical (key-ascending order) so identical state always produces
// identical checkpoint bytes — regardless of the in-memory map type or its
// iteration order — and decoding validates structure (strictly ascending
// keys, no self loops, no duplicates) so corrupt input fails with
// Status::Corruption instead of corrupting a live session.
//
// The map codecs are generic over the container: both std::unordered_map
// (TRIEST / GPS cold state) and FlatHashMap (the hot-path tally maps) work,
// via the shared key_type/mapped_type + begin/end + reserve/emplace surface.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/sampled_graph.hpp"
#include "graph/types.hpp"
#include "persist/checkpoint_io.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace rept {

/// Appends the graph's edge set as a count plus EdgeKey-ascending u64 keys.
void SaveSampledGraph(CheckpointWriter& writer, const SampledGraph& graph);

/// Clears `graph` and rebuilds it from the serialized edge set. Insertion
/// rebuilds the sorted adjacency deterministically, so the restored
/// structure answers every query exactly like the saved one.
Status LoadSampledGraph(CheckpointReader& reader, SampledGraph& graph);

namespace internal {

// Scalar dispatch for the map codec below (u32 / u64 / double fields).
inline void AppendScalar(CheckpointWriter& writer, uint32_t value) {
  writer.AppendU32(value);
}
inline void AppendScalar(CheckpointWriter& writer, uint64_t value) {
  writer.AppendU64(value);
}
inline void AppendScalar(CheckpointWriter& writer, double value) {
  writer.AppendDouble(value);
}
template <typename T>
T ReadScalar(CheckpointReader& reader) {
  if constexpr (std::is_same_v<T, uint32_t>) return reader.ReadU32();
  if constexpr (std::is_same_v<T, uint64_t>) return reader.ReadU64();
  if constexpr (std::is_same_v<T, double>) return reader.ReadDouble();
}

}  // namespace internal

/// Appends a hash map as a count plus key-ascending (key, value) pairs —
/// the one canonical map encoding every counter state uses.
template <typename Map>
void SaveSortedMap(CheckpointWriter& writer, const Map& map) {
  using K = typename Map::key_type;
  using V = typename Map::mapped_type;
  std::vector<std::pair<K, V>> items(map.begin(), map.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  writer.AppendU64(items.size());
  for (const auto& [key, value] : items) {
    internal::AppendScalar(writer, key);
    internal::AppendScalar(writer, value);
  }
}

/// Decodes a SaveSortedMap payload, validating the element count against
/// the bytes present and the strictly-ascending key order (which also
/// rejects duplicates). `what` names the field in the Corruption message.
template <typename Map>
Status LoadSortedMap(CheckpointReader& reader, Map& map, const char* what) {
  using K = typename Map::key_type;
  using V = typename Map::mapped_type;
  map.clear();
  const uint64_t count = reader.ReadCount(sizeof(K) + sizeof(V));
  map.reserve(static_cast<size_t>(count));
  K previous{};
  for (uint64_t i = 0; i < count; ++i) {
    const K key = internal::ReadScalar<K>(reader);
    const V value = internal::ReadScalar<V>(reader);
    if (!reader.status().ok()) return reader.status();
    if (i > 0 && key <= previous) {
      return Status::Corruption(std::string(what) +
                                " not strictly ascending");
    }
    previous = key;
    map.emplace(key, value);
  }
  return reader.status();
}

/// Appends a vertex-id -> double tally map as a count plus key-ascending
/// (u32 key, f64 bits) pairs.
template <typename Map>
void SaveVertexTallies(CheckpointWriter& writer, const Map& tallies) {
  static_assert(std::is_same_v<typename Map::key_type, VertexId> &&
                std::is_same_v<typename Map::mapped_type, double>);
  SaveSortedMap(writer, tallies);
}

template <typename Map>
Status LoadVertexTallies(CheckpointReader& reader, Map& tallies) {
  return LoadSortedMap(reader, tallies, "vertex tallies");
}

/// Appends an EdgeKey -> u32 counter map (Algorithm 2's per-edge
/// semi-triangle registers) as key-ascending (u64, u32) pairs.
template <typename Map>
void SaveEdgeCounters(CheckpointWriter& writer, const Map& counters) {
  static_assert(std::is_same_v<typename Map::key_type, uint64_t> &&
                std::is_same_v<typename Map::mapped_type, uint32_t>);
  SaveSortedMap(writer, counters);
}

template <typename Map>
Status LoadEdgeCounters(CheckpointReader& reader, Map& counters) {
  return LoadSortedMap(reader, counters, "edge counters");
}

/// Appends the engine's raw 256-bit state; restore is bit-exact, so the
/// resumed generator emits the same sequence the interrupted one would have.
void SaveRng(CheckpointWriter& writer, const Rng& rng);

Status LoadRng(CheckpointReader& reader, Rng& rng);

}  // namespace rept
