// Periodic-checkpoint policy consumed by the IngestAll pump: save the
// session to `path` every N ingested edges and/or every N batches. Kept as a
// standalone leaf header so graph/edge_source.hpp can embed it in
// IngestOptions without pulling in the persist implementation.
#pragma once

#include <cstdint>
#include <string>

namespace rept {

/// \brief When and where IngestAll persists the session it is pumping.
///
/// Checkpoints are only ever taken at batch boundaries (the granularity at
/// which session state is defined), written atomically (tmp + rename), and a
/// save failure aborts the ingest with the failing Status rather than
/// continuing with durability silently lost.
struct CheckpointPolicy {
  /// Target file. Empty disables checkpointing.
  std::string path;
  /// Save once at least this many edges were ingested since the last save
  /// (0 = no edge-based trigger).
  uint64_t every_edges = 0;
  /// Save once this many batches completed since the last save (0 = no
  /// batch-based trigger). Both triggers may be set; either fires a save.
  uint64_t every_batches = 0;

  bool enabled() const {
    return !path.empty() && (every_edges > 0 || every_batches > 0);
  }
};

}  // namespace rept
