// Framed, versioned, CRC-checked binary serialization for durable session
// state — the encoding layer of the checkpoint/restore subsystem.
//
// File layout (all integers little-endian):
//
//   magic        8 bytes   "REPTCKP1"
//   version      u32       kCheckpointFormatVersion
//   fingerprint  u64       StreamingEstimator::StateFingerprint() of the
//                          session that wrote the file (type + semantic
//                          config + seed); restore refuses a mismatch.
//   section*               { id u32 (!= 0), payload_len u64,
//                            payload bytes, crc32 u32 (of payload) }
//   end marker             { id u32 == 0, payload_len u64 == 4,
//                            payload = u32 file CRC, crc32 u32 }
//
// The per-section CRC detects payload bit flips; the end-marker file CRC —
// computed over every preceding byte including section ids and length
// prefixes — detects frame-level damage and truncation. Every failure mode
// (short file, flipped byte, bad magic, unknown version, absurd length
// prefix) surfaces as Status::Corruption or Status::IOError, never as UB or
// a crash: readers validate length prefixes against the file size before
// allocating and latch the first error, and element counts are validated
// against the bytes actually present (ReadCount) before any decode loop
// trusts them.
//
// docs/checkpoint_format.md is the written spec of this layout; bump
// kCheckpointFormatVersion whenever the bytes change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

#include "util/random.hpp"
#include "util/status.hpp"

namespace rept {

/// First bytes of every checkpoint file.
inline constexpr char kCheckpointMagic[8] = {'R', 'E', 'P', 'T',
                                             'C', 'K', 'P', '1'};

/// Bump when the on-disk layout changes (see docs/checkpoint_format.md).
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// Section ids. 0 is reserved for the end marker.
enum CheckpointSectionId : uint32_t {
  kSectionEnd = 0,
  kSectionReptMeta = 1,
  kSectionReptInstance = 2,
  kSectionEnsembleMeta = 3,
  kSectionEnsembleInstance = 4,
  /// rept_server sidecar (session spec + last-applied ingest seq) appended
  /// after the estimator sections. Optional and excluded from the state
  /// fingerprint: the estimator payload stays bit-identical with or without
  /// it, so the fingerprint gate passes either way. Readers opt in via the
  /// extra-section callback (ReadCheckpointStream rejects unknown trailing
  /// sections otherwise).
  kSectionServerSession = 5,
};

/// Incremental CRC-32 (IEEE polynomial, zlib convention: pass the previous
/// return value to continue, 0 to start).
uint32_t Crc32(uint32_t crc, const void* data, size_t len);

/// \brief Order-sensitive 64-bit hash accumulator for config fingerprints.
///
/// A fingerprint binds a checkpoint to the (estimator type, semantic
/// configuration, seed) that produced it, so a file can never be restored
/// into a session that would interpret the state differently.
class FingerprintBuilder {
 public:
  FingerprintBuilder& Mix(uint64_t value) {
    hash_ = Mix64(hash_ ^ value);
    return *this;
  }

  FingerprintBuilder& MixString(std::string_view s) {
    // FNV-1a over the bytes, then folded through the chain: the length mix
    // keeps "ab","c" distinct from "a","bc" across consecutive calls.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char ch : s) {
      h = (h ^ static_cast<uint8_t>(ch)) * 0x100000001b3ULL;
    }
    return Mix(h).Mix(s.size());
  }

  uint64_t Finish() const { return hash_; }

 private:
  uint64_t hash_ = 0x9ae16a3b2f90404fULL;
};

/// \brief Streaming checkpoint encoder.
///
/// Usage: WriteHeader, then for each section BeginSection / Append* /
/// EndSection, then Finish. Payload bytes are buffered per section (the
/// length prefix must precede them); stream failures latch an IOError that
/// EndSection / Finish / status() report.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::ostream& out) : out_(out) {}

  /// Writes magic + format version + session fingerprint.
  Status WriteHeader(uint64_t fingerprint);

  void BeginSection(uint32_t id);
  void AppendU8(uint8_t value) { payload_.push_back(value); }
  void AppendU32(uint32_t value);
  void AppendU64(uint64_t value);
  /// Doubles are stored as their IEEE-754 bit pattern (bit-exact restore).
  void AppendDouble(double value);
  void AppendBytes(const void* data, size_t len);
  /// Frames the buffered payload: id, length, payload, payload CRC.
  Status EndSection();

  /// Writes the end marker carrying the whole-file CRC.
  Status Finish();

  const Status& status() const { return status_; }

 private:
  void WriteRaw(const void* data, size_t len);

  std::ostream& out_;
  std::vector<uint8_t> payload_;
  uint32_t section_id_ = kSectionEnd;
  bool in_section_ = false;
  bool header_written_ = false;
  bool finished_ = false;
  uint32_t file_crc_ = 0;
  Status status_;
};

/// \brief Streaming checkpoint decoder with latched-error reads.
///
/// Usage: ReadHeader, then NextSection (which loads and CRC-verifies one
/// section's payload) followed by typed reads; a section id of kSectionEnd
/// means the verified end of the checkpoint. Reads past the section end
/// latch Status::Corruption and return zeros, so decoders may read a whole
/// section and check status() once — but any count that sizes a loop or an
/// allocation must come from ReadCount, which bounds it by the bytes
/// actually present.
class CheckpointReader {
 public:
  struct Header {
    uint32_t version = 0;
    uint64_t fingerprint = 0;
  };

  /// `expect_stream_end` makes the end marker additionally assert that the
  /// stream holds nothing after it — right for a checkpoint *file*
  /// (LoadCheckpoint sets it), wrong for transport streams that may carry
  /// further data (more checkpoints, protocol bytes) behind the payload.
  explicit CheckpointReader(std::istream& in,
                            bool expect_stream_end = false);

  /// Validates magic + version; returns the header. Corruption on mismatch.
  Result<Header> ReadHeader();

  /// Loads the next section (payload CRC verified). Returns its id;
  /// kSectionEnd after verifying the file CRC and the absence of trailing
  /// bytes.
  Result<uint32_t> NextSection();

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  double ReadDouble();
  Status ReadBytes(void* dst, size_t len);

  /// Reads a u64 element count and validates count * min_bytes_per_element
  /// against the bytes remaining in the section — call this instead of
  /// ReadU64 for any value that sizes an allocation or a decode loop.
  uint64_t ReadCount(size_t min_bytes_per_element);

  size_t SectionRemaining() const { return payload_.size() - cursor_; }

  /// Corruption unless the section was consumed exactly.
  Status ExpectSectionEnd();

  /// OK until the first framing/IO/overrun error.
  const Status& status() const { return status_; }

 private:
  bool ReadRaw(void* dst, size_t len);
  Status Fail(Status status);

  std::istream& in_;
  /// Bytes left in the stream (size probed via seek at construction); caps
  /// section length prefixes so corrupt lengths fail before allocating.
  /// Non-seekable streams fall back to slab-wise payload reads, which
  /// bound the allocation by the bytes actually present instead.
  uint64_t bytes_remaining_ = 0;
  bool size_known_ = false;
  bool expect_stream_end_ = false;
  std::vector<uint8_t> payload_;
  size_t cursor_ = 0;
  uint32_t file_crc_ = 0;
  bool header_read_ = false;
  bool end_seen_ = false;
  Status status_;
};

}  // namespace rept
