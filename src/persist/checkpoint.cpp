#include "persist/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "core/streaming_estimator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint_io.hpp"
#include "util/fault_injection.hpp"
#include "util/timer.hpp"

namespace rept {

namespace {

struct CheckpointMetrics {
  obs::Counter saves = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_checkpoint_saves_total", "Checkpoint streams written");
  obs::Counter loads = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_checkpoint_loads_total", "Checkpoint streams restored");
  obs::Counter save_bytes = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_checkpoint_save_bytes_total", "Bytes written by checkpoint saves");
  obs::Counter load_bytes = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_checkpoint_load_bytes_total", "Bytes consumed by restores");
  obs::Counter save_micros = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_checkpoint_save_micros_total",
      "Wall time spent encoding checkpoint streams, microseconds");
  obs::Counter load_micros = obs::MetricsRegistry::Global().RegisterCounter(
      "rept_checkpoint_load_micros_total",
      "Wall time spent restoring checkpoint streams, microseconds");
};

const CheckpointMetrics& Metrics() {
  static const CheckpointMetrics metrics;
  return metrics;
}

uint64_t Micros(const WallTimer& timer) {
  return static_cast<uint64_t>(timer.Seconds() * 1e6);
}

// Flushes a path's data (and, for the parent directory, the rename itself)
// to stable storage. Without this, rename-over can commit the *name* of a
// checkpoint whose *bytes* are still only in the page cache — a power loss
// would then replace the previous good checkpoint with a truncated one,
// which is exactly the failure the atomic save exists to prevent. No-op on
// platforms without fsync.
Status SyncPath(const std::string& path) {
#if !defined(_WIN32)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open for fsync: " + path);
  int rc = ::fsync(fd);
  if (REPT_FAULT("checkpoint.fsync")) rc = -1;
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed: " + path);
#else
  (void)path;
#endif
  return Status::OK();
}

std::string ParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status WriteCheckpointStream(const StreamingEstimator& session,
                             std::ostream& out,
                             const CheckpointExtraWriter& extra) {
  obs::TraceSpan span("checkpoint_save");
  const WallTimer timer;
  const std::ostream::pos_type start = out.tellp();
  CheckpointWriter writer(out);
  REPT_RETURN_NOT_OK(writer.WriteHeader(session.StateFingerprint()));
  REPT_RETURN_NOT_OK(session.Checkpoint(writer));
  if (extra) REPT_RETURN_NOT_OK(extra(writer));
  const Status status = writer.Finish();
  if (status.ok()) {
    Metrics().saves.Increment();
    const std::ostream::pos_type end = out.tellp();
    if (start != std::ostream::pos_type(-1) &&
        end != std::ostream::pos_type(-1)) {
      Metrics().save_bytes.Increment(static_cast<uint64_t>(end - start));
    }
    Metrics().save_micros.Increment(Micros(timer));
  }
  return status;
}

Status ReadCheckpointStream(StreamingEstimator& session, std::istream& in,
                            bool expect_stream_end,
                            const CheckpointExtraReader& extra) {
  obs::TraceSpan span("checkpoint_load");
  const WallTimer timer;
  const std::istream::pos_type start = in.tellg();
  CheckpointReader reader(in, expect_stream_end);
  const Result<CheckpointReader::Header> header = reader.ReadHeader();
  REPT_RETURN_NOT_OK(header.status());
  if (header->fingerprint != session.StateFingerprint()) {
    return Status::Corruption(
        "checkpoint fingerprint does not match session \"" + session.Name() +
        "\" (different estimator config or seed wrote it)");
  }
  REPT_RETURN_NOT_OK(session.Restore(reader));
  // The session consumed its own sections; what follows is either extra
  // (sidecar) sections — consumed by the callback when one is supplied —
  // or the verified end marker (file CRC + no trailing bytes).
  for (;;) {
    const Result<uint32_t> id = reader.NextSection();
    REPT_RETURN_NOT_OK(id.status());
    if (*id == kSectionEnd) break;
    if (!extra) {
      return Status::Corruption("unexpected trailing section " +
                                std::to_string(*id));
    }
    REPT_RETURN_NOT_OK(extra(*id, reader));
    REPT_RETURN_NOT_OK(reader.status());
  }
  Metrics().loads.Increment();
  const std::istream::pos_type pos = in.tellg();
  if (start != std::istream::pos_type(-1) &&
      pos != std::istream::pos_type(-1)) {
    Metrics().load_bytes.Increment(static_cast<uint64_t>(pos - start));
  }
  Metrics().load_micros.Increment(Micros(timer));
  return Status::OK();
}

Status SaveCheckpoint(const StreamingEstimator& session,
                      const std::string& path,
                      const CheckpointExtraWriter& extra) {
  const std::string tmp_path = path + ".tmp";
  if (REPT_FAULT("checkpoint.open")) {
    return Status::IOError("cannot open for writing: " + tmp_path);
  }
  Status status;
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open for writing: " + tmp_path);
    }
    status = WriteCheckpointStream(session, out, extra);
    if (status.ok() && REPT_FAULT("checkpoint.write")) {
      status = Status::IOError("write failed (injected ENOSPC): " + tmp_path);
    }
    if (status.ok()) {
      out.close();
      if (!out) status = Status::IOError("close failed: " + tmp_path);
    }
  }
  if (status.ok()) status = SyncPath(tmp_path);
  if (status.ok() && REPT_FAULT("checkpoint.crash_before_rename")) {
    // Model a crash after the tmp file was flushed but before the rename
    // committed it: fail WITHOUT the cleanup below, leaving the .tmp orphan
    // for the startup reaper to find.
    return Status::IOError("crashed before rename (injected): " + tmp_path);
  }
  if (!status.ok()) {
    std::remove(tmp_path.c_str());
    return status;
  }
  if (REPT_FAULT("checkpoint.rename") ||
      std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("rename failed: " + tmp_path + " -> " + path);
  }
  // Persist the rename itself: fsync the directory entry.
  return SyncPath(ParentDirectory(path));
}

Status LoadCheckpoint(StreamingEstimator& session, const std::string& path,
                      const CheckpointExtraReader& extra) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  const Status status =
      ReadCheckpointStream(session, in, /*expect_stream_end=*/true, extra);
  if (!status.ok() && status.code() == StatusCode::kCorruption) {
    return Status::Corruption(path + ": " + status.message());
  }
  return status;
}

CheckpointInfo InspectCheckpoint(const std::string& path) {
  CheckpointInfo info;
  std::error_code ec;
  const uintmax_t bytes = std::filesystem::file_size(path, ec);
  if (!ec) info.file_bytes = static_cast<uint64_t>(bytes);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    info.error = Status::IOError("cannot open: " + path);
    return info;
  }
  CheckpointReader reader(in, /*expect_stream_end=*/true);
  const Result<CheckpointReader::Header> header = reader.ReadHeader();
  if (!header.ok()) {
    info.error = header.status();
    return info;
  }
  info.format_version = header->version;
  info.fingerprint = header->fingerprint;

  for (;;) {
    const Result<uint32_t> id = reader.NextSection();
    if (!id.ok()) {
      info.error = id.status();
      return info;
    }
    if (*id == kSectionEnd) break;
    CheckpointInfo::SectionInfo section;
    section.id = *id;
    section.payload_bytes = reader.SectionRemaining();
    switch (*id) {
      case kSectionReptMeta: {
        info.kind = "REPT";
        info.edges_ingested = reader.ReadU64();
        info.num_vertices = reader.ReadU64();
        reader.ReadU32();  // m
        reader.ReadU32();  // c
        reader.ReadU8();   // track_local
        reader.ReadU8();   // track_pairs
        reader.ReadU8();   // strict_pairs
        info.num_instances = reader.ReadU32();
        break;
      }
      case kSectionEnsembleMeta: {
        info.kind = "ENSEMBLE";
        info.edges_ingested = reader.ReadU64();
        info.num_vertices = reader.ReadU64();
        reader.ReadU64();  // edge budget
        info.num_instances = reader.ReadU32();
        const uint64_t name_len = reader.ReadCount(1);
        std::vector<char> name(static_cast<size_t>(name_len));
        if (name_len > 0) reader.ReadBytes(name.data(), name.size());
        if (reader.status().ok()) info.label.assign(name.begin(), name.end());
        break;
      }
      case kSectionReptInstance:
      case kSectionEnsembleInstance: {
        section.instance = reader.ReadU32();
        section.stored_edges = reader.ReadU64();
        break;
      }
      default:
        break;  // Unknown section: size is still reported.
    }
    if (!reader.status().ok()) {
      info.error = reader.status();
      return info;
    }
    info.sections.push_back(section);
  }
  info.error = Status::OK();
  return info;
}

}  // namespace rept
