#include "core/semi_triangle_counter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rept {
namespace {

SemiTriangleCounter::Options PairOptions(bool strict) {
  SemiTriangleCounter::Options opts;
  opts.track_pairs = true;
  opts.strict_pairs = strict;
  return opts;
}

TEST(SemiTriangleCounterTest, CountsCompletionsAgainstStoredEdges) {
  SemiTriangleCounter counter;
  // Store wedge 0-1, 0-2; arriving (1,2) completes one semi-triangle.
  counter.CountArrival(0, 1);
  counter.InsertSampled(0, 1);
  counter.CountArrival(0, 2);
  counter.InsertSampled(0, 2);
  EXPECT_EQ(counter.CountArrival(1, 2), 1u);
  EXPECT_DOUBLE_EQ(counter.global(), 1.0);
  // Per-node tallies: u, v, and shared neighbor all get +1.
  EXPECT_DOUBLE_EQ(counter.local().at(0), 1.0);
  EXPECT_DOUBLE_EQ(counter.local().at(1), 1.0);
  EXPECT_DOUBLE_EQ(counter.local().at(2), 1.0);
}

TEST(SemiTriangleCounterTest, LastEdgeNeedNotBeStored) {
  // The defining property of semi-triangles: only the first two edges must
  // be sampled.
  SemiTriangleCounter counter;
  counter.CountArrival(0, 1);
  counter.InsertSampled(0, 1);
  counter.CountArrival(0, 2);
  counter.InsertSampled(0, 2);
  counter.CountArrival(1, 2);  // NOT inserted
  EXPECT_DOUBLE_EQ(counter.global(), 1.0);
  EXPECT_EQ(counter.stored_edges(), 2u);
}

TEST(SemiTriangleCounterTest, UnsampledEarlyEdgesDoNotCount) {
  SemiTriangleCounter counter;
  counter.CountArrival(0, 1);  // not inserted
  counter.CountArrival(0, 2);
  counter.InsertSampled(0, 2);
  EXPECT_EQ(counter.CountArrival(1, 2), 0u);
  EXPECT_DOUBLE_EQ(counter.global(), 0.0);
}

TEST(SemiTriangleCounterTest, MultipleCompletionsAtOnce) {
  SemiTriangleCounter counter;
  for (const auto& [u, v] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {0, 2}, {3, 1}, {3, 2}}) {
    counter.CountArrival(u, v);
    counter.InsertSampled(u, v);
  }
  // (1,2) closes triangles through 0 and through 3.
  EXPECT_EQ(counter.CountArrival(1, 2), 2u);
  EXPECT_DOUBLE_EQ(counter.global(), 2.0);
  EXPECT_DOUBLE_EQ(counter.local().at(1), 2.0);
  EXPECT_DOUBLE_EQ(counter.local().at(2), 2.0);
  EXPECT_DOUBLE_EQ(counter.local().at(0), 1.0);
  EXPECT_DOUBLE_EQ(counter.local().at(3), 1.0);
}

TEST(SemiTriangleCounterTest, ResetClearsEverything) {
  SemiTriangleCounter counter(PairOptions(false));
  counter.CountArrival(0, 1);
  counter.InsertSampled(0, 1);
  counter.CountArrival(0, 2);
  counter.InsertSampled(0, 2);
  counter.CountArrival(1, 2);
  counter.Reset();
  EXPECT_DOUBLE_EQ(counter.global(), 0.0);
  EXPECT_DOUBLE_EQ(counter.eta(), 0.0);
  EXPECT_TRUE(counter.local().empty());
  EXPECT_EQ(counter.stored_edges(), 0u);
}

TEST(SemiTriangleCounterTest, PairCountingAcrossSharedEarlyEdge) {
  // All edges stored; stream (0,1) (0,2) (1,2) (0,3) (1,3):
  // triangles {0,1,2} then {0,1,3} share early edge (0,1) -> eta = 1.
  SemiTriangleCounter counter(PairOptions(/*strict=*/true));
  for (const auto& [u, v] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}}) {
    counter.CountArrival(u, v);
    counter.InsertSampled(u, v);
  }
  EXPECT_DOUBLE_EQ(counter.global(), 2.0);
  EXPECT_DOUBLE_EQ(counter.eta(), 1.0);
  // Pair is incident to 0 and 1 only.
  EXPECT_DOUBLE_EQ(counter.eta_local().at(0), 1.0);
  EXPECT_DOUBLE_EQ(counter.eta_local().at(1), 1.0);
  EXPECT_EQ(counter.eta_local().count(2), 0u);
  EXPECT_EQ(counter.eta_local().count(3), 0u);
}

TEST(SemiTriangleCounterTest, StrictModeExcludesLastEdgePairs) {
  // Shared edge (0,1) arrives LAST: with strict pair counting no pair forms.
  SemiTriangleCounter strict(PairOptions(/*strict=*/true));
  for (const auto& [u, v] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 2}, {1, 2}, {0, 3}, {1, 3}, {0, 1}}) {
    strict.CountArrival(u, v);
    strict.InsertSampled(u, v);
  }
  EXPECT_DOUBLE_EQ(strict.global(), 2.0);
  EXPECT_DOUBLE_EQ(strict.eta(), 0.0);
}

TEST(SemiTriangleCounterTest, PaperModeCountsInitializedPairs) {
  // Same stream as above. Paper-faithful initialization registers both
  // triangles on edge (0,1) when it is inserted (tau_(0,1) <- 2); a later
  // triangle through (0,1) would pair with them. Extend the stream so a new
  // triangle {0,1,4} forms with (0,1) early:
  //   (0,2)(1,2)(0,3)(1,3)(0,1)(0,4)(1,4)
  // Paper mode: {0,1,4} pairs with {0,1,2} and {0,1,3} through (0,1) even
  // though (0,1) was the last edge of those two -> eta = 2.
  // Strict mode: those pairs are excluded -> eta = 0.
  const std::vector<std::pair<VertexId, VertexId>> stream = {
      {0, 2}, {1, 2}, {0, 3}, {1, 3}, {0, 1}, {0, 4}, {1, 4}};
  SemiTriangleCounter paper(PairOptions(/*strict=*/false));
  SemiTriangleCounter strict(PairOptions(/*strict=*/true));
  for (const auto& [u, v] : stream) {
    paper.CountArrival(u, v);
    paper.InsertSampled(u, v);
    strict.CountArrival(u, v);
    strict.InsertSampled(u, v);
  }
  EXPECT_DOUBLE_EQ(paper.global(), 3.0);
  EXPECT_DOUBLE_EQ(strict.global(), 3.0);
  EXPECT_DOUBLE_EQ(paper.eta(), 2.0);
  EXPECT_DOUBLE_EQ(strict.eta(), 0.0);
}

TEST(SemiTriangleCounterTest, EraseSampledRemovesEdgeAndPairCounter) {
  SemiTriangleCounter counter(PairOptions(false));
  counter.CountArrival(0, 1);
  counter.InsertSampled(0, 1);
  counter.EraseSampled(0, 1);
  EXPECT_EQ(counter.stored_edges(), 0u);
  counter.CountArrival(0, 2);
  counter.InsertSampled(0, 2);
  // (1,2) completes nothing: (0,1) was erased.
  EXPECT_EQ(counter.CountArrival(1, 2), 0u);
}

TEST(SemiTriangleCounterTest, AccumulateLocalAppliesWeight) {
  SemiTriangleCounter counter;
  counter.CountArrival(0, 1);
  counter.InsertSampled(0, 1);
  counter.CountArrival(0, 2);
  counter.InsertSampled(0, 2);
  counter.CountArrival(1, 2);
  std::vector<double> acc(3, 0.0);
  counter.AccumulateLocal(acc, 10.0);
  EXPECT_DOUBLE_EQ(acc[0], 10.0);
  EXPECT_DOUBLE_EQ(acc[1], 10.0);
  EXPECT_DOUBLE_EQ(acc[2], 10.0);
}

TEST(SemiTriangleCounterTest, LocalTrackingOptional) {
  SemiTriangleCounter::Options opts;
  opts.track_local = false;
  SemiTriangleCounter counter(opts);
  counter.CountArrival(0, 1);
  counter.InsertSampled(0, 1);
  counter.CountArrival(0, 2);
  counter.InsertSampled(0, 2);
  counter.CountArrival(1, 2);
  EXPECT_DOUBLE_EQ(counter.global(), 1.0);
  EXPECT_TRUE(counter.local().empty());
}

}  // namespace
}  // namespace rept
