// Statistical property tests: every estimator system must be (nearly)
// unbiased. For each configuration we average R independent runs on a fixed
// stream and require |mean - tau| within a CLT band derived from the
// empirical spread (and, where available, the paper's closed-form variance).
// Seeds are fixed, so these tests are deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "baselines/baseline_systems.hpp"
#include "core/variance.hpp"
#include "exact/exact_counts.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/permutation.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

struct UnbiasednessCase {
  std::string method;  // "rept", "mascot", "triest", "gps"
  uint32_t m;
  uint32_t c;
  uint32_t runs;
  // Bias tolerance in sigma-of-the-mean units (looser for data-dependent
  // weighting / weighted sampling schemes).
  double sigmas;
};

std::unique_ptr<EstimatorSystem> MakeSystem(const UnbiasednessCase& tc) {
  if (tc.method == "rept") return MakeRept(tc.m, tc.c, /*track_local=*/false);
  if (tc.method == "mascot") {
    return MakeParallelMascot(tc.m, tc.c, /*track_local=*/false);
  }
  if (tc.method == "triest") {
    return MakeParallelTriest(tc.m, tc.c, /*track_local=*/false);
  }
  return MakeParallelGps(tc.m, tc.c, /*track_local=*/false);
}

class UnbiasednessTest : public ::testing::TestWithParam<UnbiasednessCase> {};

TEST_P(UnbiasednessTest, MeanEstimateMatchesTruth) {
  const UnbiasednessCase tc = GetParam();
  EdgeStream s = gen::ErdosRenyi({.num_vertices = 60, .num_edges = 500}, 21);
  ShuffleStream(s, 22);
  const ExactCounts exact = ComputeExactCounts(s);
  ASSERT_GT(exact.tau, 100u);

  const auto system = MakeSystem(tc);
  ThreadPool pool(8);
  RunningStats stats;
  SeedSequence seeds(9000 + tc.m * 131 + tc.c, 77);
  for (uint32_t r = 0; r < tc.runs; ++r) {
    stats.Add(system->Run(s, seeds.SeedFor(r), &pool).global);
  }

  const double tau = static_cast<double>(exact.tau);
  // Prefer the closed-form sigma where the paper provides one; fall back to
  // the empirical spread otherwise.
  double run_variance = stats.sample_variance();
  if (tc.method == "rept") {
    run_variance = variance::Rept(tau, static_cast<double>(exact.eta), tc.m,
                                  tc.c);
  } else if (tc.method == "mascot") {
    run_variance = variance::ParallelMascot(
        tau, static_cast<double>(exact.eta), tc.m, tc.c);
  }
  const double sigma_of_mean = std::sqrt(run_variance / tc.runs);
  EXPECT_NEAR(stats.mean(), tau, tc.sigmas * sigma_of_mean + 1e-9)
      << system->Name() << " mean=" << stats.mean() << " tau=" << tau
      << " sigma_of_mean=" << sigma_of_mean;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, UnbiasednessTest,
    ::testing::Values(
        // REPT Algorithm 1 (c < m, c = m).
        UnbiasednessCase{"rept", 5, 3, 300, 4.0},
        UnbiasednessCase{"rept", 5, 5, 300, 4.0},
        UnbiasednessCase{"rept", 10, 4, 300, 4.0},
        // REPT full groups (c = c1 * m).
        UnbiasednessCase{"rept", 5, 10, 300, 4.0},
        UnbiasednessCase{"rept", 4, 12, 300, 4.0},
        // REPT Algorithm 2 (remainder group; plug-in weights add a small
        // data-dependent bias, hence the looser band).
        UnbiasednessCase{"rept", 5, 13, 300, 6.0},
        UnbiasednessCase{"rept", 4, 7, 300, 6.0},
        UnbiasednessCase{"rept", 3, 8, 300, 6.0},
        // Baselines.
        UnbiasednessCase{"mascot", 5, 4, 300, 4.0},
        UnbiasednessCase{"mascot", 10, 2, 300, 4.0},
        UnbiasednessCase{"triest", 5, 4, 300, 5.0},
        UnbiasednessCase{"gps", 5, 4, 300, 6.0}),
    [](const ::testing::TestParamInfo<UnbiasednessCase>& info) {
      return info.param.method + "_m" + std::to_string(info.param.m) + "_c" +
             std::to_string(info.param.c);
    });

}  // namespace
}  // namespace rept
