#include "core/variance.hpp"

#include <gtest/gtest.h>

#include "core/combiner.hpp"

namespace rept {
namespace {

TEST(VarianceTest, MascotSingleMatchesLemma) {
  // tau(m^2-1) + 2 eta(m-1) at m=10, tau=100, eta=1000:
  // 100*99 + 2000*9 = 9900 + 18000 = 27900.
  EXPECT_DOUBLE_EQ(variance::MascotSingle(100, 1000, 10), 27900.0);
}

TEST(VarianceTest, ParallelMascotDividesByC) {
  EXPECT_DOUBLE_EQ(variance::ParallelMascot(100, 1000, 10, 4),
                   27900.0 / 4.0);
}

TEST(VarianceTest, ReptSmallCFormula) {
  // (tau(m^2-c) + 2 eta(m-c))/c at m=10, c=4: (100*96 + 2000*6)/4 = 5400.
  EXPECT_DOUBLE_EQ(variance::ReptSmallC(100, 1000, 10, 4), 5400.0);
}

TEST(VarianceTest, ReptAtCEqualsMEliminatesCovariance) {
  // c = m: variance collapses to tau(m-1), independent of eta.
  EXPECT_DOUBLE_EQ(variance::ReptSmallC(100, 1000, 10, 10), 900.0);
  EXPECT_DOUBLE_EQ(variance::ReptSmallC(100, 999999, 10, 10), 900.0);
  EXPECT_DOUBLE_EQ(variance::ReptFullGroups(100, 10, 1), 900.0);
}

TEST(VarianceTest, DispatchContinuityAtGroupBoundaries) {
  // Rept(c=m) must agree through both formulas.
  EXPECT_DOUBLE_EQ(variance::Rept(100, 1000, 10, 10),
                   variance::ReptFullGroups(100, 10, 1));
  // c = 2m: two groups.
  EXPECT_DOUBLE_EQ(variance::Rept(100, 1000, 10, 20),
                   variance::ReptFullGroups(100, 10, 2));
}

TEST(VarianceTest, ReptCombinedCaseIsBelowBothComponents) {
  const double tau = 100, eta = 1000, m = 10, c = 25;  // c1=2, c2=5
  const double v1 = variance::ReptFullGroups(tau, m, 2);
  const double v2 = variance::ReptRemainderGroup(tau, eta, m, 5);
  const double v = variance::Rept(tau, eta, m, c);
  EXPECT_LT(v, v1);
  EXPECT_LT(v, v2);
  EXPECT_DOUBLE_EQ(v, v1 * v2 / (v1 + v2));
}

TEST(VarianceTest, ReptAlwaysBeatsParallelMascot) {
  // The paper's headline claim, checked across a grid.
  for (double m : {2.0, 5.0, 10.0, 100.0}) {
    for (double c = 1; c <= 3 * m; ++c) {
      const double rept = variance::Rept(500, 50000, m, c);
      const double mascot = variance::ParallelMascot(500, 50000, m, c);
      EXPECT_LE(rept, mascot) << "m=" << m << " c=" << c;
    }
  }
}

TEST(VarianceTest, MascotTermsMatchFigure1Definition) {
  const auto terms = variance::MascotTerms(100, 1000, 0.1);
  EXPECT_DOUBLE_EQ(terms.tau_term, 100 * 99.0);
  EXPECT_DOUBLE_EQ(terms.eta_term, 2 * 1000 * 9.0);
  // Sum equals single-instance MASCOT variance with m = 1/p.
  EXPECT_DOUBLE_EQ(terms.tau_term + terms.eta_term,
                   variance::MascotSingle(100, 1000, 10));
}

TEST(VarianceTest, CombinedDegenerate) {
  EXPECT_DOUBLE_EQ(variance::Combined(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(variance::Combined(4.0, 4.0), 2.0);
}

TEST(GraybillDealTest, WeightsInvertCorrectly) {
  // Smaller variance estimate dominates: x1 has variance 1, x2 variance 9;
  // combination = (9*x1 + 1*x2)/10.
  const CombinedEstimate r = GraybillDeal(10.0, 1.0, 20.0, 9.0, 1, 1);
  EXPECT_TRUE(r.weighted);
  EXPECT_DOUBLE_EQ(r.value, (9.0 * 10.0 + 1.0 * 20.0) / 10.0);
}

TEST(GraybillDealTest, FallbackWhenWeightsVanish) {
  const CombinedEstimate r = GraybillDeal(2.0, 0.0, 6.0, 0.0, 30, 10);
  EXPECT_FALSE(r.weighted);
  EXPECT_DOUBLE_EQ(r.value, (30 * 2.0 + 10 * 6.0) / 40.0);
}

TEST(GraybillDealTest, ZeroVarianceMeansExact) {
  // If x1 is exact (w1=0) the combination returns x1 regardless of x2.
  const CombinedEstimate r = GraybillDeal(5.0, 0.0, 100.0, 50.0, 1, 1);
  EXPECT_DOUBLE_EQ(r.value, 5.0);
}

}  // namespace
}  // namespace rept
