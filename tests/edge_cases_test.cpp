// Extreme-configuration robustness: degenerate streams and boundary
// parameter choices that a downstream user will eventually hit.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baseline_systems.hpp"
#include "core/rept_estimator.hpp"
#include "exact/exact_counts.hpp"
#include "gen/regular.hpp"
#include "graph/permutation.hpp"
#include "test_util.hpp"

namespace rept {
namespace {

TEST(EdgeCasesTest, EmptyStream) {
  const EdgeStream empty("empty", 10, {});
  for (uint32_t c : {1u, 3u, 7u}) {
    const TriangleEstimates est = MakeRept(3, c)->Run(empty, 1, nullptr);
    EXPECT_DOUBLE_EQ(est.global, 0.0);
    EXPECT_EQ(est.local.size(), 10u);
  }
}

TEST(EdgeCasesTest, SingleEdgeStream) {
  const EdgeStream s = testing::MakeStream(2, {{0, 1}});
  EXPECT_DOUBLE_EQ(MakeRept(5, 5)->Run(s, 1, nullptr).global, 0.0);
  EXPECT_DOUBLE_EQ(MakeParallelMascot(5, 2)->Run(s, 1, nullptr).global, 0.0);
}

TEST(EdgeCasesTest, SingleProcessor) {
  // c = 1 must follow the Algorithm 1 path with scaling m^2.
  const EdgeStream s = ShuffledCopy(gen::Complete(12), 3);
  const ExactCounts exact = ComputeExactCounts(s);
  double sum = 0.0;
  const int runs = 60;
  const auto system = MakeRept(3, 1);
  for (int r = 0; r < runs; ++r) sum += system->Run(s, 100 + r, nullptr).global;
  EXPECT_NEAR(sum / runs, static_cast<double>(exact.tau),
              0.25 * static_cast<double>(exact.tau));
}

TEST(EdgeCasesTest, SamplingDenominatorLargerThanStream) {
  // m >> |E|: most processors store nothing; estimates stay finite and
  // unbiased (just extremely noisy). Guard against divide-by-zero paths.
  const EdgeStream s = ShuffledCopy(gen::Complete(8), 5);  // 28 edges
  const auto system = MakeRept(1000, 4);
  const TriangleEstimates est = system->Run(s, 7, nullptr);
  EXPECT_GE(est.global, 0.0);
  EXPECT_TRUE(std::isfinite(est.global));
}

TEST(EdgeCasesTest, Algorithm2WithEmptyRemainderTallies) {
  // Tiny stream + large m: the remainder group sees no semi-triangles, so
  // the Graybill-Deal fallback must engage without NaNs.
  const EdgeStream s = testing::MakeStream(4, {{0, 1}, {1, 2}, {0, 2}});
  ReptConfig cfg;
  cfg.m = 50;
  cfg.c = 103;  // c1=2, c2=3
  const ReptEstimator est(cfg);
  const auto detail = est.RunDetailed(s, 11, nullptr);
  EXPECT_TRUE(std::isfinite(detail.estimates.global));
  EXPECT_GE(detail.estimates.global, 0.0);
  for (double x : detail.estimates.local) {
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(EdgeCasesTest, RepeatedRunsShareNoState) {
  // A system object is reusable: back-to-back runs with the same seed are
  // identical, interleaved seeds independent.
  const EdgeStream s = ShuffledCopy(gen::Complete(10), 9);
  const auto system = MakeParallelTriest(4, 3);
  const double a1 = system->Run(s, 5, nullptr).global;
  const double b = system->Run(s, 6, nullptr).global;
  const double a2 = system->Run(s, 5, nullptr).global;
  EXPECT_DOUBLE_EQ(a1, a2);
  (void)b;
}

TEST(EdgeCasesTest, VertexIdSpaceLargerThanTouchedVertices) {
  // Streams may declare a larger id space than the edges touch.
  const EdgeStream s = testing::MakeStream(1000, {{0, 1}, {1, 2}, {0, 2}});
  const TriangleEstimates est = MakeRept(2, 2)->Run(s, 3, nullptr);
  EXPECT_EQ(est.local.size(), 1000u);
  const ExactCounts exact = ComputeExactCounts(s);
  EXPECT_EQ(exact.tau, 1u);
  EXPECT_EQ(exact.tau_v.size(), 1000u);
}

}  // namespace
}  // namespace rept
