// Determinism regression: with a pinned seed, a REPT run is a pure function
// of (stream, seed, config) — never of thread scheduling. Guards the
// pre-seeded-private-state contract that thread_pool.hpp promises.
//
// The GoldenTallies case additionally pins the *values*: the constants were
// captured from the PR-4 implementation (std::unordered_map tally maps,
// sorted-vector adjacency) and the flat arena-backed rewrite must reproduce
// them bit for bit — the executable proof that the hot-path data-structure
// swap changed performance only.
#include <algorithm>
#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "core/rept_estimator.hpp"
#include "core/rept_session.hpp"
#include "gen/holme_kim.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

EdgeStream FixedStream() {
  gen::HolmeKimParams params;
  params.num_vertices = 400;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.6;
  return gen::HolmeKim(params, /*seed=*/12345);
}

ReptConfig Config() {
  ReptConfig cfg;
  cfg.m = 5;
  // c > m with c % m != 0 exercises Algorithm 2 (full groups + remainder
  // group + Graybill-Deal combination), the most schedule-sensitive path.
  cfg.c = 13;
  return cfg;
}

void ExpectByteIdenticalTallies(const std::vector<double>& a,
                                const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
  }
}

TEST(SeedStabilityTest, RepeatedRunsReproduceInstanceTallies) {
  const EdgeStream stream = FixedStream();
  const ReptEstimator estimator(Config());
  ThreadPool pool(2);

  const auto first = estimator.RunDetailed(stream, /*seed=*/777, &pool);
  const auto second = estimator.RunDetailed(stream, /*seed=*/777, &pool);

  ASSERT_EQ(first.instance_tallies.size(), Config().c);
  ExpectByteIdenticalTallies(first.instance_tallies, second.instance_tallies);
  EXPECT_EQ(first.estimates.global, second.estimates.global);
  EXPECT_EQ(first.estimates.local, second.estimates.local);
}

TEST(SeedStabilityTest, PoolSizeDoesNotAffectInstanceTallies) {
  const EdgeStream stream = FixedStream();
  const ReptEstimator estimator(Config());
  ThreadPool pool1(1);
  ThreadPool pool4(4);

  const auto serial = estimator.RunDetailed(stream, /*seed=*/777, &pool1);
  const auto parallel = estimator.RunDetailed(stream, /*seed=*/777, &pool4);

  ExpectByteIdenticalTallies(serial.instance_tallies,
                             parallel.instance_tallies);
  EXPECT_EQ(serial.estimates.global, parallel.estimates.global);
  EXPECT_EQ(serial.estimates.local, parallel.estimates.local);
  EXPECT_EQ(serial.tau_hat1, parallel.tau_hat1);
  EXPECT_EQ(serial.tau_hat2, parallel.tau_hat2);
  EXPECT_EQ(serial.eta_hat, parallel.eta_hat);
  EXPECT_TRUE(serial.used_combination);
}

uint64_t Fnv1a(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

TEST(SeedStabilityTest, GoldenTalliesMatchPr4Implementation) {
  // Golden values captured from the PR-4 (node-based-map) implementation:
  // HolmeKim(n=400, m=4, pt=0.6, seed=12345), REPT m=5 c=13 (Algorithm 2),
  // session seed 777, serial ingest in 97-edge batches.
  gen::HolmeKimParams params;
  params.num_vertices = 400;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.6;
  const EdgeStream stream = gen::HolmeKim(params, /*seed=*/12345);
  ASSERT_EQ(stream.size(), 1590u);

  ReptConfig config;
  config.m = 5;
  config.c = 13;
  ReptSession session(config, /*seed=*/777, /*pool=*/nullptr);
  session.NoteVertices(stream.num_vertices());
  const auto& edges = stream.edges();
  for (size_t at = 0; at < edges.size(); at += 97) {
    const size_t n = std::min<size_t>(97, edges.size() - at);
    session.Ingest(std::span<const Edge>(edges.data() + at, n));
  }

  const ReptEstimator::RunDetail detail = session.SnapshotDetailed();
  EXPECT_EQ(detail.estimates.global, 0x1.e556567be4574p+9);
  EXPECT_EQ(detail.tau_hat1, 0x1.e28p+9);
  EXPECT_EQ(detail.tau_hat2, 0x1.f400000000001p+9);
  EXPECT_EQ(detail.eta_hat, 0x1.0fa2762762762p+11);
  EXPECT_EQ(session.StoredEdges(), 4144u);
  ASSERT_EQ(detail.instance_tallies.size(), 13u);
  EXPECT_EQ(Fnv1a(detail.instance_tallies.data(),
                  detail.instance_tallies.size() * sizeof(double)),
            0x6fd56692e2f8426full);
  ASSERT_EQ(detail.estimates.local.size(), 400u);
  EXPECT_EQ(Fnv1a(detail.estimates.local.data(),
                  detail.estimates.local.size() * sizeof(double)),
            0x3f760448fcd27eb8ull);
}

TEST(SeedStabilityTest, GoldenTalliesSurviveParallelPipelinedReplay) {
  // Same golden constants as GoldenTalliesMatchPr4Implementation, but run
  // through the pipelined parallel routed path: a 4-worker pool plus a tiny
  // routed_sub_batch forces double-buffered routing, overlapped replay, and
  // per-sub-batch publishes. Bit-identical goldens here are the executable
  // proof that parallel replay is a pure scheduling change.
  gen::HolmeKimParams params;
  params.num_vertices = 400;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.6;
  const EdgeStream stream = gen::HolmeKim(params, /*seed=*/12345);
  ASSERT_EQ(stream.size(), 1590u);

  ReptConfig config;
  config.m = 5;
  config.c = 13;
  config.routed_sub_batch = 37;  // Many pipeline iterations per batch.
  ThreadPool pool(4);
  ReptSession session(config, /*seed=*/777, &pool);
  session.NoteVertices(stream.num_vertices());
  const auto& edges = stream.edges();
  for (size_t at = 0; at < edges.size(); at += 97) {
    const size_t n = std::min<size_t>(97, edges.size() - at);
    session.Ingest(std::span<const Edge>(edges.data() + at, n));
  }

  const ReptEstimator::RunDetail detail = session.SnapshotDetailed();
  EXPECT_EQ(detail.estimates.global, 0x1.e556567be4574p+9);
  EXPECT_EQ(detail.tau_hat1, 0x1.e28p+9);
  EXPECT_EQ(detail.tau_hat2, 0x1.f400000000001p+9);
  EXPECT_EQ(detail.eta_hat, 0x1.0fa2762762762p+11);
  EXPECT_EQ(session.StoredEdges(), 4144u);
  ASSERT_EQ(detail.instance_tallies.size(), 13u);
  EXPECT_EQ(Fnv1a(detail.instance_tallies.data(),
                  detail.instance_tallies.size() * sizeof(double)),
            0x6fd56692e2f8426full);
  ASSERT_EQ(detail.estimates.local.size(), 400u);
  EXPECT_EQ(Fnv1a(detail.estimates.local.data(),
                  detail.estimates.local.size() * sizeof(double)),
            0x3f760448fcd27eb8ull);
}

TEST(SeedStabilityTest, SubBatchSizeDoesNotAffectTallies) {
  // routed_sub_batch is a scheduling knob: any value must reproduce the
  // same bits (it only changes pipeline granularity and publish cadence).
  const EdgeStream stream = FixedStream();
  ThreadPool pool(3);
  std::vector<double> reference;
  for (const uint32_t sub : {16u, 251u, 1u << 20}) {
    ReptConfig config = Config();
    config.routed_sub_batch = sub;
    ReptSession session(config, /*seed=*/777, &pool);
    session.Ingest(stream);
    const auto detail = session.SnapshotDetailed();
    if (reference.empty()) {
      reference = detail.instance_tallies;
    } else {
      ExpectByteIdenticalTallies(reference, detail.instance_tallies);
    }
  }
}

TEST(SeedStabilityTest, DifferentSeedsProduceDifferentTallies) {
  const EdgeStream stream = FixedStream();
  const ReptEstimator estimator(Config());
  ThreadPool pool(2);

  const auto a = estimator.RunDetailed(stream, /*seed=*/777, &pool);
  const auto b = estimator.RunDetailed(stream, /*seed=*/778, &pool);

  // Sanity check that the byte-identity assertions above are not vacuous.
  EXPECT_NE(a.instance_tallies, b.instance_tallies);
}

}  // namespace
}  // namespace rept
