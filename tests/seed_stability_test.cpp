// Determinism regression: with a pinned seed, a REPT run is a pure function
// of (stream, seed, config) — never of thread scheduling. Guards the
// pre-seeded-private-state contract that thread_pool.hpp promises.
#include <cstring>

#include <gtest/gtest.h>

#include "core/rept_estimator.hpp"
#include "gen/holme_kim.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

EdgeStream FixedStream() {
  gen::HolmeKimParams params;
  params.num_vertices = 400;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.6;
  return gen::HolmeKim(params, /*seed=*/12345);
}

ReptConfig Config() {
  ReptConfig cfg;
  cfg.m = 5;
  // c > m with c % m != 0 exercises Algorithm 2 (full groups + remainder
  // group + Graybill-Deal combination), the most schedule-sensitive path.
  cfg.c = 13;
  return cfg;
}

void ExpectByteIdenticalTallies(const std::vector<double>& a,
                                const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
  }
}

TEST(SeedStabilityTest, RepeatedRunsReproduceInstanceTallies) {
  const EdgeStream stream = FixedStream();
  const ReptEstimator estimator(Config());
  ThreadPool pool(2);

  const auto first = estimator.RunDetailed(stream, /*seed=*/777, &pool);
  const auto second = estimator.RunDetailed(stream, /*seed=*/777, &pool);

  ASSERT_EQ(first.instance_tallies.size(), Config().c);
  ExpectByteIdenticalTallies(first.instance_tallies, second.instance_tallies);
  EXPECT_EQ(first.estimates.global, second.estimates.global);
  EXPECT_EQ(first.estimates.local, second.estimates.local);
}

TEST(SeedStabilityTest, PoolSizeDoesNotAffectInstanceTallies) {
  const EdgeStream stream = FixedStream();
  const ReptEstimator estimator(Config());
  ThreadPool pool1(1);
  ThreadPool pool4(4);

  const auto serial = estimator.RunDetailed(stream, /*seed=*/777, &pool1);
  const auto parallel = estimator.RunDetailed(stream, /*seed=*/777, &pool4);

  ExpectByteIdenticalTallies(serial.instance_tallies,
                             parallel.instance_tallies);
  EXPECT_EQ(serial.estimates.global, parallel.estimates.global);
  EXPECT_EQ(serial.estimates.local, parallel.estimates.local);
  EXPECT_EQ(serial.tau_hat1, parallel.tau_hat1);
  EXPECT_EQ(serial.tau_hat2, parallel.tau_hat2);
  EXPECT_EQ(serial.eta_hat, parallel.eta_hat);
  EXPECT_TRUE(serial.used_combination);
}

TEST(SeedStabilityTest, DifferentSeedsProduceDifferentTallies) {
  const EdgeStream stream = FixedStream();
  const ReptEstimator estimator(Config());
  ThreadPool pool(2);

  const auto a = estimator.RunDetailed(stream, /*seed=*/777, &pool);
  const auto b = estimator.RunDetailed(stream, /*seed=*/778, &pool);

  // Sanity check that the byte-identity assertions above are not vacuous.
  EXPECT_NE(a.instance_tallies, b.instance_tallies);
}

}  // namespace
}  // namespace rept
