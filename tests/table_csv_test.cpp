#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace rept {
namespace {

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::FormatDouble(0.125), "0.125");
  EXPECT_EQ(TablePrinter::FormatDouble(1234567.0, 3), "1.23e+06");
  EXPECT_EQ(TablePrinter::FormatSci(0.000123, 2), "1.23e-04");
}

TEST(CsvWriterTest, PlainRows) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({"1", "2"});
  EXPECT_EQ(csv.ToString(), "a,b\n1,2\n");
}

TEST(CsvWriterTest, EscapesSpecials) {
  CsvWriter csv({"text"});
  csv.AddRow({"has,comma"});
  csv.AddRow({"has\"quote"});
  const std::string out = csv.ToString();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(CsvWriterTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/rept_csv_test.csv";
  CsvWriter csv({"x"});
  csv.AddRow({"42"});
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "x\n42\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, BadPathFails) {
  CsvWriter csv({"x"});
  EXPECT_FALSE(csv.WriteFile("/nonexistent-dir/foo.csv").ok());
}

}  // namespace
}  // namespace rept
