// EdgeSource contract: chunked pull-side readers reproduce their batch
// counterparts edge for edge, regardless of chunk size, and IngestAll wires
// them to sessions without materializing the stream.
#include "graph/edge_source.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "baselines/baseline_systems.hpp"
#include "core/streaming_estimator.hpp"
#include "gen/holme_kim.hpp"
#include "graph/stream_io.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

EdgeStream SampleStream() {
  gen::HolmeKimParams params;
  params.num_vertices = 200;
  params.edges_per_vertex = 3;
  params.triad_probability = 0.5;
  return gen::HolmeKim(params, /*seed=*/99);
}

void ExpectSameStream(const EdgeStream& a, const EdgeStream& b) {
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(EdgeKey(a[i]), EdgeKey(b[i])) << "edge " << i;
  }
}

TEST(EdgeSourceTest, InMemoryRoundTrip) {
  const EdgeStream stream = SampleStream();
  InMemoryEdgeSource source{EdgeStream(stream)};
  EXPECT_EQ(source.VertexCountHint(), stream.num_vertices());
  auto drained = ReadAll(source, /*chunk_edges=*/13);
  ASSERT_TRUE(drained.ok());
  ExpectSameStream(*drained, stream);
}

TEST(EdgeSourceTest, TextSourceMatchesWholesaleLoad) {
  const std::string path = TempPath("chunked.txt");
  ASSERT_TRUE(SaveEdgeListText(SampleStream(), path).ok());

  const auto wholesale = LoadEdgeListText(path);
  ASSERT_TRUE(wholesale.ok());
  auto source = TextFileEdgeSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  auto chunked = ReadAll(**source, /*chunk_edges=*/17);
  ASSERT_TRUE(chunked.ok()) << chunked.status().ToString();
  ExpectSameStream(*chunked, *wholesale);
  EXPECT_EQ((*source)->VertexCountHint(), wholesale->num_vertices());
  std::remove(path.c_str());
}

TEST(EdgeSourceTest, TextSourceRemapsAndDedupesLikeLoader) {
  const std::string path = TempPath("remap.txt");
  {
    std::ofstream out(path);
    out << "# comment\n% comment\n\n";
    out << "1000 2000\n2000 3000\n3000 1000\n";
    out << "2000 1000\n";  // duplicate of the first edge, reversed
    out << "7 7\n7 7\n";   // self loops are kept, never deduped
  }
  for (const bool dedupe : {true, false}) {
    const auto wholesale = LoadEdgeListText(path, dedupe);
    ASSERT_TRUE(wholesale.ok());
    auto source = TextFileEdgeSource::Open(path, dedupe);
    ASSERT_TRUE(source.ok());
    auto chunked = ReadAll(**source, /*chunk_edges=*/2);
    ASSERT_TRUE(chunked.ok());
    ExpectSameStream(*chunked, *wholesale);
  }
  const auto deduped = LoadEdgeListText(path, /*dedupe=*/true);
  EXPECT_EQ(deduped->size(), 5u);  // 3 unique + 2 self loops
  std::remove(path.c_str());
}

TEST(EdgeSourceTest, TextSourceReportsCorruption) {
  const std::string path = TempPath("corrupt.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot an edge\n2 3\n";
  }
  auto source = TextFileEdgeSource::Open(path);
  ASSERT_TRUE(source.ok());
  auto drained = ReadAll(**source);
  EXPECT_FALSE(drained.ok());
  EXPECT_EQ(drained.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(EdgeSourceTest, OpenMissingFileFails) {
  EXPECT_FALSE(TextFileEdgeSource::Open(TempPath("missing.txt")).ok());
  EXPECT_FALSE(BinaryFileEdgeSource::Open(TempPath("missing.bin")).ok());
}

TEST(EdgeSourceTest, BinarySourceMatchesWholesaleLoad) {
  const std::string path = TempPath("chunked.bin");
  const EdgeStream stream = SampleStream();
  ASSERT_TRUE(SaveEdgeListBinary(stream, path).ok());

  auto source = BinaryFileEdgeSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  // Sized source: header metadata is exact before any chunk is read.
  EXPECT_EQ((*source)->VertexCountHint(), stream.num_vertices());
  EXPECT_EQ((*source)->num_edges(), stream.size());
  auto chunked = ReadAll(**source, /*chunk_edges=*/19);
  ASSERT_TRUE(chunked.ok());
  ExpectSameStream(*chunked, stream);
  std::remove(path.c_str());
}

// Reads the file's bytes for corruption-injection rewrites.
std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(EdgeSourceTest, BinaryOpenRejectsTruncatedPayload) {
  // The header pins the payload size; a short file must fail at Open()
  // instead of yielding a silently short stream later.
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveEdgeListBinary(SampleStream(), path).ok());
  const std::string bytes = SlurpFile(path);
  for (const size_t keep :
       {bytes.size() / 2, bytes.size() - 1, size_t{30}, size_t{10}}) {
    WriteFile(path, bytes.substr(0, keep));
    auto source = BinaryFileEdgeSource::Open(path);
    ASSERT_FALSE(source.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(source.status().code(), StatusCode::kCorruption);
  }
  std::remove(path.c_str());
}

TEST(EdgeSourceTest, BinaryOpenRejectsTrailingGarbage) {
  const std::string path = TempPath("trailing.bin");
  ASSERT_TRUE(SaveEdgeListBinary(SampleStream(), path).ok());
  WriteFile(path, SlurpFile(path) + "extra");
  auto source = BinaryFileEdgeSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(EdgeSourceTest, BinaryOpenRejectsAbsurdEdgeCount) {
  // A bit-flipped edge count far beyond the actual payload fails up front
  // (and can never over-allocate: Open validates it against the file size).
  const std::string path = TempPath("absurd.bin");
  ASSERT_TRUE(SaveEdgeListBinary(SampleStream(), path).ok());
  std::string bytes = SlurpFile(path);
  bytes[16] = '\xff';  // low byte of the u64 edge count
  bytes[22] = '\x7f';  // and a high byte, for good measure
  WriteFile(path, bytes);
  auto source = BinaryFileEdgeSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(EdgeSourceTest, BinaryChunkRejectsOutOfRangeVertexIds) {
  // Garbage endpoints (ids outside the declared vertex space) latch
  // Corruption mid-stream and propagate through IngestAll.
  const std::string path = TempPath("badids.bin");
  EdgeStream stream("badids", 8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  ASSERT_TRUE(SaveEdgeListBinary(stream, path).ok());
  std::string bytes = SlurpFile(path);
  // Header is 24 bytes; edge 2's u (offset 24 + 2*8) becomes 0xffffffff.
  for (size_t i = 0; i < 4; ++i) bytes[24 + 16 + i] = '\xff';
  WriteFile(path, bytes);
  auto source = BinaryFileEdgeSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  const auto rept = MakeRept(5, 5);
  auto session = rept->CreateSession(1, nullptr).value();
  const auto ingested = IngestAll(**source, *session, /*chunk_edges=*/2);
  ASSERT_FALSE(ingested.ok());
  EXPECT_EQ(ingested.status().code(), StatusCode::kCorruption);
  // The bad edge's chunk was never delivered: only the first chunk landed.
  EXPECT_EQ(session->edges_ingested(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeSourceTest, UniformRandomSourceIsDeterministicAndLoopFree) {
  UniformRandomEdgeSource a(/*num_vertices=*/50, /*num_edges=*/1000,
                            /*seed=*/5);
  UniformRandomEdgeSource b(/*num_vertices=*/50, /*num_edges=*/1000,
                            /*seed=*/5);
  auto ea = ReadAll(a, /*chunk_edges=*/37);
  auto eb = ReadAll(b, /*chunk_edges=*/128);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(ea->size(), 1000u);
  ExpectSameStream(*ea, *eb);
  for (const Edge& e : *ea) {
    EXPECT_LT(e.u, 50u);
    EXPECT_LT(e.v, 50u);
    EXPECT_FALSE(e.IsSelfLoop());
  }

  UniformRandomEdgeSource c(/*num_vertices=*/50, /*num_edges=*/1000,
                            /*seed=*/6);
  auto ec = ReadAll(c);
  ASSERT_TRUE(ec.ok());
  bool any_difference = false;
  for (size_t i = 0; i < ec->size(); ++i) {
    if (EdgeKey((*ec)[i]) != EdgeKey((*ea)[i])) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(EdgeSourceTest, IngestAllDrivesSessionToRunEquivalence) {
  const std::string path = TempPath("ingest_all.txt");
  ASSERT_TRUE(SaveEdgeListText(SampleStream(), path).ok());
  const auto wholesale = LoadEdgeListText(path);
  ASSERT_TRUE(wholesale.ok());

  ThreadPool pool(2);
  const auto rept = MakeRept(5, 5);
  const TriangleEstimates reference = rept->Run(*wholesale, 21, &pool);

  auto source = TextFileEdgeSource::Open(path);
  ASSERT_TRUE(source.ok());
  SessionOptions options;
  options.expected_edges = wholesale->size();
  auto session = rept->CreateSession(21, &pool, options).value();
  auto ingested = IngestAll(**source, *session, /*chunk_edges=*/23);
  ASSERT_TRUE(ingested.ok());
  EXPECT_EQ(*ingested, wholesale->size());

  const TriangleEstimates chunked = session->Snapshot();
  EXPECT_EQ(chunked.global, reference.global);
  EXPECT_EQ(chunked.local, reference.local);
  std::remove(path.c_str());
}

TEST(EdgeSourceTest, PrefetchIngestIsBitIdenticalToSerialPump) {
  // The double-buffered pump must hand the session the exact chunk sequence
  // of the serial pump: same tallies, same ingest count, any chunk size.
  const std::string path = TempPath("ingest_prefetch.txt");
  ASSERT_TRUE(SaveEdgeListText(SampleStream(), path).ok());

  ThreadPool pool(2);
  const auto rept = MakeRept(5, 7);
  for (const size_t chunk : {size_t{1}, size_t{23}, size_t{4096}}) {
    auto serial_source = TextFileEdgeSource::Open(path);
    ASSERT_TRUE(serial_source.ok());
    auto serial_session = rept->CreateSession(33, &pool).value();
    const auto serial_count =
        IngestAll(**serial_source, *serial_session, chunk);
    ASSERT_TRUE(serial_count.ok());

    auto prefetch_source = TextFileEdgeSource::Open(path);
    ASSERT_TRUE(prefetch_source.ok());
    auto prefetch_session = rept->CreateSession(33, &pool).value();
    IngestOptions prefetch_options;
    prefetch_options.chunk_edges = chunk;
    prefetch_options.prefetch = true;
    const auto prefetch_count = IngestAll(
        **prefetch_source, *prefetch_session, prefetch_options);
    ASSERT_TRUE(prefetch_count.ok());

    EXPECT_EQ(*prefetch_count, *serial_count) << "chunk=" << chunk;
    EXPECT_EQ(prefetch_session->StoredEdges(), serial_session->StoredEdges());
    const TriangleEstimates serial = serial_session->Snapshot();
    const TriangleEstimates prefetch = prefetch_session->Snapshot();
    EXPECT_EQ(prefetch.global, serial.global) << "chunk=" << chunk;
    EXPECT_EQ(prefetch.local, serial.local) << "chunk=" << chunk;
  }
  std::remove(path.c_str());
}

TEST(EdgeSourceTest, SkipEdgesFastForwardsDeterministically) {
  const EdgeStream stream = SampleStream();
  for (const uint64_t skip : {uint64_t{0}, uint64_t{1}, uint64_t{37},
                              stream.size() - 1, stream.size()}) {
    InMemoryEdgeSource source{EdgeStream(stream)};
    auto skipped = SkipEdges(source, skip, /*chunk_edges=*/16);
    ASSERT_TRUE(skipped.ok());
    EXPECT_EQ(*skipped, skip);
    auto rest = ReadAll(source, /*chunk_edges=*/16);
    ASSERT_TRUE(rest.ok());
    ASSERT_EQ(rest->size(), stream.size() - skip);
    for (size_t i = 0; i < rest->size(); ++i) {
      EXPECT_EQ(EdgeKey((*rest)[i]), EdgeKey(stream[skip + i]));
    }
  }
  // Skipping past the end reports how far the source actually reached.
  InMemoryEdgeSource source{EdgeStream(stream)};
  auto skipped = SkipEdges(source, stream.size() + 100);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(*skipped, stream.size());
}

TEST(EdgeSourceTest, PrefetchIngestPropagatesSourceErrors) {
  // A parse error halfway through the stream must still latch the source's
  // error through the prefetch pump. (Truncated binary files no longer get
  // this far: the hardened Open() rejects them up front — see
  // BinaryOpenRejectsTruncatedPayload below.)
  const std::string path = TempPath("ingest_prefetch_garbage.txt");
  {
    std::ofstream out(path, std::ios::trunc);
    for (int i = 0; i < 64; ++i) out << i << ' ' << i + 1 << '\n';
    out << "not an edge line\n";
  }
  auto source = TextFileEdgeSource::Open(path);
  ASSERT_TRUE(source.ok());
  const auto rept = MakeRept(5, 5);
  auto session = rept->CreateSession(1, nullptr).value();
  IngestOptions options;
  options.chunk_edges = 16;
  options.prefetch = true;
  const auto ingested = IngestAll(**source, *session, options);
  EXPECT_FALSE(ingested.ok());
  EXPECT_EQ(ingested.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rept
