// Fault-tolerance contract of rept_server: crash recovery from the
// checkpoint directory, exactly-once ingest across reconnects, and stall
// containment.
//
// The chaos centerpiece forks this binary as a real server process
// (`--be-server`), SIGKILLs it mid-ingest, restarts it on the same
// checkpoint directory, and proves that after the client re-attaches and
// replays from the server's recovered sequence watermark the estimates —
// and the full serialized state — are bit-identical to an uninterrupted
// library run of the same stream. Nothing here is statistical: every
// assertion is exact.
//
// The net.* fault-injection tests only run when the build carries
// -DREPT_FAULT_INJECTION=ON (the CI chaos legs); they arm faults in the
// parent (client) process against a child server, so the injected drops
// deterministically hit the client's socket and nothing else.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/rept_estimator.hpp"
#include "gen/holme_kim.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "persist/checkpoint.hpp"
#include "util/fault_injection.hpp"

#ifdef _WIN32

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();  // POSIX-only suite; nothing registers here.
}

#else  // !_WIN32

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

namespace rept::net {

/// argv[0], captured by main for re-exec'ing ourselves as the server child.
std::string g_test_binary;

/// Child mode: run a ReptServer until killed or told to shut down.
///
///   <binary> --be-server <checkpoint_dir> <port_file> [checkpoint_every_ms]
///
/// The bound (ephemeral) port is published by writing <port_file>.tmp and
/// renaming it, so the parent never reads a partial write. The child serves
/// until the SHUTDOWN verb flips the flag — or until the parent's SIGKILL,
/// which is the point.
int RunServerChild(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "--be-server <ckpt_dir> <port_file> [every_ms]\n");
    return 2;
  }
  ServerOptions options;
  options.port = 0;
  options.pool_threads = 2;
  options.checkpoint_dir = argv[2];
  if (argc > 4) {
    options.checkpoint_every_ms =
        static_cast<uint64_t>(std::strtoull(argv[4], nullptr, 10));
  }
  ReptServer server(std::move(options));
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "child start: %s\n", started.ToString().c_str());
    return 1;
  }
  const std::string port_file = argv[3];
  {
    std::ofstream out(port_file + ".tmp", std::ios::trunc);
    out << server.port() << "\n";
  }
  if (std::rename((port_file + ".tmp").c_str(), port_file.c_str()) != 0) {
    return 1;
  }
  while (!server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return server.Stop().ok() ? 0 : 1;
}

namespace {

/// Forks + execs this binary in --be-server mode; returns the child pid.
pid_t SpawnServerChild(const std::string& ckpt_dir,
                       const std::string& port_file,
                       uint64_t checkpoint_every_ms) {
  std::remove(port_file.c_str());
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const std::string every = std::to_string(checkpoint_every_ms);
  ::execl(g_test_binary.c_str(), g_test_binary.c_str(), "--be-server",
          ckpt_dir.c_str(), port_file.c_str(), every.c_str(),
          static_cast<char*>(nullptr));
  std::perror("execl");
  ::_exit(127);
}

/// Polls for the child's port file; 0 on timeout.
uint16_t WaitForPort(const std::string& port_file) {
  for (int i = 0; i < 500; ++i) {
    std::ifstream in(port_file);
    unsigned port = 0;
    if (in >> port && port != 0) return static_cast<uint16_t>(port);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return 0;
}

void ReapChild(pid_t pid) {
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
}

void KillChild(pid_t pid) {
  ::kill(pid, SIGKILL);
  ReapChild(pid);
}

/// Fresh scratch directory under the gtest temp root.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  EXPECT_EQ(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()),
            0);
  return dir;
}

EdgeStream ChaosStream() {
  gen::HolmeKimParams params;
  params.num_vertices = 1000;  // ~4000 edges; every span below fits.
  params.edges_per_vertex = 4;
  params.triad_probability = 0.5;
  return gen::HolmeKim(params, /*seed=*/901);
}

SessionSpec ChaosSpec(const std::string& name) {
  SessionSpec spec;
  spec.name = name;
  spec.seed = 4242;
  spec.config.m = 5;
  spec.config.c = 9;
  return spec;
}

/// Canonical serialized state of a library session fed the first `prefix`
/// edges of `stream` — the bit-identity reference.
std::string LibraryStateBytes(const SessionSpec& spec,
                              const EdgeStream& stream, size_t prefix) {
  const auto session =
      ReptEstimator(spec.config).CreateSession(spec.seed, nullptr).value();
  session->NoteVertices(stream.num_vertices());
  session->Ingest(std::span<const Edge>(stream.edges().data(), prefix));
  std::ostringstream out;
  EXPECT_TRUE(WriteCheckpointStream(*session, out).ok());
  return std::move(out).str();
}

// ---------------------------------------------------------------------------
// Recovery from the checkpoint directory (in-process servers).
// ---------------------------------------------------------------------------

TEST(ServerCrashRecoveryTest, RestartRestoresEverySessionExactly) {
  const std::string dir = FreshDir("recovery_restart");
  const EdgeStream stream = ChaosStream();
  const size_t half = stream.size() / 2;

  std::vector<std::string> expected_bytes;
  {
    ServerOptions options;
    options.pool_threads = 2;
    options.checkpoint_dir = dir;
    ReptServer server(options);
    ASSERT_TRUE(server.Start().ok());
    ReptClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    for (int s = 0; s < 2; ++s) {
      const SessionSpec spec = ChaosSpec("rec" + std::to_string(s));
      ASSERT_TRUE(client.CreateSession(spec).ok());
      ASSERT_TRUE(client
                      .Ingest(spec.name,
                              std::span<const Edge>(stream.edges().data(),
                                                    half + 100 * s),
                              stream.num_vertices())
                      .ok());
      expected_bytes.push_back(
          LibraryStateBytes(spec, stream, half + 100 * s));
    }
    ASSERT_TRUE(server.Stop().ok());  // Writes <dir>/rec{0,1}.ckpt.
  }

  ServerOptions options;
  options.pool_threads = 2;
  options.checkpoint_dir = dir;
  ReptServer revived(options);
  ASSERT_TRUE(revived.Start().ok());
  EXPECT_EQ(revived.sessions_recovered(), 2u);

  ReptClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", revived.port()).ok());
  for (int s = 0; s < 2; ++s) {
    // CHECKPOINT serves the estimator state alone (no server sidecar), so
    // the recovered session must serialize bit-identically to the library.
    const auto bytes = client.Checkpoint("rec" + std::to_string(s));
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    const std::string& expected = expected_bytes[static_cast<size_t>(s)];
    ASSERT_EQ(bytes.value().size(), expected.size()) << "session " << s;
    EXPECT_TRUE(std::memcmp(bytes.value().data(), expected.data(),
                            expected.size()) == 0)
        << "session " << s;
  }
  ASSERT_TRUE(revived.Stop().ok());
}

TEST(ServerCrashRecoveryTest, RecoveredSessionRemembersSequenceWatermark) {
  const std::string dir = FreshDir("recovery_seq");
  const EdgeStream stream = ChaosStream();
  const SessionSpec spec = ChaosSpec("seqrec");
  const size_t batch = 500;

  {
    ServerOptions options;
    options.checkpoint_dir = dir;
    ReptServer server(options);
    ASSERT_TRUE(server.Start().ok());
    ReptClient client;
    ReconnectPolicy policy;
    policy.enabled = true;
    client.set_reconnect_policy(policy);
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(client.CreateSession(spec).ok());
    for (int b = 0; b < 3; ++b) {  // Sequenced frames 1..3.
      ASSERT_TRUE(client
                      .Ingest(spec.name,
                              std::span<const Edge>(
                                  stream.edges().data() + b * batch, batch),
                              b == 0 ? stream.num_vertices() : 0)
                      .ok());
    }
    ASSERT_TRUE(server.Stop().ok());
  }

  ServerOptions options;
  options.checkpoint_dir = dir;
  ReptServer revived(options);
  ASSERT_TRUE(revived.Start().ok());
  ASSERT_EQ(revived.sessions_recovered(), 1u);

  ReptClient client;
  ReconnectPolicy policy;
  policy.enabled = true;
  client.set_reconnect_policy(policy);
  ASSERT_TRUE(client.Connect("127.0.0.1", revived.port()).ok());
  uint64_t last_applied = 0;
  ASSERT_TRUE(client
                  .CreateSession(spec, nullptr, /*attach=*/true,
                                 &last_applied)
                  .ok());
  EXPECT_EQ(last_applied, 3u) << "watermark lost across restart";

  // The attached client resumes at seq 4; the next batch must apply, not
  // dedupe.
  const auto reply = client.Ingest(
      spec.name,
      std::span<const Edge>(stream.edges().data() + 3 * batch, batch));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().last_applied_seq, 4u);
  EXPECT_EQ(reply.value().deduped_frames, 0u);
  ASSERT_TRUE(revived.Stop().ok());
}

TEST(ServerCrashRecoveryTest, OrphanTmpFilesAreReapedOnStartup) {
  const std::string dir = FreshDir("recovery_orphans");
  {
    std::ofstream out(dir + "/victim.ckpt.tmp", std::ios::binary);
    out << "half-written checkpoint";
  }
  ServerOptions options;
  options.checkpoint_dir = dir;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(std::ifstream(dir + "/victim.ckpt.tmp").good())
      << "orphan survived startup";
  ASSERT_TRUE(server.Stop().ok());
}

TEST(ServerCrashRecoveryTest, SidecarlessCheckpointIsSkippedNotRestored) {
  const std::string dir = FreshDir("recovery_sidecarless");
  // A plain library checkpoint (e.g. saved from CHECKPOINT verb output)
  // has no server-session sidecar: the server cannot know its config, so
  // it must skip the file — and must not delete or damage it.
  const SessionSpec spec = ChaosSpec("plain");
  const EdgeStream stream = ChaosStream();
  const auto session =
      ReptEstimator(spec.config).CreateSession(spec.seed, nullptr).value();
  session->NoteVertices(stream.num_vertices());
  session->Ingest(std::span<const Edge>(stream.edges().data(), 1000));
  ASSERT_TRUE(SaveCheckpoint(*session, dir + "/plain.ckpt").ok());

  ServerOptions options;
  options.checkpoint_dir = dir;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.sessions_recovered(), 0u);
  EXPECT_TRUE(std::ifstream(dir + "/plain.ckpt").good());
  ASSERT_TRUE(server.Stop().ok());
}

TEST(ServerCrashRecoveryTest, CorruptCheckpointFailsStartupHard) {
  const std::string dir = FreshDir("recovery_corrupt");
  {
    std::ofstream out(dir + "/bad.ckpt", std::ios::binary);
    out << "this is not a checkpoint";
  }
  ServerOptions options;
  options.checkpoint_dir = dir;
  ReptServer server(options);
  const Status st = server.Start();
  EXPECT_FALSE(st.ok()) << "corrupt state must not be silently dropped";
}

TEST(ServerCrashRecoveryTest, AutoCheckpointSavesDirtySessionsOnly) {
  const std::string dir = FreshDir("recovery_autockpt");
  ServerOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every_ms = 25;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const EdgeStream stream = ChaosStream();
  const SessionSpec spec = ChaosSpec("auto");
  ReptClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateSession(spec).ok());
  ASSERT_TRUE(client
                  .Ingest(spec.name,
                          std::span<const Edge>(stream.edges().data(), 2000),
                          stream.num_vertices())
                  .ok());

  // The background thread must save without any shutdown.
  const std::string path = dir + "/auto.ckpt";
  auto read_file = [&path]() {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  std::string saved;
  for (int i = 0; i < 400 && saved.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    saved = read_file();
  }
  ASSERT_FALSE(saved.empty()) << "auto-checkpoint never wrote " << path;

  // Idle sessions are not rewritten: with no further ingest the file's
  // bytes must stay put across many intervals. (Bytes, not mtime — a
  // rewrite of identical state would be invisible to content but is
  // exactly the wasted I/O the dirty tracking exists to prevent; equality
  // here is necessary-but-cheap evidence, the mutation-counter unit
  // contract is what the code enforces.)
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::string after_idle = read_file();
  EXPECT_EQ(after_idle, saved);

  // Another batch dirties the session; the next sweep must pick it up.
  ASSERT_TRUE(
      client
          .Ingest(spec.name,
                  std::span<const Edge>(stream.edges().data() + 2000, 1500))
          .ok());
  std::string advanced;
  for (int i = 0; i < 400; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    advanced = read_file();
    if (advanced != after_idle && !advanced.empty()) break;
  }
  EXPECT_NE(advanced, after_idle) << "dirty session was never re-saved";
  ASSERT_TRUE(server.Stop().ok());
}

// ---------------------------------------------------------------------------
// Exactly-once sequencing (in-process servers).
// ---------------------------------------------------------------------------

TEST(ServerCrashRecoveryTest, SecondWriterReplayingOldSequenceIsDeduped) {
  ServerOptions options;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const EdgeStream stream = ChaosStream();
  const SessionSpec spec = ChaosSpec("dedup");

  ReconnectPolicy policy;
  policy.enabled = true;
  ReptClient writer;
  writer.set_reconnect_policy(policy);
  ASSERT_TRUE(writer.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(writer.CreateSession(spec).ok());

  // A second client attaches while last_applied == 0, so its first frame
  // carries seq 1 — the same sequence number the writer is about to use.
  ReptClient stale;
  stale.set_reconnect_policy(policy);
  ASSERT_TRUE(stale.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(stale.CreateSession(spec, nullptr, /*attach=*/true).ok());

  const std::span<const Edge> batch(stream.edges().data(), 1000);
  const auto applied = writer.Ingest(spec.name, batch,
                                     stream.num_vertices());
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value().last_applied_seq, 1u);
  EXPECT_EQ(applied.value().deduped_frames, 0u);

  // The stale client's seq-1 frame is a replay: acknowledged, skipped, and
  // the session's state must not move.
  const auto replay = stale.Ingest(spec.name, batch);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().deduped_frames, 1u);
  EXPECT_EQ(replay.value().last_applied_seq, 1u);
  EXPECT_EQ(replay.value().edges_ingested, batch.size())
      << "dedup must not re-apply the batch";

  // The dedup reply resynced the stale client to seq 2; its next batch
  // applies normally.
  const auto next = stale.Ingest(
      spec.name, std::span<const Edge>(stream.edges().data() + 1000, 1000));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().deduped_frames, 0u);
  EXPECT_EQ(next.value().last_applied_seq, 2u);
  EXPECT_EQ(next.value().edges_ingested, 2000u);
  ASSERT_TRUE(server.Stop().ok());
}

TEST(ServerCrashRecoveryTest, SequenceGapAfterRestoreIsRejected) {
  ServerOptions options;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const EdgeStream stream = ChaosStream();
  const SessionSpec spec = ChaosSpec("gap");

  ReconnectPolicy policy;
  policy.enabled = true;
  ReptClient client;
  client.set_reconnect_policy(policy);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateSession(spec).ok());
  for (int b = 0; b < 2; ++b) {
    ASSERT_TRUE(client
                    .Ingest(spec.name,
                            std::span<const Edge>(
                                stream.edges().data() + b * 500, 500),
                            b == 0 ? stream.num_vertices() : 0)
                    .ok());
  }

  // RESTORE of sidecar-free CHECKPOINT bytes resets the server's sequence
  // window to 0, but this client still believes it is at seq 3 — the next
  // frame is a gap and must be refused, not silently applied.
  const auto bytes = client.Checkpoint(spec.name);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      client.Restore(spec.name, std::span<const uint8_t>(bytes.value()))
          .ok());
  const auto gap = client.Ingest(
      spec.name, std::span<const Edge>(stream.edges().data() + 1000, 500));
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(gap.status().message().find("gap"), std::string::npos);
  ASSERT_TRUE(server.Stop().ok());
}

// ---------------------------------------------------------------------------
// Stall containment.
// ---------------------------------------------------------------------------

TEST(ServerCrashRecoveryTest, IdleConnectionIsReapedOthersUnaffected) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const EdgeStream stream = ChaosStream();
  const SessionSpec spec = ChaosSpec("reap");

  ReptClient stalled;
  ASSERT_TRUE(stalled.Connect("127.0.0.1", server.port()).ok());
  ReptClient active;
  ASSERT_TRUE(active.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(active.CreateSession(spec).ok());

  // The stalled peer sends nothing; the active one keeps working across
  // several timeout windows and must never be disturbed.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(active
                    .Ingest(spec.name,
                            std::span<const Edge>(
                                stream.edges().data() + i * 100, 100),
                            i == 0 ? stream.num_vertices() : 0)
                    .ok())
        << "iteration " << i;
  }
  for (int i = 0; i < 300 && server.idle_reaps() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.idle_reaps(), 1u);

  // The reaped client's next request fails (its connection is gone).
  EXPECT_FALSE(stalled.Stats().ok());
  EXPECT_TRUE(active.Stats().ok());
  ASSERT_TRUE(server.Stop().ok());
}

TEST(ServerCrashRecoveryTest, RoundtripDeadlineExpiresAgainstSilentPeer) {
  // A listener that accepts nothing: the connect completes via the backlog
  // but no reply will ever come. Without a deadline, Stats() would block
  // forever (the pre-v3 failure mode); with one it must return
  // DeadlineExceeded in bounded time.
  TcpListener listener;
  ASSERT_TRUE(listener.Listen("127.0.0.1", 0).ok());
  ReptClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", listener.port()).ok());
  ASSERT_TRUE(client.set_roundtrip_deadline_ms(150).ok());

  const auto start = std::chrono::steady_clock::now();
  const Status st = client.Stats().status();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_LT(elapsed.count(), 5000);
}

// ---------------------------------------------------------------------------
// Chaos: SIGKILL a real server process mid-ingest, restart, replay.
// ---------------------------------------------------------------------------

TEST(ServerCrashRecoveryTest, KillMidIngestRestartReplayIsBitIdentical) {
  const std::string dir = FreshDir("chaos_kill");
  const std::string port_file = dir + "/port";
  const EdgeStream stream = ChaosStream();
  const SessionSpec spec = ChaosSpec("chaos");
  const size_t batch = 400;
  const size_t batches = stream.size() / batch;
  ASSERT_GE(batches, 8u) << "stream too small to be interesting";

  const pid_t first = SpawnServerChild(dir, port_file, /*every_ms=*/30);
  ASSERT_GT(first, 0);
  const uint16_t port = WaitForPort(port_file);
  ASSERT_NE(port, 0) << "child never published its port";

  ReconnectPolicy policy;
  policy.enabled = true;
  policy.max_attempts = 2;  // Fail fast: the server is genuinely dead.
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 40;

  auto send_batch = [&](ReptClient& client, size_t index) {
    return client.Ingest(
        spec.name,
        std::span<const Edge>(stream.edges().data() + index * batch, batch),
        index == 0 ? stream.num_vertices() : 0);
  };

  // Phase 1: stream batches into the live server, then SIGKILL it while
  // the writer is still mid-stream. Some acked batches may be lost (they
  // postdate the last auto-checkpoint) — that is the contract the replay
  // below compensates for.
  size_t sent = 0;
  {
    ReptClient client;
    client.set_reconnect_policy(policy);
    ASSERT_TRUE(client.set_roundtrip_deadline_ms(2000).ok());
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    ASSERT_TRUE(client.CreateSession(spec).ok());
    // Let at least one auto-checkpoint interval elapse with data applied.
    for (; sent < 4; ++sent) ASSERT_TRUE(send_batch(client, sent).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(120));

    ::kill(first, SIGKILL);
    // Keep writing into the dying server: every outcome (acked, refused,
    // transport error after exhausted reconnects) is legal here; the
    // sequence watermark sorts it out after restart.
    while (sent < batches && send_batch(client, sent).ok()) ++sent;
  }
  ReapChild(first);
  EXPECT_LT(sent, batches) << "SIGKILL landed after the whole stream";

  // Phase 2: restart on the same directory, attach, learn the recovered
  // watermark, and replay everything past it.
  const pid_t second = SpawnServerChild(dir, port_file, /*every_ms=*/30);
  ASSERT_GT(second, 0);
  const uint16_t port2 = WaitForPort(port_file);
  ASSERT_NE(port2, 0);

  ReptClient client;
  client.set_reconnect_policy(policy);
  ASSERT_TRUE(client.set_roundtrip_deadline_ms(2000).ok());
  ASSERT_TRUE(client.Connect("127.0.0.1", port2).ok());
  uint64_t last_applied = 0;
  ASSERT_TRUE(client
                  .CreateSession(spec, nullptr, /*attach=*/true,
                                 &last_applied)
                  .ok());
  ASSERT_GE(last_applied, 1u) << "recovery lost every applied batch";
  ASSERT_LE(last_applied, static_cast<uint64_t>(sent))
      << "server claims batches the client never sent";

  // Sequenced frame k carried batch k-1, so resume at batch[last_applied].
  for (size_t index = static_cast<size_t>(last_applied); index < batches;
       ++index) {
    const auto reply = send_batch(client, index);
    ASSERT_TRUE(reply.ok()) << "replaying batch " << index;
    EXPECT_EQ(reply.value().deduped_frames, 0u);
  }

  // The recovered-and-replayed state must be bit-identical to an
  // uninterrupted library ingest of the same prefix: same estimates, same
  // serialized bytes, every edge applied exactly once in order.
  const auto served = client.Checkpoint(spec.name);
  ASSERT_TRUE(served.ok());
  const std::string expected =
      LibraryStateBytes(spec, stream, batches * batch);
  ASSERT_EQ(served.value().size(), expected.size());
  EXPECT_TRUE(std::memcmp(served.value().data(), expected.data(),
                          expected.size()) == 0)
      << "recovered state diverged from the uninterrupted run";

  const auto snapshot = client.Snapshot(spec.name, 0);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().edges_ingested, batches * batch);

  ASSERT_TRUE(client.Shutdown().ok());
  ReapChild(second);

  // A third start proves the post-chaos shutdown checkpoint is itself
  // clean and re-recoverable.
  const pid_t third = SpawnServerChild(dir, port_file, /*every_ms=*/0);
  ASSERT_GT(third, 0);
  const uint16_t port3 = WaitForPort(port_file);
  ASSERT_NE(port3, 0);
  ReptClient verifier;
  ASSERT_TRUE(verifier.Connect("127.0.0.1", port3).ok());
  const auto reread = verifier.Checkpoint(spec.name);
  ASSERT_TRUE(reread.ok());
  EXPECT_TRUE(reread.value().size() == expected.size() &&
              std::memcmp(reread.value().data(), expected.data(),
                          expected.size()) == 0);
  ASSERT_TRUE(verifier.Shutdown().ok());
  ReapChild(third);
}

// ---------------------------------------------------------------------------
// Injected network faults (REPT_FAULT_INJECTION builds only). Faults are
// armed in THIS process, so they deterministically hit the client's socket;
// the server runs in a fault-free child.
// ---------------------------------------------------------------------------

class NetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::Enabled()) {
      GTEST_SKIP() << "build without REPT_FAULT_INJECTION";
    }
    fault::DisarmAll();
  }
  void TearDown() override { fault::DisarmAll(); }
};

TEST_F(NetFaultTest, LostAckReplayIsDedupedExactlyOnce) {
  const std::string dir = FreshDir("chaos_lost_ack");
  const std::string port_file = dir + "/port";
  const pid_t child = SpawnServerChild(dir, port_file, 0);
  ASSERT_GT(child, 0);
  const uint16_t port = WaitForPort(port_file);
  ASSERT_NE(port, 0);

  const EdgeStream stream = ChaosStream();
  const SessionSpec spec = ChaosSpec("lostack");
  ReconnectPolicy policy;
  policy.enabled = true;
  policy.base_backoff_ms = 10;
  ReptClient client;
  client.set_reconnect_policy(policy);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(client.CreateSession(spec).ok());
  const std::span<const Edge> batch(stream.edges().data(), 800);
  ASSERT_TRUE(client.Ingest(spec.name, batch, stream.num_vertices()).ok());

  // Drop the client's NEXT read: the INGEST request reaches the server and
  // is applied, but the ack is lost. The reconnect replays the frame; the
  // server must dedupe it — the batch lands exactly once.
  fault::Arm("net.recv_drop");
  const auto reply = client.Ingest(
      spec.name, std::span<const Edge>(stream.edges().data() + 800, 800));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(client.reconnects(), 1u);
  EXPECT_EQ(reply.value().deduped_frames, 1u) << "replay was re-applied";
  EXPECT_EQ(reply.value().last_applied_seq, 2u);
  EXPECT_EQ(reply.value().edges_ingested, 1600u);

  ASSERT_TRUE(client.Shutdown().ok());
  ReapChild(child);
}

TEST_F(NetFaultTest, DroppedRequestIsReplayedAndApplied) {
  const std::string dir = FreshDir("chaos_send_drop");
  const std::string port_file = dir + "/port";
  const pid_t child = SpawnServerChild(dir, port_file, 0);
  ASSERT_GT(child, 0);
  const uint16_t port = WaitForPort(port_file);
  ASSERT_NE(port, 0);

  const EdgeStream stream = ChaosStream();
  const SessionSpec spec = ChaosSpec("senddrop");
  ReconnectPolicy policy;
  policy.enabled = true;
  policy.base_backoff_ms = 10;
  ReptClient client;
  client.set_reconnect_policy(policy);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(client.CreateSession(spec).ok());

  // Drop the client's NEXT send: the request never reaches the server, so
  // the reconnect's replay is a first delivery — applied, not deduped.
  fault::Arm("net.send_drop");
  const auto reply = client.Ingest(
      spec.name, std::span<const Edge>(stream.edges().data(), 800),
      stream.num_vertices());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(client.reconnects(), 1u);
  EXPECT_EQ(reply.value().deduped_frames, 0u);
  EXPECT_EQ(reply.value().last_applied_seq, 1u);
  EXPECT_EQ(reply.value().edges_ingested, 800u);

  ASSERT_TRUE(client.Shutdown().ok());
  ReapChild(child);
}

}  // namespace
}  // namespace rept::net

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--be-server") == 0) {
    return rept::net::RunServerChild(argc, argv);
  }
  rept::net::g_test_binary = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

#endif  // _WIN32
