#include "baselines/wedge_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "exact/exact_counts.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/holme_kim.hpp"
#include "gen/regular.hpp"
#include "graph/graph_builder.hpp"

namespace rept {
namespace {

Graph FromStream(const EdgeStream& s) {
  GraphBuilder builder;
  builder.AddEdges(s.edges());
  return builder.Build(s.num_vertices());
}

TEST(WedgeSamplerTest, CompleteGraphAllWedgesClosed) {
  const Graph g = FromStream(gen::Complete(10));
  const WedgeSampler sampler(g);
  // W = n * C(n-1, 2) = 10 * 36 = 360; every wedge closed.
  EXPECT_DOUBLE_EQ(sampler.total_wedges(), 360.0);
  EXPECT_DOUBLE_EQ(sampler.EstimateClosureRate(500, 1), 1.0);
  // tau = W/3 = 120 = C(10,3).
  EXPECT_DOUBLE_EQ(sampler.EstimateGlobal(500, 1), 120.0);
}

TEST(WedgeSamplerTest, TriangleFreeGraphEstimatesZero) {
  const Graph g = FromStream(gen::CompleteBipartite(8, 8));
  const WedgeSampler sampler(g);
  EXPECT_GT(sampler.total_wedges(), 0.0);
  EXPECT_DOUBLE_EQ(sampler.EstimateGlobal(1000, 2), 0.0);
}

TEST(WedgeSamplerTest, StarHasWedgesNoTriangles) {
  const Graph g = FromStream(gen::Star(20));
  const WedgeSampler sampler(g);
  EXPECT_DOUBLE_EQ(sampler.total_wedges(), 190.0);  // C(20,2)
  EXPECT_DOUBLE_EQ(sampler.EstimateGlobal(300, 3), 0.0);
}

TEST(WedgeSamplerTest, DeterministicPerSeed) {
  const Graph g = FromStream(gen::HolmeKim(
      {.num_vertices = 200, .edges_per_vertex = 4, .triad_probability = 0.6},
      4));
  const WedgeSampler sampler(g);
  EXPECT_DOUBLE_EQ(sampler.EstimateGlobal(100, 7),
                   sampler.EstimateGlobal(100, 7));
}

TEST(WedgeSamplerTest, ConvergesToExactCount) {
  const EdgeStream s = gen::HolmeKim(
      {.num_vertices = 300, .edges_per_vertex = 6, .triad_probability = 0.7},
      5);
  const Graph g = FromStream(s);
  const ExactCounts exact = ComputeExactCounts(s, /*with_eta=*/false);
  const WedgeSampler sampler(g);
  // Binomial sampling: sd of the estimate <= W/3 * 0.5/sqrt(k).
  const uint64_t k = 40000;
  const double est = sampler.EstimateGlobal(k, 6);
  const double bound =
      4.0 * (sampler.total_wedges() / 3.0) * 0.5 / std::sqrt(double(k));
  EXPECT_NEAR(est, static_cast<double>(exact.tau), bound);
}

TEST(WedgeSamplerTest, MeanOverSeedsUnbiased) {
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 60, .num_edges = 500}, 8);
  const Graph g = FromStream(s);
  const ExactCounts exact = ComputeExactCounts(s, /*with_eta=*/false);
  const WedgeSampler sampler(g);
  double sum = 0.0;
  const int runs = 200;
  for (int r = 0; r < runs; ++r) sum += sampler.EstimateGlobal(200, 100 + r);
  EXPECT_NEAR(sum / runs, static_cast<double>(exact.tau),
              0.1 * static_cast<double>(exact.tau));
}

TEST(WedgeSamplerTest, EmptyGraphSafe) {
  const Graph g(5, {});
  const WedgeSampler sampler(g);
  EXPECT_DOUBLE_EQ(sampler.total_wedges(), 0.0);
  EXPECT_DOUBLE_EQ(sampler.EstimateGlobal(10, 1), 0.0);
}

}  // namespace
}  // namespace rept
