#include <gtest/gtest.h>

#include <thread>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace rept {
namespace {

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.Seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.Millis(), timer.Seconds() * 1000.0,
              timer.Seconds() * 50.0);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 0.015);
}

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, LevelFromNameParsesTheFourLevels) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(LogLevelFromName("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(LogLevelFromName("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(LogLevelFromName("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(LogLevelFromName("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(LoggingTest, LevelFromNameRejectsUnknownNamesUntouched) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_FALSE(LogLevelFromName("", &level));
  EXPECT_FALSE(LogLevelFromName("DEBUG", &level));
  EXPECT_FALSE(LogLevelFromName("verbose", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
}

TEST(LoggingTest, MacroCompilesAndRespectsLevel) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Below-threshold message: must be a no-op (nothing to assert beyond
  // not crashing; output goes to stderr).
  REPT_LOG(kInfo) << "suppressed " << 42;
  REPT_LOG(kError) << "visible";
  SetLogLevel(before);
}

}  // namespace
}  // namespace rept
