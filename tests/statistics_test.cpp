#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rept {
namespace {

TEST(RunningStatsTest, KnownValues) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.sample_variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i * 0.1;
    all.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(ErrorStatsTest, PerfectEstimatorHasZeroError) {
  ErrorStats stats(100.0);
  for (int i = 0; i < 5; ++i) stats.AddEstimate(100.0);
  EXPECT_DOUBLE_EQ(stats.mse(), 0.0);
  EXPECT_DOUBLE_EQ(stats.nrmse(), 0.0);
  EXPECT_DOUBLE_EQ(stats.relative_bias(), 0.0);
}

TEST(ErrorStatsTest, KnownNrmse) {
  // Estimates 90 and 110 around truth 100: MSE = 100, RMSE = 10, NRMSE 0.1.
  ErrorStats stats(100.0);
  stats.AddEstimate(90.0);
  stats.AddEstimate(110.0);
  EXPECT_DOUBLE_EQ(stats.mse(), 100.0);
  EXPECT_DOUBLE_EQ(stats.rmse(), 10.0);
  EXPECT_DOUBLE_EQ(stats.nrmse(), 0.1);
  EXPECT_DOUBLE_EQ(stats.relative_bias(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_estimate(), 100.0);
}

TEST(ErrorStatsTest, BiasDetected) {
  ErrorStats stats(100.0);
  stats.AddEstimate(120.0);
  stats.AddEstimate(120.0);
  EXPECT_DOUBLE_EQ(stats.relative_bias(), 0.2);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 5.0);
}

TEST(ChiSquareTest, UniformCountsGiveSmallStatistic) {
  std::vector<uint64_t> counts(10, 1000);
  EXPECT_DOUBLE_EQ(ChiSquareUniform(counts), 0.0);
}

TEST(ChiSquareTest, SkewedCountsGiveLargeStatistic) {
  std::vector<uint64_t> counts = {10000, 0, 0, 0};
  // Expected 2500 each: chi2 = (7500^2 + 3*2500^2)/2500 = 30000.
  EXPECT_DOUBLE_EQ(ChiSquareUniform(counts), 30000.0);
}

}  // namespace
}  // namespace rept
