#include "baselines/mascot.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "exact/exact_counts.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/regular.hpp"
#include "graph/permutation.hpp"

namespace rept {
namespace {

TEST(MascotTest, ProbabilityOneIsExact) {
  // p = 1 stores every edge: every triangle is counted exactly once as a
  // semi-triangle, and the 1/p^2 scaling is 1 -> exact tau and tau_v.
  const EdgeStream s = ShuffledCopy(gen::Complete(10), 3);
  const ExactCounts exact = ComputeExactCounts(s);
  MascotCounter mascot(1.0, /*seed=*/1);
  mascot.ProcessStream(s);
  EXPECT_DOUBLE_EQ(mascot.GlobalEstimate(), static_cast<double>(exact.tau));
  std::vector<double> local(s.num_vertices(), 0.0);
  mascot.AccumulateLocal(local, 1.0);
  for (VertexId v = 0; v < s.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(local[v], static_cast<double>(exact.tau_v[v]));
  }
}

TEST(MascotTest, DeterministicPerSeed) {
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 100, .num_edges = 1500}, 5);
  MascotCounter a(0.3, 42);
  MascotCounter b(0.3, 42);
  a.ProcessStream(s);
  b.ProcessStream(s);
  EXPECT_DOUBLE_EQ(a.GlobalEstimate(), b.GlobalEstimate());
  EXPECT_EQ(a.StoredEdges(), b.StoredEdges());
}

TEST(MascotTest, SampleSizeConcentratesAroundPE) {
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 200, .num_edges = 5000}, 6);
  MascotCounter mascot(0.2, 7);
  mascot.ProcessStream(s);
  const double expected = 0.2 * 5000;
  EXPECT_NEAR(static_cast<double>(mascot.StoredEdges()), expected,
              4.0 * std::sqrt(expected));  // ~4 sigma of Binomial
}

TEST(MascotTest, ScalingAppliedToEstimates) {
  // Force-stored wedge: with p=0.5 the raw count scales by 4.
  MascotCounter mascot(0.5, 1);
  // Feed until a configuration with a completion happens; use raw accessor
  // to verify the relationship estimate = raw / p^2 regardless of sampling.
  const EdgeStream s = ShuffledCopy(gen::Complete(12), 9);
  mascot.ProcessStream(s);
  EXPECT_DOUBLE_EQ(mascot.GlobalEstimate(), mascot.RawGlobal() * 4.0);
}

TEST(MascotTest, FactoryProducesWorkingInstances) {
  const EdgeStream s = ShuffledCopy(gen::Complete(8), 1);
  MascotFactory factory(1.0);
  auto counter = factory.Create(123, factory.BudgetFor(s.size()));
  counter->ProcessStream(s);
  EXPECT_DOUBLE_EQ(counter->GlobalEstimate(), 56.0);  // C(8,3)
  EXPECT_EQ(factory.MethodName(), "MASCOT");
}

TEST(MascotTest, TriangleFreeGraphGivesZero) {
  const EdgeStream s = gen::CompleteBipartite(10, 10);
  MascotCounter mascot(0.7, 11);
  mascot.ProcessStream(s);
  EXPECT_DOUBLE_EQ(mascot.GlobalEstimate(), 0.0);
}

}  // namespace
}  // namespace rept
