// Shared test helpers: independent brute-force reference implementations of
// tau / tau_v / eta / eta_v. Deliberately naive (O(n^3) / O(T^2)) so they
// share no code or algorithmic ideas with the library implementations they
// validate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "graph/edge_stream.hpp"
#include "graph/types.hpp"

namespace rept::testing {

struct BruteForceCounts {
  uint64_t tau = 0;
  std::vector<uint64_t> tau_v;
  uint64_t eta = 0;
  std::vector<uint64_t> eta_v;
};

struct BruteTriangle {
  VertexId a, b, c;             // sorted vertex ids
  uint64_t arrivals[3];         // arrival indices of edges ab, ac, bc
  uint64_t last_arrival;        // max of arrivals
};

/// O(n^3)-ish triangle enumeration from an adjacency matrix built off the
/// stream, plus O(T^2) eta pair counting straight from the definition.
inline BruteForceCounts BruteForce(const EdgeStream& stream) {
  const size_t n = stream.num_vertices();
  BruteForceCounts out;
  out.tau_v.assign(n, 0);
  out.eta_v.assign(n, 0);

  // Edge -> first arrival index (ignores duplicates like GraphBuilder does).
  std::map<std::pair<VertexId, VertexId>, uint64_t> arrival;
  uint64_t index = 0;
  for (const Edge& e : stream) {
    if (e.u != e.v) {
      const auto key = std::minmax(e.u, e.v);
      arrival.emplace(key, index);
    }
    ++index;
  }
  std::vector<std::set<VertexId>> adj(n);
  for (const auto& [key, idx] : arrival) {
    adj[key.first].insert(key.second);
    adj[key.second].insert(key.first);
  }

  std::vector<BruteTriangle> triangles;
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b : adj[a]) {
      if (b <= a) continue;
      for (VertexId c : adj[b]) {
        if (c <= b) continue;
        if (adj[a].count(c) == 0) continue;
        BruteTriangle t;
        t.a = a;
        t.b = b;
        t.c = c;
        t.arrivals[0] = arrival.at({a, b});
        t.arrivals[1] = arrival.at({a, c});
        t.arrivals[2] = arrival.at({b, c});
        t.last_arrival =
            std::max({t.arrivals[0], t.arrivals[1], t.arrivals[2]});
        triangles.push_back(t);
        ++out.tau;
        ++out.tau_v[a];
        ++out.tau_v[b];
        ++out.tau_v[c];
      }
    }
  }

  // eta straight from the definition: pairs of distinct triangles sharing an
  // edge g with g the last stream edge of neither.
  auto edges_of = [](const BruteTriangle& t) {
    return std::vector<std::pair<std::pair<VertexId, VertexId>, uint64_t>>{
        {{t.a, t.b}, t.arrivals[0]},
        {{t.a, t.c}, t.arrivals[1]},
        {{t.b, t.c}, t.arrivals[2]}};
  };
  for (size_t i = 0; i < triangles.size(); ++i) {
    for (size_t j = i + 1; j < triangles.size(); ++j) {
      for (const auto& [ge, ga] : edges_of(triangles[i])) {
        for (const auto& [he, ha] : edges_of(triangles[j])) {
          if (ge != he) continue;
          // Shared edge found (triangle pairs share at most one edge).
          if (ga != triangles[i].last_arrival &&
              ha != triangles[j].last_arrival) {
            ++out.eta;
            // eta_v: pairs of triangles both containing v. The shared edge
            // is incident to v for distinct triangles.
            const VertexId shared_u = ge.first;
            const VertexId shared_v = ge.second;
            // v must be in both triangles: v in {a,b,c} of both.
            for (VertexId v : {shared_u, shared_v}) {
              auto contains = [v](const BruteTriangle& t) {
                return t.a == v || t.b == v || t.c == v;
              };
              if (contains(triangles[i]) && contains(triangles[j])) {
                ++out.eta_v[v];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

/// Builds a small stream by hand.
inline EdgeStream MakeStream(VertexId num_vertices,
                             std::vector<Edge> edges,
                             std::string name = "manual") {
  return EdgeStream(std::move(name), num_vertices, std::move(edges));
}

}  // namespace rept::testing
