#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_builder.hpp"
#include "graph/permutation.hpp"
#include "graph/graph_stats.hpp"

namespace rept {
namespace {

TEST(EdgeTest, CanonicalAndKey) {
  EXPECT_EQ(Edge(3, 1).Canonical().u, 1u);
  EXPECT_EQ(Edge(3, 1).Canonical().v, 3u);
  EXPECT_EQ(EdgeKey(3, 1), EdgeKey(1, 3));
  EXPECT_NE(EdgeKey(1, 2), EdgeKey(1, 3));
  EXPECT_TRUE(Edge(1, 3) == Edge(3, 1));
  EXPECT_TRUE(Edge(2, 2).IsSelfLoop());
}

TEST(GraphTest, TriangleGraphBasics) {
  const Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, NeighborsSortedWithParallelArrivals) {
  // Stream order: (2,0) first, then (0,1), then (0,3).
  const Graph g(4, {{2, 0}, {0, 1}, {0, 3}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
  const auto arrivals = g.neighbor_arrival(0);
  EXPECT_EQ(arrivals[0], 1u);  // edge (0,1) arrived second
  EXPECT_EQ(arrivals[1], 0u);  // edge (2,0) arrived first
  EXPECT_EQ(arrivals[2], 2u);  // edge (0,3) arrived third
}

TEST(GraphTest, IsolatedVerticesAllowed) {
  const Graph g(10, {{0, 1}});
  EXPECT_EQ(g.degree(5), 0u);
  EXPECT_TRUE(g.neighbors(5).empty());
}

TEST(GraphBuilderTest, DropsSelfLoopsAndDuplicates) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 1);  // self loop
  builder.AddEdge(1, 0);  // duplicate (reversed)
  builder.AddEdge(0, 1);  // duplicate
  builder.AddEdge(1, 2);
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(builder.stats().input_edges, 5u);
  EXPECT_EQ(builder.stats().self_loops_dropped, 1u);
  EXPECT_EQ(builder.stats().duplicates_dropped, 2u);
  // First-arrival order preserved.
  EXPECT_EQ(g.edges()[0].u, 0u);
  EXPECT_EQ(g.edges()[1].v, 2u);
}

TEST(GraphBuilderTest, ExplicitVertexCount) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  const Graph g = builder.Build(100);
  EXPECT_EQ(g.num_vertices(), 100u);
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder;
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(PermutationTest, ShuffleIsSeededPermutation) {
  EdgeStream stream("s", 10,
                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  EdgeStream a = ShuffledCopy(stream, 7);
  EdgeStream b = ShuffledCopy(stream, 7);
  EdgeStream c = ShuffledCopy(stream, 8);
  EXPECT_EQ(a.size(), stream.size());
  // Same seed -> identical order; different seed -> (almost surely) not.
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(EdgeKey(a[i]), EdgeKey(b[i]));
  }
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (EdgeKey(a[i]) != EdgeKey(c[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
  // Multiset of edges preserved.
  auto keys = [](const EdgeStream& s) {
    std::vector<uint64_t> k;
    for (const Edge& e : s) k.push_back(EdgeKey(e));
    std::sort(k.begin(), k.end());
    return k;
  };
  EXPECT_EQ(keys(a), keys(stream));
}

TEST(GraphStatsTest, TriangleStats) {
  const Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_vertices, 3u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 2.0);
  EXPECT_EQ(stats.num_wedges, 3u);
  EXPECT_FALSE(FormatGraphStats("tri", stats).empty());
}

}  // namespace
}  // namespace rept
