// Negative-space contract of the checkpoint format: any damaged file —
// truncated at any point (including every frame boundary), any single
// flipped byte, wrong magic, unknown version, trailing garbage — fails
// restore with a structured Status (Corruption/IOError), never UB or a
// crash. Runs under ASan/UBSan/TSan in CI.
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baseline_systems.hpp"
#include "core/rept_estimator.hpp"
#include "core/rept_session.hpp"
#include "gen/holme_kim.hpp"
#include "persist/checkpoint.hpp"
#include "persist/checkpoint_io.hpp"
#include "util/fault_injection.hpp"

namespace rept {
namespace {

EdgeStream SmallStream() {
  gen::HolmeKimParams params;
  params.num_vertices = 120;
  params.edges_per_vertex = 3;
  params.triad_probability = 0.5;
  return gen::HolmeKim(params, /*seed=*/31);
}

ReptConfig SmallConfig() {
  ReptConfig config;
  config.m = 4;
  config.c = 9;  // Remainder group: pair registers in the payload too.
  return config;
}

// A valid serialized checkpoint of a mid-stream REPT session.
std::string ValidCheckpointBytes() {
  const EdgeStream stream = SmallStream();
  ReptSession session(SmallConfig(), /*seed=*/77, nullptr);
  session.NoteVertices(stream.num_vertices());
  session.Ingest(
      std::span<const Edge>(stream.edges().data(), stream.size() / 2));
  std::stringstream buffer;
  EXPECT_TRUE(WriteCheckpointStream(session, buffer).ok());
  return buffer.str();
}

// Restores `bytes` into a fresh session; returns the status.
Status TryRestore(const std::string& bytes) {
  ReptSession session(SmallConfig(), /*seed=*/77, nullptr);
  std::stringstream buffer(bytes);
  return ReadCheckpointStream(session, buffer);
}

// Frame boundaries of a checkpoint: offsets where the header and each
// section frame end, parsed straight from the layout spec.
std::vector<size_t> FrameBoundaries(const std::string& bytes) {
  std::vector<size_t> boundaries;
  size_t at = 8 + 4 + 8;  // magic + version + fingerprint
  boundaries.push_back(at);
  while (at + 12 <= bytes.size()) {
    uint64_t len = 0;
    std::memcpy(&len, bytes.data() + at + 4, sizeof(len));
    at += 4 + 8 + static_cast<size_t>(len) + 4;  // id + len + payload + crc
    boundaries.push_back(std::min(at, bytes.size()));
    if (at >= bytes.size()) break;
  }
  return boundaries;
}

TEST(CheckpointCorruptionTest, TruncationAtEveryFrameBoundaryFails) {
  const std::string bytes = ValidCheckpointBytes();
  ASSERT_TRUE(TryRestore(bytes).ok()) << "baseline must restore";
  for (const size_t boundary : FrameBoundaries(bytes)) {
    for (const int64_t delta : {int64_t{-1}, int64_t{0}, int64_t{1}}) {
      const int64_t keep = static_cast<int64_t>(boundary) + delta;
      if (keep < 0 || keep >= static_cast<int64_t>(bytes.size())) continue;
      const Status st =
          TryRestore(bytes.substr(0, static_cast<size_t>(keep)));
      EXPECT_FALSE(st.ok()) << "kept " << keep << " of " << bytes.size();
      EXPECT_EQ(st.code(), StatusCode::kCorruption);
    }
  }
}

TEST(CheckpointCorruptionTest, TruncationAtArbitraryOffsetsFails) {
  const std::string bytes = ValidCheckpointBytes();
  for (size_t keep = 0; keep < bytes.size(); keep += 257) {
    const Status st = TryRestore(bytes.substr(0, keep));
    EXPECT_FALSE(st.ok()) << "kept " << keep;
  }
}

TEST(CheckpointCorruptionTest, EverySingleByteFlipIsDetected) {
  // Every byte of the file is covered by a CRC (payloads by the section
  // CRC, frame fields and the header by the file CRC), so no flip may
  // restore successfully — walk a stride and hit a few hand-picked spots.
  const std::string bytes = ValidCheckpointBytes();
  std::vector<size_t> offsets = {0, 7, 8, 11, 12, 19, 20, 24, 32,
                                 bytes.size() - 1, bytes.size() - 5,
                                 bytes.size() - 13};
  for (size_t at = 40; at < bytes.size(); at += 101) offsets.push_back(at);
  for (const size_t at : offsets) {
    std::string flipped = bytes;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x40);
    const Status st = TryRestore(flipped);
    EXPECT_FALSE(st.ok()) << "flip at " << at;
  }
}

TEST(CheckpointCorruptionTest, WrongMagicAndVersionAreRejected) {
  const std::string bytes = ValidCheckpointBytes();
  {
    std::string bad = bytes;
    bad[0] = 'X';
    const Status st = TryRestore(bad);
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
    EXPECT_NE(st.message().find("magic"), std::string::npos);
  }
  {
    std::string bad = bytes;
    bad[8] = static_cast<char>(kCheckpointFormatVersion + 1);
    const Status st = TryRestore(bad);
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
    EXPECT_NE(st.message().find("version"), std::string::npos);
  }
}

TEST(CheckpointCorruptionTest, EmptyAndTinyFilesAreRejected) {
  EXPECT_EQ(TryRestore("").code(), StatusCode::kCorruption);
  EXPECT_EQ(TryRestore("REPT").code(), StatusCode::kCorruption);
  EXPECT_EQ(TryRestore(std::string(kCheckpointMagic, 8)).code(),
            StatusCode::kCorruption);
}

TEST(CheckpointCorruptionTest, TrailingGarbageInFileIsRejected) {
  // Trailing bytes are a file-level invariant: LoadCheckpoint rejects
  // them, while the transport-stream reader leaves them for the next
  // consumer (back-to-back checkpoints are tested in the roundtrip suite).
  const std::string path = ::testing::TempDir() + "/trailing.ckpt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::string bytes = ValidCheckpointBytes() + "junk";
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ReptSession session(SmallConfig(), /*seed=*/77, nullptr);
  const Status st = LoadCheckpoint(session, path);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("trailing"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointCorruptionTest, AbsurdSectionLengthFailsBeforeAllocating) {
  // Blow up the first section's length prefix to ~2^63: the reader must
  // reject it against the file size instead of trying to allocate.
  std::string bytes = ValidCheckpointBytes();
  const size_t len_offset = 8 + 4 + 8 + 4;  // header + section id
  bytes[len_offset + 7] = '\x7f';
  const Status st = TryRestore(bytes);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(CheckpointCorruptionTest, EnsembleCheckpointCorruptionFails) {
  const EdgeStream stream = SmallStream();
  const auto system = MakeParallelTriest(6, 3);
  SessionOptions options;
  options.expected_edges = stream.size();
  options.expected_vertices = stream.num_vertices();
  auto writer = system->CreateSession(5, nullptr, options).value();
  writer->NoteVertices(stream.num_vertices());
  writer->Ingest(
      std::span<const Edge>(stream.edges().data(), stream.size() / 2));
  std::stringstream buffer;
  ASSERT_TRUE(WriteCheckpointStream(*writer, buffer).ok());
  const std::string bytes = buffer.str();

  auto restore = [&](const std::string& mutated) {
    auto session = system->CreateSession(5, nullptr, options).value();
    std::stringstream in(mutated);
    return ReadCheckpointStream(*session, in);
  };
  ASSERT_TRUE(restore(bytes).ok());
  for (size_t keep = 16; keep < bytes.size(); keep += 211) {
    EXPECT_FALSE(restore(bytes.substr(0, keep)).ok()) << "kept " << keep;
  }
  for (size_t at = 21; at < bytes.size(); at += 173) {
    std::string flipped = bytes;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x10);
    EXPECT_FALSE(restore(flipped).ok()) << "flip at " << at;
  }
}

TEST(CheckpointCorruptionTest, InspectSurvivesCorruptFiles) {
  // The dump tool's inspector reports damage instead of crashing, and
  // still describes the readable prefix.
  const std::string path = ::testing::TempDir() + "/inspect_corrupt.ckpt";
  const std::string bytes = ValidCheckpointBytes();
  auto write_file = [&path](const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
  };

  write_file(bytes);
  const CheckpointInfo good = InspectCheckpoint(path);
  EXPECT_TRUE(good.error.ok()) << good.error.ToString();
  EXPECT_EQ(good.kind, "REPT");
  EXPECT_EQ(good.num_instances, SmallConfig().c);
  EXPECT_EQ(good.edges_ingested, SmallStream().size() / 2);
  ASSERT_EQ(good.sections.size(), 1u + SmallConfig().c);
  EXPECT_EQ(good.sections[1].instance, 0);

  write_file(bytes.substr(0, bytes.size() / 2));
  const CheckpointInfo truncated = InspectCheckpoint(path);
  EXPECT_FALSE(truncated.error.ok());
  EXPECT_EQ(truncated.kind, "REPT");  // Prefix still described.

  write_file("garbage");
  EXPECT_FALSE(InspectCheckpoint(path).error.ok());
  std::remove(path.c_str());
}

// Injected I/O failures at every SaveCheckpoint stage: the save must fail
// with a structured Status and the previous checkpoint file must come
// through byte-identical — the atomic tmp+rename contract under fire.
// Compiled against the no-op shims (and skipped) unless the build carries
// -DREPT_FAULT_INJECTION=ON, as the CI chaos legs do.
class CheckpointFaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::Enabled()) {
      GTEST_SKIP() << "build without REPT_FAULT_INJECTION";
    }
    fault::DisarmAll();
  }
  void TearDown() override { fault::DisarmAll(); }

  static std::string FileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  static bool FileExists(const std::string& path) {
    return std::ifstream(path, std::ios::binary).good();
  }
};

TEST_F(CheckpointFaultInjectionTest,
       SaveFailureAtEveryStageLeavesPreviousCheckpointIntact) {
  const EdgeStream stream = SmallStream();
  ReptSession session(SmallConfig(), /*seed=*/77, nullptr);
  session.NoteVertices(stream.num_vertices());
  session.Ingest(
      std::span<const Edge>(stream.edges().data(), stream.size() / 2));

  const std::string path = ::testing::TempDir() + "/fault_save.ckpt";
  std::remove(path.c_str());
  ASSERT_TRUE(SaveCheckpoint(session, path).ok());
  const std::string before = FileBytes(path);
  ASSERT_FALSE(before.empty());

  // Advance the session so a (wrongly) committed save would differ.
  session.Ingest(std::span<const Edge>(
      stream.edges().data() + stream.size() / 2,
      stream.size() - stream.size() / 2));

  for (const char* site : {"checkpoint.open", "checkpoint.write",
                           "checkpoint.fsync", "checkpoint.rename"}) {
    fault::Arm(site);
    const Status st = SaveCheckpoint(session, path);
    EXPECT_EQ(st.code(), StatusCode::kIOError) << site;
    EXPECT_EQ(FileBytes(path), before)
        << site << ": previous checkpoint was damaged";
    EXPECT_FALSE(FileExists(path + ".tmp"))
        << site << ": failed save leaked its temp file";
    fault::Disarm(site);

    // The old file must still restore — and must still hold the
    // mid-stream state, not the advanced one.
    ReptSession restored(SmallConfig(), /*seed=*/77, nullptr);
    ASSERT_TRUE(LoadCheckpoint(restored, path).ok()) << site;
    EXPECT_EQ(restored.edges_ingested(), stream.size() / 2) << site;
  }

  // With no faults armed the save commits and the bytes advance.
  ASSERT_TRUE(SaveCheckpoint(session, path).ok());
  EXPECT_NE(FileBytes(path), before);
  std::remove(path.c_str());
}

TEST_F(CheckpointFaultInjectionTest,
       CrashBeforeRenameLeavesOrphanTmpAndPreviousCheckpoint) {
  const EdgeStream stream = SmallStream();
  ReptSession session(SmallConfig(), /*seed=*/77, nullptr);
  session.NoteVertices(stream.num_vertices());
  session.Ingest(
      std::span<const Edge>(stream.edges().data(), stream.size() / 2));

  const std::string path = ::testing::TempDir() + "/fault_crash.ckpt";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  ASSERT_TRUE(SaveCheckpoint(session, path).ok());
  const std::string before = FileBytes(path);

  fault::Arm("checkpoint.crash_before_rename");
  EXPECT_EQ(SaveCheckpoint(session, path).code(), StatusCode::kIOError);

  // The modeled crash leaves the fully written temp file behind (the
  // startup reaper's input) and the committed checkpoint untouched.
  EXPECT_TRUE(FileExists(path + ".tmp"));
  EXPECT_EQ(FileBytes(path), before);
  ReptSession restored(SmallConfig(), /*seed=*/77, nullptr);
  EXPECT_TRUE(LoadCheckpoint(restored, path).ok());

  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace rept
