#include "core/rept_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "exact/exact_counts.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/holme_kim.hpp"
#include "gen/regular.hpp"
#include "graph/permutation.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

ReptConfig Config(uint32_t m, uint32_t c) {
  ReptConfig cfg;
  cfg.m = m;
  cfg.c = c;
  return cfg;
}

EdgeStream TestStream(uint64_t seed = 3) {
  return ShuffledCopy(
      gen::HolmeKim(
          {.num_vertices = 300, .edges_per_vertex = 6, .triad_probability = 0.6},
          seed),
      seed + 1);
}

TEST(ReptEstimatorTest, NameEncodesConfig) {
  EXPECT_EQ(ReptEstimator(Config(10, 4)).Name(), "REPT(m=10,c=4)");
  EXPECT_EQ(ReptEstimator(Config(10, 4)).NumProcessors(), 4u);
}

TEST(ReptEstimatorTest, DeterministicPerSeed) {
  const EdgeStream s = TestStream();
  const ReptEstimator est(Config(5, 3));
  const TriangleEstimates a = est.Run(s, 42, nullptr);
  const TriangleEstimates b = est.Run(s, 42, nullptr);
  EXPECT_DOUBLE_EQ(a.global, b.global);
  EXPECT_EQ(a.local, b.local);
  const TriangleEstimates c = est.Run(s, 43, nullptr);
  EXPECT_NE(a.global, c.global);
}

TEST(ReptEstimatorTest, ThreadCountDoesNotChangeResults) {
  const EdgeStream s = TestStream();
  for (uint32_t c : {3u, 10u, 23u}) {  // c<m, c=2m, c>m with remainder
    const ReptEstimator est(Config(5, c));
    const TriangleEstimates serial = est.Run(s, 7, nullptr);
    ThreadPool pool2(2);
    ThreadPool pool8(8);
    const TriangleEstimates p2 = est.Run(s, 7, &pool2);
    const TriangleEstimates p8 = est.Run(s, 7, &pool8);
    EXPECT_DOUBLE_EQ(serial.global, p2.global) << "c=" << c;
    EXPECT_DOUBLE_EQ(serial.global, p8.global) << "c=" << c;
    EXPECT_EQ(serial.local, p2.local) << "c=" << c;
    EXPECT_EQ(serial.local, p8.local) << "c=" << c;
  }
}

TEST(ReptEstimatorTest, DispatchModesAreIdentical) {
  // Routed, broadcast, and fused are scheduling strategies over the same
  // seeded state: results must match bit for bit in every REPT regime.
  const EdgeStream s = TestStream();
  for (uint32_t c : {4u, 10u, 17u}) {
    ReptConfig cfg = Config(5, c);
    cfg.dispatch = DispatchMode::kRouted;
    const TriangleEstimates routed = ReptEstimator(cfg).Run(s, 9, nullptr);
    cfg.dispatch = DispatchMode::kBroadcast;
    const TriangleEstimates broadcast = ReptEstimator(cfg).Run(s, 9, nullptr);
    cfg.dispatch = DispatchMode::kFused;
    const TriangleEstimates fused = ReptEstimator(cfg).Run(s, 9, nullptr);
    EXPECT_DOUBLE_EQ(routed.global, broadcast.global) << "c=" << c;
    EXPECT_EQ(routed.local, broadcast.local) << "c=" << c;
    EXPECT_DOUBLE_EQ(routed.global, fused.global) << "c=" << c;
    EXPECT_EQ(routed.local, fused.local) << "c=" << c;
  }
}

TEST(ReptEstimatorTest, LocalSumsToThreeTimesGlobalForSmallC) {
  // For c <= m every tallied semi-triangle contributes to exactly three
  // nodes with the same scale, so sum_v tau_v_hat = 3 tau_hat.
  const EdgeStream s = TestStream();
  const ReptEstimator est(Config(4, 3));
  const TriangleEstimates e = est.Run(s, 11, nullptr);
  double local_sum = 0.0;
  for (double x : e.local) local_sum += x;
  EXPECT_NEAR(local_sum, 3.0 * e.global, 1e-6 * std::max(1.0, local_sum));
}

TEST(ReptEstimatorTest, LocalSumsToThreeTimesGlobalForFullGroups) {
  const EdgeStream s = TestStream();
  const ReptEstimator est(Config(4, 8));  // c = 2m
  const TriangleEstimates e = est.Run(s, 11, nullptr);
  double local_sum = 0.0;
  for (double x : e.local) local_sum += x;
  EXPECT_NEAR(local_sum, 3.0 * e.global, 1e-6 * std::max(1.0, local_sum));
}

TEST(ReptEstimatorTest, DetailExposesAlgorithm2Intermediates) {
  const EdgeStream s = TestStream();
  const ReptEstimator est(Config(4, 10));  // c1=2, c2=2
  const auto detail = est.RunDetailed(s, 13, nullptr);
  EXPECT_TRUE(detail.used_combination);
  EXPECT_EQ(detail.instance_tallies.size(), 10u);
  EXPECT_GE(detail.w1, 0.0);
  EXPECT_GE(detail.w2, 0.0);
  EXPECT_GE(detail.eta_hat, 0.0);
  // The combination is a convex mix of the two estimates.
  const double lo = std::min(detail.tau_hat1, detail.tau_hat2);
  const double hi = std::max(detail.tau_hat1, detail.tau_hat2);
  EXPECT_GE(detail.estimates.global, lo - 1e-9);
  EXPECT_LE(detail.estimates.global, hi + 1e-9);
}

TEST(ReptEstimatorTest, SmallCPathHasNoCombination) {
  const EdgeStream s = TestStream();
  const auto detail =
      ReptEstimator(Config(8, 8)).RunDetailed(s, 17, nullptr);
  EXPECT_FALSE(detail.used_combination);
}

TEST(ReptEstimatorTest, TrackLocalOffLeavesLocalEmpty) {
  ReptConfig cfg = Config(5, 3);
  cfg.track_local = false;
  const TriangleEstimates e =
      ReptEstimator(cfg).Run(TestStream(), 19, nullptr);
  EXPECT_TRUE(e.local.empty());
  EXPECT_GE(e.global, 0.0);
}

TEST(ReptEstimatorTest, StrictEtaOnlyAffectsCombinedPath) {
  const EdgeStream s = TestStream();
  // c <= m: eta plays no role, strict flag must not change anything.
  {
    ReptConfig cfg = Config(6, 4);
    const double plain = ReptEstimator(cfg).Run(s, 23, nullptr).global;
    cfg.strict_eta_pairs = true;
    const double strict = ReptEstimator(cfg).Run(s, 23, nullptr).global;
    EXPECT_DOUBLE_EQ(plain, strict);
  }
  // Combined path: eta_hat differs between the modes (estimates may differ).
  {
    ReptConfig cfg = Config(4, 10);
    const auto plain = ReptEstimator(cfg).RunDetailed(s, 23, nullptr);
    cfg.strict_eta_pairs = true;
    const auto strict = ReptEstimator(cfg).RunDetailed(s, 23, nullptr);
    // Paper-faithful counting registers extra (last-edge) pairs.
    EXPECT_GE(plain.eta_hat, strict.eta_hat);
  }
}

TEST(ReptEstimatorTest, ZeroTriangleStreamGivesZero) {
  const EdgeStream s = gen::CompleteBipartite(30, 30);
  for (uint32_t c : {2u, 5u, 12u}) {
    const TriangleEstimates e =
        ReptEstimator(Config(5, c)).Run(s, 29, nullptr);
    EXPECT_DOUBLE_EQ(e.global, 0.0) << "c=" << c;
    for (double x : e.local) EXPECT_DOUBLE_EQ(x, 0.0);
  }
}

TEST(ReptEstimatorTest, CloseToTruthAtHighSamplingRate) {
  // m=2 keeps half the edges per processor; with c=2 the estimate should be
  // within a few relative sigma of the truth.
  const EdgeStream s = TestStream(77);
  const ExactCounts exact = ComputeExactCounts(s);
  const ReptEstimator est(Config(2, 2));
  double sum = 0.0;
  const int runs = 20;
  for (int r = 0; r < runs; ++r) sum += est.Run(s, 100 + r, nullptr).global;
  const double mean = sum / runs;
  EXPECT_NEAR(mean, static_cast<double>(exact.tau),
              0.15 * static_cast<double>(exact.tau));
}

}  // namespace
}  // namespace rept
