// Session-semantics contract of the streaming API (ISSUE 2):
//  * snapshot-equivalence — a full-ingest Snapshot() is bit-identical to the
//    legacy one-shot Run() for REPT and every baseline, across pool sizes;
//  * chunk-boundary invariance — ingesting in batches of 1, 7, or 4096
//    yields identical tallies;
//  * anytime property — mid-stream snapshots neither perturb the final
//    result nor bias the prefix estimate.
#include "core/streaming_estimator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "baselines/baseline_systems.hpp"
#include "baselines/ensemble_session.hpp"
#include "core/rept_estimator.hpp"
#include "core/rept_session.hpp"
#include "exact/exact_counts.hpp"
#include "gen/holme_kim.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

EdgeStream FixedStream() {
  gen::HolmeKimParams params;
  params.num_vertices = 300;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.6;
  return gen::HolmeKim(params, /*seed=*/4321);
}

// Every estimator family and REPT regime: Algorithm 1 (c <= m), full groups
// (c % m == 0), Algorithm 2 (remainder group), every dispatch schedule
// (routed is MakeRept's default), and the averaged baselines incl. their
// single-instance "-S" variants.
std::vector<std::unique_ptr<EstimatorSystem>> AllSystems() {
  std::vector<std::unique_ptr<EstimatorSystem>> systems;
  systems.push_back(MakeRept(5, 4));
  systems.push_back(MakeRept(5, 10));
  systems.push_back(MakeRept(5, 13));
  for (const DispatchMode mode :
       {DispatchMode::kBroadcast, DispatchMode::kFused}) {
    ReptConfig config;
    config.m = 5;
    config.c = 13;
    config.dispatch = mode;
    systems.push_back(std::make_unique<ReptEstimator>(config));
  }
  systems.push_back(MakeParallelMascot(8, 4));
  systems.push_back(MakeParallelTriest(8, 4));
  systems.push_back(MakeParallelGps(8, 4));
  systems.push_back(MakeMascotS(8, 4));
  systems.push_back(MakeTriestS(8, 4));
  systems.push_back(MakeGpsS(8, 4));
  return systems;
}

SessionOptions OptionsFor(const EdgeStream& stream) {
  SessionOptions options;
  options.expected_edges = stream.size();
  options.expected_vertices = stream.num_vertices();
  return options;
}

void IngestChunked(StreamingEstimator& session, const EdgeStream& stream,
                   size_t chunk) {
  session.NoteVertices(stream.num_vertices());
  const std::vector<Edge>& edges = stream.edges();
  for (size_t i = 0; i < edges.size(); i += chunk) {
    const size_t n = std::min(chunk, edges.size() - i);
    session.Ingest(std::span<const Edge>(edges.data() + i, n));
  }
}

void ExpectIdentical(const TriangleEstimates& a, const TriangleEstimates& b,
                     const std::string& label) {
  EXPECT_EQ(a.global, b.global) << label;
  EXPECT_EQ(a.local, b.local) << label;
}

TEST(StreamingSessionTest, FullIngestSnapshotMatchesRunAcrossPools) {
  const EdgeStream stream = FixedStream();
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  ThreadPool pool_hw(0);  // Hardware concurrency.
  ThreadPool* pools[] = {nullptr, &pool1, &pool4, &pool_hw};

  for (const auto& system : AllSystems()) {
    // The Run() reference itself must not depend on the pool.
    const TriangleEstimates reference = system->Run(stream, 99, nullptr);
    for (ThreadPool* pool : pools) {
      ExpectIdentical(system->Run(stream, 99, pool), reference,
                      system->Name() + " Run/pool");
      const auto session =
          system->CreateSession(99, pool, OptionsFor(stream)).value();
      IngestChunked(*session, stream, /*chunk=*/7);
      ExpectIdentical(session->Snapshot(), reference,
                      system->Name() + " session/pool");
      EXPECT_EQ(session->edges_ingested(), stream.size()) << system->Name();
      EXPECT_EQ(session->num_vertices(), stream.num_vertices())
          << system->Name();
    }
  }
}

TEST(StreamingSessionTest, ChunkBoundariesAreInvariant) {
  const EdgeStream stream = FixedStream();
  ThreadPool pool(3);

  for (const auto& system : AllSystems()) {
    const auto whole =
        system->CreateSession(7, &pool, OptionsFor(stream)).value();
    whole->Ingest(stream);
    const TriangleEstimates reference = whole->Snapshot();
    for (const size_t chunk : {size_t{1}, size_t{7}, size_t{4096}}) {
      const auto session =
          system->CreateSession(7, &pool, OptionsFor(stream)).value();
      IngestChunked(*session, stream, chunk);
      ExpectIdentical(session->Snapshot(), reference,
                      system->Name() + " chunk=" + std::to_string(chunk));
      EXPECT_EQ(session->StoredEdges(), whole->StoredEdges())
          << system->Name() << " chunk=" << chunk;
    }
  }
}

TEST(StreamingSessionTest, ReptTalliesInvariantToChunkingAndPool) {
  const EdgeStream stream = FixedStream();
  ReptConfig config;
  config.m = 5;
  config.c = 13;  // Algorithm 2: the most schedule-sensitive path.
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  ThreadPool pool_hw(0);  // Hardware concurrency.
  ThreadPool* pools[] = {&pool1, &pool4, &pool_hw};

  ReptSession serial(config, /*seed=*/11, nullptr);
  serial.Ingest(stream);
  const auto reference = serial.SnapshotDetailed();
  EXPECT_TRUE(reference.used_combination);

  for (ThreadPool* pool : pools) {
    for (const size_t chunk : {size_t{1}, size_t{7}, size_t{4096}}) {
      ReptSession session(config, /*seed=*/11, pool);
      IngestChunked(session, stream, chunk);
      const auto detail = session.SnapshotDetailed();
      EXPECT_EQ(detail.instance_tallies, reference.instance_tallies)
          << "chunk=" << chunk << " threads=" << pool->num_threads();
      EXPECT_EQ(detail.tau_hat1, reference.tau_hat1);
      EXPECT_EQ(detail.tau_hat2, reference.tau_hat2);
      EXPECT_EQ(detail.eta_hat, reference.eta_hat);
    }
  }
}

TEST(StreamingSessionTest, MidStreamSnapshotDoesNotPerturbFinalResult) {
  const EdgeStream stream = FixedStream();
  ThreadPool pool(2);

  for (const auto& system : AllSystems()) {
    const TriangleEstimates reference = system->Run(stream, 5, &pool);
    const auto session =
        system->CreateSession(5, &pool, OptionsFor(stream)).value();
    session->NoteVertices(stream.num_vertices());
    const std::vector<Edge>& edges = stream.edges();
    const size_t half = edges.size() / 2;
    session->Ingest(std::span<const Edge>(edges.data(), half));
    (void)session->Snapshot();  // Anytime: must be side-effect free.
    session->Ingest(
        std::span<const Edge>(edges.data() + half, edges.size() - half));
    ExpectIdentical(session->Snapshot(), reference, system->Name());
  }
}

TEST(StreamingSessionTest, MidStreamSnapshotIsUnbiasedOnPrefix) {
  const EdgeStream stream = FixedStream();
  const size_t prefix_len = stream.size() / 2;
  const EdgeStream prefix(
      "prefix", stream.num_vertices(),
      std::vector<Edge>(stream.edges().begin(),
                        stream.edges().begin() +
                            static_cast<int64_t>(prefix_len)));
  const ExactCounts exact = ComputeExactCounts(prefix, /*with_eta=*/false);
  ASSERT_GT(exact.tau, 0u);

  const auto rept = MakeRept(4, 4, /*track_local=*/false);
  SeedSequence seeds(2024);
  const int runs = 200;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    const auto session = rept->CreateSession(seeds.SeedFor(r), nullptr).value();
    session->Ingest(prefix);
    sum += session->Snapshot().global;
  }
  const double mean = sum / runs;
  // Mean of 200 independent prefix snapshots within 10% of the prefix truth
  // (loose enough to be deterministic-robust, tight enough to catch a wrong
  // scale factor, which would be off by >= 25%).
  EXPECT_NEAR(mean, static_cast<double>(exact.tau),
              0.10 * static_cast<double>(exact.tau));
}

TEST(StreamingSessionTest, EnsembleBudgetsFollowExpectedEdges) {
  const auto triest = MakeParallelTriest(10, 3);

  SessionOptions sized;
  sized.expected_edges = 5000;
  auto session = triest->CreateSession(1, nullptr, sized).value();
  auto* ensemble = dynamic_cast<EnsembleSession*>(session.get());
  ASSERT_NE(ensemble, nullptr);
  // Paper sizing: M = |E|/m per instance.
  EXPECT_EQ(ensemble->edge_budget(), 500u);

  // Unknown stream length: the factory's default budget applies.
  auto open_ended = triest->CreateSession(1, nullptr).value();
  auto* open_ensemble = dynamic_cast<EnsembleSession*>(open_ended.get());
  ASSERT_NE(open_ensemble, nullptr);
  EXPECT_EQ(open_ensemble->edge_budget(), uint64_t{1} << 16);

  // REPT needs no budget: session creation with no hints is fully sized.
  const auto rept = MakeRept(5, 5);
  EXPECT_NE(dynamic_cast<ReptSession*>(
                rept->CreateSession(1, nullptr).value().get()),
            nullptr);
}

TEST(StreamingSessionTest, CreateSessionRejectsAbsurdConfigsWithStatus) {
  // The CREATE_SESSION server path feeds wire-supplied configs here; they
  // must come back as InvalidArgument, never a process-killing check.
  ReptConfig bad_m;
  bad_m.m = 1;
  EXPECT_EQ(ReptEstimator(bad_m).CreateSession(1, nullptr).status().code(),
            StatusCode::kInvalidArgument);

  ReptConfig bad_c;
  bad_c.c = ReptConfig::kMaxProcessors + 1;
  EXPECT_EQ(ReptEstimator(bad_c).CreateSession(1, nullptr).status().code(),
            StatusCode::kInvalidArgument);

  SessionOptions absurd;
  absurd.expected_edges = SessionOptions::kMaxExpectedEdges + 1;
  EXPECT_EQ(MakeRept(5, 5)->CreateSession(1, nullptr, absurd).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeParallelTriest(8, 4)
                ->CreateSession(1, nullptr, absurd)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // The happy path still opens a session.
  EXPECT_TRUE(MakeRept(5, 5)->CreateSession(1, nullptr).ok());
}

TEST(StreamingSessionTest, VertexBoundTracksObservedIdsWithoutHints) {
  const auto rept = MakeRept(5, 2);
  const auto session = rept->CreateSession(3, nullptr).value();
  EXPECT_EQ(session->num_vertices(), 0u);

  const Edge batch[] = {{0, 9}, {4, 2}};
  session->Ingest(std::span<const Edge>(batch));
  EXPECT_EQ(session->num_vertices(), 10u);
  EXPECT_EQ(session->Snapshot().local.size(), 10u);

  session->NoteVertices(50);
  EXPECT_EQ(session->num_vertices(), 50u);
  EXPECT_EQ(session->Snapshot().local.size(), 50u);
  // Noting a smaller bound never shrinks the id space.
  session->NoteVertices(5);
  EXPECT_EQ(session->num_vertices(), 50u);
}

}  // namespace
}  // namespace rept
