// End-to-end tests wiring generators -> exact counting -> estimator systems
// -> evaluation, the way the benchmark harness drives the library.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baseline_systems.hpp"
#include "core/rept_estimator.hpp"
#include "core/variance.hpp"
#include "exact/exact_counts.hpp"
#include "gen/dataset_suite.hpp"
#include "runner/evaluation.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

TEST(IntegrationTest, TinyDatasetSuiteEndToEnd) {
  // Every stand-in must flow through exact counting and a REPT run.
  ThreadPool pool(8);
  for (const auto& info : gen::DatasetCatalog()) {
    const auto stream =
        gen::MakeDataset(info.name, gen::DatasetSize::kTiny, 42);
    ASSERT_TRUE(stream.ok()) << info.name;
    const ExactCounts exact = ComputeExactCounts(*stream);
    EXPECT_GT(exact.tau, 0u) << info.name;

    const auto rept = MakeRept(10, 10);
    const TriangleEstimates est = rept->Run(*stream, 1, &pool);
    EXPECT_GT(est.global, 0.0) << info.name;
    EXPECT_EQ(est.local.size(), stream->num_vertices()) << info.name;
  }
}

TEST(IntegrationTest, PredictedNrmseMatchesMeasuredForRept) {
  // theory: NRMSE = sqrt(Var)/tau with Theorem 3's variance.
  const auto stream =
      gen::MakeDataset("flickr-sim", gen::DatasetSize::kTiny, 42);
  ASSERT_TRUE(stream.ok());
  const ExactCounts exact = ComputeExactCounts(*stream);
  const double tau = static_cast<double>(exact.tau);
  const double eta = static_cast<double>(exact.eta);

  const uint32_t m = 10;
  const uint32_t c = 10;
  const double predicted =
      std::sqrt(variance::Rept(tau, eta, m, c)) / tau;

  ThreadPool pool(8);
  EvaluationOptions opts;
  opts.runs = 30;
  opts.master_seed = 7;
  opts.evaluate_local = false;
  const auto system = MakeRept(m, c, /*track_local=*/false);
  const EvaluationResult r =
      EvaluateSystem(*system, *stream, exact, opts, &pool);

  EXPECT_GT(r.global_nrmse, predicted / 2.5);
  EXPECT_LT(r.global_nrmse, predicted * 2.5);
}

TEST(IntegrationTest, ReptBeatsMascotOnTrianglePairHeavyGraph) {
  // flickr-sim has a large eta/tau ratio; at c = m the covariance term
  // vanishes for REPT, so its NRMSE must come out below parallel MASCOT's.
  const auto stream =
      gen::MakeDataset("flickr-sim", gen::DatasetSize::kTiny, 42);
  ASSERT_TRUE(stream.ok());
  const ExactCounts exact = ComputeExactCounts(*stream);

  ThreadPool pool(8);
  EvaluationOptions opts;
  opts.runs = 20;
  opts.master_seed = 5;
  opts.evaluate_local = false;

  const auto rept = MakeRept(10, 10, false);
  const auto mascot = MakeParallelMascot(10, 10, false);
  const double rept_nrmse =
      EvaluateSystem(*rept, *stream, exact, opts, &pool).global_nrmse;
  const double mascot_nrmse =
      EvaluateSystem(*mascot, *stream, exact, opts, &pool).global_nrmse;
  EXPECT_LT(rept_nrmse, mascot_nrmse);
}

TEST(IntegrationTest, Algorithm2CombinationBeatsWorseComponent) {
  // With c1 full groups and a small remainder, the combined estimator should
  // have lower MSE than the remainder-group estimator alone.
  const auto stream =
      gen::MakeDataset("webgoogle-sim", gen::DatasetSize::kTiny, 42);
  ASSERT_TRUE(stream.ok());
  const ExactCounts exact = ComputeExactCounts(*stream);
  const double tau = static_cast<double>(exact.tau);

  const uint32_t m = 8;
  const uint32_t c = 2 * m + 3;  // c1=2, c2=3
  ReptConfig cfg;
  cfg.m = m;
  cfg.c = c;
  cfg.track_local = false;
  const ReptEstimator est(cfg);

  ThreadPool pool(8);
  double combined_mse = 0.0;
  double remainder_mse = 0.0;
  const int runs = 30;
  SeedSequence seeds(31, 1);
  for (int r = 0; r < runs; ++r) {
    const auto detail = est.RunDetailed(*stream, seeds.SeedFor(r), &pool);
    combined_mse += (detail.estimates.global - tau) *
                    (detail.estimates.global - tau);
    remainder_mse += (detail.tau_hat2 - tau) * (detail.tau_hat2 - tau);
  }
  EXPECT_LT(combined_mse, remainder_mse);
}

TEST(IntegrationTest, EndToEndDeterminismWithPools) {
  const auto stream =
      gen::MakeDataset("youtube-sim", gen::DatasetSize::kTiny, 42);
  ASSERT_TRUE(stream.ok());
  const ExactCounts exact = ComputeExactCounts(*stream);

  EvaluationOptions opts;
  opts.runs = 3;
  opts.master_seed = 77;
  const auto system = MakeRept(5, 12);

  ThreadPool pool_a(2);
  ThreadPool pool_b(16);
  const EvaluationResult a =
      EvaluateSystem(*system, *stream, exact, opts, &pool_a);
  const EvaluationResult b =
      EvaluateSystem(*system, *stream, exact, opts, &pool_b);
  EXPECT_DOUBLE_EQ(a.global_nrmse, b.global_nrmse);
  EXPECT_DOUBLE_EQ(a.mean_local_nrmse, b.mean_local_nrmse);
}

TEST(IntegrationTest, MemoryStaysProportionalToSamplingRate) {
  // Each REPT processor should store about |E|/m edges.
  const auto stream =
      gen::MakeDataset("pokec-sim", gen::DatasetSize::kTiny, 42);
  ASSERT_TRUE(stream.ok());
  const uint32_t m = 10;
  ReptConfig cfg;
  cfg.m = m;
  cfg.c = m;  // one full group partitions the stream entirely
  cfg.track_local = false;
  const ReptEstimator est(cfg);
  const auto detail = est.RunDetailed(*stream, 3, nullptr);
  // Across a full group the union of stored edges is the whole stream; the
  // tallies alone do not expose storage, so re-derive via expected value:
  // every edge lands in exactly one bucket.
  double tally_sum = 0.0;
  for (double t : detail.instance_tallies) tally_sum += t;
  EXPECT_GT(tally_sum, 0.0);
}

}  // namespace
}  // namespace rept
