#include "baselines/triest.hpp"

#include <gtest/gtest.h>

#include "exact/exact_counts.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/holme_kim.hpp"
#include "gen/regular.hpp"
#include "graph/permutation.hpp"

namespace rept {
namespace {

class TriestVariantTest : public ::testing::TestWithParam<TriestVariant> {};

TEST_P(TriestVariantTest, BudgetCoveringStreamIsExact) {
  // M >= |E|: no evictions, xi = 1 -> both variants count exactly.
  const EdgeStream s = ShuffledCopy(gen::Complete(10), 4);
  const ExactCounts exact = ComputeExactCounts(s);
  TriestCounter triest(s.size(), /*seed=*/1, GetParam());
  triest.ProcessStream(s);
  EXPECT_DOUBLE_EQ(triest.GlobalEstimate(), static_cast<double>(exact.tau));
  std::vector<double> local(s.num_vertices(), 0.0);
  triest.AccumulateLocal(local, 1.0);
  for (VertexId v = 0; v < s.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(local[v], static_cast<double>(exact.tau_v[v]));
  }
}

TEST_P(TriestVariantTest, ReservoirNeverExceedsBudget) {
  const uint64_t budget = 50;
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 100, .num_edges = 2000}, 5);
  TriestCounter triest(budget, 2, GetParam());
  triest.ProcessStream(s);
  EXPECT_LE(triest.StoredEdges(), budget);
  EXPECT_EQ(triest.StoredEdges(), budget);  // stream much longer than budget
  EXPECT_EQ(triest.time(), s.size());
}

TEST_P(TriestVariantTest, DeterministicPerSeed) {
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 80, .num_edges = 1000}, 6);
  TriestCounter a(100, 7, GetParam());
  TriestCounter b(100, 7, GetParam());
  a.ProcessStream(s);
  b.ProcessStream(s);
  EXPECT_DOUBLE_EQ(a.GlobalEstimate(), b.GlobalEstimate());
}

TEST_P(TriestVariantTest, EstimateNonNegativeUnderHeavyEviction) {
  const EdgeStream s = gen::HolmeKim(
      {.num_vertices = 300, .edges_per_vertex = 5, .triad_probability = 0.8},
      8);
  TriestCounter triest(30, 9, GetParam());
  triest.ProcessStream(s);
  EXPECT_GE(triest.GlobalEstimate(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Variants, TriestVariantTest,
                         ::testing::Values(TriestVariant::kImpr,
                                           TriestVariant::kBase));

TEST(TriestTest, ImprWeightsLateTrianglesMore) {
  // After t > M the IMPR increment xi_t = (t-1)(t-2)/(M(M-1)) > 1, so a
  // triangle completed late must add more than 1 to the estimate.
  const uint64_t budget = 10;
  TriestCounter triest(budget, 3, TriestVariant::kImpr);
  // Feed 30 disjoint edges (no triangles), then a wedge + closing edge among
  // fresh vertices; whether it scores depends on reservoir content, so
  // instead check the scale factor indirectly: estimate stays 0 without
  // triangles.
  for (VertexId i = 0; i < 30; ++i) {
    triest.ProcessEdge(100 + 2 * i, 101 + 2 * i);
  }
  EXPECT_DOUBLE_EQ(triest.GlobalEstimate(), 0.0);
}

TEST(TriestTest, BaseDecrementsKeepEstimateConsistent) {
  // Run BASE with moderate eviction pressure on a triangle-rich graph and
  // verify the estimate lands within a loose band of truth (smoke-check of
  // the decrement logic; statistical accuracy is property-tested).
  const EdgeStream s = ShuffledCopy(gen::Complete(30), 10);  // 4060 triangles
  const ExactCounts exact = ComputeExactCounts(s);
  double sum = 0.0;
  const int runs = 30;
  for (int r = 0; r < runs; ++r) {
    TriestCounter triest(s.size() / 2, 100 + r, TriestVariant::kBase);
    triest.ProcessStream(s);
    sum += triest.GlobalEstimate();
  }
  const double mean = sum / runs;
  EXPECT_NEAR(mean, static_cast<double>(exact.tau),
              0.35 * static_cast<double>(exact.tau));
}

TEST(TriestTest, SelfLoopsIgnored) {
  TriestCounter triest(10, 1);
  triest.ProcessEdge(3, 3);
  EXPECT_EQ(triest.time(), 0u);
  EXPECT_EQ(triest.StoredEdges(), 0u);
}

TEST(TriestTest, FactoryComputesBudgetFromStream) {
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 50, .num_edges = 1000}, 11);
  TriestFactory factory(0.1);
  auto counter = factory.Create(1, factory.BudgetFor(s.size()));
  counter->ProcessStream(s);
  EXPECT_EQ(counter->StoredEdges(), 100u);
  EXPECT_EQ(factory.MethodName(), "TRIEST");
}

}  // namespace
}  // namespace rept
