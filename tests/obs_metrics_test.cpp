// src/obs contract tests: the sharded counter aggregation must equal a
// serial reference under concurrent writers, histogram buckets must honor
// Prometheus `le` (inclusive upper bound) semantics, registration must be
// idempotent by name, and the text-exposition helpers must round-trip what
// RenderPrometheus emits. Run under TSan in CI: the wait-free write path
// against the mutex-guarded aggregating reader is exactly the race surface
// the per-thread-shard design exists to make benign.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rept::obs {
namespace {

/// The registry is process-global and append-only, so every test uses its
/// own metric names and asserts on deltas, not absolute registry state.
MetricSnapshot FindSnapshot(const std::string& name) {
  for (const MetricSnapshot& snapshot : MetricsRegistry::Global().Snapshot()) {
    if (snapshot.name == name) return snapshot;
  }
  ADD_FAILURE() << "metric '" << name << "' not registered";
  return MetricSnapshot{};
}

#if !defined(REPT_OBS_DISABLED)

TEST(ObsMetricsTest, ConcurrentIncrementsMatchSerialReference) {
  const Counter counter = MetricsRegistry::Global().RegisterCounter(
      "test_concurrent_total", "concurrent increment test");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  // Serial reference: thread i adds i+1 per iteration.
  uint64_t expected = 0;
  for (int i = 0; i < kThreads; ++i) {
    expected += kPerThread * static_cast<uint64_t>(i + 1);
  }

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    writers.emplace_back([&counter, i] {
      for (uint64_t n = 0; n < kPerThread; ++n) {
        counter.Increment(static_cast<uint64_t>(i + 1));
      }
    });
  }
  // Concurrent reader: aggregated counters are per-shard monotone, so two
  // reads that bracket the writers may only grow.
  uint64_t last_seen = 0;
  for (int polls = 0; polls < 50; ++polls) {
    const uint64_t now = FindSnapshot("test_concurrent_total").counter_value;
    EXPECT_GE(now, last_seen);
    last_seen = now;
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(FindSnapshot("test_concurrent_total").counter_value, expected);
}

TEST(ObsMetricsTest, RegistrationIsIdempotentByName) {
  const Counter first = MetricsRegistry::Global().RegisterCounter(
      "test_idempotent_total", "registered twice");
  const Counter second = MetricsRegistry::Global().RegisterCounter(
      "test_idempotent_total", "registered twice");
  first.Increment(3);
  second.Increment(4);
  // Both handles address the same slot, so the aggregate sums them.
  EXPECT_EQ(FindSnapshot("test_idempotent_total").counter_value, 7u);
}

TEST(ObsMetricsTest, CountsSurviveWriterThreadExit) {
  const Counter counter = MetricsRegistry::Global().RegisterCounter(
      "test_thread_exit_total", "shards outlive their threads");
  std::thread([&counter] { counter.Increment(41); }).join();
  counter.Increment();
  EXPECT_EQ(FindSnapshot("test_thread_exit_total").counter_value, 42u);
}

TEST(ObsMetricsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  static const double bounds[] = {1.0, 2.0, 4.0};
  const Histogram histogram = MetricsRegistry::Global().RegisterHistogram(
      "test_bucket_edges", "le-semantics test", bounds);
  // One observation per interesting position: below the first bound,
  // exactly on each bound (le is inclusive), between bounds, and past the
  // last bound (+Inf overflow).
  for (const double v : {0.5, 1.0, 2.0, 4.0, 1.5, 8.0}) histogram.Observe(v);

  const MetricSnapshot snapshot = FindSnapshot("test_bucket_edges");
  ASSERT_EQ(snapshot.kind, MetricSnapshot::Kind::kHistogram);
  ASSERT_EQ(snapshot.bounds.size(), 3u);
  ASSERT_EQ(snapshot.bucket_counts.size(), 4u);  // +Inf overflow bucket.
  EXPECT_EQ(snapshot.bucket_counts[0], 2u);      // 0.5, 1.0
  EXPECT_EQ(snapshot.bucket_counts[1], 2u);      // 2.0, 1.5
  EXPECT_EQ(snapshot.bucket_counts[2], 1u);      // 4.0
  EXPECT_EQ(snapshot.bucket_counts[3], 1u);      // 8.0
  EXPECT_EQ(snapshot.count, 6u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.5 + 1.0 + 2.0 + 4.0 + 1.5 + 8.0);
}

TEST(ObsMetricsTest, HistogramAggregatesAcrossThreads) {
  static const double bounds[] = {10.0, 100.0};
  const Histogram histogram = MetricsRegistry::Global().RegisterHistogram(
      "test_mt_histogram", "sharded histogram aggregation", bounds);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> writers;
  for (int i = 0; i < kThreads; ++i) {
    writers.emplace_back([&histogram] {
      for (int n = 0; n < kPerThread; ++n) {
        histogram.Observe(5.0);
        histogram.Observe(50.0);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  const MetricSnapshot snapshot = FindSnapshot("test_mt_histogram");
  EXPECT_EQ(snapshot.bucket_counts[0], uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(snapshot.bucket_counts[1], uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(snapshot.bucket_counts[2], 0u);
  EXPECT_EQ(snapshot.count, 2u * kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snapshot.sum, kThreads * kPerThread * 55.0);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  const Gauge gauge = MetricsRegistry::Global().RegisterGauge(
      "test_gauge", "set/add test");
  gauge.Set(7);
  gauge.Add(-3);
  EXPECT_EQ(FindSnapshot("test_gauge").gauge_value, 4);
}

TEST(ObsMetricsTest, PrometheusRenderingRoundTrips) {
  const Counter counter = MetricsRegistry::Global().RegisterCounter(
      "test_render_total", "render test");
  counter.Increment(123);
  static const double bounds[] = {1.0, 2.0};
  const Histogram histogram = MetricsRegistry::Global().RegisterHistogram(
      "test_render_hist", "render histogram", bounds);
  histogram.Observe(0.5);
  histogram.Observe(1.5);
  histogram.Observe(9.0);

  const std::string text = MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(text.find("# HELP test_render_total render test"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_render_total counter"),
            std::string::npos);
  double value = 0.0;
  ASSERT_TRUE(FindPrometheusValue(text, "test_render_total", &value));
  EXPECT_EQ(value, 123.0);
  // Cumulative buckets: le="2" includes the le="1" observation.
  ASSERT_TRUE(FindPrometheusValue(
      text, "test_render_hist_bucket{le=\"2\"}", &value));
  EXPECT_EQ(value, 2.0);
  ASSERT_TRUE(FindPrometheusValue(
      text, "test_render_hist_bucket{le=\"+Inf\"}", &value));
  EXPECT_EQ(value, 3.0);
  ASSERT_TRUE(FindPrometheusValue(text, "test_render_hist_count", &value));
  EXPECT_EQ(value, 3.0);
  // Full-token match: a name that is a strict prefix of the real metric
  // must not match its line.
  EXPECT_FALSE(FindPrometheusValue(text, "test_render", &value));
  EXPECT_FALSE(FindPrometheusValue(text, "test_render_hist_bucket", &value));
}

TEST(ObsMetricsTest, JsonRenderingContainsRegisteredFamilies) {
  const Counter counter = MetricsRegistry::Global().RegisterCounter(
      "test_json_total", "json render test");
  counter.Increment(9);
  const std::string json = MetricsRegistry::Global().RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_total\": 9"), std::string::npos);
}

TEST(ObsTraceTest, SpansAreCollectedOnlyWhileEnabled) {
  { TraceSpan ignored("before_start"); }
  StartTracing();
  ASSERT_TRUE(TracingEnabled());
  { TraceSpan recorded("traced_region"); }
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(StopTracingToFile(path).ok());
  EXPECT_FALSE(TracingEnabled());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(f);
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"traced_region\""), std::string::npos);
  EXPECT_EQ(content.find("\"before_start\""), std::string::npos);
}

#else  // REPT_OBS_DISABLED

TEST(ObsMetricsTest, DisabledHandlesCompileAndRenderPlaceholder) {
  const Counter counter = MetricsRegistry::Global().RegisterCounter(
      "test_disabled_total", "compiled out");
  counter.Increment(5);
  EXPECT_TRUE(MetricsRegistry::Global().Snapshot().empty());
  EXPECT_NE(MetricsRegistry::Global().RenderPrometheus().find("compiled out"),
            std::string::npos);
  (void)FindSnapshot;
}

#endif  // REPT_OBS_DISABLED

}  // namespace
}  // namespace rept::obs
