// Loopback integration contract of rept_server: state built over the wire
// is bit-identical to state built through the library directly.
//
// The identity proof rides on the checkpoint codec: the encoding is
// canonical (checkpoint_roundtrip_test), so two sessions serialize to the
// same bytes iff their state is identical. Each test ingests a stream via
// TCP, pulls the session's checkpoint with the CHECKPOINT verb, and
// compares it byte for byte against WriteCheckpointStream of a local
// session fed the same edges — across concurrent client threads, chunked
// ingest, restore-and-continue, and checkpoint-on-shutdown.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/rept_estimator.hpp"
#include "gen/holme_kim.hpp"
#include "net/client.hpp"
#include "net/recovery.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "persist/checkpoint.hpp"
#include "persist/checkpoint_io.hpp"

namespace rept::net {
namespace {

EdgeStream StreamForSession(size_t index) {
  gen::HolmeKimParams params;
  params.num_vertices = 300 + 40 * static_cast<VertexId>(index);
  params.edges_per_vertex = 4;
  params.triad_probability = 0.5;
  return gen::HolmeKim(params, /*seed=*/500 + index);
}

ReptConfig ConfigForSession(size_t index) {
  ReptConfig config;
  config.m = 4 + static_cast<uint32_t>(index % 3);
  config.c = 5 + static_cast<uint32_t>(3 * index);  // Varies the regime.
  return config;
}

/// Canonical serialized state of a library session fed `stream` whole.
std::string LocalStateBytes(const ReptConfig& config, uint64_t seed,
                            const EdgeStream& stream, size_t prefix) {
  const auto session =
      ReptEstimator(config).CreateSession(seed, nullptr).value();
  session->NoteVertices(stream.num_vertices());
  session->Ingest(
      std::span<const Edge>(stream.edges().data(), prefix));
  std::ostringstream out;
  EXPECT_TRUE(WriteCheckpointStream(*session, out).ok());
  return std::move(out).str();
}

bool SameBytes(const std::vector<uint8_t>& wire, const std::string& local) {
  return wire.size() == local.size() &&
         std::equal(wire.begin(), wire.end(),
                    reinterpret_cast<const uint8_t*>(local.data()));
}

TEST(ServerLoopbackTest, ConcurrentClientsBuildBitIdenticalSessions) {
  ServerOptions options;
  options.pool_threads = 2;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // N client threads, each driving its own session over its own
  // connection with its own chunking — cross-session concurrency on the
  // shared pool must not leak between tenants.
  constexpr size_t kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const EdgeStream stream = StreamForSession(i);
      SessionSpec spec;
      spec.name = "tenant" + std::to_string(i);
      spec.seed = 40 + i;
      spec.config = ConfigForSession(i);
      ReptClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures[i] = "connect";
        return;
      }
      if (!client.CreateSession(spec).ok()) {
        failures[i] = "create";
        return;
      }
      // Chunk size differs per client to vary batch boundaries.
      const size_t chunk = 100 + 37 * i;
      const std::span<const Edge> edges(stream.edges());
      for (size_t at = 0; at < edges.size(); at += chunk) {
        const size_t n = std::min(chunk, edges.size() - at);
        if (!client
                 .Ingest(spec.name, edges.subspan(at, n),
                         at == 0 ? stream.num_vertices() : 0)
                 .ok()) {
          failures[i] = "ingest";
          return;
        }
      }
      auto ckpt = client.Checkpoint(spec.name);
      if (!ckpt.ok()) {
        failures[i] = "checkpoint";
        return;
      }
      const std::string local = LocalStateBytes(
          spec.config, spec.seed, stream, stream.size());
      if (!SameBytes(ckpt.value(), local)) {
        failures[i] = "state bytes differ from direct library ingest";
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t i = 0; i < kClients; ++i) {
    EXPECT_EQ(failures[i], "") << "client " << i;
  }
  EXPECT_TRUE(server.Stop().ok());
}

TEST(ServerLoopbackTest, SnapshotMatchesLibraryBitForBit) {
  ServerOptions options;
  options.pool_threads = 2;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const EdgeStream stream = StreamForSession(0);
  SessionSpec spec;
  spec.name = "snap";
  spec.seed = 9;
  spec.config = ConfigForSession(0);

  ReptClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateSession(spec).ok());
  ASSERT_TRUE(client
                  .Ingest(spec.name, std::span<const Edge>(stream.edges()),
                          stream.num_vertices())
                  .ok());

  const auto reference =
      ReptEstimator(spec.config).CreateSession(spec.seed, nullptr).value();
  reference->Ingest(stream);
  const TriangleEstimates expected = reference->Snapshot();

  auto served = client.Snapshot(spec.name, /*top_k=*/0xFFFFFFFFu);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.value().global, expected.global);
  EXPECT_EQ(served.value().edges_ingested, stream.size());
  EXPECT_EQ(served.value().num_vertices, stream.num_vertices());
  // top_k = UINT32_MAX returns every vertex; validate the full local
  // vector against the library through the (vertex, tally) pairs.
  ASSERT_EQ(served.value().top.size(), expected.local.size());
  std::vector<double> local(expected.local.size(), 0.0);
  for (const auto& [vertex, tally] : served.value().top) {
    ASSERT_LT(vertex, local.size());
    local[vertex] = tally;
  }
  EXPECT_EQ(local, expected.local);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(ServerLoopbackTest, MetricsVerbParsesAndCountersAdvanceMonotonically) {
  ServerOptions options;
  options.pool_threads = 2;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const EdgeStream stream = StreamForSession(1);
  SessionSpec spec;
  spec.name = "metrics";
  spec.seed = 17;
  spec.config = ConfigForSession(1);

  ReptClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateSession(spec).ok());
  const std::span<const Edge> edges(stream.edges());
  const size_t half = edges.size() / 2;
  ASSERT_TRUE(client.Ingest(spec.name, edges.subspan(0, half),
                            stream.num_vertices())
                  .ok());

  auto first = client.Metrics();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(client.Ingest(spec.name, edges.subspan(half)).ok());
  auto second = client.Metrics();
  ASSERT_TRUE(second.ok());

  // The per-session gauges are synthesized at scrape time in every build;
  // the registry-backed server counters exist only with the obs layer
  // compiled in.
  const std::string session_gauge =
      "rept_session_edges_ingested{session=\"metrics\"}";
  double before = 0.0;
  double after = 0.0;
  ASSERT_TRUE(obs::FindPrometheusValue(first.value(), session_gauge, &before));
  ASSERT_TRUE(
      obs::FindPrometheusValue(second.value(), session_gauge, &after));
  EXPECT_EQ(before, static_cast<double>(half));
  EXPECT_EQ(after, static_cast<double>(edges.size()));
#if !defined(REPT_OBS_DISABLED)
  for (const char* name :
       {"rept_server_frames_total", "rept_server_ingest_frames_total",
        "rept_server_ingest_edges_total", "rept_server_ingest_bytes_total"}) {
    ASSERT_TRUE(obs::FindPrometheusValue(first.value(), name, &before))
        << name;
    ASSERT_TRUE(obs::FindPrometheusValue(second.value(), name, &after))
        << name;
    EXPECT_GT(after, before) << name;
  }
#endif

  // The v2 STATS row carries both ingest-stats blocks: cumulative counts
  // every batch, last_batch only the most recent one.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().sessions.size(), 1u);
  const auto& row = stats.value().sessions[0];
  EXPECT_EQ(row.name, spec.name);
  EXPECT_EQ(row.edges_ingested, edges.size());
  EXPECT_GE(row.cumulative.batches, 2u);
  EXPECT_EQ(row.last_batch.batches, 1u);
  EXPECT_GE(row.cumulative.sub_batches, row.last_batch.sub_batches);
  EXPECT_GE(row.cumulative.estimate_seconds, row.last_batch.estimate_seconds);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(ServerLoopbackTest, RestoreOverWireResumesBitIdentically) {
  ServerOptions options;
  options.pool_threads = 2;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const EdgeStream stream = StreamForSession(1);
  const size_t half = stream.size() / 2;
  SessionSpec spec;
  spec.name = "resume";
  spec.seed = 11;
  spec.config = ConfigForSession(1);

  ReptClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateSession(spec).ok());
  const std::span<const Edge> edges(stream.edges());
  ASSERT_TRUE(client
                  .Ingest(spec.name, edges.subspan(0, half),
                          stream.num_vertices())
                  .ok());
  auto mid = client.Checkpoint(spec.name);
  ASSERT_TRUE(mid.ok());

  // Migrate mid-stream state into a second session (same config + seed —
  // the fingerprint gate), replay the rest, and compare final state bytes.
  SessionSpec clone = spec;
  clone.name = "resume-clone";
  ASSERT_TRUE(client.CreateSession(clone).ok());
  ASSERT_TRUE(client
                  .Restore(clone.name,
                           std::span<const uint8_t>(mid.value()))
                  .ok());
  ASSERT_TRUE(client.Ingest(clone.name, edges.subspan(half)).ok());
  ASSERT_TRUE(client.Ingest(spec.name, edges.subspan(half)).ok());

  auto original = client.Checkpoint(spec.name);
  auto resumed = client.Checkpoint(clone.name);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(original.value(), resumed.value());

  // A mismatched fingerprint (different seed) must refuse the restore.
  SessionSpec other = spec;
  other.name = "wrong-seed";
  other.seed = 12;
  ASSERT_TRUE(client.CreateSession(other).ok());
  EXPECT_FALSE(client
                   .Restore(other.name,
                            std::span<const uint8_t>(mid.value()))
                   .ok());
  EXPECT_TRUE(server.Stop().ok());
}

TEST(ServerLoopbackTest, ConcurrentSnapshotsSurviveRestoreSwaps) {
  ServerOptions options;
  options.pool_threads = 2;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const EdgeStream stream = StreamForSession(2);
  SessionSpec spec;
  spec.name = "swap";
  spec.seed = 21;
  spec.config = ConfigForSession(2);

  ReptClient writer;
  ASSERT_TRUE(writer.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(writer.CreateSession(spec).ok());
  ASSERT_TRUE(writer
                  .Ingest(spec.name, std::span<const Edge>(stream.edges()),
                          stream.num_vertices())
                  .ok());
  auto ckpt = writer.Checkpoint(spec.name);
  ASSERT_TRUE(ckpt.ok());

  // Readers hammer SNAPSHOT and STATS on their own connections while the
  // writer keeps swapping the session's estimator via RESTORE (valid
  // bytes) interleaved with garbage bytes (failed restore). TSan
  // regression for the reader-versus-swap race. Every successful restore
  // republishes the full-stream checkpoint and a failed one must change
  // nothing, so a reader can never observe anything but the complete
  // state.
  std::atomic<bool> done{false};
  std::vector<std::string> failures(2);
  std::vector<std::thread> readers;
  for (size_t i = 0; i < failures.size(); ++i) {
    readers.emplace_back([&, i] {
      ReptClient reader;
      if (!reader.Connect("127.0.0.1", server.port()).ok()) {
        failures[i] = "connect";
        return;
      }
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = reader.Snapshot(spec.name, /*top_k=*/8);
        if (!snap.ok()) {
          failures[i] = "snapshot: " + snap.status().message();
          return;
        }
        if (snap.value().edges_ingested != stream.size()) {
          failures[i] = "snapshot saw a partially restored session";
          return;
        }
        if (!reader.Stats().ok()) {
          failures[i] = "stats";
          return;
        }
      }
    });
  }

  const std::vector<uint8_t> junk(48, 0xA5);
  for (int round = 0; round < 25; ++round) {
    ASSERT_TRUE(
        writer.Restore(spec.name, std::span<const uint8_t>(ckpt.value()))
            .ok());
    EXPECT_FALSE(writer.Restore(spec.name, junk).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  EXPECT_TRUE(server.Stop().ok());
}

TEST(ServerLoopbackTest, StopWithCheckpointDirSavesEverySession) {
  const std::string dir = ::testing::TempDir() + "rept_server_ckpt";
  std::remove((dir + "/shut0.ckpt").c_str());
  std::remove((dir + "/shut1.ckpt").c_str());
#ifndef _WIN32
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
#endif

  ServerOptions options;
  options.pool_threads = 2;
  options.checkpoint_dir = dir;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::string> local_bytes;
  ReptClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (size_t i = 0; i < 2; ++i) {
    const EdgeStream stream = StreamForSession(i);
    SessionSpec spec;
    spec.name = "shut" + std::to_string(i);
    spec.seed = 70 + i;
    spec.config = ConfigForSession(i);
    ASSERT_TRUE(client.CreateSession(spec).ok());
    ASSERT_TRUE(client
                    .Ingest(spec.name,
                            std::span<const Edge>(stream.edges()),
                            stream.num_vertices())
                    .ok());
    local_bytes.push_back(LocalStateBytes(spec.config, spec.seed, stream,
                                          stream.size()));
  }

  // The SHUTDOWN verb drains the server; Stop() then writes the files.
  ASSERT_TRUE(client.Shutdown().ok());
  EXPECT_TRUE(server.shutdown_requested());
  ASSERT_TRUE(server.Stop().ok());

  // Server checkpoint files carry a trailing server-session sidecar
  // (section 5) after the estimator sections, so the files are not byte-
  // identical to plain WriteCheckpointStream output. The estimator state
  // inside must be: restore each file into a fresh session (tolerating the
  // sidecar) and compare its canonical re-serialization.
  for (size_t i = 0; i < 2; ++i) {
    std::ifstream in(dir + "/shut" + std::to_string(i) + ".ckpt",
                     std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing shutdown checkpoint " << i;
    const auto restored = ReptEstimator(ConfigForSession(i))
                              .CreateSession(70 + i, nullptr)
                              .value();
    bool saw_sidecar = false;
    ASSERT_TRUE(ReadCheckpointStream(
                    *restored, in, /*expect_stream_end=*/true,
                    [&](uint32_t section_id, CheckpointReader& reader) {
                      EXPECT_EQ(section_id, kSectionServerSession);
                      saw_sidecar = true;
                      ServerSessionMeta meta;
                      return DecodeServerSessionSection(reader, &meta);
                    })
                    .ok())
        << "session " << i;
    EXPECT_TRUE(saw_sidecar) << "session " << i;
    std::ostringstream out;
    ASSERT_TRUE(WriteCheckpointStream(*restored, out).ok());
    EXPECT_EQ(std::move(out).str(), local_bytes[i]) << "session " << i;
  }
}

TEST(ServerLoopbackTest, ShutdownRejectsNewWorkButFlushesReply) {
  ServerOptions options;
  options.pool_threads = 1;
  ReptServer server(options);
  ASSERT_TRUE(server.Start().ok());

  ReptClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Shutdown().ok());  // The kOk reply must arrive.

  // The reply is flushed before the serving thread commits the shutdown;
  // wait for the commit so the late connection below cannot race it.
  while (!server.shutdown_requested()) std::this_thread::yield();

  // New connections are refused once the listener is down. One may still
  // sneak through the kernel backlog pre-close; it is then either answered
  // with kShuttingDown or torn down unserved — never served normally.
  ReptClient late;
  const Status st = late.Connect("127.0.0.1", server.port());
  if (st.ok()) {
    EXPECT_FALSE(late.Stats().ok());
  }
  EXPECT_TRUE(server.Stop().ok());
}

}  // namespace
}  // namespace rept::net
