// Randomized differential test of SampledGraph (and the
// SemiTriangleCounter Insert/Erase interplay above it) against a naive
// std::set-based reference model — the executable definition of the
// pre-rewrite sorted-vector/unordered_map semantics. Every operation the
// estimators issue (Insert, Erase, Contains, degree, common-neighbor
// enumeration, the CountArrival -> InsertSampled probe fast path, and
// reservoir-style EraseSampled churn) is driven with random vertex ids over
// a small id space (heavy collisions) and cross-checked after each step.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "core/semi_triangle_counter.hpp"
#include "graph/sampled_graph.hpp"
#include "util/random.hpp"

namespace rept {
namespace {

/// The reference model: an explicit undirected edge set.
class ReferenceGraph {
 public:
  bool Insert(VertexId u, VertexId v) {
    if (u == v) return false;
    return edges_.insert(Key(u, v)).second;
  }
  bool Erase(VertexId u, VertexId v) { return edges_.erase(Key(u, v)) > 0; }
  bool Contains(VertexId u, VertexId v) const {
    return edges_.count(Key(u, v)) > 0;
  }
  uint64_t num_edges() const { return edges_.size(); }

  uint32_t degree(VertexId v) const {
    uint32_t d = 0;
    for (const auto& [a, b] : edges_) d += (a == v || b == v) ? 1 : 0;
    return d;
  }

  std::vector<VertexId> Neighbors(VertexId v) const {
    std::vector<VertexId> out;
    for (const auto& [a, b] : edges_) {
      if (a == v) out.push_back(b);
      if (b == v) out.push_back(a);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<VertexId> CommonNeighbors(VertexId u, VertexId v) const {
    const std::vector<VertexId> nu = Neighbors(u);
    const std::vector<VertexId> nv = Neighbors(v);
    std::vector<VertexId> out;
    std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                          std::back_inserter(out));
    return out;
  }

 private:
  static std::pair<VertexId, VertexId> Key(VertexId u, VertexId v) {
    return {std::min(u, v), std::max(u, v)};
  }
  std::set<std::pair<VertexId, VertexId>> edges_;
};

std::vector<VertexId> Collect(const SampledGraph& g, VertexId u, VertexId v) {
  std::vector<VertexId> out;
  g.ForEachCommonNeighbor(u, v, [&out](VertexId w) { out.push_back(w); });
  return out;
}

TEST(SampledGraphFuzzTest, DifferentialAgainstReferenceModel) {
  SampledGraph graph;
  ReferenceGraph reference;
  Rng rng(2024);
  // Small id space so inserts collide, erases hit, vertices empty out and
  // come back, and lists cross the inline->spill boundary repeatedly.
  constexpr VertexId kVertices = 24;

  for (int step = 0; step < 60000; ++step) {
    const VertexId u = static_cast<VertexId>(rng.Below(kVertices));
    const VertexId v = static_cast<VertexId>(rng.Below(kVertices));
    switch (rng.Below(4)) {
      case 0:
      case 1:  // bias toward inserts so the graph stays populated
        ASSERT_EQ(graph.Insert(u, v), reference.Insert(u, v))
            << "insert " << u << "," << v << " at step " << step;
        break;
      case 2:
        ASSERT_EQ(graph.Erase(u, v), reference.Erase(u, v))
            << "erase " << u << "," << v << " at step " << step;
        break;
      default: {
        const VertexId w = static_cast<VertexId>(rng.Below(kVertices));
        ASSERT_EQ(graph.Contains(v, w), reference.Contains(v, w));
        ASSERT_EQ(graph.degree(u), reference.degree(u));
        ASSERT_EQ(Collect(graph, u, v), reference.CommonNeighbors(u, v));
        break;
      }
    }
    ASSERT_EQ(graph.num_edges(), reference.num_edges());
  }

  // Full final audit: neighbor lists and intersections over every pair.
  for (VertexId u = 0; u < kVertices; ++u) {
    const auto nbrs = graph.neighbors(u);
    ASSERT_EQ(std::vector<VertexId>(nbrs.begin(), nbrs.end()),
              reference.Neighbors(u));
    for (VertexId v = u + 1; v < kVertices; ++v) {
      ASSERT_EQ(graph.Contains(u, v), reference.Contains(u, v));
      ASSERT_EQ(Collect(graph, u, v), reference.CommonNeighbors(u, v));
    }
  }
}

TEST(SampledGraphFuzzTest, ProbeInsertMatchesPlainInsert) {
  // The CountArrival fast path: ProbeCommonNeighbors + InsertWithProbe must
  // behave exactly like ForEachCommonNeighbor + Insert, including the
  // both-endpoints-new and duplicate-edge corners.
  SampledGraph probed;
  SampledGraph plain;
  Rng rng(11);
  constexpr VertexId kVertices = 40;
  for (int step = 0; step < 30000; ++step) {
    const VertexId u = static_cast<VertexId>(rng.Below(kVertices));
    const VertexId v = static_cast<VertexId>(rng.Below(kVertices));
    if (rng.Below(8) == 0) {
      ASSERT_EQ(probed.Erase(u, v), plain.Erase(u, v));
      continue;
    }
    std::vector<VertexId> via_probe;
    const auto probe = probed.ProbeCommonNeighbors(
        u, v, [&via_probe](VertexId w) { via_probe.push_back(w); });
    ASSERT_EQ(via_probe, Collect(plain, u, v));
    if (rng.Below(2) == 0) {  // the caller's sampling policy
      ASSERT_EQ(probed.InsertWithProbe(probe), plain.Insert(u, v));
    }
    ASSERT_EQ(probed.num_edges(), plain.num_edges());
  }
}

TEST(SampledGraphFuzzTest, CounterInsertEraseInterplay) {
  // EraseSampled after CountArrival must invalidate the completion cache:
  // the tallies of a churned counter must match a replayed fresh counter
  // fed the surviving operation sequence. This is the TRIEST/GPS eviction
  // pattern (CountArrival every edge, InsertSampled/EraseSampled mixed).
  SemiTriangleCounter::Options options;
  options.track_local = true;
  options.track_pairs = true;
  SemiTriangleCounter counter(options);
  Rng rng(5);
  constexpr VertexId kVertices = 30;
  std::vector<Edge> stored;  // mirror of the counter's sampled edge set

  for (int step = 0; step < 20000; ++step) {
    const VertexId u = static_cast<VertexId>(rng.Below(kVertices));
    VertexId v = static_cast<VertexId>(rng.Below(kVertices - 1));
    if (v >= u) ++v;
    if (!stored.empty() && rng.Below(4) == 0) {
      const size_t victim = rng.Below(stored.size());
      const Edge evicted = stored[victim];
      counter.EraseSampled(evicted.u, evicted.v);
      stored.erase(stored.begin() + static_cast<int64_t>(victim));
      ASSERT_EQ(counter.stored_edges(), stored.size());
      ASSERT_FALSE(counter.sample().Contains(evicted.u, evicted.v));
      continue;
    }
    const uint32_t completions = counter.CountArrival(u, v);
    ASSERT_EQ(completions, counter.sample().CountCommonNeighbors(u, v));
    if (rng.Below(2) == 0) {
      const uint64_t before = counter.stored_edges();
      counter.InsertSampled(u, v);
      if (counter.stored_edges() != before) stored.push_back(Edge(u, v));
      ASSERT_TRUE(counter.sample().Contains(u, v));
    }
  }

  // The sampled graph's structure survived the churn intact.
  ReferenceGraph reference;
  for (const Edge& e : stored) reference.Insert(e.u, e.v);
  ASSERT_EQ(counter.stored_edges(), reference.num_edges());
  for (VertexId a = 0; a < kVertices; ++a) {
    for (VertexId b = a + 1; b < kVertices; ++b) {
      ASSERT_EQ(counter.sample().Contains(a, b), reference.Contains(a, b));
      ASSERT_EQ(Collect(counter.sample(), a, b),
                reference.CommonNeighbors(a, b));
    }
  }
}

}  // namespace
}  // namespace rept
