// Unit tests for the flat hot-path containers: FlatHashMap probing and
// backward-shift deletion, the Probe/InsertAtProbe fast path, Arena
// recycling, NeighborList small-buffer behavior, and the adaptive
// intersection kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "container/arena.hpp"
#include "container/flat_hash_map.hpp"
#include "container/neighbor_list.hpp"
#include "container/sorted_intersect.hpp"
#include "util/random.hpp"

namespace rept {
namespace {

TEST(FlatHashMapTest, InsertFindErase) {
  FlatHashMap<uint32_t, double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);

  map[7] = 1.5;
  map[9] += 2.0;  // operator[] value-initializes
  EXPECT_EQ(map.size(), 2u);
  EXPECT_DOUBLE_EQ(map.at(7), 1.5);
  EXPECT_DOUBLE_EQ(map.at(9), 2.0);
  EXPECT_EQ(map.count(8), 0u);

  EXPECT_TRUE(map.erase(7));
  EXPECT_FALSE(map.erase(7));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_NE(map.Find(9), nullptr);
}

TEST(FlatHashMapTest, GrowthPreservesEntries) {
  FlatHashMap<uint64_t, uint32_t> map;
  for (uint64_t k = 0; k < 10000; ++k) map[k * 2654435761u] = k & 0xffff;
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    const uint32_t* value = map.Find(k * 2654435761u);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, k & 0xffff);
  }
}

TEST(FlatHashMapTest, DifferentialAgainstStdMap) {
  // Random insert/erase/lookup storm vs std::map reference, including
  // adversarial keys that collide in the low bits.
  FlatHashMap<uint32_t, uint32_t> map;
  std::map<uint32_t, uint32_t> reference;
  Rng rng(99);
  for (int step = 0; step < 200000; ++step) {
    const uint32_t key = static_cast<uint32_t>(rng.Below(512)) << 16;
    const uint32_t op = static_cast<uint32_t>(rng.Below(4));
    if (op == 0) {
      EXPECT_EQ(map.erase(key), reference.erase(key) > 0);
    } else if (op == 1) {
      const uint32_t* found = map.Find(key);
      const auto it = reference.find(key);
      ASSERT_EQ(found != nullptr, it != reference.end());
      if (found != nullptr) {
        EXPECT_EQ(*found, it->second);
      }
    } else {
      const uint32_t value = static_cast<uint32_t>(rng.Below(1000));
      map[key] = value;
      reference[key] = value;
    }
    ASSERT_EQ(map.size(), reference.size());
  }
  // Final sweep: identical contents.
  for (const auto& [key, value] : reference) {
    const uint32_t* found = map.Find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, value);
  }
}

TEST(FlatHashMapTest, IterationVisitsEachEntryOnce) {
  FlatHashMap<uint32_t, double> map;
  for (uint32_t k = 1; k <= 100; ++k) map[k] = k * 0.5;
  std::set<uint32_t> seen;
  double sum = 0.0;
  for (const auto& [key, value] : map) {
    EXPECT_TRUE(seen.insert(key).second);
    sum += value;
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_DOUBLE_EQ(sum, 0.5 * (100.0 * 101.0 / 2.0));
}

TEST(FlatHashMapTest, ProbeInsertFastPath) {
  FlatHashMap<uint32_t, uint32_t> map;
  // Empty map: probe then insert-at-probe must grow transparently.
  auto probe = map.FindProbe(42);
  EXPECT_FALSE(probe.found);
  map.InsertAtProbe(probe, 42) = 7;
  EXPECT_EQ(map.at(42), 7u);

  // Existing-key probe round-trips through slot accessors.
  probe = map.FindProbe(42);
  ASSERT_TRUE(probe.found);
  EXPECT_EQ(map.slot_key(probe.slot), 42u);
  EXPECT_EQ(map.slot_value(probe.slot), 7u);

  // Generation bumps on rehash, not on in-place inserts.
  const uint64_t generation = map.generation();
  map.reserve(1000);
  EXPECT_NE(map.generation(), generation);
}

TEST(FlatHashMapTest, ClearKeepsCapacityDropsEntries) {
  FlatHashMap<uint32_t, uint32_t> map;
  for (uint32_t k = 0; k < 100; ++k) map[k] = k;
  const size_t bytes = map.MemoryBytes();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(5), nullptr);
  EXPECT_EQ(map.MemoryBytes(), bytes);
}

TEST(FlatHashSetTest, InsertReportsNovelty) {
  FlatHashSet<uint64_t> set;
  EXPECT_TRUE(set.insert(10));
  EXPECT_FALSE(set.insert(10));
  EXPECT_TRUE(set.insert(11));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(10));
  EXPECT_FALSE(set.contains(12));
}

TEST(ArenaTest, RecyclesFreedArrays) {
  Arena arena;
  VertexId* a = arena.AllocateIds(8);
  const size_t bytes_after_first = arena.MemoryBytes();
  arena.FreeIds(a, 8);
  VertexId* b = arena.AllocateIds(8);
  EXPECT_EQ(a, b);  // free list handed the same storage back
  EXPECT_EQ(arena.MemoryBytes(), bytes_after_first);
  arena.Reset();
  EXPECT_EQ(arena.MemoryBytes(), 0u);
}

TEST(ArenaTest, MovedFromArenaIsReusable) {
  Arena a;
  VertexId* p = a.AllocateIds(8);
  a.FreeIds(p, 8);
  Arena b = std::move(a);
  EXPECT_EQ(a.MemoryBytes(), 0u);
  // The destination inherited the free list; the moved-from arena starts
  // fresh and must never hand out storage aliasing b's blocks.
  VertexId* from_b = b.AllocateIds(8);
  EXPECT_EQ(from_b, p);
  VertexId* from_a = a.AllocateIds(8);
  EXPECT_NE(from_a, from_b);
  from_a[7] = 42;
  from_b[7] = 43;
  EXPECT_EQ(from_a[7], 42u);
  EXPECT_EQ(from_b[7], 43u);
}

TEST(ArenaTest, OversizeRequestGetsDedicatedBlock) {
  Arena arena;
  VertexId* big = arena.AllocateIds(1u << 20);  // 4 MiB, beyond block cap
  big[0] = 1;
  big[(1u << 20) - 1] = 2;
  EXPECT_GE(arena.MemoryBytes(), (size_t{1} << 20) * sizeof(VertexId));
}

TEST(NeighborListTest, StaysInlineUpToFour) {
  Arena arena;
  NeighborList list;
  EXPECT_TRUE(list.SortedInsert(3, arena));
  EXPECT_TRUE(list.SortedInsert(1, arena));
  EXPECT_TRUE(list.SortedInsert(2, arena));
  EXPECT_TRUE(list.SortedInsert(4, arena));
  EXPECT_FALSE(list.SortedInsert(2, arena));  // duplicate
  EXPECT_EQ(arena.MemoryBytes(), 0u);         // still inline
  EXPECT_EQ(list.size(), 4u);
  const std::vector<VertexId> got(list.view().begin(), list.view().end());
  EXPECT_EQ(got, (std::vector<VertexId>{1, 2, 3, 4}));
}

TEST(NeighborListTest, SpillsAndGrowsGeometrically) {
  Arena arena;
  NeighborList list;
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_TRUE(list.SortedInsert(v * 3, arena));
  }
  EXPECT_EQ(list.size(), 100u);
  EXPECT_GT(arena.MemoryBytes(), 0u);
  EXPECT_TRUE(list.SortedContains(99 * 3));
  EXPECT_FALSE(list.SortedContains(1));
  EXPECT_TRUE(std::is_sorted(list.view().begin(), list.view().end()));

  EXPECT_TRUE(list.SortedErase(0));
  EXPECT_FALSE(list.SortedErase(0));
  EXPECT_EQ(list.size(), 99u);
  list.Release(arena);
  EXPECT_EQ(list.size(), 0u);
}

std::vector<VertexId> IntersectVia(const std::vector<VertexId>& a,
                                   const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  IntersectSorted(std::span<const VertexId>(a), std::span<const VertexId>(b),
                  [&out](VertexId w) { out.push_back(w); });
  return out;
}

TEST(SortedIntersectTest, MatchesStdSetIntersection) {
  // Random sorted ranges across the merge/gallop size boundary.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::set<VertexId> sa;
    std::set<VertexId> sb;
    const size_t na = 1 + rng.Below(20);
    const size_t nb = 1 + rng.Below(300);  // often >= 8x skew
    while (sa.size() < na) sa.insert(static_cast<VertexId>(rng.Below(400)));
    while (sb.size() < nb) sb.insert(static_cast<VertexId>(rng.Below(400)));
    const std::vector<VertexId> a(sa.begin(), sa.end());
    const std::vector<VertexId> b(sb.begin(), sb.end());
    std::vector<VertexId> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(IntersectVia(a, b), expected);
    EXPECT_EQ(IntersectVia(b, a), expected);
  }
}

TEST(SortedIntersectTest, EdgeCases) {
  EXPECT_TRUE(IntersectVia({}, {1, 2, 3}).empty());
  EXPECT_TRUE(IntersectVia({1, 2, 3}, {}).empty());
  EXPECT_TRUE(IntersectVia({1, 3, 5}, {2, 4, 6}).empty());
  EXPECT_EQ(IntersectVia({1, 2, 3}, {1, 2, 3}),
            (std::vector<VertexId>{1, 2, 3}));
  // Gallop path: tiny probe list vs long target, matches at both ends.
  std::vector<VertexId> lengthy;
  for (VertexId v = 0; v < 1000; ++v) lengthy.push_back(v);
  EXPECT_EQ(IntersectVia({0, 999}, lengthy),
            (std::vector<VertexId>{0, 999}));
}

}  // namespace
}  // namespace rept
