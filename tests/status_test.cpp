#include "util/status.hpp"

#include <gtest/gtest.h>

namespace rept {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::IOError("disk on fire");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.message(), "disk on fire");
  EXPECT_EQ(st.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllErrorConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailingOperation() { return Status::Corruption("bad block"); }

Status Caller() {
  REPT_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  Status st = Caller();
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace rept
