// Monte-Carlo validation of the *local* halves of Theorem 3: for a fixed
// node v, tau_v_hat must be unbiased with
//   Var(tau_v_hat) = (tau_v(m^2 - c) + 2 eta_v(m - c)) / c     (REPT, c <= m)
//   Var(tau_v_hat) = (tau_v(m^2 - 1) + 2 eta_v(m - 1)) / c     (par. MASCOT)
// Evaluated on the highest-tau_v node, where both terms are material.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "baselines/baseline_systems.hpp"
#include "exact/exact_counts.hpp"
#include "gen/holme_kim.hpp"
#include "graph/permutation.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

struct LocalCase {
  std::string method;  // "rept" | "mascot"
  uint32_t m;
  uint32_t c;
};

class LocalVarianceTest : public ::testing::TestWithParam<LocalCase> {};

TEST_P(LocalVarianceTest, HubNodeMatchesClosedForm) {
  const LocalCase tc = GetParam();
  EdgeStream s = gen::HolmeKim(
      {.num_vertices = 150, .edges_per_vertex = 6, .triad_probability = 0.7},
      61);
  ShuffleStream(s, 62);
  const ExactCounts exact = ComputeExactCounts(s);

  // Highest-tau_v node: large enough counts for a stable variance ratio.
  VertexId hub = 0;
  for (VertexId v = 1; v < s.num_vertices(); ++v) {
    if (exact.tau_v[v] > exact.tau_v[hub]) hub = v;
  }
  const double tau_v = static_cast<double>(exact.tau_v[hub]);
  const double eta_v = static_cast<double>(exact.eta_v[hub]);
  ASSERT_GT(tau_v, 50.0);

  const auto system = tc.method == "rept"
                          ? MakeRept(tc.m, tc.c)
                          : MakeParallelMascot(tc.m, tc.c);
  const double m = tc.m;
  const double c = tc.c;
  const double theory =
      tc.method == "rept"
          ? (tau_v * (m * m - c) + 2.0 * eta_v * (m - c)) / c
          : (tau_v * (m * m - 1.0) + 2.0 * eta_v * (m - 1.0)) / c;
  ASSERT_GT(theory, 0.0);

  ThreadPool pool(8);
  RunningStats stats;
  SeedSequence seeds(7100 + tc.m * 13 + tc.c, 3);
  const uint32_t kRuns = 500;
  for (uint32_t r = 0; r < kRuns; ++r) {
    stats.Add(system->Run(s, seeds.SeedFor(r), &pool).local[hub]);
  }

  // Unbiasedness of the hub estimate.
  const double sigma_of_mean = std::sqrt(theory / kRuns);
  EXPECT_NEAR(stats.mean(), tau_v, 4.5 * sigma_of_mean)
      << system->Name() << " hub=" << hub;
  // Variance against the closed form.
  const double ratio = stats.sample_variance() / theory;
  EXPECT_GT(ratio, 0.6) << system->Name();
  EXPECT_LT(ratio, 1.6) << system->Name();
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, LocalVarianceTest,
    ::testing::Values(LocalCase{"rept", 4, 2}, LocalCase{"rept", 4, 4},
                      LocalCase{"rept", 6, 3}, LocalCase{"rept", 6, 6},
                      LocalCase{"mascot", 4, 2}, LocalCase{"mascot", 6, 3}),
    [](const ::testing::TestParamInfo<LocalCase>& info) {
      return info.param.method + "_m" + std::to_string(info.param.m) + "_c" +
             std::to_string(info.param.c);
    });

TEST(LocalSumTest, LocalEstimatesSumToThreeTimesGlobalAcrossMethods) {
  // sum_v tau_v = 3 tau holds for the truth; the MASCOT/TRIEST estimators
  // preserve it identically per run (every counted semi-triangle adds the
  // same weight to exactly three nodes and once globally).
  EdgeStream s = gen::HolmeKim(
      {.num_vertices = 120, .edges_per_vertex = 5, .triad_probability = 0.5},
      71);
  ShuffleStream(s, 72);
  std::vector<std::unique_ptr<EstimatorSystem>> systems;
  systems.push_back(MakeParallelMascot(5, 3));
  systems.push_back(MakeParallelTriest(5, 3));
  for (const auto& system : systems) {
    const TriangleEstimates est = system->Run(s, 9, nullptr);
    double sum = 0.0;
    for (double x : est.local) sum += x;
    EXPECT_NEAR(sum, 3.0 * est.global, 1e-6 * std::max(1.0, sum))
        << system->Name();
  }
}

}  // namespace
}  // namespace rept
