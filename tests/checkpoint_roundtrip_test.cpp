// The resume contract of the persist subsystem: a checkpoint taken at any
// batch boundary, restored into a session created with the same (config,
// seed) — under any thread-pool size and any dispatch mode — and fed the
// remainder of the stream produces tallies bit-identical to an
// uninterrupted run. Plus the file-level machinery: fingerprint rejection,
// atomic save, the IngestAll checkpoint policy, and SkipEdges-based resume.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baseline_systems.hpp"
#include "core/rept_estimator.hpp"
#include "core/rept_session.hpp"
#include "core/streaming_estimator.hpp"
#include "gen/holme_kim.hpp"
#include "graph/edge_source.hpp"
#include "persist/checkpoint.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

EdgeStream FixedStream() {
  gen::HolmeKimParams params;
  params.num_vertices = 300;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.6;
  return gen::HolmeKim(params, /*seed=*/2024);
}

// Feeds stream edges [begin, end) in `chunk`-sized batches.
void IngestRange(StreamingEstimator& session, const EdgeStream& stream,
                 size_t begin, size_t end, size_t chunk) {
  session.NoteVertices(stream.num_vertices());
  const auto& edges = stream.edges();
  for (size_t at = begin; at < end; at += chunk) {
    const size_t n = std::min(chunk, end - at);
    session.Ingest(std::span<const Edge>(edges.data() + at, n));
  }
}

void ExpectBitIdentical(const TriangleEstimates& resumed,
                        const TriangleEstimates& reference,
                        const std::string& context) {
  EXPECT_EQ(resumed.global, reference.global) << context;
  ASSERT_EQ(resumed.local.size(), reference.local.size()) << context;
  if (!resumed.local.empty()) {
    EXPECT_EQ(std::memcmp(resumed.local.data(), reference.local.data(),
                          resumed.local.size() * sizeof(double)),
              0)
        << context;
  }
}

// The heart of the contract, exercised at EVERY batch boundary: one writer
// session ingests the stream chunk by chunk, checkpointing after each
// batch; each checkpoint is then restored into a fresh session whose
// thread-pool size and dispatch mode cycle through the full matrix, the
// remainder is ingested, and the final state must match the uninterrupted
// run bit for bit.
TEST(CheckpointRoundtripTest, ReptResumeAtEveryBoundaryIsBitIdentical) {
  const EdgeStream stream = FixedStream();
  ReptConfig config;
  config.m = 5;
  config.c = 13;  // c > m, c % m != 0: Algorithm 2 + pair registers.
  const uint64_t seed = 777;
  const size_t chunk = 97;

  ThreadPool writer_pool(2);
  ThreadPool pools[3] = {ThreadPool(1), ThreadPool(2), ThreadPool(8)};
  const DispatchMode modes[3] = {DispatchMode::kRouted,
                                 DispatchMode::kBroadcast,
                                 DispatchMode::kFused};

  ReptSession reference(config, seed, &writer_pool);
  IngestRange(reference, stream, 0, stream.size(), chunk);
  const ReptEstimator::RunDetail want = reference.SnapshotDetailed();
  ASSERT_TRUE(want.used_combination);

  ReptSession writer(config, seed, &writer_pool);
  writer.NoteVertices(stream.num_vertices());
  const auto& edges = stream.edges();
  size_t boundary_index = 0;
  for (size_t at = 0; at < stream.size(); at += chunk, ++boundary_index) {
    const size_t n = std::min(chunk, stream.size() - at);
    writer.Ingest(std::span<const Edge>(edges.data() + at, n));
    const size_t boundary = at + n;

    std::stringstream buffer;
    ASSERT_TRUE(WriteCheckpointStream(writer, buffer).ok());

    // Restore under a cycling (pool size, dispatch mode) combination —
    // including serial (no pool) every 7th boundary.
    ReptConfig resume_config = config;
    resume_config.dispatch = modes[boundary_index % 3];
    ThreadPool* pool = boundary_index % 7 == 6
                           ? nullptr
                           : &pools[(boundary_index / 3) % 3];
    ReptSession resumed(resume_config, seed, pool);
    ASSERT_TRUE(ReadCheckpointStream(resumed, buffer).ok())
        << "boundary " << boundary;
    EXPECT_EQ(resumed.edges_ingested(), boundary);
    EXPECT_EQ(resumed.StoredEdges(), writer.StoredEdges());

    IngestRange(resumed, stream, boundary, stream.size(), chunk);
    const ReptEstimator::RunDetail got = resumed.SnapshotDetailed();
    const std::string context = "boundary " + std::to_string(boundary);
    ExpectBitIdentical(got.estimates, want.estimates, context);
    ASSERT_EQ(got.instance_tallies.size(), want.instance_tallies.size());
    EXPECT_EQ(std::memcmp(got.instance_tallies.data(),
                          want.instance_tallies.data(),
                          want.instance_tallies.size() * sizeof(double)),
              0)
        << context;
    EXPECT_EQ(got.tau_hat1, want.tau_hat1) << context;
    EXPECT_EQ(got.tau_hat2, want.tau_hat2) << context;
    EXPECT_EQ(got.eta_hat, want.eta_hat) << context;
    EXPECT_EQ(resumed.edges_ingested(), reference.edges_ingested());
    EXPECT_EQ(resumed.StoredEdges(), reference.StoredEdges());
    EXPECT_EQ(resumed.num_vertices(), reference.num_vertices());
  }
}

TEST(CheckpointRoundtripTest, ReptAlgorithm1ConfigRoundtrips) {
  // c <= m (single group, no pair registers): the other estimator regime.
  const EdgeStream stream = FixedStream();
  ReptConfig config;
  config.m = 10;
  config.c = 4;
  ThreadPool pool(4);

  ReptSession reference(config, /*seed=*/5, &pool);
  IngestRange(reference, stream, 0, stream.size(), 128);

  ReptSession writer(config, /*seed=*/5, &pool);
  IngestRange(writer, stream, 0, stream.size() / 2, 128);
  std::stringstream buffer;
  ASSERT_TRUE(WriteCheckpointStream(writer, buffer).ok());

  ReptSession resumed(config, /*seed=*/5, nullptr);
  ASSERT_TRUE(ReadCheckpointStream(resumed, buffer).ok());
  IngestRange(resumed, stream, stream.size() / 2, stream.size(), 128);
  ExpectBitIdentical(resumed.Snapshot(), reference.Snapshot(), "alg1");
}

TEST(CheckpointRoundtripTest, EnsembleMethodsRoundtripBitIdentically) {
  // MASCOT (probability), TRIEST (reservoir + RNG-driven evictions), GPS
  // (priority heap + threshold): small budgets so evictions and threshold
  // raises actually happen before and after the boundary.
  const EdgeStream stream = FixedStream();
  struct Case {
    const char* name;
    std::unique_ptr<EstimatorSystem> system;
  };
  Case cases[3] = {{"MASCOT", MakeParallelMascot(4, 3)},
                   {"TRIEST", MakeParallelTriest(8, 3)},
                   {"GPS", MakeParallelGps(8, 3)}};
  SessionOptions options;
  options.expected_edges = stream.size();
  options.expected_vertices = stream.num_vertices();
  ThreadPool pool(3);

  for (Case& test_case : cases) {
    SCOPED_TRACE(test_case.name);
    auto reference =
        test_case.system->CreateSession(42, &pool, options).value();
    IngestRange(*reference, stream, 0, stream.size(), 111);

    auto writer = test_case.system->CreateSession(42, &pool, options).value();
    const size_t boundary = (stream.size() / 111 / 2) * 111;
    IngestRange(*writer, stream, 0, boundary, 111);
    std::stringstream buffer;
    ASSERT_TRUE(WriteCheckpointStream(*writer, buffer).ok());

    // Restore into a serial session (different pool "size"): baseline
    // instances are pre-seeded, so scheduling never affects state.
    auto resumed =
        test_case.system->CreateSession(42, nullptr, options).value();
    ASSERT_TRUE(ReadCheckpointStream(*resumed, buffer).ok());
    EXPECT_EQ(resumed->StoredEdges(), writer->StoredEdges());
    IngestRange(*resumed, stream, boundary, stream.size(), 111);

    EXPECT_EQ(resumed->StoredEdges(), reference->StoredEdges());
    ExpectBitIdentical(resumed->Snapshot(), reference->Snapshot(),
                       test_case.name);
  }
}

TEST(CheckpointRoundtripTest, FingerprintBindsConfigAndSeed) {
  const EdgeStream stream = FixedStream();
  ReptConfig config;
  config.m = 5;
  config.c = 6;
  ReptSession writer(config, /*seed=*/1, nullptr);
  IngestRange(writer, stream, 0, 500, 100);
  const std::string path = TempPath("fingerprint.ckpt");
  ASSERT_TRUE(SaveCheckpoint(writer, path).ok());

  {  // Different seed.
    ReptSession other(config, /*seed=*/2, nullptr);
    const Status st = LoadCheckpoint(other, path);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
  }
  {  // Different m.
    ReptConfig other_config = config;
    other_config.m = 6;
    ReptSession other(other_config, /*seed=*/1, nullptr);
    EXPECT_EQ(LoadCheckpoint(other, path).code(), StatusCode::kCorruption);
  }
  {  // Different estimator type entirely.
    auto ensemble = MakeParallelMascot(5, 6)->CreateSession(1, nullptr).value();
    EXPECT_EQ(LoadCheckpoint(*ensemble, path).code(),
              StatusCode::kCorruption);
  }
  {  // Dispatch mode is a scheduling knob: NOT part of the identity.
    ReptConfig other_config = config;
    other_config.dispatch = DispatchMode::kBroadcast;
    ReptSession other(other_config, /*seed=*/1, nullptr);
    EXPECT_TRUE(LoadCheckpoint(other, path).ok());
    ExpectBitIdentical(other.Snapshot(), writer.Snapshot(), "dispatch");
  }
  std::remove(path.c_str());
}

TEST(CheckpointRoundtripTest, BackToBackCheckpointsShareOneStream) {
  // Transport usage: several checkpoints ride one stream (migration over a
  // socket); each ReadCheckpointStream consumes exactly one and leaves the
  // stream positioned at the next.
  const EdgeStream stream = FixedStream();
  ReptConfig config;
  config.m = 4;
  config.c = 6;
  ReptSession writer(config, /*seed=*/21, nullptr);
  std::stringstream pipe;
  IngestRange(writer, stream, 0, 300, 100);
  ASSERT_TRUE(WriteCheckpointStream(writer, pipe).ok());
  const double global_at_300 = writer.Snapshot().global;
  IngestRange(writer, stream, 300, 700, 100);
  ASSERT_TRUE(WriteCheckpointStream(writer, pipe).ok());
  const double global_at_700 = writer.Snapshot().global;

  ReptSession first(config, /*seed=*/21, nullptr);
  ASSERT_TRUE(ReadCheckpointStream(first, pipe).ok());
  EXPECT_EQ(first.edges_ingested(), 300u);
  EXPECT_EQ(first.Snapshot().global, global_at_300);
  ReptSession second(config, /*seed=*/21, nullptr);
  ASSERT_TRUE(ReadCheckpointStream(second, pipe).ok());
  EXPECT_EQ(second.edges_ingested(), 700u);
  EXPECT_EQ(second.Snapshot().global, global_at_700);
}

TEST(CheckpointRoundtripTest, SaveIsAtomicAndLeavesNoTempFile) {
  const EdgeStream stream = FixedStream();
  ReptConfig config;
  config.m = 4;
  config.c = 4;
  ReptSession session(config, /*seed=*/3, nullptr);
  IngestRange(session, stream, 0, 400, 100);

  const std::string path = TempPath("atomic.ckpt");
  ASSERT_TRUE(SaveCheckpoint(session, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Overwriting an existing checkpoint goes through the same tmp + rename.
  IngestRange(session, stream, 400, 800, 100);
  ASSERT_TRUE(SaveCheckpoint(session, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  ReptSession restored(config, /*seed=*/3, nullptr);
  ASSERT_TRUE(LoadCheckpoint(restored, path).ok());
  EXPECT_EQ(restored.edges_ingested(), 800u);

  // An unwritable target fails with IOError and leaves no tmp turd.
  const std::string bad = "/nonexistent-dir/x.ckpt";
  EXPECT_EQ(SaveCheckpoint(session, bad).code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(CheckpointRoundtripTest, IngestAllPolicyPeriodicallySavesAndResumes) {
  const EdgeStream stream = FixedStream();
  ReptConfig config;
  config.m = 5;
  config.c = 7;
  const std::string path = TempPath("policy.ckpt");

  // Uninterrupted reference.
  ReptSession reference(config, /*seed=*/9, nullptr);
  {
    InMemoryEdgeSource source{EdgeStream(stream)};
    ASSERT_TRUE(IngestAll(source, reference, /*chunk_edges=*/128).ok());
  }

  // Run 1 "crashes" after pumping only a prefix, but the policy saved a
  // checkpoint every 300 edges along the way.
  const size_t prefix = (stream.size() / 2 / 128) * 128;
  uint64_t saved_at = 0;
  {
    ReptSession session(config, /*seed=*/9, nullptr);
    InMemoryEdgeSource source{EdgeStream(
        stream.name(), stream.num_vertices(),
        std::vector<Edge>(stream.edges().begin(),
                          stream.edges().begin() +
                              static_cast<int64_t>(prefix)))};
    IngestOptions options;
    options.chunk_edges = 128;
    options.checkpoint.path = path;
    options.checkpoint.every_edges = 300;
    ASSERT_TRUE(IngestAll(source, session, options).ok());
    ASSERT_TRUE(std::filesystem::exists(path));
    // The file on disk is the last periodic save: a 128-edge batch boundary
    // at a multiple of the trigger's batch quantization.
    ReptSession probe(config, /*seed=*/9, nullptr);
    ASSERT_TRUE(LoadCheckpoint(probe, path).ok());
    saved_at = probe.edges_ingested();
    EXPECT_GT(saved_at, 0u);
    EXPECT_LE(saved_at, prefix);
    EXPECT_EQ(saved_at % 128, 0u);
  }

  // Run 2 resumes from the file: restore, skip, ingest the rest (with
  // prefetch, proving the policy + resume path composes with the pump).
  {
    ReptSession session(config, /*seed=*/9, nullptr);
    ASSERT_TRUE(LoadCheckpoint(session, path).ok());
    InMemoryEdgeSource source{EdgeStream(stream)};
    auto skipped = SkipEdges(source, session.edges_ingested());
    ASSERT_TRUE(skipped.ok());
    ASSERT_EQ(*skipped, saved_at);
    IngestOptions options;
    options.chunk_edges = 128;
    options.prefetch = true;
    ASSERT_TRUE(IngestAll(source, session, options).ok());
    EXPECT_EQ(session.edges_ingested(), stream.size());
    ExpectBitIdentical(session.Snapshot(), reference.Snapshot(), "policy");
  }
  std::remove(path.c_str());
}

TEST(CheckpointRoundtripTest, GoldenCheckpointBytesMatchPr4Implementation) {
  // Golden constants captured from the PR-4 (node-based-map)
  // implementation: the flat arena-backed structures must serialize to the
  // exact same checkpoint byte stream (the codec canonicalizes by key
  // order, so this holds regardless of in-memory layout). A drift here
  // means restored sessions would diverge from pre-rewrite checkpoints.
  gen::HolmeKimParams params;
  params.num_vertices = 400;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.6;
  const EdgeStream stream = gen::HolmeKim(params, /*seed=*/12345);

  ReptConfig config;
  config.m = 5;
  config.c = 13;
  ReptSession session(config, /*seed=*/777, /*pool=*/nullptr);
  IngestRange(session, stream, 0, stream.size(), /*chunk=*/97);

  EXPECT_EQ(session.StateFingerprint(), 0xa6ce86bfb318e7e5ull);

  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(WriteCheckpointStream(session, out).ok());
  const std::string bytes = out.str();
  EXPECT_EQ(bytes.size(), 59358u);
  uint64_t hash = 1469598103934665603ull;
  for (const char byte : bytes) {
    hash ^= static_cast<unsigned char>(byte);
    hash *= 1099511628211ull;
  }
  EXPECT_EQ(hash, 0x601b9c2ade3aa597ull);
}

TEST(CheckpointRoundtripTest, IngestAllPolicyEveryBatchesTriggers) {
  const EdgeStream stream = FixedStream();
  ReptConfig config;
  config.m = 4;
  config.c = 4;
  const std::string path = TempPath("policy_batches.ckpt");
  ReptSession session(config, /*seed=*/11, nullptr);
  InMemoryEdgeSource source{EdgeStream(stream)};
  IngestOptions options;
  options.chunk_edges = 64;
  options.checkpoint.path = path;
  options.checkpoint.every_batches = 3;
  ASSERT_TRUE(IngestAll(source, session, options).ok());
  ReptSession probe(config, /*seed=*/11, nullptr);
  ASSERT_TRUE(LoadCheckpoint(probe, path).ok());
  // Saves land every 3 batches of 64 edges.
  EXPECT_EQ(probe.edges_ingested() % (3 * 64), 0u);
  EXPECT_GT(probe.edges_ingested(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rept
