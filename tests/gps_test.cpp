#include "baselines/gps.hpp"

#include <gtest/gtest.h>

#include "exact/exact_counts.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/regular.hpp"
#include "graph/permutation.hpp"

namespace rept {
namespace {

TEST(GpsTest, BudgetCoveringStreamIsExact) {
  // No evictions -> threshold stays 0 -> every inclusion probability is 1 ->
  // the HT estimate counts each triangle exactly once.
  const EdgeStream s = ShuffledCopy(gen::Complete(10), 2);
  const ExactCounts exact = ComputeExactCounts(s);
  GpsCounter gps(s.size(), /*seed=*/1);
  gps.ProcessStream(s);
  EXPECT_DOUBLE_EQ(gps.GlobalEstimate(), static_cast<double>(exact.tau));
  EXPECT_DOUBLE_EQ(gps.threshold(), 0.0);
  std::vector<double> local(s.num_vertices(), 0.0);
  gps.AccumulateLocal(local, 1.0);
  for (VertexId v = 0; v < s.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(local[v], static_cast<double>(exact.tau_v[v]));
  }
}

TEST(GpsTest, SampleRespectsBudget) {
  const uint64_t budget = 40;
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 100, .num_edges = 2000}, 3);
  GpsCounter gps(budget, 4);
  gps.ProcessStream(s);
  EXPECT_LE(gps.StoredEdges(), budget);
  EXPECT_GT(gps.threshold(), 0.0);  // evictions happened
}

TEST(GpsTest, DeterministicPerSeed) {
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 60, .num_edges = 800}, 5);
  GpsCounter a(100, 9);
  GpsCounter b(100, 9);
  a.ProcessStream(s);
  b.ProcessStream(s);
  EXPECT_DOUBLE_EQ(a.GlobalEstimate(), b.GlobalEstimate());
}

TEST(GpsTest, ThresholdMonotone) {
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 50, .num_edges = 600}, 6);
  GpsCounter gps(20, 7);
  double last = 0.0;
  for (const Edge& e : s) {
    gps.ProcessEdge(e.u, e.v);
    EXPECT_GE(gps.threshold(), last);
    last = gps.threshold();
  }
}

TEST(GpsTest, TriangleFreeGivesZero) {
  const EdgeStream s = gen::CompleteBipartite(12, 12);
  GpsCounter gps(30, 8);
  gps.ProcessStream(s);
  EXPECT_DOUBLE_EQ(gps.GlobalEstimate(), 0.0);
}

TEST(GpsTest, RoughlyUnbiasedUnderEviction) {
  // Average over seeds should land near truth even with a tight budget.
  const EdgeStream s = ShuffledCopy(gen::Complete(24), 9);  // 2024 triangles
  const ExactCounts exact = ComputeExactCounts(s);
  double sum = 0.0;
  const int runs = 40;
  for (int r = 0; r < runs; ++r) {
    GpsCounter gps(s.size() / 2, 1000 + r);
    gps.ProcessStream(s);
    sum += gps.GlobalEstimate();
  }
  const double mean = sum / runs;
  EXPECT_NEAR(mean, static_cast<double>(exact.tau),
              0.3 * static_cast<double>(exact.tau));
}

TEST(GpsTest, DuplicateEdgesIgnored) {
  GpsCounter gps(10, 1);
  gps.ProcessEdge(0, 1);
  gps.ProcessEdge(1, 0);
  gps.ProcessEdge(0, 1);
  EXPECT_EQ(gps.StoredEdges(), 1u);
}

TEST(GpsTest, FactoryHalvesBudgetViaFraction) {
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 50, .num_edges = 1000}, 11);
  GpsFactory factory(0.05);  // 0.5 * p with p = 0.1
  auto counter = factory.Create(1, factory.BudgetFor(s.size()));
  counter->ProcessStream(s);
  EXPECT_LE(counter->StoredEdges(), 50u);
  EXPECT_EQ(factory.MethodName(), "GPS");
}

}  // namespace
}  // namespace rept
