#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rept {
namespace {

// argv helper: builds a mutable char* array from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "prog");
    for (auto& s : strings_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, ParsesAllTypes) {
  int64_t i = 0;
  uint64_t u = 0;
  double d = 0.0;
  std::string s;
  bool b = false;
  FlagSet flags("test");
  flags.AddInt64("int", &i, "an int")
      .AddUint64("uint", &u, "a uint")
      .AddDouble("double", &d, "a double")
      .AddString("string", &s, "a string")
      .AddBool("bool", &b, "a bool");
  Argv args({"--int=-5", "--uint=7", "--double=2.5", "--string=hello",
             "--bool=true"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(i, -5);
  EXPECT_EQ(u, 7u);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
}

TEST(FlagsTest, SpaceSeparatedValues) {
  int64_t i = 0;
  FlagSet flags;
  flags.AddInt64("n", &i, "count");
  Argv args({"--n", "42"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(i, 42);
}

TEST(FlagsTest, BareBoolEnables) {
  bool b = false;
  FlagSet flags;
  flags.AddBool("verbose", &b, "verbosity");
  Argv args({"--verbose"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(b);
}

TEST(FlagsTest, DefaultsSurviveWhenAbsent) {
  int64_t i = 99;
  FlagSet flags;
  flags.AddInt64("n", &i, "count");
  Argv args({});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(i, 99);
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagSet flags;
  Argv args({"--mystery=1"});
  const Status st = flags.Parse(args.argc(), args.argv());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadNumbersRejected) {
  int64_t i = 0;
  uint64_t u = 0;
  FlagSet flags;
  flags.AddInt64("i", &i, "").AddUint64("u", &u, "");
  {
    Argv args({"--i=abc"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
  }
  {
    Argv args({"--u=-3"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
  }
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  int64_t i = 0;
  FlagSet flags;
  flags.AddInt64("n", &i, "");
  Argv args({"file1", "--n=3", "file2"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"file1", "file2"}));
}

TEST(FlagsTest, HelpReturnsNotFound) {
  FlagSet flags("my tool");
  Argv args({"--help"});
  EXPECT_EQ(flags.Parse(args.argc(), args.argv()).code(),
            StatusCode::kNotFound);
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  int64_t i = 5;
  FlagSet flags("descr");
  flags.AddInt64("alpha", &i, "the alpha flag");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("default: 5"), std::string::npos);
  EXPECT_NE(usage.find("the alpha flag"), std::string::npos);
}

TEST(FlagsTest, MissingValueRejected) {
  int64_t i = 0;
  FlagSet flags;
  flags.AddInt64("n", &i, "");
  Argv args({"--n"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

}  // namespace
}  // namespace rept
