#include "exact/exact_counts.hpp"

#include <gtest/gtest.h>

#include "exact/triangle_enumerator.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/holme_kim.hpp"
#include "gen/regular.hpp"
#include "graph/graph_builder.hpp"
#include "graph/permutation.hpp"
#include "test_util.hpp"

namespace rept {
namespace {

uint64_t Choose3(uint64_t n) { return n * (n - 1) * (n - 2) / 6; }
uint64_t Choose2(uint64_t n) { return n * (n - 1) / 2; }

TEST(TriangleEnumeratorTest, CompleteGraphCount) {
  for (VertexId n : {3u, 4u, 5u, 8u, 12u}) {
    const Graph g = BuildGraph(gen::Complete(n).edges(), n);
    EXPECT_EQ(CountTriangles(g), Choose3(n)) << "n=" << n;
  }
}

TEST(TriangleEnumeratorTest, EachTriangleReportedOnceWithArrivals) {
  // Triangle 0-1-2 with a pendant edge.
  const Graph g = BuildGraph({{0, 1}, {1, 2}, {0, 2}, {2, 3}}, 4);
  int hits = 0;
  EnumerateTriangles(g, [&](const TriangleHit& t) {
    ++hits;
    std::set<VertexId> vertices = {t.a, t.b, t.c};
    EXPECT_EQ(vertices, (std::set<VertexId>{0, 1, 2}));
    std::set<uint32_t> arrivals = {t.arrival_ab, t.arrival_ac, t.arrival_bc};
    EXPECT_EQ(arrivals, (std::set<uint32_t>{0, 1, 2}));
  });
  EXPECT_EQ(hits, 1);
}

TEST(ExactCountsTest, ZeroTriangleFamilies) {
  for (const EdgeStream& s :
       {gen::Star(10), gen::Path(10), gen::Cycle(10),
        gen::CompleteBipartite(4, 5), gen::Grid(4, 5)}) {
    const ExactCounts counts = ComputeExactCounts(s);
    EXPECT_EQ(counts.tau, 0u) << s.name();
    EXPECT_EQ(counts.eta, 0u) << s.name();
    for (uint64_t t : counts.tau_v) EXPECT_EQ(t, 0u);
  }
}

TEST(ExactCountsTest, TriangleIsACycleOfThree) {
  const ExactCounts counts = ComputeExactCounts(gen::Cycle(3));
  EXPECT_EQ(counts.tau, 1u);
  EXPECT_EQ(counts.eta, 0u);
  for (uint64_t t : counts.tau_v) EXPECT_EQ(t, 1u);
}

TEST(ExactCountsTest, CompleteGraphLocalCounts) {
  const VertexId n = 7;
  const ExactCounts counts = ComputeExactCounts(gen::Complete(n));
  EXPECT_EQ(counts.tau, Choose3(n));
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(counts.tau_v[v], Choose2(n - 1));
  }
}

TEST(ExactCountsTest, WheelCounts) {
  // Wheel with rim r >= 4: each rim edge forms one triangle with the hub.
  const VertexId rim = 8;
  const ExactCounts counts = ComputeExactCounts(gen::Wheel(rim));
  EXPECT_EQ(counts.tau, rim);
  EXPECT_EQ(counts.tau_v[0], rim);  // hub is in every triangle
  for (VertexId v = 1; v <= rim; ++v) {
    EXPECT_EQ(counts.tau_v[v], 2u);  // two adjacent rim edges
  }
}

TEST(ExactCountsTest, EtaHandComputedExample) {
  // Two triangles sharing edge (0,1): {0,1,2} and {0,1,3}.
  // Stream: (0,1) (0,2) (1,2) (0,3) (1,3).
  // Triangle A edges arrive at 0,1,2 (last: (1,2)); early: (0,1),(0,2).
  // Triangle B edges arrive at 0,3,4 (last: (1,3)); early: (0,1),(0,3).
  // Shared edge (0,1) is early in both -> eta = 1.
  const EdgeStream s =
      testing::MakeStream(4, {{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}});
  const ExactCounts counts = ComputeExactCounts(s);
  EXPECT_EQ(counts.tau, 2u);
  EXPECT_EQ(counts.eta, 1u);
  // The pair contains nodes 0 and 1 (shared edge endpoints).
  EXPECT_EQ(counts.eta_v[0], 1u);
  EXPECT_EQ(counts.eta_v[1], 1u);
  EXPECT_EQ(counts.eta_v[2], 0u);
  EXPECT_EQ(counts.eta_v[3], 0u);
}

TEST(ExactCountsTest, EtaExcludesLastEdgePairs) {
  // Same two triangles but ordered so the shared edge is LAST in one member:
  // Stream: (0,2) (1,2) (0,3) (1,3) (0,1).
  // (0,1) is the last edge of both triangles -> eta = 0.
  const EdgeStream s =
      testing::MakeStream(4, {{0, 2}, {1, 2}, {0, 3}, {1, 3}, {0, 1}});
  const ExactCounts counts = ComputeExactCounts(s);
  EXPECT_EQ(counts.tau, 2u);
  EXPECT_EQ(counts.eta, 0u);
}

TEST(ExactCountsTest, StreamOrderChangesEta) {
  // K4 has 4 triangles and 3 "diagonal" pair relations; eta depends on the
  // arrival permutation. Verify both match brute force for several orders.
  const EdgeStream base = gen::Complete(4);
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const EdgeStream shuffled = ShuffledCopy(base, seed);
    const ExactCounts counts = ComputeExactCounts(shuffled);
    const auto brute = testing::BruteForce(shuffled);
    EXPECT_EQ(counts.tau, brute.tau);
    EXPECT_EQ(counts.eta, brute.eta) << "seed=" << seed;
  }
}

class ExactVsBruteForceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(ExactVsBruteForceTest, RandomGraphsAgreeWithBruteForce) {
  const auto [edges, seed] = GetParam();
  const EdgeStream s = gen::ErdosRenyi(
      {.num_vertices = 25, .num_edges = edges}, seed);
  const ExactCounts counts = ComputeExactCounts(s);
  const auto brute = testing::BruteForce(s);
  EXPECT_EQ(counts.tau, brute.tau);
  EXPECT_EQ(counts.eta, brute.eta);
  ASSERT_EQ(counts.tau_v.size(), brute.tau_v.size());
  for (size_t v = 0; v < counts.tau_v.size(); ++v) {
    EXPECT_EQ(counts.tau_v[v], brute.tau_v[v]) << "v=" << v;
    EXPECT_EQ(counts.eta_v[v], brute.eta_v[v]) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, ExactVsBruteForceTest,
    ::testing::Combine(::testing::Values(40, 80, 150, 250),
                       ::testing::Values(1, 2, 3)));

TEST(ExactCountsTest, DenseClusteredGraphAgainstBruteForce) {
  const EdgeStream s = gen::HolmeKim(
      {.num_vertices = 40, .edges_per_vertex = 5, .triad_probability = 0.8},
      11);
  const ExactCounts counts = ComputeExactCounts(s);
  const auto brute = testing::BruteForce(s);
  EXPECT_EQ(counts.tau, brute.tau);
  EXPECT_EQ(counts.eta, brute.eta);
  EXPECT_GT(counts.tau, 50u);  // triad closure actually made triangles
}

TEST(ExactCountsTest, NumTriangleVertices) {
  const EdgeStream s = testing::MakeStream(5, {{0, 1}, {1, 2}, {0, 2}, {3, 4}});
  const ExactCounts counts = ComputeExactCounts(s);
  EXPECT_EQ(counts.NumTriangleVertices(), 3u);
}

TEST(ExactCountsTest, WithEtaFalseSkipsEta) {
  const ExactCounts counts =
      ComputeExactCounts(gen::Complete(5), /*with_eta=*/false);
  EXPECT_EQ(counts.tau, Choose3(5));
  EXPECT_TRUE(counts.eta_v.empty());
}

}  // namespace
}  // namespace rept
