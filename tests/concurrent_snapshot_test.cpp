// Snapshot()-during-Ingest() stress coverage for the "single-writer,
// concurrent snapshots OK" contract (ISSUE 3):
//  * a reader thread hammers Snapshot() / StoredEdges() while the writer
//    ingests, checking that StoredEdges() is monotone non-decreasing (REPT
//    and MASCOT never evict) and every snapshot is finite;
//  * after the writer finishes, the session state is bit-identical to a
//    serial full-stream ingest — concurrent readers never perturb it.
// The CI ThreadSanitizer matrix entry runs exactly these tests to prove the
// seqlock (TallyBoard) and mutex (local-tally, ensemble) paths race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "baselines/baseline_systems.hpp"
#include "core/rept_estimator.hpp"
#include "core/rept_session.hpp"
#include "core/streaming_estimator.hpp"
#include "gen/holme_kim.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

EdgeStream StressStream() {
  gen::HolmeKimParams params;
  params.num_vertices = 1200;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.5;
  return gen::HolmeKim(params, /*seed=*/99);
}

// Ingests `stream` in small batches on `session` while a reader thread spins
// on snapshots; returns how many snapshots the reader completed mid-ingest.
uint64_t HammerSnapshotsDuringIngest(StreamingEstimator& session,
                                     const EdgeStream& stream,
                                     size_t chunk) {
  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots{0};
  std::thread reader([&] {
    uint64_t last_stored = 0;
    // do-while: at least one snapshot always lands, even when a fast
    // ingest drains the whole stream before this thread is scheduled
    // (routine on single-core CI runners since the flat-structure rewrite
    // sped ingest up) — the mid-ingest hammering stays best-effort.
    do {
      const uint64_t stored = session.StoredEdges();
      EXPECT_GE(stored, last_stored) << "StoredEdges went backwards";
      last_stored = stored;
      const TriangleEstimates est = session.Snapshot();
      EXPECT_TRUE(std::isfinite(est.global));
      snapshots.fetch_add(1, std::memory_order_relaxed);
    } while (!done.load(std::memory_order_acquire));
  });

  session.NoteVertices(stream.num_vertices());
  const std::vector<Edge>& edges = stream.edges();
  for (size_t i = 0; i < edges.size(); i += chunk) {
    const size_t n = std::min(chunk, edges.size() - i);
    session.Ingest(std::span<const Edge>(edges.data() + i, n));
  }
  done.store(true, std::memory_order_release);
  reader.join();
  return snapshots.load(std::memory_order_relaxed);
}

TEST(ConcurrentSnapshotTest, WaitFreeGlobalPathMatchesSerialRun) {
  const EdgeStream stream = StressStream();
  ReptConfig config;
  config.m = 5;
  config.c = 13;  // Algorithm 2: remainder group, the hardest tally path.
  config.track_local = false;

  ReptSession serial(config, /*seed=*/21, nullptr);
  serial.Ingest(stream);
  const double reference = serial.Snapshot().global;

  ThreadPool pool(4);
  ReptSession session(config, /*seed=*/21, &pool);
  const uint64_t snapshots =
      HammerSnapshotsDuringIngest(session, stream, /*chunk=*/61);

  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(session.Snapshot().global, reference);
  EXPECT_EQ(session.StoredEdges(), serial.StoredEdges());
  EXPECT_EQ(session.edges_ingested(), stream.size());
}

TEST(ConcurrentSnapshotTest, MutexLocalPathMatchesSerialRun) {
  const EdgeStream stream = StressStream();
  ReptConfig config;
  config.m = 5;
  config.c = 13;
  config.track_local = true;  // Snapshot serializes with the batch.

  const ReptEstimator estimator(config);
  const TriangleEstimates reference = estimator.Run(stream, 22, nullptr);

  ThreadPool pool(4);
  ReptSession session(config, /*seed=*/22, &pool);
  const uint64_t snapshots =
      HammerSnapshotsDuringIngest(session, stream, /*chunk=*/61);

  EXPECT_GT(snapshots, 0u);
  const TriangleEstimates final_snapshot = session.Snapshot();
  EXPECT_EQ(final_snapshot.global, reference.global);
  EXPECT_EQ(final_snapshot.local, reference.local);
}

TEST(ConcurrentSnapshotTest, DispatchModesSafeUnderConcurrentReaders) {
  // Broadcast and fused publish through the same TallyBoard: the concurrency
  // contract is mode-independent, and so is the final state.
  const EdgeStream stream = StressStream();
  ThreadPool pool(4);
  for (const DispatchMode mode :
       {DispatchMode::kRouted, DispatchMode::kBroadcast,
        DispatchMode::kFused}) {
    ReptConfig config;
    config.m = 5;
    config.c = 13;
    config.track_local = false;
    config.dispatch = mode;

    ReptSession serial(config, /*seed=*/23, nullptr);
    serial.Ingest(stream);

    ReptSession session(config, /*seed=*/23, &pool);
    HammerSnapshotsDuringIngest(session, stream, /*chunk=*/113);
    EXPECT_EQ(session.Snapshot().global, serial.Snapshot().global);
  }
}

TEST(ConcurrentSnapshotTest, PipelinedParallelReplayMatchesSerialRun) {
  // The pipelined routed path (pool >= 2 workers): sub-batches are routed
  // into double-buffered routers while instances replay the previous
  // sub-batch, and tallies publish at every sub-batch boundary. A tiny
  // routed_sub_batch forces many pipeline iterations; snapshot hammering
  // runs throughout. This is the TSan witness for the parallel-replay
  // design: per-instance state thread-local, publish via seqlock only.
  const EdgeStream stream = StressStream();
  ReptConfig config;
  config.m = 5;
  config.c = 13;  // Algorithm 2: remainder group, the hardest tally path.
  config.track_local = false;
  config.routed_sub_batch = 64;  // Many sub-batches per Ingest call.

  ReptSession serial(config, /*seed=*/29, nullptr);
  serial.Ingest(stream);
  const double reference = serial.Snapshot().global;

  ThreadPool pool(4);
  ReptSession session(config, /*seed=*/29, &pool);
  // Large chunks: each Ingest() call spans many sub-batches, so the
  // pipelined overlap (route k+1 while replaying k) actually engages.
  const uint64_t snapshots =
      HammerSnapshotsDuringIngest(session, stream, /*chunk=*/1024);

  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(session.Snapshot().global, reference);
  EXPECT_EQ(session.StoredEdges(), serial.StoredEdges());
  EXPECT_EQ(session.edges_ingested(), stream.size());
  // Publish cadence: one publish per 64-edge sub-batch within each chunk.
  uint64_t expected_subs = 0;
  for (size_t at = 0; at < stream.size(); at += 1024) {
    const size_t n = std::min<size_t>(1024, stream.size() - at);
    expected_subs += (n + 63) / 64;
  }
  EXPECT_EQ(session.ingest_stats().sub_batches, expected_subs);
}

TEST(ConcurrentSnapshotTest, PipelinedLocalTalliesMatchSerialRun) {
  // track_local sends Snapshot() through the ingest mutex instead of the
  // board — the serializing path must also stay correct (and TSan-clean)
  // under the pipelined fan-out.
  const EdgeStream stream = StressStream();
  ReptConfig config;
  config.m = 5;
  config.c = 13;
  config.track_local = true;
  config.routed_sub_batch = 128;

  const ReptEstimator estimator(config);
  const TriangleEstimates reference = estimator.Run(stream, 33, nullptr);

  ThreadPool pool(4);
  ReptSession session(config, /*seed=*/33, &pool);
  const uint64_t snapshots =
      HammerSnapshotsDuringIngest(session, stream, /*chunk=*/1024);

  EXPECT_GT(snapshots, 0u);
  const TriangleEstimates final_snapshot = session.Snapshot();
  EXPECT_EQ(final_snapshot.global, reference.global);
  EXPECT_EQ(final_snapshot.local, reference.local);
}

TEST(ConcurrentSnapshotTest, SubBatchPublishCadenceAdvancesEpochs) {
  // One big Ingest() call must publish once per sub-batch — the board's
  // epoch counter is the observable cadence (snapshot freshness inside a
  // long call rides on it).
  const EdgeStream stream = StressStream();
  ReptConfig config;
  config.m = 5;
  config.c = 13;
  config.track_local = false;
  config.routed_sub_batch = 100;

  ThreadPool pool(4);
  ReptSession session(config, /*seed=*/37, &pool);
  session.Ingest(stream);
  const uint64_t expected_subs = (stream.size() + 99) / 100;
  EXPECT_EQ(session.ingest_stats().sub_batches, expected_subs);
  EXPECT_EQ(session.ingest_stats().batches, 1u);
}

TEST(ConcurrentSnapshotTest, EnsembleSessionToleratesConcurrentReaders) {
  const EdgeStream stream = StressStream();
  const auto mascot =
      MakeParallelMascot(8, 4, /*track_local=*/false);  // Eviction-free.
  const TriangleEstimates reference = mascot->Run(stream, 31, nullptr);

  ThreadPool pool(4);
  SessionOptions options;
  options.expected_edges = stream.size();
  options.expected_vertices = stream.num_vertices();
  const auto session = mascot->CreateSession(31, &pool, options).value();
  const uint64_t snapshots =
      HammerSnapshotsDuringIngest(*session, stream, /*chunk=*/61);

  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(session->Snapshot().global, reference.global);
}

}  // namespace
}  // namespace rept
