// Negative-space contract of the rept_server wire protocol, in the style
// of checkpoint_corruption_test: any damaged frame — truncated at any
// offset, any flipped byte, bad magic, unknown version, oversized length
// prefix, interleaved partial delivery — is rejected with a structured
// Status (never UB or a crash), and a live server survives arbitrary
// malformed clients: it answers with an error frame when the framing is
// intact, closes the connection when it is not, and keeps serving
// well-behaved clients either way. Runs under ASan/UBSan/TSan in CI.
#include <algorithm>
#include <cstring>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace rept::net {
namespace {

// ---------------------------------------------------------------------------
// Wire payload codec.

TEST(WireTest, ScalarRoundtripAllTypes) {
  std::vector<uint8_t> buffer;
  WireWriter writer(buffer);
  writer.AppendU8(0xAB);
  writer.AppendU32(0xDEADBEEF);
  writer.AppendU64(0x0123456789ABCDEFull);
  writer.AppendDouble(-1234.5678);
  writer.AppendString("hello");

  WireReader reader(buffer);
  EXPECT_EQ(reader.ReadU8(), 0xAB);
  EXPECT_EQ(reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.ReadDouble(), -1234.5678);
  EXPECT_EQ(reader.ReadString(16), "hello");
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

TEST(WireTest, ReadPastEndLatchesCorruptionAndReturnsZeros) {
  const std::vector<uint8_t> buffer = {1, 2};
  WireReader reader(buffer);
  EXPECT_EQ(reader.ReadU64(), 0u);  // Only 2 bytes present.
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
  // Latched: every later read stays zero/error.
  EXPECT_EQ(reader.ReadU32(), 0u);
  EXPECT_EQ(reader.ReadString(16), "");
  EXPECT_FALSE(reader.ExpectEnd().ok());
}

TEST(WireTest, StringLengthIsBoundedBeforeAllocation) {
  std::vector<uint8_t> buffer;
  WireWriter writer(buffer);
  // Length prefix claims 4 GiB; only 3 bytes follow.
  writer.AppendU32(0xFFFFFFFFu);
  writer.AppendBytes("abc", 3);
  WireReader reader(buffer);
  EXPECT_EQ(reader.ReadString(1 << 20), "");
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);

  // A length above the caller's max is rejected even when present.
  std::vector<uint8_t> buffer2;
  WireWriter writer2(buffer2);
  writer2.AppendString("toolong");
  WireReader reader2(buffer2);
  EXPECT_EQ(reader2.ReadString(3), "");
  EXPECT_EQ(reader2.status().code(), StatusCode::kCorruption);
}

TEST(WireTest, CountIsBoundedByPayloadBytes) {
  std::vector<uint8_t> buffer;
  WireWriter writer(buffer);
  writer.AppendU64(1ull << 60);  // Claims 2^60 elements.
  WireReader reader(buffer);
  EXPECT_EQ(reader.ReadCount(/*min_bytes_per_element=*/8), 0u);
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(WireTest, ExpectEndRejectsTrailingBytes) {
  const std::vector<uint8_t> buffer = {1, 2, 3, 4, 5};
  WireReader reader(buffer);
  (void)reader.ReadU32();
  EXPECT_EQ(reader.ExpectEnd().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Framing layer over an in-memory source with scripted chunk sizes.

/// ByteSource delivering a buffer in caller-scripted chunk sizes, modelling
/// a TCP stream that fragments frames arbitrarily.
class ChunkedSource : public ByteSource {
 public:
  ChunkedSource(std::vector<uint8_t> bytes, std::deque<size_t> chunks)
      : bytes_(std::move(bytes)), chunks_(std::move(chunks)) {}

  Result<size_t> Read(void* dst, size_t max) override {
    if (at_ >= bytes_.size()) return size_t{0};
    size_t n = max;
    if (!chunks_.empty()) {
      n = std::min(n, chunks_.front());
      chunks_.pop_front();
    }
    n = std::min(n, bytes_.size() - at_);
    std::memcpy(dst, bytes_.data() + at_, n);
    at_ += n;
    return n;
  }

 private:
  std::vector<uint8_t> bytes_;
  std::deque<size_t> chunks_;
  size_t at_ = 0;
};

std::vector<uint8_t> SamplePayload() {
  std::vector<uint8_t> payload;
  WireWriter writer(payload);
  writer.AppendString("session-1");
  writer.AppendU64(123456789);
  return payload;
}

TEST(FramingTest, RoundtripSurvivesArbitraryFragmentation) {
  const std::vector<uint8_t> payload = SamplePayload();
  const std::vector<uint8_t> bytes =
      EncodeFrame(MessageType::kIngestBatch, payload);

  // Byte-by-byte delivery, then a mixed-chunk script.
  for (const std::deque<size_t>& script :
       {std::deque<size_t>(bytes.size(), 1),
        std::deque<size_t>{3, 1, 7, 2, 1, 100},
        std::deque<size_t>{}}) {
    ChunkedSource source(bytes, script);
    Frame frame;
    ASSERT_TRUE(
        ReadFrame(source, frame, kDefaultMaxFramePayload).ok());
    EXPECT_EQ(frame.type,
              static_cast<uint32_t>(MessageType::kIngestBatch));
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(FramingTest, CleanEofAtFrameBoundaryIsNotFound) {
  ChunkedSource source({}, {});
  Frame frame;
  EXPECT_EQ(ReadFrame(source, frame, kDefaultMaxFramePayload).code(),
            StatusCode::kNotFound);
}

TEST(FramingTest, TruncationAtEveryOffsetIsAnError) {
  const std::vector<uint8_t> bytes =
      EncodeFrame(MessageType::kSnapshot, SamplePayload());
  for (size_t cut = 1; cut < bytes.size(); ++cut) {
    ChunkedSource source(
        std::vector<uint8_t>(bytes.begin(),
                             bytes.begin() + static_cast<int64_t>(cut)),
        {});
    Frame frame;
    const Status st = ReadFrame(source, frame, kDefaultMaxFramePayload);
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "cut at " << cut;
  }
}

TEST(FramingTest, EveryByteFlipIsDetected) {
  const std::vector<uint8_t> bytes =
      EncodeFrame(MessageType::kCreateSession, SamplePayload());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> damaged = bytes;
    damaged[i] ^= 0x40;
    ChunkedSource source(std::move(damaged), {});
    Frame frame;
    const Status st = ReadFrame(source, frame, kDefaultMaxFramePayload);
    // Magic/version/CRC/length damage all land in Corruption (a larger
    // length field may also read as truncation — still Corruption).
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "flip at " << i;
  }
}

TEST(FramingTest, OversizedLengthIsRejectedBeforeAllocation) {
  // Hand-build a header whose length field claims an absurd payload; the
  // frame cap must reject it before any buffer is sized (a 2^62-byte
  // allocation attempt would OOM the test).
  std::vector<uint8_t> header;
  WireWriter writer(header);
  writer.AppendBytes(kFrameMagic, sizeof(kFrameMagic));
  writer.AppendU32(kProtocolVersion);
  writer.AppendU32(static_cast<uint32_t>(MessageType::kIngestBatch));
  writer.AppendU64(uint64_t{1} << 62);
  ChunkedSource source(std::move(header), {});
  Frame frame;
  const Status st = ReadFrame(source, frame, kDefaultMaxFramePayload);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("exceeds limit"), std::string::npos);
}

TEST(FramingTest, BadMagicAndBadVersionAreCorruption) {
  std::vector<uint8_t> bytes =
      EncodeFrame(MessageType::kStats, {});
  bytes[0] = 'X';
  {
    ChunkedSource source(bytes, {});
    Frame frame;
    EXPECT_EQ(ReadFrame(source, frame, kDefaultMaxFramePayload).code(),
              StatusCode::kCorruption);
  }
  bytes = EncodeFrame(MessageType::kStats, {});
  bytes[4] = 99;  // Unsupported version.
  {
    ChunkedSource source(bytes, {});
    Frame frame;
    EXPECT_EQ(ReadFrame(source, frame, kDefaultMaxFramePayload).code(),
              StatusCode::kCorruption);
  }
}

TEST(FramingTest, ErrorFrameRoundtrip) {
  const std::vector<uint8_t> bytes =
      EncodeErrorFrame(WireError::kNotFound, "no such session");
  ChunkedSource source(bytes, {});
  Frame frame;
  ASSERT_TRUE(ReadFrame(source, frame, kDefaultMaxFramePayload).ok());
  ASSERT_EQ(frame.type, static_cast<uint32_t>(MessageType::kError));
  WireReader reader(frame.payload);
  EXPECT_EQ(static_cast<WireError>(reader.ReadU32()),
            WireError::kNotFound);
  EXPECT_EQ(reader.ReadString(4096), "no such session");
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

TEST(ProtocolTest, SessionNameValidation) {
  EXPECT_TRUE(ValidateSessionName("tenant-1.alpha_B").ok());
  EXPECT_FALSE(ValidateSessionName("").ok());
  EXPECT_FALSE(ValidateSessionName("../escape").ok());
  EXPECT_FALSE(ValidateSessionName("a/b").ok());
  EXPECT_FALSE(ValidateSessionName("sp ace").ok());
  EXPECT_FALSE(
      ValidateSessionName(std::string(kMaxSessionNameBytes + 1, 'a')).ok());
}

// ---------------------------------------------------------------------------
// Live-server robustness: the server must survive any client behavior.

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.pool_threads = 2;
    options.limits.max_sessions = 3;
    options.max_frame_payload = 1 << 20;
    server_ = std::make_unique<ReptServer>(options);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// A fresh raw connection to the server.
  TcpSocket RawConnect() {
    auto sock = TcpSocket::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(sock.ok());
    return std::move(sock).value();
  }

  /// Proves the server still serves: a full create/drop exchange succeeds
  /// on a brand-new connection.
  void ExpectServerAlive(const std::string& session_name) {
    ReptClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    SessionSpec spec;
    spec.name = session_name;
    spec.seed = 1;
    spec.config.m = 4;
    spec.config.c = 4;
    ASSERT_TRUE(client.CreateSession(spec).ok());
    ASSERT_TRUE(client.DropSession(session_name).ok());
  }

  std::unique_ptr<ReptServer> server_;
};

TEST_F(ServerFixture, GarbageBytesCloseTheConnectionNotTheServer) {
  TcpSocket raw = RawConnect();
  const std::string garbage = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
  ASSERT_TRUE(raw.WriteAll(garbage.data(), garbage.size()).ok());
  // The server answers with a best-effort kError frame and/or closes; all
  // we require is that the connection ends instead of wedging...
  Frame frame;
  const Status st = ReadFrame(raw, frame, kDefaultMaxFramePayload);
  if (st.ok()) {
    EXPECT_EQ(frame.type, static_cast<uint32_t>(MessageType::kError));
  }
  // ...and that the server keeps serving new clients.
  ExpectServerAlive("after-garbage");
}

TEST_F(ServerFixture, MalformedPayloadGetsErrorFrameAndConnectionLives) {
  TcpSocket raw = RawConnect();
  // Well-framed CREATE_SESSION whose payload is one lonely byte.
  const std::vector<uint8_t> bad =
      EncodeFrame(MessageType::kCreateSession, std::vector<uint8_t>{7});
  ASSERT_TRUE(raw.WriteAll(bad.data(), bad.size()).ok());
  Frame reply;
  ASSERT_TRUE(ReadFrame(raw, reply, kDefaultMaxFramePayload).ok());
  EXPECT_EQ(reply.type, static_cast<uint32_t>(MessageType::kError));

  // Framing stayed in sync: the SAME connection then serves a valid verb.
  const std::vector<uint8_t> stats = EncodeFrame(MessageType::kStats, {});
  ASSERT_TRUE(raw.WriteAll(stats.data(), stats.size()).ok());
  ASSERT_TRUE(ReadFrame(raw, reply, kDefaultMaxFramePayload).ok());
  EXPECT_EQ(reply.type, static_cast<uint32_t>(MessageType::kStatsResult));
}

TEST_F(ServerFixture, UnknownVerbGetsErrorFrame) {
  TcpSocket raw = RawConnect();
  const std::vector<uint8_t> bytes =
      EncodeFrame(static_cast<MessageType>(55), {});
  ASSERT_TRUE(raw.WriteAll(bytes.data(), bytes.size()).ok());
  Frame reply;
  ASSERT_TRUE(ReadFrame(raw, reply, kDefaultMaxFramePayload).ok());
  ASSERT_EQ(reply.type, static_cast<uint32_t>(MessageType::kError));
  WireReader reader(reply.payload);
  EXPECT_EQ(static_cast<WireError>(reader.ReadU32()),
            WireError::kUnknownVerb);
}

TEST_F(ServerFixture, OversizedFrameClosesConnectionServerSurvives) {
  TcpSocket raw = RawConnect();
  // Header claiming a payload far beyond the server's 1 MiB cap.
  std::vector<uint8_t> header;
  WireWriter writer(header);
  writer.AppendBytes(kFrameMagic, sizeof(kFrameMagic));
  writer.AppendU32(kProtocolVersion);
  writer.AppendU32(static_cast<uint32_t>(MessageType::kIngestBatch));
  writer.AppendU64(uint64_t{1} << 40);
  ASSERT_TRUE(raw.WriteAll(header.data(), header.size()).ok());
  // Server rejects before allocating and closes (after a best-effort
  // error frame).
  Frame reply;
  const Status st = ReadFrame(raw, reply, kDefaultMaxFramePayload);
  if (st.ok()) {
    EXPECT_EQ(reply.type, static_cast<uint32_t>(MessageType::kError));
  }
  ExpectServerAlive("after-oversized");
}

TEST_F(ServerFixture, ProtocolErrorsComeBackAsTypedStatuses) {
  ReptClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  // Unknown session.
  EXPECT_EQ(client.Snapshot("ghost", 0).status().code(),
            StatusCode::kNotFound);

  // Invalid config (m=1) is rejected by the estimator's Check().
  SessionSpec bad;
  bad.name = "bad";
  bad.config.m = 1;
  EXPECT_EQ(client.CreateSession(bad).code(),
            StatusCode::kInvalidArgument);

  // Bad session name.
  SessionSpec slash;
  slash.name = "a/b";
  slash.config.m = 4;
  EXPECT_EQ(client.CreateSession(slash).code(),
            StatusCode::kInvalidArgument);

  // Duplicate create.
  SessionSpec good;
  good.name = "dup";
  good.seed = 3;
  good.config.m = 4;
  good.config.c = 4;
  ASSERT_TRUE(client.CreateSession(good).ok());
  const Status dup = client.CreateSession(good);
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup.message().find("already exists"), std::string::npos);

  // Admission: the fixture allows 3 sessions.
  SessionSpec extra = good;
  extra.name = "extra1";
  ASSERT_TRUE(client.CreateSession(extra).ok());
  extra.name = "extra2";
  ASSERT_TRUE(client.CreateSession(extra).ok());
  extra.name = "one-too-many";
  EXPECT_EQ(client.CreateSession(extra).code(),
            StatusCode::kResourceExhausted);

  // Restore with garbage checkpoint bytes: typed error, and the session's
  // prior state is untouched (the restore happens into a scratch session
  // that is only swapped in on success).
  const std::vector<Edge> seed_edges = {{0, 1}, {1, 2}, {2, 0}};
  ASSERT_TRUE(
      client.Ingest("dup", std::span<const Edge>(seed_edges)).ok());
  const std::vector<uint8_t> junk(64, 0xCD);
  EXPECT_FALSE(client.Restore("dup", junk).ok());
  const Result<SnapshotReply> after = client.Snapshot("dup", 0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().edges_ingested, seed_edges.size());
}

TEST_F(ServerFixture, PartialFrameThenDisconnectLeavesServerHealthy) {
  {
    TcpSocket raw = RawConnect();
    const std::vector<uint8_t> bytes =
        EncodeFrame(MessageType::kStats, {});
    // Half a frame, then vanish.
    ASSERT_TRUE(raw.WriteAll(bytes.data(), bytes.size() / 2).ok());
  }
  ExpectServerAlive("after-partial");
}

}  // namespace
}  // namespace rept::net
