#include "runner/evaluation.hpp"

#include <gtest/gtest.h>

#include "baselines/baseline_systems.hpp"
#include "baselines/mascot.hpp"
#include "baselines/parallel_ensemble.hpp"
#include "exact/exact_counts.hpp"
#include "gen/holme_kim.hpp"
#include "gen/regular.hpp"
#include "graph/permutation.hpp"
#include "runner/accuracy_sweep.hpp"
#include "runner/runtime_measure.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

EdgeStream TriangleRichStream() {
  return ShuffledCopy(
      gen::HolmeKim({.num_vertices = 200,
                     .edges_per_vertex = 5,
                     .triad_probability = 0.7},
                    1),
      2);
}

TEST(EvaluationTest, PerfectEstimatorScoresZero) {
  const EdgeStream s = TriangleRichStream();
  const ExactCounts exact = ComputeExactCounts(s);
  ParallelEnsemble exact_system(std::make_shared<MascotFactory>(1.0), 1);
  EvaluationOptions opts;
  opts.runs = 3;
  const EvaluationResult r =
      EvaluateSystem(exact_system, s, exact, opts, nullptr);
  EXPECT_DOUBLE_EQ(r.global_nrmse, 0.0);
  EXPECT_DOUBLE_EQ(r.global_bias, 0.0);
  EXPECT_NEAR(r.mean_local_nrmse, 0.0, 1e-12);
  EXPECT_EQ(r.runs, 3u);
}

TEST(EvaluationTest, NoisyEstimatorScoresPositive) {
  const EdgeStream s = TriangleRichStream();
  const ExactCounts exact = ComputeExactCounts(s);
  const auto system = MakeParallelMascot(10, 2);
  EvaluationOptions opts;
  opts.runs = 4;
  const EvaluationResult r = EvaluateSystem(*system, s, exact, opts, nullptr);
  EXPECT_GT(r.global_nrmse, 0.0);
  EXPECT_GT(r.mean_local_nrmse, 0.0);
  EXPECT_GT(r.mean_run_seconds, 0.0);
}

TEST(EvaluationTest, ParallelismModesAgree) {
  const EdgeStream s = TriangleRichStream();
  const ExactCounts exact = ComputeExactCounts(s);
  const auto system = MakeParallelMascot(5, 3);
  ThreadPool pool(4);

  EvaluationOptions across;
  across.runs = 3;
  across.parallelism = EvaluationOptions::RunParallelism::kAcrossRuns;
  EvaluationOptions within;
  within.runs = 3;
  within.parallelism = EvaluationOptions::RunParallelism::kWithinRun;

  const EvaluationResult a = EvaluateSystem(*system, s, exact, across, &pool);
  const EvaluationResult b = EvaluateSystem(*system, s, exact, within, &pool);
  EXPECT_DOUBLE_EQ(a.global_nrmse, b.global_nrmse);
  EXPECT_DOUBLE_EQ(a.mean_local_nrmse, b.mean_local_nrmse);
}

TEST(EvaluationTest, SkippingLocalEvaluation) {
  const EdgeStream s = TriangleRichStream();
  const ExactCounts exact = ComputeExactCounts(s);
  const auto system = MakeRept(5, 2, /*track_local=*/false);
  EvaluationOptions opts;
  opts.runs = 2;
  opts.evaluate_local = false;
  const EvaluationResult r = EvaluateSystem(*system, s, exact, opts, nullptr);
  EXPECT_DOUBLE_EQ(r.mean_local_nrmse, 0.0);
  EXPECT_GE(r.global_nrmse, 0.0);
}

TEST(AccuracySweepTest, ProducesRowPerC) {
  const EdgeStream s = TriangleRichStream();
  const ExactCounts exact = ComputeExactCounts(s);
  AccuracySweepConfig cfg;
  cfg.m = 5;
  cfg.c_values = {2, 5, 7};
  cfg.runs = 2;
  cfg.include_gps = true;
  ThreadPool pool(4);
  const auto rows = RunAccuracySweep(s, exact, cfg, &pool);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_GT(row.rept, 0.0);
    EXPECT_GT(row.mascot, 0.0);
    EXPECT_GT(row.triest, 0.0);
    EXPECT_GT(row.gps, 0.0);
    EXPECT_GT(row.rept_local, 0.0);
  }
}

TEST(RuntimeMeasureTest, ReportsOrderedTimings) {
  const EdgeStream s = TriangleRichStream();
  const auto system = MakeRept(5, 3);
  const RuntimeMeasurement m = MeasureRuntime(*system, s, 1, nullptr, 3);
  EXPECT_EQ(m.repeats, 3u);
  EXPECT_GT(m.median_seconds, 0.0);
  EXPECT_LE(m.min_seconds, m.median_seconds);
  EXPECT_LE(m.median_seconds, m.max_seconds);
}

}  // namespace
}  // namespace rept
