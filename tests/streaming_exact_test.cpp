#include "exact/streaming_exact.hpp"

#include <gtest/gtest.h>

#include "exact/exact_counts.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/holme_kim.hpp"
#include "gen/regular.hpp"
#include "graph/permutation.hpp"
#include "test_util.hpp"

namespace rept {
namespace {

void ExpectMatchesBatch(const EdgeStream& stream) {
  StreamingExactCounter streaming(stream.num_vertices());
  streaming.ProcessStream(stream);
  const ExactCounts batch = ComputeExactCounts(stream);
  EXPECT_EQ(streaming.tau(), batch.tau);
  EXPECT_EQ(streaming.eta(), batch.eta);
  for (VertexId v = 0; v < stream.num_vertices(); ++v) {
    EXPECT_EQ(streaming.tau_v(v), batch.tau_v[v]) << "v=" << v;
    EXPECT_EQ(streaming.eta_v(v), batch.eta_v[v]) << "v=" << v;
  }
}

TEST(StreamingExactTest, CompleteGraph) { ExpectMatchesBatch(gen::Complete(8)); }

TEST(StreamingExactTest, Wheel) { ExpectMatchesBatch(gen::Wheel(9)); }

TEST(StreamingExactTest, TriangleFree) {
  ExpectMatchesBatch(gen::CompleteBipartite(5, 5));
  StreamingExactCounter counter(10);
  counter.ProcessStream(gen::CompleteBipartite(5, 5));
  EXPECT_EQ(counter.tau(), 0u);
}

class StreamingExactRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingExactRandomTest, MatchesBatchOnShuffledRandomGraphs) {
  const uint64_t seed = GetParam();
  EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 40, .num_edges = 250}, seed);
  ShuffleStream(s, seed + 100);
  ExpectMatchesBatch(s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingExactRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(StreamingExactTest, ClusteredGraph) {
  ExpectMatchesBatch(gen::HolmeKim(
      {.num_vertices = 60, .edges_per_vertex = 4, .triad_probability = 0.9},
      3));
}

TEST(StreamingExactTest, SelfLoopsIgnored) {
  StreamingExactCounter counter(3);
  counter.ProcessEdge(0, 0);
  counter.ProcessEdge(0, 1);
  counter.ProcessEdge(1, 2);
  counter.ProcessEdge(0, 2);
  EXPECT_EQ(counter.tau(), 1u);
}

TEST(StreamingExactTest, EtaTrackingOptional) {
  StreamingExactCounter counter(5, /*track_eta=*/false);
  counter.ProcessStream(gen::Complete(5));
  EXPECT_EQ(counter.tau(), 10u);
  EXPECT_EQ(counter.eta(), 0u);  // untracked stays zero
}

TEST(StreamingExactTest, MatchesBruteForceDirectly) {
  const EdgeStream s = gen::ErdosRenyi(
      {.num_vertices = 20, .num_edges = 120}, 77);
  StreamingExactCounter counter(s.num_vertices());
  counter.ProcessStream(s);
  const auto brute = testing::BruteForce(s);
  EXPECT_EQ(counter.tau(), brute.tau);
  EXPECT_EQ(counter.eta(), brute.eta);
}

}  // namespace
}  // namespace rept
