#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hash/edge_hash.hpp"
#include "hash/hash_family.hpp"
#include "hash/tabulation.hpp"
#include "util/statistics.hpp"

namespace rept {
namespace {

TEST(FastRangeTest, StaysInRange) {
  for (uint32_t m : {1u, 2u, 3u, 7u, 100u, 1000000u}) {
    for (uint64_t h :
         {0ull, 1ull, 0xffffffffffffffffull, 0x8000000000000000ull}) {
      EXPECT_LT(FastRange(h, m), m);
    }
  }
}

TEST(FastRangeTest, CoversAllBuckets) {
  // With hashes spread over the 64-bit space every bucket must be reachable.
  const uint32_t m = 7;
  std::vector<bool> hit(m, false);
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t h = (static_cast<uint64_t>(-1) / m) * i + 42;
    hit[FastRange(h, m)] = true;
  }
  for (uint32_t b = 0; b < m; ++b) EXPECT_TRUE(hit[b]) << b;
}

TEST(MixEdgeHasherTest, OrientationIndependent) {
  MixEdgeHasher hasher(1);
  EXPECT_EQ(hasher.Hash(3, 9), hasher.Hash(9, 3));
  EXPECT_EQ(hasher.Bucket(3, 9, 10), hasher.Bucket(9, 3, 10));
}

TEST(MixEdgeHasherTest, DeterministicPerSeed) {
  MixEdgeHasher a(7);
  MixEdgeHasher b(7);
  EXPECT_EQ(a.Hash(1, 2), b.Hash(1, 2));
}

TEST(MixEdgeHasherTest, SeedsChangeMapping) {
  MixEdgeHasher a(1);
  MixEdgeHasher b(2);
  int same = 0;
  for (VertexId v = 1; v < 100; ++v) {
    if (a.Bucket(0, v, 100) == b.Bucket(0, v, 100)) ++same;
  }
  EXPECT_LT(same, 15);  // ~1% expected collisions for independent maps
}

// Chi-square uniformity sweep over bucket counts and hashers. 95th
// percentile of chi2 with (m-1) dof is roughly m-1 + 2*sqrt(2(m-1)); we test
// against a looser 4-sigma bound to keep the (seeded, deterministic) test
// robust.
class HashUniformityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HashUniformityTest, MixHasherUniformOverEdges) {
  const uint32_t m = GetParam();
  MixEdgeHasher hasher(123);
  std::vector<uint64_t> counts(m, 0);
  const int kEdges = 200000;
  for (int i = 0; i < kEdges; ++i) {
    const VertexId u = static_cast<VertexId>(i % 4096);
    const VertexId v = static_cast<VertexId>(4096 + i / 7);
    ++counts[hasher.Bucket(u, v, m)];
  }
  const double dof = m - 1;
  const double bound = dof + 4.0 * std::sqrt(2.0 * dof) + 4.0;
  EXPECT_LT(ChiSquareUniform(counts), bound) << "m=" << m;
}

TEST_P(HashUniformityTest, TabulationHasherUniformOverEdges) {
  const uint32_t m = GetParam();
  TabulationEdgeHasher hasher(123);
  std::vector<uint64_t> counts(m, 0);
  const int kEdges = 200000;
  for (int i = 0; i < kEdges; ++i) {
    const VertexId u = static_cast<VertexId>(i % 4096);
    const VertexId v = static_cast<VertexId>(4096 + i / 7);
    ++counts[hasher.Bucket(u, v, m)];
  }
  const double dof = m - 1;
  const double bound = dof + 4.0 * std::sqrt(2.0 * dof) + 4.0;
  EXPECT_LT(ChiSquareUniform(counts), bound) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, HashUniformityTest,
                         ::testing::Values(2, 3, 10, 32, 100, 257));

TEST(PairwiseIndependenceTest, CollisionRateMatchesOneOverM) {
  // P(h(e1) == h(e2)) should be ~1/m for distinct edges.
  const uint32_t m = 10;
  MixEdgeHasher hasher(55);
  int collisions = 0;
  const int kPairs = 100000;
  for (int i = 0; i < kPairs; ++i) {
    const uint32_t b1 =
        hasher.Bucket(static_cast<VertexId>(2 * i), 1000000, m);
    const uint32_t b2 =
        hasher.Bucket(static_cast<VertexId>(2 * i + 1), 1000000, m);
    if (b1 == b2) ++collisions;
  }
  const double rate = collisions / static_cast<double>(kPairs);
  EXPECT_NEAR(rate, 1.0 / m, 0.01);
}

TEST(TabulationTest, DeterministicAndSeedSensitive) {
  TabulationEdgeHasher a(9);
  TabulationEdgeHasher b(9);
  TabulationEdgeHasher c(10);
  EXPECT_EQ(a.Hash(5, 6), b.Hash(5, 6));
  EXPECT_NE(a.Hash(5, 6), c.Hash(5, 6));
  EXPECT_EQ(a.Hash(5, 6), a.Hash(6, 5));
}

TEST(HashFamilyTest, MembersIndependent) {
  HashFamily<MixEdgeHasher> family(77);
  const MixEdgeHasher h0 = family.MakeHasher(0);
  const MixEdgeHasher h1 = family.MakeHasher(1);
  int same = 0;
  const uint32_t m = 50;
  for (VertexId v = 1; v <= 1000; ++v) {
    if (h0.Bucket(0, v, m) == h1.Bucket(0, v, m)) ++same;
  }
  // Expect ~1000/m = 20 agreements for independent members.
  EXPECT_GT(same, 2);
  EXPECT_LT(same, 60);
}

TEST(HashFamilyTest, Reproducible) {
  HashFamily<MixEdgeHasher> f1(3);
  HashFamily<MixEdgeHasher> f2(3);
  EXPECT_EQ(f1.MakeHasher(4).Hash(1, 2), f2.MakeHasher(4).Hash(1, 2));
}

}  // namespace
}  // namespace rept
