#include "baselines/parallel_ensemble.hpp"

#include <gtest/gtest.h>

#include "baselines/baseline_systems.hpp"
#include "baselines/mascot.hpp"
#include "exact/exact_counts.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/regular.hpp"
#include "graph/permutation.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

TEST(ParallelEnsembleTest, AveragesExactInstancesExactly) {
  // MASCOT with p=1 is exact; averaging c exact instances stays exact.
  const EdgeStream s = ShuffledCopy(gen::Complete(12), 5);
  const ExactCounts exact = ComputeExactCounts(s);
  ParallelEnsemble ensemble(std::make_shared<MascotFactory>(1.0), 7);
  const TriangleEstimates e = ensemble.Run(s, 3, nullptr);
  EXPECT_DOUBLE_EQ(e.global, static_cast<double>(exact.tau));
  for (VertexId v = 0; v < s.num_vertices(); ++v) {
    EXPECT_NEAR(e.local[v], static_cast<double>(exact.tau_v[v]), 1e-9);
  }
}

TEST(ParallelEnsembleTest, DeterministicAcrossThreadCounts) {
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 150, .num_edges = 2500}, 7);
  ParallelEnsemble ensemble(std::make_shared<MascotFactory>(0.3), 9);
  const TriangleEstimates serial = ensemble.Run(s, 11, nullptr);
  ThreadPool pool(6);
  const TriangleEstimates parallel = ensemble.Run(s, 11, &pool);
  EXPECT_DOUBLE_EQ(serial.global, parallel.global);
  EXPECT_EQ(serial.local, parallel.local);
}

TEST(ParallelEnsembleTest, InstancesUseDistinctSeeds) {
  // With c=2 and p=0.5 the two instances should (a.s.) store different
  // samples; detect via ensemble-vs-single difference across seeds.
  const EdgeStream s =
      gen::ErdosRenyi({.num_vertices = 100, .num_edges = 2000}, 9);
  ParallelEnsemble single(std::make_shared<MascotFactory>(0.5), 1);
  ParallelEnsemble pair(std::make_shared<MascotFactory>(0.5), 2);
  const double a = single.Run(s, 1, nullptr).global;
  const double b = pair.Run(s, 1, nullptr).global;
  EXPECT_NE(a, b);
}

TEST(ParallelEnsembleTest, NamesAndLabels) {
  ParallelEnsemble unnamed(std::make_shared<MascotFactory>(0.1), 4);
  EXPECT_EQ(unnamed.Name(), "MASCOT(c=4)");
  ParallelEnsemble named(std::make_shared<MascotFactory>(0.1), 4, "custom");
  EXPECT_EQ(named.Name(), "custom");
  EXPECT_EQ(named.NumProcessors(), 4u);
}

TEST(BaselineSystemsTest, FactoriesProduceExpectedNames) {
  EXPECT_EQ(MakeParallelMascot(10, 5)->Name(), "MASCOT(m=10,c=5)");
  EXPECT_EQ(MakeParallelTriest(10, 5)->Name(), "TRIEST(m=10,c=5)");
  EXPECT_EQ(MakeParallelGps(10, 5)->Name(), "GPS(m=10,c=5)");
  EXPECT_EQ(MakeMascotS(10, 5)->Name(), "MASCOT-S(m=10,c=5)");
  EXPECT_EQ(MakeTriestS(10, 5)->Name(), "TRIEST-S(m=10,c=5)");
  EXPECT_EQ(MakeGpsS(10, 5)->Name(), "GPS-S(m=10,c=5)");
  EXPECT_EQ(MakeRept(10, 5)->Name(), "REPT(m=10,c=5)");
}

TEST(BaselineSystemsTest, SingleThreadedVariantsUseOneProcessor) {
  EXPECT_EQ(MakeMascotS(10, 5)->NumProcessors(), 1u);
  EXPECT_EQ(MakeTriestS(10, 5)->NumProcessors(), 1u);
  EXPECT_EQ(MakeGpsS(10, 5)->NumProcessors(), 1u);
  EXPECT_EQ(MakeParallelMascot(10, 5)->NumProcessors(), 5u);
}

TEST(BaselineSystemsTest, MascotSWithFullBudgetIsExact) {
  // c = m makes MASCOT-S sample with probability 1.
  const EdgeStream s = ShuffledCopy(gen::Complete(9), 13);
  const ExactCounts exact = ComputeExactCounts(s);
  const auto system = MakeMascotS(4, 4);
  EXPECT_DOUBLE_EQ(system->Run(s, 5, nullptr).global,
                   static_cast<double>(exact.tau));
}

}  // namespace
}  // namespace rept
