#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace rept {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // xoshiro must not get stuck at zero state thanks to SplitMix seeding.
  std::set<uint64_t> values;
  for (int i = 0; i < 16; ++i) values.insert(rng.Next());
  EXPECT_GT(values.size(), 10u);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(99);
  const uint64_t bound = 10;
  const int draws = 100000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < draws; ++i) ++counts[rng.Below(bound)];
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], draws / bound, draws / bound * 0.15);
  }
}

TEST(RngTest, NextDoubleInHalfOpenUnit) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoublePositiveNeverZero) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDoublePositive();
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  const int draws = 100000;
  int heads = 0;
  for (int i = 0; i < draws; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / static_cast<double>(draws), 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Mix64Test, InjectiveOnSmallRange) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(SeedSequenceTest, ChildSeedsDecorrelated) {
  SeedSequence seq(42);
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 1000; ++i) seeds.insert(seq.SeedFor(i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SeedSequenceTest, SaltSeparatesFamilies) {
  SeedSequence a(42, 1);
  SeedSequence b(42, 2);
  EXPECT_NE(a.SeedFor(0), b.SeedFor(0));
}

TEST(SeedSequenceTest, Deterministic) {
  SeedSequence a(42, 7);
  SeedSequence b(42, 7);
  for (uint64_t i = 0; i < 16; ++i) EXPECT_EQ(a.SeedFor(i), b.SeedFor(i));
}

}  // namespace
}  // namespace rept
