// Monte-Carlo validation of the paper's closed-form variances (Theorem 3 and
// §III-B/C): the empirical variance of repeated runs must match the formula
// within a band that accounts for sample-variance noise. Fixed seeds keep
// the tests deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "baselines/baseline_systems.hpp"
#include "core/rept_estimator.hpp"
#include "core/variance.hpp"
#include "exact/exact_counts.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/permutation.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

struct VarianceCase {
  std::string method;  // "rept" or "mascot"
  uint32_t m;
  uint32_t c;
};

class VarianceMatchTest : public ::testing::TestWithParam<VarianceCase> {};

TEST_P(VarianceMatchTest, EmpiricalVarianceMatchesClosedForm) {
  const VarianceCase tc = GetParam();
  EdgeStream s = gen::ErdosRenyi({.num_vertices = 60, .num_edges = 500}, 31);
  ShuffleStream(s, 32);
  const ExactCounts exact = ComputeExactCounts(s);
  const double tau = static_cast<double>(exact.tau);
  const double eta = static_cast<double>(exact.eta);

  const auto system = tc.method == "rept"
                          ? MakeRept(tc.m, tc.c, /*track_local=*/false)
                          : MakeParallelMascot(tc.m, tc.c,
                                               /*track_local=*/false);
  const double theory =
      tc.method == "rept" ? variance::Rept(tau, eta, tc.m, tc.c)
                          : variance::ParallelMascot(tau, eta, tc.m, tc.c);
  ASSERT_GT(theory, 0.0);

  const uint32_t kRuns = 600;
  ThreadPool pool(8);
  RunningStats stats;
  SeedSequence seeds(5000 + tc.m * 17 + tc.c, 55);
  for (uint32_t r = 0; r < kRuns; ++r) {
    stats.Add(system->Run(s, seeds.SeedFor(r), &pool).global);
  }

  const double ratio = stats.sample_variance() / theory;
  EXPECT_GT(ratio, 0.6) << system->Name() << " empirical="
                        << stats.sample_variance() << " theory=" << theory;
  EXPECT_LT(ratio, 1.6) << system->Name() << " empirical="
                        << stats.sample_variance() << " theory=" << theory;
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, VarianceMatchTest,
    ::testing::Values(
        // REPT c <= m: (tau(m^2-c) + 2 eta(m-c))/c.
        VarianceCase{"rept", 4, 2},
        VarianceCase{"rept", 4, 4},
        VarianceCase{"rept", 6, 3},
        VarianceCase{"rept", 6, 6},
        // REPT full groups: tau(m-1)/c1 — covariance fully eliminated.
        VarianceCase{"rept", 4, 8},
        VarianceCase{"rept", 3, 9},
        // Parallel MASCOT keeps the 2 eta term: (tau(m^2-1)+2eta(m-1))/c.
        VarianceCase{"mascot", 4, 2},
        VarianceCase{"mascot", 6, 3}),
    [](const ::testing::TestParamInfo<VarianceCase>& info) {
      return info.param.method + "_m" + std::to_string(info.param.m) + "_c" +
             std::to_string(info.param.c);
    });

TEST(VarianceOrderingTest, ReptBeatsParallelMascotEmpirically) {
  // The paper's core claim, observed rather than assumed: at c = m the REPT
  // variance drops to tau(m-1) while parallel MASCOT keeps the 2 eta term.
  EdgeStream s = gen::ErdosRenyi({.num_vertices = 60, .num_edges = 600}, 41);
  ShuffleStream(s, 42);
  const uint32_t m = 6;
  const uint32_t c = 6;
  const auto rept = MakeRept(m, c, false);
  const auto mascot = MakeParallelMascot(m, c, false);

  ThreadPool pool(8);
  RunningStats rept_stats;
  RunningStats mascot_stats;
  SeedSequence seeds(4242, 3);
  for (uint32_t r = 0; r < 400; ++r) {
    rept_stats.Add(rept->Run(s, seeds.SeedFor(2 * r), &pool).global);
    mascot_stats.Add(mascot->Run(s, seeds.SeedFor(2 * r + 1), &pool).global);
  }
  EXPECT_LT(rept_stats.sample_variance(), mascot_stats.sample_variance());
}

TEST(EtaHatTest, EstimatorTracksTrueEta) {
  // Algorithm 2's eta_hat = (m^3/c) sum_i eta^(i) must average close to the
  // true eta. Strict pair counting is unbiased; paper-faithful counting may
  // only add a small positive bias (DESIGN.md §3.1).
  EdgeStream s = gen::ErdosRenyi({.num_vertices = 60, .num_edges = 600}, 51);
  ShuffleStream(s, 52);
  const ExactCounts exact = ComputeExactCounts(s);
  ASSERT_GT(exact.eta, 100u);

  const uint32_t m = 3;
  const uint32_t c = 7;  // c1=2, c2=1 -> pair tracking active
  ReptConfig cfg;
  cfg.m = m;
  cfg.c = c;
  cfg.track_local = false;

  ThreadPool pool(8);
  SeedSequence seeds(6100, 9);
  const uint32_t kRuns = 400;

  double strict_sum = 0.0;
  double paper_sum = 0.0;
  {
    ReptConfig strict_cfg = cfg;
    strict_cfg.strict_eta_pairs = true;
    const ReptEstimator strict(strict_cfg);
    const ReptEstimator paper(cfg);
    for (uint32_t r = 0; r < kRuns; ++r) {
      strict_sum += strict.RunDetailed(s, seeds.SeedFor(r), &pool).eta_hat;
      paper_sum += paper.RunDetailed(s, seeds.SeedFor(r), &pool).eta_hat;
    }
  }
  const double eta = static_cast<double>(exact.eta);
  const double strict_mean = strict_sum / kRuns;
  const double paper_mean = paper_sum / kRuns;
  // Strict estimator: unbiased within Monte-Carlo noise.
  EXPECT_NEAR(strict_mean, eta, 0.25 * eta);
  // Paper-faithful counts at least as many pairs.
  EXPECT_GE(paper_mean, strict_mean);
  // And its overshoot is bounded by the eta'/m analysis.
  EXPECT_LT(paper_mean, 2.0 * eta);
}

}  // namespace
}  // namespace rept
