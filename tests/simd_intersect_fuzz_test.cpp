// Differential fuzzing of the SIMD kernel layer: every kernel (intersect
// count, intersect write, batched hash bucketing) at every dispatch level
// this CPU supports — plus the forced-scalar override — against scalar
// references (std::set_intersection for the intersections, MixEdgeHasher
// for the buckets). Covers the adversarial shapes the block/gallop split
// cares about: lengths 0/1/vector-width±1, all-match/no-match/alternating
// patterns, heavy skew, duplicate-free sorted runs with values up to
// UINT32_MAX (the unsigned-compare sign-bias trick), and the padded wrapper
// entry points of sorted_intersect.hpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "container/sorted_intersect.hpp"
#include "graph/types.hpp"
#include "hash/edge_hash.hpp"
#include "simd/dispatch.hpp"
#include "simd/intersect_kernels.hpp"
#include "util/random.hpp"

namespace rept {
namespace {

/// Sorted duplicate-free ids in storage with simd::kOverreadPadIds of
/// readable tail — the arena contract the gallop kernels rely on. The pad
/// is filled with a poison value so a kernel that *uses* (not just loads)
/// lanes past end() diverges from the reference instead of passing by luck.
class PaddedList {
 public:
  explicit PaddedList(std::vector<VertexId> ids) : size_(ids.size()) {
    storage_ = std::move(ids);
    storage_.resize(size_ + simd::kOverreadPadIds, 0xDEADBEEFu);
  }

  std::span<const VertexId> view() const {
    return std::span<const VertexId>(storage_.data(), size_);
  }
  const VertexId* data() const { return storage_.data(); }
  size_t size() const { return size_; }

 private:
  std::vector<VertexId> storage_;
  size_t size_;
};

std::vector<VertexId> Reference(const PaddedList& a, const PaddedList& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.view().begin(), a.view().end(), b.view().begin(),
                        b.view().end(), std::back_inserter(out));
  return out;
}

/// Sorted duplicate-free run: `size` values starting near `base` with
/// random gaps in [1, max_gap].
std::vector<VertexId> MakeRun(Rng& rng, size_t size, VertexId base,
                              uint32_t max_gap) {
  std::vector<VertexId> ids;
  ids.reserve(size);
  uint64_t value = base;
  for (size_t i = 0; i < size; ++i) {
    value += 1 + rng.Below(max_gap);
    if (value > std::numeric_limits<uint32_t>::max()) break;
    ids.push_back(static_cast<VertexId>(value));
  }
  return ids;
}

/// Runs every (count, write) kernel of every supported level on (a, b) and
/// both argument orders, expecting the std::set_intersection reference.
void CheckAllKernels(const PaddedList& a, const PaddedList& b,
                     const char* label) {
  const std::vector<VertexId> expected = Reference(a, b);
  std::vector<VertexId> out(std::max<size_t>(
      1, std::min(a.size(), b.size())));
  for (const simd::IsaLevel level : simd::SupportedLevels()) {
    const simd::KernelTable& kernels = simd::KernelsFor(level);
    SCOPED_TRACE(testing::Message()
                 << label << " isa=" << simd::IsaName(level)
                 << " |a|=" << a.size() << " |b|=" << b.size());
    EXPECT_EQ(kernels.intersect_count(a.data(), a.size(), b.data(), b.size()),
              expected.size());
    EXPECT_EQ(kernels.intersect_count(b.data(), b.size(), a.data(), a.size()),
              expected.size());
    const uint32_t written =
        kernels.intersect_write(a.data(), a.size(), b.data(), b.size(),
                                out.data());
    ASSERT_EQ(written, expected.size());
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()));
    const uint32_t written_swapped =
        kernels.intersect_write(b.data(), b.size(), a.data(), a.size(),
                                out.data());
    ASSERT_EQ(written_swapped, expected.size());
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()));
  }
}

TEST(SimdDispatchTest, SupportedLevelsAndOverrides) {
  const std::vector<simd::IsaLevel> levels = simd::SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::IsaLevel::kScalar);
  EXPECT_EQ(levels.back(), simd::BestLevel());
  for (const simd::IsaLevel level : levels) {
    EXPECT_EQ(simd::KernelsFor(level).level, level);
    simd::ForceIsaLevel(level);
    EXPECT_EQ(simd::ActiveLevel(), level);
    simd::ClearForcedIsaLevel();
  }
  // Without a forced level the active table is scalar under
  // REPT_FORCE_SCALAR (the CI leg), best-supported otherwise.
  const bool env_scalar = []() {
    const char* value = std::getenv("REPT_FORCE_SCALAR");
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
  }();
  EXPECT_EQ(simd::ActiveLevel(),
            env_scalar ? simd::IsaLevel::kScalar : simd::BestLevel());
}

TEST(SimdIntersectFuzzTest, AdversarialLengths) {
  // Every (|a|, |b|) pair around the vector widths, in three densities:
  // near-total overlap, half, and none.
  const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33};
  Rng rng(2024);
  for (const size_t na : kSizes) {
    for (const size_t nb : kSizes) {
      // All-match prefix: a == b on the shorter length.
      const std::vector<VertexId> big = MakeRun(rng, std::max(na, nb), 10, 5);
      PaddedList a(std::vector<VertexId>(big.begin(), big.begin() + na));
      PaddedList b(std::vector<VertexId>(big.begin(), big.begin() + nb));
      CheckAllKernels(a, b, "all-match");

      // Alternating: a takes even positions, b odd — zero matches but
      // maximally interleaved values.
      std::vector<VertexId> evens, odds;
      const std::vector<VertexId> merged =
          MakeRun(rng, na + nb, 100, 3);
      for (size_t i = 0; i < merged.size(); ++i) {
        ((i % 2 == 0) ? evens : odds).push_back(merged[i]);
      }
      evens.resize(std::min(evens.size(), na));
      odds.resize(std::min(odds.size(), nb));
      CheckAllKernels(PaddedList(evens), PaddedList(odds), "alternating");

      // Disjoint ranges (every value of a below every value of b).
      CheckAllKernels(PaddedList(MakeRun(rng, na, 0, 4)),
                      PaddedList(MakeRun(rng, nb, 1u << 20, 4)), "no-match");
    }
  }
}

TEST(SimdIntersectFuzzTest, RandomRunsIncludingSkewAndHighValues) {
  Rng rng(7);
  for (int round = 0; round < 400; ++round) {
    const size_t na = 1 + rng.Below(64);
    // Mix balanced and heavily skewed shapes so both the block-compare and
    // the gallop paths run; occasionally push values near UINT32_MAX to
    // exercise the sign-bias unsigned compares.
    const size_t nb =
        round % 3 == 0 ? na + rng.Below(16) : na * (1 + rng.Below(200));
    const VertexId base = round % 5 == 0
                              ? std::numeric_limits<VertexId>::max() - 70000
                              : static_cast<VertexId>(rng.Below(1000));
    // Draw both runs from one overlapping id range so matches happen.
    std::vector<VertexId> a = MakeRun(rng, na, base, 30);
    std::vector<VertexId> b = MakeRun(rng, nb, base, 8);
    CheckAllKernels(PaddedList(std::move(a)), PaddedList(std::move(b)),
                    "random");
  }
}

TEST(SimdIntersectFuzzTest, PaddedWrappersMatchGenericAtEveryLevel) {
  // The wrapper entry points (the SampledGraph hot path) under ForceIsaLevel
  // must agree with the scalar template for every level, callback order
  // included.
  Rng rng(13);
  for (int round = 0; round < 200; ++round) {
    const size_t na = rng.Below(40);
    const size_t nb = rng.Below(40) * (1 + rng.Below(30));
    const PaddedList a(MakeRun(rng, na, 5, 6));
    const PaddedList b(MakeRun(rng, nb, 5, 6));
    std::vector<VertexId> expected;
    IntersectSorted(a.view(), b.view(),
                    [&](VertexId w) { expected.push_back(w); });
    for (const simd::IsaLevel level : simd::SupportedLevels()) {
      SCOPED_TRACE(simd::IsaName(level));
      simd::ForceIsaLevel(level);
      std::vector<VertexId> got;
      IntersectSortedPadded(a.view(), b.view(),
                            [&](VertexId w) { got.push_back(w); });
      EXPECT_EQ(got, expected);
      EXPECT_EQ(IntersectCountPadded(a.view(), b.view()), expected.size());
      simd::ClearForcedIsaLevel();
    }
  }
}

TEST(SimdHashFuzzTest, BucketsMatchMixEdgeHasherAtEveryLevel) {
  Rng rng(42);
  const uint32_t kBucketCounts[] = {1,  2,  3,   7,   10,
                                    20, 97, 256, 1000, 0x7fffffffu};
  for (const uint32_t m : kBucketCounts) {
    for (const size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 256u}) {
      const uint64_t seed = rng.Next();
      const MixEdgeHasher hasher(seed);
      std::vector<Edge> edges(n);
      for (Edge& e : edges) {
        // Orientation and self-loops included: the kernel canonicalizes
        // via min/max exactly like EdgeKey.
        e.u = static_cast<VertexId>(rng.Next());
        e.v = rng.Below(8) == 0 ? e.u : static_cast<VertexId>(rng.Next());
      }
      std::vector<uint32_t> expected(n);
      for (size_t i = 0; i < n; ++i) {
        expected[i] = hasher.Bucket(edges[i].u, edges[i].v, m);
      }
      for (const simd::IsaLevel level : simd::SupportedLevels()) {
        SCOPED_TRACE(testing::Message() << simd::IsaName(level) << " m=" << m
                                        << " n=" << n);
        std::vector<uint32_t> got(n, 0xffffffffu);
        simd::KernelsFor(level).hash_buckets(edges.data(), n,
                                             hasher.seed_offset(), m,
                                             got.data());
        EXPECT_EQ(got, expected);
      }
    }
  }
}

}  // namespace
}  // namespace rept
