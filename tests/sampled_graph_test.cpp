#include "graph/sampled_graph.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rept {
namespace {

TEST(SampledGraphTest, InsertContainsErase) {
  SampledGraph g;
  EXPECT_TRUE(g.Insert(1, 2));
  EXPECT_TRUE(g.Contains(1, 2));
  EXPECT_TRUE(g.Contains(2, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.Erase(2, 1));
  EXPECT_FALSE(g.Contains(1, 2));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(SampledGraphTest, DuplicateInsertRejected) {
  SampledGraph g;
  EXPECT_TRUE(g.Insert(1, 2));
  EXPECT_FALSE(g.Insert(2, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(SampledGraphTest, SelfLoopRejected) {
  SampledGraph g;
  EXPECT_FALSE(g.Insert(3, 3));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(SampledGraphTest, EraseMissingReturnsFalse) {
  SampledGraph g;
  g.Insert(1, 2);
  EXPECT_FALSE(g.Erase(1, 3));
  EXPECT_FALSE(g.Erase(4, 5));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(SampledGraphTest, DegreesAndActiveVertices) {
  SampledGraph g;
  g.Insert(0, 1);
  g.Insert(0, 2);
  g.Insert(0, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(9), 0u);
  EXPECT_EQ(g.num_active_vertices(), 4u);
  g.Erase(0, 1);
  EXPECT_EQ(g.num_active_vertices(), 3u);  // vertex 1 drops out entirely
}

TEST(SampledGraphTest, CommonNeighborsOfTriangleClosingEdge) {
  SampledGraph g;
  // Wedge 1-0-2 plus 1-3, 2-3: common neighbors of (1,2) are {0, 3}.
  g.Insert(0, 1);
  g.Insert(0, 2);
  g.Insert(1, 3);
  g.Insert(2, 3);
  std::vector<VertexId> common;
  g.ForEachCommonNeighbor(1, 2, [&](VertexId w) { common.push_back(w); });
  EXPECT_EQ(common, (std::vector<VertexId>{0, 3}));
  EXPECT_EQ(g.CountCommonNeighbors(1, 2), 2u);
  EXPECT_EQ(g.CountCommonNeighbors(2, 1), 2u);
}

TEST(SampledGraphTest, CommonNeighborsAbsentVertices) {
  SampledGraph g;
  g.Insert(0, 1);
  EXPECT_EQ(g.CountCommonNeighbors(0, 7), 0u);
  EXPECT_EQ(g.CountCommonNeighbors(7, 8), 0u);
}

TEST(SampledGraphTest, NeighborsSorted) {
  SampledGraph g;
  g.Insert(5, 9);
  g.Insert(5, 1);
  g.Insert(5, 4);
  const auto nbrs = g.neighbors(5);
  EXPECT_EQ(std::vector<VertexId>(nbrs.begin(), nbrs.end()),
            (std::vector<VertexId>{1, 4, 9}));
  EXPECT_TRUE(g.neighbors(99).empty());
}

TEST(SampledGraphTest, ClearResets) {
  SampledGraph g;
  g.Insert(0, 1);
  g.Clear();
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_active_vertices(), 0u);
  EXPECT_FALSE(g.Contains(0, 1));
}

TEST(SampledGraphTest, MemoryBytesGrowsWithEdges) {
  SampledGraph g;
  const size_t empty = g.MemoryBytes();
  for (VertexId v = 1; v <= 100; ++v) g.Insert(0, v);
  EXPECT_GT(g.MemoryBytes(), empty);
}

TEST(SampledGraphTest, TriangleCompletionScenario) {
  // The core streaming pattern: count completions before insertion.
  SampledGraph g;
  g.Insert(0, 1);
  g.Insert(0, 2);
  // (1,2) arrives: completes triangle through 0.
  EXPECT_EQ(g.CountCommonNeighbors(1, 2), 1u);
  g.Insert(1, 2);
  // (0,1) again would complete nothing new beyond w=2 already counted.
  EXPECT_EQ(g.CountCommonNeighbors(0, 1), 1u);
}

}  // namespace
}  // namespace rept
