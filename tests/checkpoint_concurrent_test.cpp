// Concurrency contract of Checkpoint(): it is a writer-side operation
// (serialized with Ingest on the ingest thread) that is safe while reader
// threads hammer Snapshot()/StoredEdges() from outside the pool — and every
// checkpoint it produces is a consistent batch boundary, proven by
// restoring each one and replaying the remainder against an uninterrupted
// reference. TSan (CI matrix) watches the seqlock/mutex interplay.
#include <atomic>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/rept_estimator.hpp"
#include "core/rept_session.hpp"
#include "gen/holme_kim.hpp"
#include "persist/checkpoint.hpp"
#include "util/thread_pool.hpp"

namespace rept {
namespace {

EdgeStream FixedStream() {
  gen::HolmeKimParams params;
  params.num_vertices = 250;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.6;
  return gen::HolmeKim(params, /*seed=*/404);
}

// Writer ingests batch by batch, checkpointing every few batches, while
// reader threads spin on anytime snapshots. Parameterized on track_local:
// false exercises the wait-free TallyBoard snapshot path concurrent with
// Checkpoint(), true the mutex-serialized local-tally path.
void HammeredCheckpointRun(bool track_local) {
  const EdgeStream stream = FixedStream();
  ReptConfig config;
  config.m = 4;
  config.c = 8;
  config.track_local = track_local;
  const uint64_t seed = 99;
  const size_t chunk = 120;
  ThreadPool pool(4);

  ReptSession session(config, seed, &pool);
  session.NoteVertices(stream.num_vertices());

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&session, &done] {
      uint64_t last_stored = 0;
      while (!done.load(std::memory_order_acquire)) {
        const TriangleEstimates est = session.Snapshot();
        (void)est;
        const uint64_t stored = session.StoredEdges();
        // REPT never evicts: stored edges are monotone across snapshots.
        EXPECT_GE(stored, last_stored);
        last_stored = stored;
      }
    });
  }

  // (boundary, serialized bytes) pairs taken while readers hammer away.
  std::vector<std::pair<size_t, std::string>> checkpoints;
  const auto& edges = stream.edges();
  size_t batch = 0;
  for (size_t at = 0; at < stream.size(); at += chunk, ++batch) {
    const size_t n = std::min(chunk, stream.size() - at);
    session.Ingest(std::span<const Edge>(edges.data() + at, n));
    if (batch % 2 == 1) {
      std::stringstream buffer;
      ASSERT_TRUE(WriteCheckpointStream(session, buffer).ok());
      checkpoints.emplace_back(at + n, buffer.str());
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  ASSERT_GE(checkpoints.size(), 2u);

  // Every checkpoint is a consistent boundary: restore + replay the rest
  // must reproduce the uninterrupted final state bit for bit.
  const TriangleEstimates want = session.Snapshot();
  for (const auto& [boundary, bytes] : checkpoints) {
    ReptSession resumed(config, seed, &pool);
    std::stringstream buffer(bytes);
    ASSERT_TRUE(ReadCheckpointStream(resumed, buffer).ok());
    EXPECT_EQ(resumed.edges_ingested(), boundary);
    resumed.NoteVertices(stream.num_vertices());
    for (size_t at = boundary; at < stream.size(); at += chunk) {
      const size_t n = std::min(chunk, stream.size() - at);
      resumed.Ingest(std::span<const Edge>(edges.data() + at, n));
    }
    const TriangleEstimates got = resumed.Snapshot();
    EXPECT_EQ(got.global, want.global) << "boundary " << boundary;
    ASSERT_EQ(got.local.size(), want.local.size());
    if (!got.local.empty()) {
      EXPECT_EQ(std::memcmp(got.local.data(), want.local.data(),
                            got.local.size() * sizeof(double)),
                0)
          << "boundary " << boundary;
    }
  }
}

TEST(CheckpointConcurrentTest, CheckpointUnderGlobalSnapshotHammering) {
  HammeredCheckpointRun(/*track_local=*/false);
}

TEST(CheckpointConcurrentTest, CheckpointUnderLocalSnapshotHammering) {
  HammeredCheckpointRun(/*track_local=*/true);
}

TEST(CheckpointConcurrentTest, RestoredSessionServesConcurrentReaders) {
  // A freshly restored session immediately publishes a consistent board:
  // readers started right after Restore() see the checkpoint's tallies.
  const EdgeStream stream = FixedStream();
  ReptConfig config;
  config.m = 4;
  config.c = 8;
  config.track_local = false;
  ReptSession writer(config, /*seed=*/7, nullptr);
  writer.NoteVertices(stream.num_vertices());
  writer.Ingest(std::span<const Edge>(stream.edges().data(),
                                      stream.size() / 2));
  const double want = writer.Snapshot().global;
  const uint64_t want_stored = writer.StoredEdges();
  std::stringstream buffer;
  ASSERT_TRUE(WriteCheckpointStream(writer, buffer).ok());

  ThreadPool pool(2);
  ReptSession resumed(config, /*seed=*/7, &pool);
  ASSERT_TRUE(ReadCheckpointStream(resumed, buffer).ok());
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&resumed, want, want_stored] {
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(resumed.Snapshot().global, want);
        EXPECT_EQ(resumed.StoredEdges(), want_stored);
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
}

}  // namespace
}  // namespace rept
