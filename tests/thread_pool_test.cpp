#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rept {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t count = 1000;
  std::vector<std::atomic<int>> hits(count);
  ParallelFor(pool, count, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, CountSmallerThanThreads) {
  ThreadPool pool(16);
  std::atomic<int> sum{0};
  ParallelFor(pool, 3, [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ParallelForTest, ZeroAndOneCounts) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(pool, 0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(pool, 1, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, TransientPoolOverload) {
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(/*threads=*/4, 64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, SerialFallbackSingleThread) {
  // threads == 1 must not spawn a pool; order is then sequential.
  std::vector<size_t> order;
  ParallelFor(/*threads=*/1, 5, [&order](size_t i) { order.push_back(i); });
  const std::vector<size_t> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

TEST(ParallelForChunkedTest, TilesCoverEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t count = 1003;  // Deliberately not a multiple of the tile.
  std::vector<std::atomic<int>> hits(count);
  ParallelForChunked(pool, count, /*tile=*/64,
                     [&hits](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
  for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForChunkedTest, TilesNeverExceedRequestedWidth) {
  ThreadPool pool(4);
  std::atomic<size_t> max_width{0};
  ParallelForChunked(pool, 257, /*tile=*/16,
                     [&max_width](size_t begin, size_t end) {
                       size_t width = end - begin;
                       size_t seen = max_width.load();
                       while (width > seen &&
                              !max_width.compare_exchange_weak(seen, width)) {
                       }
                     });
  EXPECT_LE(max_width.load(), 16u);
  EXPECT_GT(max_width.load(), 0u);
}

TEST(ParallelForChunkedTest, SerialFallbackRunsOneTileInOrder) {
  // Whole range within one tile, or a single worker: one in-place call.
  ThreadPool pool(4);
  std::vector<std::pair<size_t, size_t>> calls;
  ParallelForChunked(pool, 10, /*tile=*/64,
                     [&calls](size_t begin, size_t end) {
                       calls.emplace_back(begin, end);
                     });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<size_t, size_t>{0, 10}));

  ThreadPool single(1);
  calls.clear();
  ParallelForChunked(single, 100, /*tile=*/8,
                     [&calls](size_t begin, size_t end) {
                       calls.emplace_back(begin, end);
                     });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<size_t, size_t>{0, 100}));
}

TEST(ParallelForChunkedTest, ZeroCountAndZeroTile) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelForChunked(pool, 0, 16, [&calls](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // tile == 0 is treated as 1.
  std::vector<std::atomic<int>> hits(5);
  ParallelForChunked(pool, 5, 0, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace rept
