#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rept {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t count = 1000;
  std::vector<std::atomic<int>> hits(count);
  ParallelFor(pool, count, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, CountSmallerThanThreads) {
  ThreadPool pool(16);
  std::atomic<int> sum{0};
  ParallelFor(pool, 3, [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ParallelForTest, ZeroAndOneCounts) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(pool, 0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(pool, 1, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, TransientPoolOverload) {
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(/*threads=*/4, 64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, SerialFallbackSingleThread) {
  // threads == 1 must not spawn a pool; order is then sequential.
  std::vector<size_t> order;
  ParallelFor(/*threads=*/1, 5, [&order](size_t i) { order.push_back(i); });
  const std::vector<size_t> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace rept
