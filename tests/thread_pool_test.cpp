// ThreadPool runtime contract tests: task execution and Wait() completeness
// (including tasks submitted *by* running tasks), the defined-error shutdown
// path, Submit/Wait/Shutdown races, and the ParallelFor/ParallelForChunked
// scheduling helpers (coverage, tile boundaries, serial fallbacks, the
// shared-pool transient overload). The racy cases assert schedule-invariant
// properties only — every accepted task runs exactly once, Wait() never
// returns with work outstanding — so they are deterministic to *check* even
// though the interleavings vary; the CI TSan matrix entry runs them under
// ThreadSanitizer.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace rept {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Wait();
  ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  // "Zero-thread construction": 0 means HardwareThreads(), never an empty
  // pool, and HardwareThreads() itself never reports 0 (4-worker fallback).
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), HardwareThreads());
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_GE(HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, WaitCountsNestedSubmissions) {
  // Regression (ISSUE 6): Wait() must not return between a parent task
  // finishing and a task it submitted starting. The child is submitted
  // mid-parent, so the outstanding count never touches zero until the child
  // (and grandchild) are done.
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<bool> child_ran{false};
    std::atomic<bool> grandchild_ran{false};
    ASSERT_TRUE(pool.Submit([&pool, &child_ran, &grandchild_ran] {
      ASSERT_TRUE(pool.Submit([&pool, &child_ran, &grandchild_ran] {
        ASSERT_TRUE(
            pool.Submit([&grandchild_ran] { grandchild_ran.store(true); }));
        child_ran.store(true);
      }));
      // Give Wait() a chance to race the handoff.
      std::this_thread::yield();
    }));
    pool.Wait();
    EXPECT_TRUE(child_ran.load()) << "round " << round;
    EXPECT_TRUE(grandchild_ran.load()) << "round " << round;
  }
}

TEST(ThreadPoolTest, WaitNestedSubmissionStress) {
  // Many parents each spawning children while the main thread is already
  // blocked in Wait(): every child must be counted.
  ThreadPool pool(4);
  constexpr int kParents = 64;
  std::atomic<int> executed{0};
  for (int i = 0; i < kParents; ++i) {
    ASSERT_TRUE(pool.Submit([&pool, &executed] {
      ASSERT_TRUE(pool.Submit([&executed] { executed.fetch_add(1); }));
      executed.fetch_add(1);
    }));
  }
  pool.Wait();
  EXPECT_EQ(executed.load(), 2 * kParents);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsDefinedError) {
  // Regression (ISSUE 6): submitting to a stopped pool used to hit
  // REPT_CHECK(!stop_) and abort the process; it is now a defined error.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 1);  // Shutdown drains accepted work.
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(counter.load(), 1);  // The rejected task never ran.
  pool.Shutdown();               // Idempotent.
  pool.Wait();                   // No outstanding work; returns immediately.
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  // Tasks accepted before Shutdown() all run, even the ones still queued
  // when the stop flag goes up.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitRacingShutdownRunsOrRejects) {
  // The shutdown contract under a live race: every Submit that returned
  // true is executed exactly once; every false return left no trace. The
  // executed count must therefore equal the accepted count — regardless of
  // how the interleaving went.
  for (int round = 0; round < 20; ++round) {
    auto pool = std::make_unique<ThreadPool>(2);
    std::atomic<int> executed{0};
    std::atomic<int> accepted{0};
    std::atomic<bool> go{false};
    std::thread submitter([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 100; ++i) {
        if (pool->Submit([&executed] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
    go.store(true, std::memory_order_release);
    pool->Shutdown();
    submitter.join();
    EXPECT_EQ(executed.load(), accepted.load()) << "round " << round;
  }
}

TEST(ThreadPoolTest, ConcurrentSubmittersAndWaiters) {
  // Several threads submit and Wait() concurrently; each Wait() returning
  // implies that thread's own submissions are all done (pending covers
  // everyone's tasks, so the check is conservative but precise enough).
  ThreadPool pool(4);
  constexpr int kThreads = 4;
  static constexpr int kTasksEach = 50;
  std::vector<std::thread> users;
  for (int u = 0; u < kThreads; ++u) {
    users.emplace_back([&pool] {
      std::atomic<int> mine{0};
      for (int i = 0; i < kTasksEach; ++i) {
        ASSERT_TRUE(pool.Submit([&mine] { mine.fetch_add(1); }));
      }
      pool.Wait();
      EXPECT_EQ(mine.load(), kTasksEach);
    });
  }
  for (auto& t : users) t.join();
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t count = 1000;
  std::vector<std::atomic<int>> hits(count);
  ParallelFor(pool, count, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, CountSmallerThanThreads) {
  ThreadPool pool(16);
  std::atomic<int> sum{0};
  ParallelFor(pool, 3, [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ParallelForTest, ZeroAndOneCounts) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(pool, 0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(pool, 1, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, TransientPoolOverload) {
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(/*threads=*/4, 64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, SerialFallbackSingleThread) {
  // threads == 1 must not spawn a pool; order is then sequential.
  std::vector<size_t> order;
  ParallelFor(/*threads=*/1, 5, [&order](size_t i) { order.push_back(i); });
  const std::vector<size_t> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, SharedPoolServesDefaultWidthRepeatedly) {
  // threads == 0 routes through the persistent SharedThreadPool() — no
  // per-call pool spin-up — and repeated calls stay correct.
  EXPECT_EQ(SharedThreadPool().num_threads(), HardwareThreads());
  for (int round = 0; round < 3; ++round) {
    std::vector<std::atomic<int>> hits(128);
    ParallelFor(/*threads=*/0, 128,
                [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelForChunkedTest, TilesCoverEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t count = 1003;  // Deliberately not a multiple of the tile.
  std::vector<std::atomic<int>> hits(count);
  ParallelForChunked(pool, count, /*tile=*/64,
                     [&hits](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
  for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForChunkedTest, TilesNeverExceedRequestedWidth) {
  ThreadPool pool(4);
  std::atomic<size_t> max_width{0};
  ParallelForChunked(pool, 257, /*tile=*/16,
                     [&max_width](size_t begin, size_t end) {
                       size_t width = end - begin;
                       size_t seen = max_width.load();
                       while (width > seen &&
                              !max_width.compare_exchange_weak(seen, width)) {
                       }
                     });
  EXPECT_LE(max_width.load(), 16u);
  EXPECT_GT(max_width.load(), 0u);
}

TEST(ParallelForChunkedTest, SerialFallbackRunsOneTileInOrder) {
  // Whole range within one tile, or a single worker: one in-place call.
  ThreadPool pool(4);
  std::vector<std::pair<size_t, size_t>> calls;
  ParallelForChunked(pool, 10, /*tile=*/64,
                     [&calls](size_t begin, size_t end) {
                       calls.emplace_back(begin, end);
                     });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<size_t, size_t>{0, 10}));

  ThreadPool single(1);
  calls.clear();
  ParallelForChunked(single, 100, /*tile=*/8,
                     [&calls](size_t begin, size_t end) {
                       calls.emplace_back(begin, end);
                     });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<size_t, size_t>{0, 100}));
}

TEST(ParallelForChunkedTest, TileBoundaryCases) {
  ThreadPool pool(4);
  // tile == count: one in-place call covering the exact range.
  std::vector<std::pair<size_t, size_t>> calls;
  ParallelForChunked(pool, 32, /*tile=*/32,
                     [&calls](size_t begin, size_t end) {
                       calls.emplace_back(begin, end);
                     });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<size_t, size_t>{0, 32}));

  // count == tile + 1: smallest range that actually fans out; full coverage
  // with the final tile exactly one index wide.
  std::vector<std::atomic<int>> hits(33);
  std::atomic<int> one_wide{0};
  ParallelForChunked(pool, 33, /*tile=*/32,
                     [&hits, &one_wide](size_t begin, size_t end) {
                       if (end - begin == 1) one_wide.fetch_add(1);
                       for (size_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_EQ(one_wide.load(), 1);
}

TEST(ParallelForChunkedTest, ZeroCountAndZeroTile) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelForChunked(pool, 0, 16, [&calls](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // tile == 0 is treated as 1.
  std::vector<std::atomic<int>> hits(5);
  ParallelForChunked(pool, 5, 0, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace rept
