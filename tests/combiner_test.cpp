#include "core/combiner.hpp"

#include <gtest/gtest.h>

namespace rept {
namespace {

TEST(CombinerTest, MatchesHandComputedCombination) {
  // x = (w2*x1 + w1*x2)/(w1 + w2) = (6*10 + 2*20)/8 = 12.5.
  const CombinedEstimate c = GraybillDeal(10.0, 2.0, 20.0, 6.0, 3.0, 1.0);
  EXPECT_TRUE(c.weighted);
  EXPECT_DOUBLE_EQ(c.value, 12.5);
}

TEST(CombinerTest, WeightsSumToOne) {
  // The implied weights a1 = w2/(w1+w2), a2 = w1/(w1+w2) form a convex
  // combination: recover them from two probe runs and check a1 + a2 == 1.
  const double w1 = 3.0, w2 = 5.0;
  const double a1 = GraybillDeal(1.0, w1, 0.0, w2, 1.0, 1.0).value;
  const double a2 = GraybillDeal(0.0, w1, 1.0, w2, 1.0, 1.0).value;
  EXPECT_DOUBLE_EQ(a1 + a2, 1.0);
  EXPECT_GT(a1, 0.0);
  EXPECT_GT(a2, 0.0);
}

TEST(CombinerTest, EqualVariancesGiveMidpoint) {
  const CombinedEstimate c = GraybillDeal(4.0, 7.0, 10.0, 7.0, 1.0, 1.0);
  EXPECT_TRUE(c.weighted);
  EXPECT_DOUBLE_EQ(c.value, 7.0);
}

TEST(CombinerTest, ZeroVarianceArmTakesAllWeight) {
  // A (plug-in) exact estimator dominates: all weight on the zero-variance
  // arm regardless of the other arm's value.
  const CombinedEstimate c1 = GraybillDeal(42.0, 0.0, 1000.0, 9.0, 1.0, 1.0);
  EXPECT_TRUE(c1.weighted);
  EXPECT_DOUBLE_EQ(c1.value, 42.0);

  const CombinedEstimate c2 = GraybillDeal(1000.0, 9.0, 42.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(c2.weighted);
  EXPECT_DOUBLE_EQ(c2.value, 42.0);
}

TEST(CombinerTest, BothVariancesZeroFallsBackToProcessorWeightedMean) {
  // w1 + w2 == 0: fall back to (n1*x1 + n2*x2)/(n1 + n2) and flag the
  // result as unweighted. With n1 = 8 full-group processors and n2 = 2
  // remainder processors: (8*10 + 2*20)/10 = 12.
  const CombinedEstimate c = GraybillDeal(10.0, 0.0, 20.0, 0.0, 8.0, 2.0);
  EXPECT_FALSE(c.weighted);
  EXPECT_DOUBLE_EQ(c.value, 12.0);
}

TEST(CombinerTest, ConvexCombinationStaysWithinArmRange) {
  const double lo = -3.0, hi = 17.0;
  for (double w1 : {0.5, 1.0, 4.0}) {
    for (double w2 : {0.25, 2.0, 8.0}) {
      const CombinedEstimate c = GraybillDeal(lo, w1, hi, w2, 1.0, 1.0);
      EXPECT_GE(c.value, lo);
      EXPECT_LE(c.value, hi);
    }
  }
}

}  // namespace
}  // namespace rept
