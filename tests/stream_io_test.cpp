#include "graph/stream_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace rept {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(StreamIoTest, TextRoundTrip) {
  const std::string path = TempPath("rt.txt");
  EdgeStream stream("rt", 4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(SaveEdgeListText(stream, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->num_vertices(), 4u);
  EXPECT_EQ(EdgeKey((*loaded)[0]), EdgeKey(0, 1));
  std::remove(path.c_str());
}

TEST(StreamIoTest, TextRemapsSparseIds) {
  const std::string path = TempPath("sparse.txt");
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "1000 2000\n";
    out << "2000 3000\n";
  }
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  // Ids remapped to 0,1,2 in first-appearance order.
  EXPECT_EQ(loaded->num_vertices(), 3u);
  EXPECT_EQ((*loaded)[0].u, 0u);
  EXPECT_EQ((*loaded)[0].v, 1u);
  EXPECT_EQ((*loaded)[1].u, 1u);
  EXPECT_EQ((*loaded)[1].v, 2u);
  std::remove(path.c_str());
}

TEST(StreamIoTest, TextDedupes) {
  const std::string path = TempPath("dupes.txt");
  {
    std::ofstream out(path);
    out << "0 1\n1 0\n0 1\n1 2\n";
  }
  auto deduped = LoadEdgeListText(path, /*dedupe=*/true);
  ASSERT_TRUE(deduped.ok());
  EXPECT_EQ(deduped->size(), 2u);
  auto raw = LoadEdgeListText(path, /*dedupe=*/false);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 4u);
  std::remove(path.c_str());
}

TEST(StreamIoTest, MissingFileIsIOError) {
  auto result = LoadEdgeListText("/definitely/not/here.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(StreamIoTest, MalformedLineIsCorruption) {
  const std::string path = TempPath("bad.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot numbers\n";
  }
  auto result = LoadEdgeListText(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StreamIoTest, BinaryRoundTrip) {
  const std::string path = TempPath("rt.bin");
  EdgeStream stream("rt", 1000, {{0, 999}, {5, 7}, {7, 5}});
  ASSERT_TRUE(SaveEdgeListBinary(stream, path).ok());
  auto loaded = LoadEdgeListBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), 1000u);
  ASSERT_EQ(loaded->size(), 3u);
  // Binary round trip preserves exact endpoints and order.
  EXPECT_EQ((*loaded)[0].u, 0u);
  EXPECT_EQ((*loaded)[0].v, 999u);
  EXPECT_EQ((*loaded)[2].u, 7u);
  std::remove(path.c_str());
}

TEST(StreamIoTest, BinaryBadMagicIsCorruption) {
  const std::string path = TempPath("badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "GARBAGEGARBAGEGARBAGE";
  }
  auto result = LoadEdgeListBinary(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StreamIoTest, BinaryTruncationDetected) {
  const std::string good = TempPath("trunc_src.bin");
  EdgeStream stream("t", 10, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  ASSERT_TRUE(SaveEdgeListBinary(stream, good).ok());
  // Truncate the file mid-edges.
  std::string content;
  {
    std::ifstream in(good, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::string bad = TempPath("trunc.bin");
  {
    std::ofstream out(bad, std::ios::binary);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() - 5));
  }
  auto result = LoadEdgeListBinary(bad);
  EXPECT_FALSE(result.ok());
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

}  // namespace
}  // namespace rept
